// Small string helpers shared by the CSV reader, type inference, and the
// benchmark report printers.

#ifndef JOINMI_COMMON_STRING_UTIL_H_
#define JOINMI_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace joinmi {

/// \brief Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// \brief Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// \brief ASCII lower-casing.
std::string ToLower(std::string_view s);

/// \brief True if `s` parses fully as a signed 64-bit integer.
bool ParseInt64(std::string_view s, int64_t* out);

/// \brief True if `s` parses fully as a double.
bool ParseDouble(std::string_view s, double* out);

/// \brief printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// \brief Joins string pieces with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace joinmi

#endif  // JOINMI_COMMON_STRING_UTIL_H_
