#include "src/common/status.h"

#include <cstdio>
#include <ostream>

namespace joinmi {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kKeyError:
      return "Key error";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kIndexError:
      return "Index error";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kUnknownError:
      return "Unknown error";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown code";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

void Status::Abort() const { Abort(""); }

void Status::Abort(const std::string& context) const {
  if (ok()) return;
  std::fprintf(stderr, "-- joinmi fatal error --\n");
  if (!context.empty()) std::fprintf(stderr, "context: %s\n", context.c_str());
  std::fprintf(stderr, "%s\n", ToString().c_str());
  std::abort();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace joinmi
