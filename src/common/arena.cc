#include "src/common/arena.h"

#include <cassert>
#include <cstdlib>
#include <new>
#include <utility>

namespace joinmi {

Arena::Arena(size_t block_bytes)
    : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

Arena::~Arena() {
  for (Block& block : blocks_) {
    ::operator delete(block.data);
  }
}

Arena::Arena(Arena&& other) noexcept
    : block_bytes_(other.block_bytes_),
      blocks_(std::move(other.blocks_)),
      current_(other.current_),
      offset_(other.offset_),
      bytes_allocated_(other.bytes_allocated_),
      bytes_reserved_(other.bytes_reserved_) {
  other.blocks_.clear();
  other.current_ = 0;
  other.offset_ = 0;
  other.bytes_allocated_ = 0;
  other.bytes_reserved_ = 0;
}

Arena& Arena::operator=(Arena&& other) noexcept {
  if (this == &other) return *this;
  for (Block& block : blocks_) {
    ::operator delete(block.data);
  }
  block_bytes_ = other.block_bytes_;
  blocks_ = std::move(other.blocks_);
  current_ = other.current_;
  offset_ = other.offset_;
  bytes_allocated_ = other.bytes_allocated_;
  bytes_reserved_ = other.bytes_reserved_;
  other.blocks_.clear();
  other.current_ = 0;
  other.offset_ = 0;
  other.bytes_allocated_ = 0;
  other.bytes_reserved_ = 0;
  return *this;
}

void* Arena::AllocateBytes(size_t size, size_t align) {
  assert(align != 0 && (align & (align - 1)) == 0 &&
         align <= alignof(std::max_align_t));
  if (blocks_.empty()) {
    NextBlock(size > block_bytes_ ? size : block_bytes_);
  }
  Block& block = blocks_[current_];
  size_t aligned = (offset_ + (align - 1)) & ~(align - 1);
  if (aligned + size > block.size || aligned + size < aligned) {
    // No headroom here: move to (or allocate) a block that fits. Oversized
    // requests get a dedicated block of exactly their size so one huge
    // query doesn't permanently inflate the standard block chain.
    NextBlock(size > block_bytes_ ? size : block_bytes_);
    Block& fresh = blocks_[current_];
    aligned = (offset_ + (align - 1)) & ~(align - 1);
    offset_ = aligned + size;
    bytes_allocated_ += size;
    return fresh.data + aligned;
  }
  offset_ = aligned + size;
  bytes_allocated_ += size;
  return block.data + aligned;
}

void Arena::NextBlock(size_t min_bytes) {
  // Reuse a retained block first (Reset keeps them); allocate only when no
  // retained block is big enough.
  size_t start = blocks_.empty() ? 0 : current_ + 1;
  for (size_t i = start; i < blocks_.size(); ++i) {
    if (blocks_[i].size >= min_bytes) {
      std::swap(blocks_[start], blocks_[i]);
      current_ = start;
      offset_ = 0;
      return;
    }
  }
  char* data = static_cast<char*>(::operator new(min_bytes));
  blocks_.insert(blocks_.begin() + static_cast<ptrdiff_t>(start),
                 Block{data, min_bytes});
  bytes_reserved_ += min_bytes;
  current_ = start;
  offset_ = 0;
}

void Arena::Reset() {
  current_ = 0;
  offset_ = 0;
  bytes_allocated_ = 0;
}

}  // namespace joinmi
