// Metrics registry: named counters and bounded latency histograms for the
// serving tier. This is the one observability surface — the router, the
// shard server, and the CLI tools all register their counters here and
// export one JSON snapshot, replacing the ad-hoc atomic counters (and the
// stderr lines CI used to scrape) that accumulated per layer.
//
// Design constraints:
//   - Lock-cheap on the hot path: Counter::Add and Histogram::Observe are
//     single relaxed atomic RMWs; the registry mutex is taken only on
//     first registration of a name and on snapshot.
//   - Bounded: a histogram is a fixed array of power-of-two microsecond
//     buckets (no per-observation allocation, no unbounded growth), so a
//     server can record billions of latencies in a few hundred bytes.
//   - Stable pointers: GetCounter/GetHistogram return pointers that stay
//     valid for the registry's lifetime, so callers hoist the lookup out
//     of their hot loops.
//
// Snapshot format (SnapshotJson): one flat JSON object,
//   {"counters":{"name":value,...},
//    "histograms":{"name":{"count":n,"sum_us":s,"p50_us":x,"p99_us":y,
//                          "buckets":[[upper_us,count],...]},...}}
// with histogram buckets listing only non-empty cells as
// [inclusive upper bound in us, count]; the last bucket's bound prints as
// the bucket floor (anything slower lands there). Keys are emitted in
// sorted order so snapshots diff cleanly.

#ifndef JOINMI_COMMON_METRICS_H_
#define JOINMI_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace joinmi {
namespace metrics {

/// \brief Monotonic (or operator-set) unsigned counter. All operations are
/// relaxed atomics: counters are telemetry, not synchronization.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  /// \brief Overwrites the value — for absorbing a gauge maintained
  /// elsewhere (pool occupancy, buffer-pool counters) into a snapshot.
  void Set(uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Bounded latency histogram over power-of-two microsecond buckets:
/// bucket i counts observations with value <= 2^i us (the last bucket is
/// open-ended). 28 buckets span 1 us .. ~134 s, far past any timeout in
/// the system.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 28;

  void Observe(uint64_t micros) {
    buckets_[BucketFor(micros)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(micros, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_micros() const {
    return sum_.load(std::memory_order_relaxed);
  }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// \brief Inclusive upper bound of bucket i in microseconds (2^i); the
  /// last bucket is open-ended and reports its floor.
  static uint64_t BucketUpperMicros(size_t i) { return uint64_t{1} << i; }
  static size_t BucketFor(uint64_t micros);

  /// \brief Upper bound of the bucket holding quantile `q` (0..1) — a
  /// conservative estimate, exact to bucket resolution. 0 when empty.
  uint64_t QuantileUpperMicros(double q) const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// \brief Name -> metric registry with a JSON snapshot. Thread-safe; see
/// the header comment for the locking discipline.
class Registry {
 public:
  /// \brief Returns the counter registered under `name`, creating it on
  /// first use. The pointer stays valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// \brief All counter name/value pairs, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;
  /// \brief The counter's current value, or 0 if never registered.
  uint64_t CounterValue(const std::string& name) const;

  std::string SnapshotJson() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// \brief Records the scope's wall-clock duration into a histogram on
/// destruction. A null histogram disables recording (the zero-cost path
/// for metrics-free configurations).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Observe(ElapsedMicros());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace metrics
}  // namespace joinmi

#endif  // JOINMI_COMMON_METRICS_H_
