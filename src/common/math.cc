#include "src/common/math.h"

#include <algorithm>
#include <limits>

namespace joinmi {

double Digamma(double x) {
  if (x <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  double result = 0.0;
  // Recurrence until the asymptotic expansion is accurate.
  while (x < 8.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  // Asymptotic series: psi(x) ~ ln x - 1/(2x) - 1/(12x^2) + 1/(120x^4)
  //                    - 1/(252x^6) + 1/(240x^8) - 1/(132x^10) + ...
  // Truncation error < 1e-12 for x >= 8.
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv;
  result -=
      inv2 * (1.0 / 12.0 -
              inv2 * (1.0 / 120.0 -
                      inv2 * (1.0 / 252.0 -
                              inv2 * (1.0 / 240.0 - inv2 * (1.0 / 132.0)))));
  return result;
}

double LogGamma(double x) { return std::lgamma(x); }

double LogFactorial(uint64_t n) {
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double LogBinomial(uint64_t n, uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double XLogX(double x) { return x <= 0.0 ? 0.0 : x * std::log(x); }

double Clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

double HarmonicNumber(uint64_t n) {
  // Exact summation below a threshold; asymptotic expansion above (the
  // crossover keeps both branches < 1e-12 absolute error).
  if (n == 0) return 0.0;
  if (n < 256) {
    double h = 0.0;
    for (uint64_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
    return h;
  }
  constexpr double kEulerMascheroni = 0.5772156649015328606;
  const double x = static_cast<double>(n);
  const double inv2 = 1.0 / (x * x);
  return std::log(x) + kEulerMascheroni + 1.0 / (2.0 * x) -
         inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0));
}

bool AlmostEqual(double a, double b, double tol) {
  if (std::isnan(a) || std::isnan(b)) return false;
  return std::fabs(a - b) <= tol;
}

double BivariateNormalMI(double r) {
  const double r2 = Clamp(r * r, 0.0, 1.0 - 1e-15);
  return -0.5 * std::log1p(-r2);
}

double CorrelationForMI(double mi) {
  if (mi <= 0.0) return 0.0;
  return std::sqrt(1.0 - std::exp(-2.0 * mi));
}

double LogSumExp(const std::vector<double>& xs) {
  if (xs.empty()) return -std::numeric_limits<double>::infinity();
  const double m = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(m)) return m;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - m);
  return m + std::log(sum);
}

}  // namespace joinmi
