#include "src/common/metrics.h"

#include <cstdio>

namespace joinmi {
namespace metrics {

size_t Histogram::BucketFor(uint64_t micros) {
  size_t bucket = 0;
  while (bucket + 1 < kNumBuckets && BucketUpperMicros(bucket) < micros) {
    ++bucket;
  }
  return bucket;
}

uint64_t Histogram::QuantileUpperMicros(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation, 1-based; walk buckets until the
  // cumulative count reaches it.
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(total - 1)) + 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += bucket(i);
    if (cumulative >= rank) return BucketUpperMicros(i);
  }
  return BucketUpperMicros(kNumBuckets - 1);
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::vector<std::pair<std::string, uint64_t>> Registry::CounterValues()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, uint64_t>> values;
  values.reserve(counters_.size());
  for (const auto& entry : counters_) {
    values.emplace_back(entry.first, entry.second->value());
  }
  return values;
}

uint64_t Registry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto entry = counters_.find(name);
  return entry == counters_.end() ? 0 : entry->second->value();
}

namespace {

// Minimal JSON string escaping: metric names are code-chosen identifiers,
// but a snapshot must never emit invalid JSON whatever a caller names.
void AppendJsonString(std::string* out, const std::string& value) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string Registry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& entry : counters_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, entry.first);
    out.push_back(':');
    out += std::to_string(entry.second->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& entry : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    const Histogram& hist = *entry.second;
    AppendJsonString(&out, entry.first);
    out += ":{\"count\":" + std::to_string(hist.count());
    out += ",\"sum_us\":" + std::to_string(hist.sum_micros());
    out += ",\"p50_us\":" + std::to_string(hist.QuantileUpperMicros(0.5));
    out += ",\"p99_us\":" + std::to_string(hist.QuantileUpperMicros(0.99));
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      const uint64_t count = hist.bucket(i);
      if (count == 0) continue;
      if (!first_bucket) out.push_back(',');
      first_bucket = false;
      out += "[" + std::to_string(Histogram::BucketUpperMicros(i)) + "," +
             std::to_string(count) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace metrics
}  // namespace joinmi
