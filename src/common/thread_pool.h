// Fixed-size thread pool with future-returning task submission. The pool is
// deliberately minimal — a locked deque feeding N workers — because the
// discovery workloads built on top of it are coarse-grained (one task per
// candidate column pair), so queue contention is negligible next to the
// sketch-probe work each task performs.

#ifndef JOINMI_COMMON_THREAD_POOL_H_
#define JOINMI_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace joinmi {

/// \brief A fixed-size pool of worker threads draining a shared task queue.
///
/// Tasks may themselves submit further tasks. The destructor waits for all
/// queued and running tasks to finish before joining the workers.
class ThreadPool {
 public:
  /// \brief Starts `num_threads` workers; 0 means hardware concurrency
  /// (itself clamped to at least one). Requests are capped at
  /// `kMaxThreads` so a miscomputed count degrades instead of exhausting
  /// the process thread limit.
  explicit ThreadPool(size_t num_threads = 0);

  /// Upper bound on workers per pool.
  static constexpr size_t kMaxThreads = 1024;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Drains the queue and joins all workers.
  ~ThreadPool();

  size_t num_threads() const { return workers_.size(); }

  /// \brief Number of tasks currently queued (excludes running tasks).
  size_t queue_size() const;

  /// \brief Enqueues a callable and returns a future for its result. The
  /// callable's exceptions propagate through the future.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return future;
  }

  /// \brief Blocks until every queued and running task has completed.
  void Wait();

  /// \brief Hardware concurrency, never zero.
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable wake_;   // workers wait here for tasks
  std::condition_variable idle_;   // Wait() blocks here
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;   // tasks currently executing
  bool stopping_ = false;
};

}  // namespace joinmi

#endif  // JOINMI_COMMON_THREAD_POOL_H_
