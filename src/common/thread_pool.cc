#include "src/common/thread_pool.h"

#include <algorithm>

namespace joinmi {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreadCount();
  num_threads = std::min(num_threads, kMaxThreads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::queue_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::DefaultThreadCount() {
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace joinmi
