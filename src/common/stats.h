// Descriptive statistics used by the experimental harnesses: error metrics
// (MSE/RMSE/MAE) and rank/linear correlation (Pearson, Spearman), matching
// the measures reported in the paper's Tables I-II and Section V-B1.

#ifndef JOINMI_COMMON_STATS_H_
#define JOINMI_COMMON_STATS_H_

#include <cstddef>
#include <vector>

#include "src/common/status.h"

namespace joinmi {

/// \brief Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// \brief Population variance (divides by N); 0 for N < 1.
double Variance(const std::vector<double>& xs);

/// \brief Population standard deviation.
double StdDev(const std::vector<double>& xs);

/// \brief Mean squared error between paired vectors.
Result<double> MeanSquaredError(const std::vector<double>& a,
                                const std::vector<double>& b);

/// \brief Root mean squared error between paired vectors.
Result<double> RootMeanSquaredError(const std::vector<double>& a,
                                    const std::vector<double>& b);

/// \brief Mean absolute error between paired vectors.
Result<double> MeanAbsoluteError(const std::vector<double>& a,
                                 const std::vector<double>& b);

/// \brief Pearson's linear correlation coefficient.
///
/// Returns 0 when either input is constant (correlation undefined).
Result<double> PearsonCorrelation(const std::vector<double>& a,
                                  const std::vector<double>& b);

/// \brief Spearman's rank correlation: Pearson on mid-ranks (average ranks
/// for ties), the standard definition for data with duplicates.
Result<double> SpearmanCorrelation(const std::vector<double>& a,
                                   const std::vector<double>& b);

/// \brief Mid-ranks (1-based, ties averaged) of the input.
std::vector<double> MidRanks(const std::vector<double>& xs);

/// \brief p-quantile (linear interpolation between closest ranks).
Result<double> Quantile(std::vector<double> xs, double p);

/// \brief Online mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Population variance; 0 if fewer than 2 observations.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace joinmi

#endif  // JOINMI_COMMON_STATS_H_
