// Status / Result error-handling primitives, following the Arrow/RocksDB
// idiom: library code never throws; fallible functions return Status or
// Result<T> and callers propagate with JOINMI_RETURN_NOT_OK /
// JOINMI_ASSIGN_OR_RETURN.

#ifndef JOINMI_COMMON_STATUS_H_
#define JOINMI_COMMON_STATUS_H_

#include <cstdlib>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace joinmi {

/// \brief Machine-readable category of a Status.
enum class StatusCode : char {
  kOk = 0,
  kInvalidArgument,
  kKeyError,
  kTypeError,
  kIndexError,
  kOutOfRange,
  kNotImplemented,
  kIOError,
  kAlreadyExists,
  kUnknownError,
  /// The serving tier is at capacity and rejected the request instead of
  /// queueing it unboundedly. The message may carry a machine-readable
  /// "retry_after_ms=N" hint (see common/admission.h).
  kOverloaded,
};

/// \brief Returns a human-readable name for a StatusCode ("Invalid argument",
/// "Type error", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus a message.
///
/// The OK state carries no allocation; error states heap-allocate the
/// message. Copyable and cheaply movable.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(State{code, std::move(msg)})) {}

  /// \brief Returns an OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status IndexError(std::string msg) {
    return Status(StatusCode::kIndexError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status UnknownError(std::string msg) {
    return Status(StatusCode::kUnknownError, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  /// \brief True iff the status is OK.
  bool ok() const { return state_ == nullptr; }

  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }

  /// \brief The error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->msg;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsKeyError() const { return code() == StatusCode::kKeyError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsIndexError() const { return code() == StatusCode::kIndexError; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsAlreadyExists() const {
    return code() == StatusCode::kAlreadyExists;
  }
  bool IsOverloaded() const { return code() == StatusCode::kOverloaded; }

  /// \brief "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// \brief Aborts the process if not OK. Use only in tests, examples, and
  /// benchmark harnesses where failure is a bug.
  void Abort() const;
  void Abort(const std::string& context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // Shared so Status copies are cheap; immutable after construction.
  std::shared_ptr<const State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Accessors abort on misuse (taking the value of an
/// errored result), which is always a programming error.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status (implicit, enables `return status;`).
  Result(Status status)  // NOLINT(runtime/explicit)
      : storage_(std::move(status)) {
    if (std::get<Status>(storage_).ok()) {
      std::get<Status>(storage_) =
          Status::UnknownError("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  /// \brief The error status, or OK if this result holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(storage_);
  }

  /// \brief Returns the contained value; aborts if this is an error.
  const T& ValueOrDie() const& {
    DieIfError();
    return std::get<T>(storage_);
  }
  T& ValueOrDie() & {
    DieIfError();
    return std::get<T>(storage_);
  }
  T ValueOrDie() && {
    DieIfError();
    return std::move(std::get<T>(storage_));
  }

  /// \brief Moves the contained value out; aborts if this is an error.
  T MoveValueUnsafe() { return std::move(std::get<T>(storage_)); }

  /// \brief Returns the value or `alternative` if errored.
  T ValueOr(T alternative) const {
    return ok() ? std::get<T>(storage_) : std::move(alternative);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void DieIfError() const {
    if (!ok()) std::get<Status>(storage_).Abort("Result::ValueOrDie");
  }
  std::variant<Status, T> storage_;
};

}  // namespace joinmi

/// \brief Propagates a non-OK Status to the caller.
#define JOINMI_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::joinmi::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (false)

#define JOINMI_CONCAT_IMPL(x, y) x##y
#define JOINMI_CONCAT(x, y) JOINMI_CONCAT_IMPL(x, y)

/// \brief Evaluates a Result<T> expression; on success binds the value to
/// `lhs`, on error returns the Status to the caller.
#define JOINMI_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  JOINMI_ASSIGN_OR_RETURN_IMPL(JOINMI_CONCAT(_result_, __LINE__), lhs,  \
                               rexpr)

#define JOINMI_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                 \
  if (!result_name.ok()) return result_name.status();         \
  lhs = result_name.MoveValueUnsafe()

#endif  // JOINMI_COMMON_STATUS_H_
