#include "src/common/admission.h"

#include <cstdlib>

namespace joinmi {

// The hint travels inside the message rather than a new Status field so it
// survives the existing wire encoding (rpc::AppendStatus round-trips code +
// message exactly) and every intermediate layer that copies statuses.
constexpr char kRetryAfterToken[] = "retry_after_ms=";

Status MakeOverloadedStatus(size_t depth, size_t limit,
                            int retry_after_ms) {
  if (retry_after_ms < 0) retry_after_ms = 0;
  return Status::Overloaded(
      "pending-query limit reached (" + std::to_string(depth) + " >= " +
      std::to_string(limit) + " pending); " + kRetryAfterToken +
      std::to_string(retry_after_ms));
}

int RetryAfterHintMs(const Status& status) {
  if (!status.IsOverloaded()) return -1;
  const std::string& message = status.message();
  const size_t pos = message.rfind(kRetryAfterToken);
  if (pos == std::string::npos) return -1;
  const char* digits = message.c_str() + pos + sizeof(kRetryAfterToken) - 1;
  if (*digits < '0' || *digits > '9') return -1;
  long value = 0;
  for (const char* c = digits; *c >= '0' && *c <= '9'; ++c) {
    value = value * 10 + (*c - '0');
    if (value > 86400000) return 86400000;  // clamp: a day is plenty
  }
  return static_cast<int>(value);
}

}  // namespace joinmi
