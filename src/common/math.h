// Special functions and numeric helpers used by entropy / MI estimators and
// the synthetic-data generators.

#ifndef JOINMI_COMMON_MATH_H_
#define JOINMI_COMMON_MATH_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace joinmi {

/// Natural log of 2; used to convert between nats and bits.
inline constexpr double kLn2 = 0.6931471805599453094;

/// \brief Digamma function psi(x) = d/dx ln Gamma(x), for x > 0.
///
/// Uses the recurrence psi(x) = psi(x+1) - 1/x to push the argument above 6,
/// then the asymptotic series. Absolute error < 1e-12 for x >= 1e-3, which is
/// far below the statistical error of any kNN entropy estimate.
double Digamma(double x);

/// \brief ln Gamma(x) for x > 0 (thin wrapper over std::lgamma, kept for a
/// single point of substitution in tests).
double LogGamma(double x);

/// \brief ln n! via lgamma.
double LogFactorial(uint64_t n);

/// \brief ln C(n, k). Returns -inf when k > n.
double LogBinomial(uint64_t n, uint64_t k);

/// \brief x * ln x with the measure-theoretic convention 0 * ln 0 = 0.
double XLogX(double x);

/// \brief Clamps v into [lo, hi].
double Clamp(double v, double lo, double hi);

/// \brief The n-th harmonic number H_n = sum_{i=1..n} 1/i.
double HarmonicNumber(uint64_t n);

/// \brief True if |a - b| <= tol, treating NaN as never close.
bool AlmostEqual(double a, double b, double tol = 1e-9);

/// \brief MI of a bivariate normal with correlation r (in nats):
/// I = -0.5 ln(1 - r^2). Used by the Trinomial parameter-selection step.
double BivariateNormalMI(double r);

/// \brief Inverse of BivariateNormalMI: |r| = sqrt(1 - exp(-2 I)).
double CorrelationForMI(double mi);

/// \brief log(sum(exp(x_i))) computed stably.
double LogSumExp(const std::vector<double>& xs);

}  // namespace joinmi

#endif  // JOINMI_COMMON_MATH_H_
