#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace joinmi {

namespace {
Status CheckPaired(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("paired vectors must have equal length");
  }
  if (a.empty()) {
    return Status::InvalidArgument("paired vectors must be non-empty");
  }
  return Status::OK();
}
}  // namespace

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

Result<double> MeanSquaredError(const std::vector<double>& a,
                                const std::vector<double>& b) {
  JOINMI_RETURN_NOT_OK(CheckPaired(a, b));
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += (a[i] - b[i]) * (a[i] - b[i]);
  return acc / static_cast<double>(a.size());
}

Result<double> RootMeanSquaredError(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  JOINMI_ASSIGN_OR_RETURN(double mse, MeanSquaredError(a, b));
  return std::sqrt(mse);
}

Result<double> MeanAbsoluteError(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  JOINMI_RETURN_NOT_OK(CheckPaired(a, b));
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += std::fabs(a[i] - b[i]);
  return acc / static_cast<double>(a.size());
}

Result<double> PearsonCorrelation(const std::vector<double>& a,
                                  const std::vector<double>& b) {
  JOINMI_RETURN_NOT_OK(CheckPaired(a, b));
  const double ma = Mean(a);
  const double mb = Mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

std::vector<double> MidRanks(const std::vector<double>& xs) {
  const size_t n = xs.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t i, size_t j) { return xs[i] < xs[j]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average 1-based rank of the tie group [i, j].
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

Result<double> SpearmanCorrelation(const std::vector<double>& a,
                                   const std::vector<double>& b) {
  JOINMI_RETURN_NOT_OK(CheckPaired(a, b));
  return PearsonCorrelation(MidRanks(a), MidRanks(b));
}

Result<double> Quantile(std::vector<double> xs, double p) {
  if (xs.empty()) return Status::InvalidArgument("quantile of empty vector");
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("quantile p must be in [0, 1]");
  }
  std::sort(xs.begin(), xs.end());
  const double idx = p * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace joinmi
