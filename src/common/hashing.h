// Hashing pipeline used by all sketches, mirroring Section IV of the paper:
// a collision-resistant object hash h (MurmurHash3) mapping inputs to
// integers, composed with a uniform unit hash h_u (Fibonacci multiplicative
// hashing) mapping integers to [0, 1).

#ifndef JOINMI_COMMON_HASHING_H_
#define JOINMI_COMMON_HASHING_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace joinmi {

/// \brief MurmurHash3 x86_32 over an arbitrary byte buffer.
///
/// This is the paper's choice for the collision-free-in-practice object hash
/// `h`. The reference algorithm by Austin Appleby (public domain).
uint32_t MurmurHash3_32(const void* data, size_t len, uint32_t seed);

/// \brief MurmurHash3 over a string view.
uint32_t MurmurHash3_32(std::string_view s, uint32_t seed = 0);

/// \brief 64-bit finalizer-style mix (MurmurHash3 fmix64). Bijective.
uint64_t Mix64(uint64_t x);

/// \brief 128->64 combiner for hashing composite keys such as the paper's
/// occurrence tuples ⟨k, j⟩.
uint64_t HashCombine(uint64_t a, uint64_t b);

/// \brief Fibonacci multiplicative hashing: multiplies by
/// 2^64 / phi and keeps the high bits, then maps to [0, 1).
///
/// This is the paper's uniform hash h_u. The golden-ratio multiplier
/// scatters consecutive integers maximally uniformly (Knuth, TAOCP v3).
double FibonacciUnitHash(uint64_t x);

/// \brief 64-bit Fibonacci scramble without the unit-interval projection.
uint64_t FibonacciHash64(uint64_t x);

/// \brief Full paper pipeline h_u(h(x)) for string data.
double UnitHash(std::string_view s, uint32_t seed = 0);

/// \brief Full paper pipeline h_u(h(x)) for integer data.
double UnitHash(uint64_t x);

}  // namespace joinmi

#endif  // JOINMI_COMMON_HASHING_H_
