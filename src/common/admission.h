// Admission control: a bounded pending-work gate plus the structured
// kOverloaded status it rejects with. When the serving tier is saturated,
// queueing more work only grows latency for everyone; the gate instead
// sheds load deterministically — the caller gets StatusCode::kOverloaded
// with a machine-readable "retry_after_ms=N" hint in the message, retries
// after the hint, and the system stays responsive for the work it already
// admitted. Both the Router (client-side fan-out) and the ShardServer's
// ThreadPool dispatch gate through this class.
//
// Depth semantics: "pending" counts work that has entered the gate and not
// yet exited — queued AND executing. With limit L, the L+1-th concurrent
// entry is rejected. limit 0 disables the gate (always admits), which is
// the historical queue-unboundedly behavior.

#ifndef JOINMI_COMMON_ADMISSION_H_
#define JOINMI_COMMON_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace joinmi {

/// \brief Builds the structured rejection: kOverloaded, with a message
/// naming the depth/limit and ending in the "retry_after_ms=N" hint that
/// RetryAfterHintMs parses back out.
Status MakeOverloadedStatus(size_t depth, size_t limit, int retry_after_ms);

/// \brief Extracts the retry-after hint from an Overloaded status message;
/// -1 when the status carries none (wrong code, or a foreign message).
int RetryAfterHintMs(const Status& status);

/// \brief Bounded pending-work gate. Thread-safe; admission is one atomic
/// CAS loop, so the gate adds no lock to the hot path.
class AdmissionGate {
 public:
  /// \brief `max_pending` bounds concurrently admitted work (0 = no
  /// bound); `retry_after_ms` is the hint stamped into rejections.
  explicit AdmissionGate(size_t max_pending, int retry_after_ms = 50)
      : max_pending_(max_pending), retry_after_ms_(retry_after_ms) {}

  /// \brief RAII admission: releases the gate slot on destruction.
  class Ticket {
   public:
    Ticket() = default;
    explicit Ticket(AdmissionGate* gate) : gate_(gate) {}
    Ticket(Ticket&& other) noexcept : gate_(other.gate_) {
      other.gate_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        gate_ = other.gate_;
        other.gate_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    void Release() {
      if (gate_ != nullptr) {
        gate_->Exit();
        gate_ = nullptr;
      }
    }

   private:
    AdmissionGate* gate_ = nullptr;
  };

  /// \brief Admits (returning the slot's ticket) or rejects with the
  /// structured Overloaded status.
  Result<Ticket> TryEnter() {
    size_t depth = pending_.load(std::memory_order_relaxed);
    while (true) {
      if (max_pending_ != 0 && depth >= max_pending_) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return MakeOverloadedStatus(depth, max_pending_, retry_after_ms_);
      }
      if (pending_.compare_exchange_weak(depth, depth + 1,
                                         std::memory_order_relaxed)) {
        admitted_.fetch_add(1, std::memory_order_relaxed);
        return Ticket(this);
      }
    }
  }

  size_t pending() const { return pending_.load(std::memory_order_relaxed); }
  size_t max_pending() const { return max_pending_; }
  int retry_after_ms() const { return retry_after_ms_; }
  uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  friend class Ticket;
  void Exit() { pending_.fetch_sub(1, std::memory_order_relaxed); }

  const size_t max_pending_;
  const int retry_after_ms_;
  std::atomic<size_t> pending_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace joinmi

#endif  // JOINMI_COMMON_ADMISSION_H_
