#include "src/common/hashing.h"

#include <cstring>

namespace joinmi {

namespace {
inline uint32_t Rotl32(uint32_t x, int8_t r) {
  return (x << r) | (x >> (32 - r));
}
inline uint32_t Fmix32(uint32_t h) {
  h ^= h >> 16;
  h *= 0x85EBCA6BU;
  h ^= h >> 13;
  h *= 0xC2B2AE35U;
  h ^= h >> 16;
  return h;
}
}  // namespace

uint32_t MurmurHash3_32(const void* data, size_t len, uint32_t seed) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  const size_t nblocks = len / 4;
  uint32_t h1 = seed;
  const uint32_t c1 = 0xCC9E2D51U;
  const uint32_t c2 = 0x1B873593U;

  for (size_t i = 0; i < nblocks; ++i) {
    uint32_t k1;
    std::memcpy(&k1, bytes + i * 4, sizeof(k1));
    k1 *= c1;
    k1 = Rotl32(k1, 15);
    k1 *= c2;
    h1 ^= k1;
    h1 = Rotl32(h1, 13);
    h1 = h1 * 5 + 0xE6546B64U;
  }

  const uint8_t* tail = bytes + nblocks * 4;
  uint32_t k1 = 0;
  switch (len & 3) {
    case 3:
      k1 ^= static_cast<uint32_t>(tail[2]) << 16;
      [[fallthrough]];
    case 2:
      k1 ^= static_cast<uint32_t>(tail[1]) << 8;
      [[fallthrough]];
    case 1:
      k1 ^= tail[0];
      k1 *= c1;
      k1 = Rotl32(k1, 15);
      k1 *= c2;
      h1 ^= k1;
  }

  h1 ^= static_cast<uint32_t>(len);
  return Fmix32(h1);
}

uint32_t MurmurHash3_32(std::string_view s, uint32_t seed) {
  return MurmurHash3_32(s.data(), s.size(), seed);
}

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  // boost::hash_combine-style with a 64-bit golden-ratio constant, followed
  // by a strong finalizer so the result feeds a unit hash safely.
  uint64_t h = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
  return Mix64(h);
}

uint64_t FibonacciHash64(uint64_t x) {
  // 2^64 / phi, rounded to the nearest odd integer.
  return x * 0x9E3779B97F4A7C15ULL;
}

double FibonacciUnitHash(uint64_t x) {
  // Keep the top 53 bits so the double conversion is exact.
  return static_cast<double>(FibonacciHash64(x) >> 11) * 0x1.0p-53;
}

double UnitHash(std::string_view s, uint32_t seed) {
  const uint32_t h = MurmurHash3_32(s, seed);
  // Widen through a bijective mix before the Fibonacci projection so the
  // unit values use all 64 input bits.
  return FibonacciUnitHash(Mix64(h));
}

double UnitHash(uint64_t x) { return FibonacciUnitHash(Mix64(x)); }

}  // namespace joinmi
