// Bump-pointer arena for per-query scratch memory. The discovery hot path
// (probe a prepared train sketch against thousands of candidate sketches)
// needs many short-lived buffers — match index lists, per-strip
// temporaries — whose lifetimes all end when the query does. Allocating
// them individually puts malloc/free on the per-probe critical path;
// carving them out of an arena that is Reset() between queries makes the
// steady state allocation-free: blocks are retained across Reset, so after
// the first query warms the arena no further heap traffic occurs unless a
// query needs strictly more scratch than any before it.
//
// Lifetime contract: memory returned by Allocate* is valid until the next
// Reset() (or destruction). The arena never runs destructors — only
// trivially destructible payloads belong here.

#ifndef JOINMI_COMMON_ARENA_H_
#define JOINMI_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace joinmi {

/// \brief A growable bump allocator with O(1) Reset.
class Arena {
 public:
  /// \brief Default size of each internal block. Oversized requests get a
  /// dedicated block of exactly their size instead of growing this.
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&& other) noexcept;
  Arena& operator=(Arena&& other) noexcept;

  /// \brief Returns `size` bytes aligned to `align` (a power of two,
  /// at most alignof(std::max_align_t)). size 0 returns a unique non-null
  /// pointer like operator new does.
  void* AllocateBytes(size_t size, size_t align);

  /// \brief Typed array allocation; T must be trivially destructible
  /// (Reset never runs destructors). The memory is uninitialized.
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena memory is reclaimed without running destructors");
    return static_cast<T*>(AllocateBytes(count * sizeof(T), alignof(T)));
  }

  /// \brief Rewinds every block to empty without releasing any of them —
  /// the steady-state path: after the arena has grown to a query's working
  /// set, Reset + reuse touches the heap zero times.
  void Reset();

  /// \brief Bytes handed out since the last Reset.
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// \brief Total block bytes currently owned (survives Reset).
  size_t bytes_reserved() const { return bytes_reserved_; }
  /// \brief Number of owned blocks (survives Reset).
  size_t num_blocks() const { return blocks_.size(); }

 private:
  struct Block {
    char* data;
    size_t size;
  };

  /// Makes `current_` a block with at least `min_bytes` of headroom,
  /// reusing retained blocks before mallocing a new one.
  void NextBlock(size_t min_bytes);

  size_t block_bytes_;
  std::vector<Block> blocks_;
  size_t current_ = 0;   // index into blocks_ of the block being bumped
  size_t offset_ = 0;    // bump offset within blocks_[current_]
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace joinmi

#endif  // JOINMI_COMMON_ARENA_H_
