#include "src/common/random.h"

#include <cmath>

namespace joinmi {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBounded(uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    const uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

uint64_t Rng::Binomial(uint64_t n, double p) {
  if (p <= 0.0 || n == 0) return 0;
  if (p >= 1.0) return n;
  // Exploit symmetry so the expected work of the waiting-time method is
  // bounded by n * min(p, 1-p).
  if (p > 0.5) return n - Binomial(n, 1.0 - p);
  if (static_cast<double>(n) * p < 32.0) {
    // Waiting-time (geometric skips) method: O(n p) expected. Each skip is
    // G = floor(ln U / ln(1 - p)) + 1 ~ Geometric(p), the number of trials
    // up to and including the next success.
    const double log_q = std::log1p(-p);
    uint64_t count = 0;
    double trials_used = 0.0;
    while (true) {
      double u;
      do {
        u = NextDouble();
      } while (u <= 1e-300);
      trials_used += std::floor(std::log(u) / log_q) + 1.0;
      if (trials_used > static_cast<double>(n)) break;
      ++count;
      if (count > n) return n;
    }
    return count;
  }
  // Large mean: normal approximation with continuity correction, clamped and
  // resampled on the (astronomically rare) out-of-range draw. The benchmark
  // generators tolerate this level of approximation (n p >= 32).
  const double mean = static_cast<double>(n) * p;
  const double sd = std::sqrt(mean * (1.0 - p));
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double draw = std::floor(Gaussian(mean, sd) + 0.5);
    if (draw >= 0.0 && draw <= static_cast<double>(n)) {
      return static_cast<uint64_t>(draw);
    }
  }
  return static_cast<uint64_t>(mean);
}

std::vector<uint64_t> Rng::Multinomial(uint64_t n,
                                       const std::vector<double>& probs) {
  std::vector<uint64_t> counts(probs.size(), 0);
  double remaining_prob = 1.0;
  uint64_t remaining_n = n;
  for (size_t i = 0; i < probs.size(); ++i) {
    if (remaining_n == 0) break;
    if (remaining_prob <= 0.0) break;
    const double cond_p = probs[i] / remaining_prob;
    const uint64_t draw =
        (i + 1 == probs.size() && cond_p >= 1.0 - 1e-12)
            ? remaining_n
            : Binomial(remaining_n, cond_p > 1.0 ? 1.0 : cond_p);
    counts[i] = draw;
    remaining_n -= draw;
    remaining_prob -= probs[i];
  }
  return counts;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  // Devroye's rejection-inversion for the Zipf(s) law over {1..n}.
  if (n <= 1) return 1;
  const double nd = static_cast<double>(n);
  if (s == 1.0) {
    // Handle the log-case of the integral H(x) = ln x.
    const double hn = std::log(nd + 0.5) - std::log(0.5);
    while (true) {
      const double u = NextDouble() * hn + std::log(0.5);
      const double x = std::exp(u);
      const uint64_t k = static_cast<uint64_t>(x + 0.5) < 1
                             ? 1
                             : static_cast<uint64_t>(x + 0.5);
      if (k > n) continue;
      const double ratio = 1.0 / static_cast<double>(k) /
                           (1.0 / x);  // f(k) / bounding density
      if (NextDouble() <= ratio) return k;
    }
  }
  const double one_minus_s = 1.0 - s;
  auto h_integral = [&](double x) {
    return std::pow(x, one_minus_s) / one_minus_s;
  };
  auto h_inverse = [&](double y) {
    return std::pow(y * one_minus_s, 1.0 / one_minus_s);
  };
  const double lo = h_integral(0.5);
  const double hi = h_integral(nd + 0.5);
  while (true) {
    const double u = lo + NextDouble() * (hi - lo);
    const double x = h_inverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) continue;
    const double kd = static_cast<double>(k);
    const double accept =
        std::pow(kd, -s) / std::pow(x, -s);  // f(k) vs dominating density
    if (NextDouble() <= accept) return k;
  }
}

Rng Rng::Fork() { return Rng(Next64() ^ 0xA02BDBF7BB3C0A7ULL); }

}  // namespace joinmi
