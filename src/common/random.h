// Deterministic pseudo-random generation. Every stochastic component in the
// library takes an explicit seed so experiments are reproducible; nothing
// reads global entropy.

#ifndef JOINMI_COMMON_RANDOM_H_
#define JOINMI_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace joinmi {

/// \brief splitmix64 step; also used to expand seeds.
uint64_t SplitMix64(uint64_t& state);

/// \brief xoshiro256** PRNG. Small, fast, and good enough statistically for
/// Monte-Carlo experiments (passes BigCrush). Not cryptographic.
class Rng {
 public:
  /// Seeds the four-word state by running splitmix64 on `seed`.
  explicit Rng(uint64_t seed = 0xB5297A4D9E3779B9ULL);

  /// \brief Next raw 64-bit output.
  uint64_t Next64();

  /// \brief Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// \brief Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// \brief Uniform integer in [0, bound) without modulo bias (Lemire).
  uint64_t NextBounded(uint64_t bound);

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// \brief True with probability p.
  bool Bernoulli(double p);

  /// \brief Standard normal via Box–Muller (caches the second deviate).
  double Gaussian();
  double Gaussian(double mean, double stddev);

  /// \brief Binomial(n, p) sample. Uses direct simulation for small n and
  /// the BTPE-free normal-approximation-free inversion for large n * p;
  /// exact for all n (inversion by CDF walk is O(n p) expected).
  uint64_t Binomial(uint64_t n, double p);

  /// \brief Multinomial(n, probs) sample via sequential binomial
  /// conditioning. `probs` must sum to <= 1 + 1e-9; a residual category is
  /// NOT added (outputs have probs.size() entries).
  std::vector<uint64_t> Multinomial(uint64_t n, const std::vector<double>& probs);

  /// \brief Geometric-like Zipf(s) sample over {1..n} via rejection
  /// (Devroye). Used by the open-data simulator for skewed key frequencies.
  uint64_t Zipf(uint64_t n, double s);

  /// \brief Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// \brief Derives an independent child generator (for parallel streams).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace joinmi

#endif  // JOINMI_COMMON_RANDOM_H_
