// End-to-end synthetic experiment generation: draw distribution parameters
// with a known analytic MI, sample N joined rows, and decompose them into a
// joinable (T_train, T_cand) pair. One call produces everything a benchmark
// trial needs.

#ifndef JOINMI_SYNTHETIC_PIPELINE_H_
#define JOINMI_SYNTHETIC_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/synthetic/decompose.h"
#include "src/synthetic/trinomial.h"

namespace joinmi {

/// \brief Available synthetic distributions (Section V-A).
enum class SyntheticDistribution : uint8_t {
  kTrinomial = 0,
  kCDUnif,
};

const char* SyntheticDistributionToString(SyntheticDistribution dist);

/// \brief One experiment specification.
struct SyntheticSpec {
  SyntheticDistribution distribution = SyntheticDistribution::kTrinomial;
  /// Trinomial: number of trials; CDUnif: support size of X.
  uint64_t m = 512;
  /// Rows of the (conceptual) joined table == rows of T_train.
  size_t num_rows = 10000;
  KeyScheme key_scheme = KeyScheme::kKeyInd;
  uint64_t seed = 1;
  /// Trinomial only: target-MI range for parameter selection.
  double min_mi = 0.0;
  double max_mi = 3.5;
};

/// \brief A generated dataset with its ground truth.
struct SyntheticDataset {
  SyntheticSpec spec;
  /// Exact MI of the generating distribution, in nats.
  double true_mi = 0.0;
  /// The post-join attribute columns, in generation order.
  std::vector<Value> xs;
  std::vector<Value> ys;
  /// The decomposed joinable tables.
  DecomposedTables tables;
};

/// \brief Generates a dataset per the spec. KeyDep with CDUnif is rejected
/// (the paper notes KeyDep applies only when X is discrete — CDUnif's X is
/// discrete, so it IS allowed; continuous-X schemes are the rejected case).
Result<SyntheticDataset> GenerateSyntheticDataset(const SyntheticSpec& spec);

}  // namespace joinmi

#endif  // JOINMI_SYNTHETIC_PIPELINE_H_
