// Decomposition of generated (X, Y) pairs into joinable tables
// (Section V-A "Decomposition Into Joinable Tables"):
//  - KeyInd: sequential unique keys, a one-to-one relationship with maximum
//    key/feature independence;
//  - KeyDep: the key value IS the feature value, a many-to-one relationship
//    with maximal key/feature dependence (discrete X only).
// Both schemes reconstruct (X, Y) exactly when the tables are re-joined.

#ifndef JOINMI_SYNTHETIC_DECOMPOSE_H_
#define JOINMI_SYNTHETIC_DECOMPOSE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/table/table.h"

namespace joinmi {

/// \brief Join-key generation schemes.
enum class KeyScheme : uint8_t {
  kKeyInd = 0,  ///< one-to-one, keys independent of values
  kKeyDep,      ///< many-to-one, key equals the feature value
};

const char* KeySchemeToString(KeyScheme scheme);

/// \brief Column names used by the decomposed tables.
inline constexpr const char* kKeyColumn = "K";
inline constexpr const char* kTargetColumn = "Y";
inline constexpr const char* kFeatureColumn = "Z";

/// \brief Decomposition output: T_train[K, Y] and T_cand[K, Z].
struct DecomposedTables {
  std::shared_ptr<Table> train;
  std::shared_ptr<Table> cand;
};

/// \brief Splits paired samples into joinable tables under the scheme.
/// For kKeyDep, X values must be discrete (hashable with exact equality);
/// int64 or string values are accepted, doubles are rejected.
Result<DecomposedTables> DecomposeIntoTables(const std::vector<Value>& xs,
                                             const std::vector<Value>& ys,
                                             KeyScheme scheme);

}  // namespace joinmi

#endif  // JOINMI_SYNTHETIC_DECOMPOSE_H_
