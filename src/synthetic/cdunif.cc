#include "src/synthetic/cdunif.h"

#include <cmath>

namespace joinmi {

double CDUnifExactMI(uint64_t m) {
  if (m <= 1) return 0.0;
  const double md = static_cast<double>(m);
  return std::log(md) - (md - 1.0) * std::log(2.0) / md;
}

Status SampleCDUnif(uint64_t m, size_t n, Rng& rng, std::vector<int64_t>* xs,
                    std::vector<double>* ys) {
  if (m == 0) return Status::InvalidArgument("m must be positive");
  xs->clear();
  ys->clear();
  xs->reserve(n);
  ys->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t x = static_cast<int64_t>(rng.NextBounded(m));
    const double y = static_cast<double>(x) + rng.Uniform(0.0, 2.0);
    xs->push_back(x);
    ys->push_back(y);
  }
  return Status::OK();
}

}  // namespace joinmi
