#include "src/synthetic/pipeline.h"

#include "src/synthetic/cdunif.h"

namespace joinmi {

const char* SyntheticDistributionToString(SyntheticDistribution dist) {
  switch (dist) {
    case SyntheticDistribution::kTrinomial:
      return "Trinomial";
    case SyntheticDistribution::kCDUnif:
      return "CDUnif";
  }
  return "unknown";
}

Result<SyntheticDataset> GenerateSyntheticDataset(const SyntheticSpec& spec) {
  if (spec.num_rows == 0) {
    return Status::InvalidArgument("num_rows must be positive");
  }
  Rng rng(spec.seed);
  SyntheticDataset dataset;
  dataset.spec = spec;

  switch (spec.distribution) {
    case SyntheticDistribution::kTrinomial: {
      JOINMI_ASSIGN_OR_RETURN(
          TrinomialParams params,
          SampleTrinomialParams(spec.m, rng, spec.min_mi, spec.max_mi));
      dataset.true_mi = params.true_mi;
      std::vector<int64_t> xs, ys;
      SampleTrinomial(params, spec.num_rows, rng, &xs, &ys);
      dataset.xs.reserve(xs.size());
      dataset.ys.reserve(ys.size());
      for (int64_t x : xs) dataset.xs.emplace_back(x);
      for (int64_t y : ys) dataset.ys.emplace_back(y);
      break;
    }
    case SyntheticDistribution::kCDUnif: {
      dataset.true_mi = CDUnifExactMI(spec.m);
      std::vector<int64_t> xs;
      std::vector<double> ys;
      JOINMI_RETURN_NOT_OK(SampleCDUnif(spec.m, spec.num_rows, rng, &xs, &ys));
      dataset.xs.reserve(xs.size());
      dataset.ys.reserve(ys.size());
      for (int64_t x : xs) dataset.xs.emplace_back(x);
      for (double y : ys) dataset.ys.emplace_back(y);
      break;
    }
  }
  JOINMI_ASSIGN_OR_RETURN(
      dataset.tables,
      DecomposeIntoTables(dataset.xs, dataset.ys, spec.key_scheme));
  return dataset;
}

}  // namespace joinmi
