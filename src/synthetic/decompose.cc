#include "src/synthetic/decompose.h"

#include <unordered_set>

namespace joinmi {

const char* KeySchemeToString(KeyScheme scheme) {
  switch (scheme) {
    case KeyScheme::kKeyInd:
      return "KeyInd";
    case KeyScheme::kKeyDep:
      return "KeyDep";
  }
  return "unknown";
}

Result<DecomposedTables> DecomposeIntoTables(const std::vector<Value>& xs,
                                             const std::vector<Value>& ys,
                                             KeyScheme scheme) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("decomposition inputs must be paired");
  }
  if (xs.empty()) {
    return Status::InvalidArgument("cannot decompose an empty sample");
  }
  JOINMI_ASSIGN_OR_RETURN(auto y_col, Column::FromValues(ys));

  DecomposedTables out;
  if (scheme == KeyScheme::kKeyInd) {
    // Sequential unique keys: row i of both tables carries key i.
    std::vector<int64_t> keys(xs.size());
    for (size_t i = 0; i < xs.size(); ++i) keys[i] = static_cast<int64_t>(i);
    auto train_keys = Column::MakeInt64(keys);
    auto cand_keys = Column::MakeInt64(std::move(keys));
    JOINMI_ASSIGN_OR_RETURN(auto x_col, Column::FromValues(xs));
    JOINMI_ASSIGN_OR_RETURN(
        out.train,
        Table::FromColumns({{kKeyColumn, train_keys}, {kTargetColumn, y_col}}));
    JOINMI_ASSIGN_OR_RETURN(
        out.cand,
        Table::FromColumns({{kKeyColumn, cand_keys}, {kFeatureColumn, x_col}}));
    return out;
  }

  // KeyDep: key == feature value. Continuous X would make every key unique
  // and the scheme degenerate, so only discrete X is allowed.
  for (const Value& x : xs) {
    if (x.is_double()) {
      return Status::InvalidArgument(
          "KeyDep requires discrete X (continuous values make keys unique)");
    }
  }
  JOINMI_ASSIGN_OR_RETURN(auto train_keys, Column::FromValues(xs));
  // Candidate table: one row per distinct X value mapping k -> k.
  std::vector<Value> distinct;
  std::unordered_set<uint64_t> seen;
  for (const Value& x : xs) {
    if (seen.insert(x.Hash()).second) distinct.push_back(x);
  }
  JOINMI_ASSIGN_OR_RETURN(auto cand_keys, Column::FromValues(distinct));
  JOINMI_ASSIGN_OR_RETURN(auto cand_values, Column::FromValues(distinct));
  JOINMI_ASSIGN_OR_RETURN(
      out.train,
      Table::FromColumns({{kKeyColumn, train_keys}, {kTargetColumn, y_col}}));
  JOINMI_ASSIGN_OR_RETURN(
      out.cand, Table::FromColumns({{kKeyColumn, cand_keys},
                                    {kFeatureColumn, cand_values}}));
  return out;
}

}  // namespace joinmi
