#include "src/synthetic/trinomial.h"

#include <cmath>

#include "src/common/math.h"

namespace joinmi {

double BinomialEntropy(uint64_t m, double p) {
  if (p <= 0.0 || p >= 1.0 || m == 0) return 0.0;
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  double h = 0.0;
  for (uint64_t i = 0; i <= m; ++i) {
    const double log_prob = LogBinomial(m, i) +
                            static_cast<double>(i) * log_p +
                            static_cast<double>(m - i) * log_q;
    h -= std::exp(log_prob) * log_prob;
  }
  return h;
}

double TrinomialJointEntropy(uint64_t m, double p1, double p2) {
  const double p3 = 1.0 - p1 - p2;
  if (p1 <= 0.0 || p2 <= 0.0 || p3 <= 0.0 || m == 0) return 0.0;
  const double log_p1 = std::log(p1);
  const double log_p2 = std::log(p2);
  const double log_p3 = std::log(p3);
  const double log_m_fact = LogFactorial(m);
  double h = 0.0;
  for (uint64_t i = 0; i <= m; ++i) {
    for (uint64_t j = 0; j + i <= m; ++j) {
      const uint64_t rest = m - i - j;
      const double log_prob = log_m_fact - LogFactorial(i) -
                              LogFactorial(j) - LogFactorial(rest) +
                              static_cast<double>(i) * log_p1 +
                              static_cast<double>(j) * log_p2 +
                              static_cast<double>(rest) * log_p3;
      // Skip numerically negligible cells to keep the double sum fast for
      // m = 1024 (they contribute < 1e-300 each).
      if (log_prob < -700.0) continue;
      h -= std::exp(log_prob) * log_prob;
    }
  }
  return h;
}

double TrinomialExactMI(uint64_t m, double p1, double p2) {
  const double mi = BinomialEntropy(m, p1) + BinomialEntropy(m, p2) -
                    TrinomialJointEntropy(m, p1, p2);
  return mi < 0.0 ? 0.0 : mi;
}

Result<TrinomialParams> SampleTrinomialParams(uint64_t trials, Rng& rng,
                                              double min_mi, double max_mi) {
  if (trials == 0) return Status::InvalidArgument("trials must be positive");
  constexpr int kMaxAttempts = 10000;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const double target = rng.Uniform(min_mi, max_mi);
    const double r = CorrelationForMI(target);
    const double p1 = rng.Uniform(0.15, 0.85);
    // r^2 = p1 p2 / ((1 - p1)(1 - p2))  =>  p2 = t / (1 + t),
    // t = r^2 (1 - p1) / p1.
    const double t = r * r * (1.0 - p1) / p1;
    const double p2 = t / (1.0 + t);
    if (p2 < 0.15 || p2 > 0.85) continue;
    if (p1 + p2 >= 0.999) continue;  // keep the third outcome probability > 0
    TrinomialParams params;
    params.trials = trials;
    params.p1 = p1;
    params.p2 = p2;
    params.target_mi = target;
    params.true_mi = TrinomialExactMI(trials, p1, p2);
    return params;
  }
  return Status::UnknownError(
      "could not find trinomial parameters in range; relax the MI bounds");
}

void SampleTrinomial(const TrinomialParams& params, size_t n, Rng& rng,
                     std::vector<int64_t>* xs, std::vector<int64_t>* ys) {
  xs->clear();
  ys->clear();
  xs->reserve(n);
  ys->reserve(n);
  const double cond_p = params.p2 / (1.0 - params.p1);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t x = rng.Binomial(params.trials, params.p1);
    const uint64_t y = rng.Binomial(params.trials - x, cond_p);
    xs->push_back(static_cast<int64_t>(x));
    ys->push_back(static_cast<int64_t>(y));
  }
}

}  // namespace joinmi
