// Trinomial synthetic data (Section V-A): (X, Y) are the first two counts
// of Mult(m, <p1, p2>). Parameters are selected by inverting the bivariate-
// normal MI approximation (CLT) to hit a target MI, while the reported
// "analytical MI" uses the exact (open-form) trinomial entropies.

#ifndef JOINMI_SYNTHETIC_TRINOMIAL_H_
#define JOINMI_SYNTHETIC_TRINOMIAL_H_

#include <cstdint>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"

namespace joinmi {

/// \brief A fully specified trinomial generator.
struct TrinomialParams {
  uint64_t trials = 0;  ///< m: number of trials ~ number of distinct values
  double p1 = 0.0;
  double p2 = 0.0;
  /// Exact MI of (X, Y) in nats, from the open-form entropy formulas.
  double true_mi = 0.0;
  /// The MI target used during parameter selection (before the exact
  /// computation); kept for diagnostics.
  double target_mi = 0.0;
};

/// \brief Exact entropy of Binomial(m, p) by direct summation (log-space).
double BinomialEntropy(uint64_t m, double p);

/// \brief Exact joint entropy of the first two trinomial counts:
/// sum over {(i, j) : i + j <= m} of -p(i,j) log p(i,j).
double TrinomialJointEntropy(uint64_t m, double p1, double p2);

/// \brief Exact MI = H(X) + H(Y) - H(X, Y) for the trinomial.
double TrinomialExactMI(uint64_t m, double p1, double p2);

/// \brief The paper's parameter-selection loop: draw target MI ~
/// Unif(min_mi, max_mi), convert to |r| = sqrt(1 - exp(-2 I)), draw
/// p1 ~ Unif(0.15, 0.85), and solve r^2 = p1 p2 / ((1-p1)(1-p2)) for p2;
/// retry until p2 lands in [0.15, 0.85].
Result<TrinomialParams> SampleTrinomialParams(uint64_t trials, Rng& rng,
                                              double min_mi = 0.0,
                                              double max_mi = 3.5);

/// \brief Draws n i.i.d. (X, Y) pairs via binomial conditioning:
/// X ~ Bin(m, p1), Y | X ~ Bin(m - X, p2 / (1 - p1)).
void SampleTrinomial(const TrinomialParams& params, size_t n, Rng& rng,
                     std::vector<int64_t>* xs, std::vector<int64_t>* ys);

}  // namespace joinmi

#endif  // JOINMI_SYNTHETIC_TRINOMIAL_H_
