// CDUnif synthetic data (Section V-A, after Gao et al. 2017): X is uniform
// over {0, ..., m-1}; Y | X is uniform over [X, X+2]. The overlap of
// adjacent conditional supports gives the closed-form MI
//   I(X, Y) = log(m) - (m - 1) log(2) / m.

#ifndef JOINMI_SYNTHETIC_CDUNIF_H_
#define JOINMI_SYNTHETIC_CDUNIF_H_

#include <cstdint>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"

namespace joinmi {

/// \brief Closed-form MI of the CDUnif(m) pair, in nats.
double CDUnifExactMI(uint64_t m);

/// \brief Draws n i.i.d. (X, Y) pairs: X discrete, Y continuous.
Status SampleCDUnif(uint64_t m, size_t n, Rng& rng, std::vector<int64_t>* xs,
                    std::vector<double>* ys);

}  // namespace joinmi

#endif  // JOINMI_SYNTHETIC_CDUNIF_H_
