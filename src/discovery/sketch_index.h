// Offline sketch index for MI-based data discovery: candidate column pairs
// are sketched once (offline), then a query table's sketch is joined against
// every indexed candidate to rank augmentations by estimated MI — the
// deployment shape motivating the paper (Sections I, III, V-C).
//
// The index is the persisted backbone of that deployment: candidates carry
// prepared probe maps so repeated queries are pure hash lookups, queries fan
// out across a thread pool with a deterministic merge, and the whole index
// (config + provenance + sketches) serializes to a versioned binary format
// so it can be built offline and served after a restart.
//
// On-disk format (little-endian, version-tagged):
//   magic "JMIX" | u32 version
//   | config: u8 sketch_method, u64 sketch_capacity, u32 hash_seed,
//     u64 sampling_seed, u8 aggregation, u8 has_estimator, u8 estimator,
//     i32 mi_k, f64 laplace_alpha, f64 perturb_sigma, u64 perturb_seed,
//     u64 min_join_size
//   | u64 candidate_count
//   | per candidate: table_name, key_column, value_column (u32 length +
//     bytes each), then u32 length + serialized sketch (serialize.h format)

#ifndef JOINMI_DISCOVERY_SKETCH_INDEX_H_
#define JOINMI_DISCOVERY_SKETCH_INDEX_H_

#include <optional>
#include <string>
#include <vector>

#include "src/core/join_mi.h"
#include "src/discovery/repository.h"
#include "src/discovery/searchable.h"
#include "src/sketch/flat_index.h"

namespace joinmi {

/// \brief One indexed candidate: provenance plus its pre-built sketch,
/// wrapped in the probe map that makes repeated queries cheap.
struct IndexedCandidate {
  ColumnPairRef ref;
  PreparedCandidateSketch prepared;

  const Sketch& sketch() const { return prepared.sketch(); }
};

/// \brief One ranked answer from a discovery query.
struct DiscoveryHit {
  ColumnPairRef ref;
  double mi = 0.0;
  size_t join_size = 0;
  MIEstimatorKind estimator = MIEstimatorKind::kMLE;
};

/// \brief Per-candidate outcomes of evaluating one query against the whole
/// index, in candidate enumeration order.
struct IndexEvaluation {
  /// estimates[i] belongs to candidates()[i]; nullopt if it was skipped or
  /// errored.
  std::vector<std::optional<JoinMIEstimate>> estimates;
  /// Candidates that produced an estimate.
  size_t num_evaluated = 0;
  /// Candidates whose sketch join fell below config.min_join_size (the
  /// paper's meaningless-estimate guard).
  size_t num_skipped = 0;
  /// Candidates that failed hard (estimator/type errors) — distinct from
  /// num_skipped so a broken index is not mistaken for small overlaps.
  size_t num_errors = 0;
};

/// \brief Sketch-per-candidate index over a repository.
class SketchIndex : public Searchable {
 public:
  explicit SketchIndex(JoinMIConfig config) : config_(std::move(config)) {}

  const JoinMIConfig& config() const { return config_; }
  size_t size() const { return candidates_.size(); }
  const std::vector<IndexedCandidate>& candidates() const {
    return candidates_;
  }

  /// \brief Sketches one candidate column pair and adds it.
  Status AddCandidate(const Table& table, const ColumnPairRef& ref);

  /// \brief Adds a pre-built candidate sketch (the deserialization path).
  /// Rejects sketches whose hash seed disagrees with the index config —
  /// they could never join a query sketched under this config.
  Status AddSketch(const ColumnPairRef& ref, Sketch sketch);

  /// \brief Indexes every extractable column pair of the repository.
  /// Column pairs that cannot be sketched (e.g. all-null) are skipped;
  /// returns the number indexed.
  Result<size_t> IndexRepository(const TableRepository& repository);

  /// \brief Evaluates the query against every candidate, fanning out on a
  /// thread pool (`num_threads` 0 = hardware concurrency, 1 = inline).
  /// Outcomes land in enumeration order, so results never depend on the
  /// thread count. Fails fast on a query/index hash-seed mismatch.
  ///
  /// Hot path: candidates are scored in strips against the flat SoA arena
  /// (one pass over the train sketch's key runs per strip, matches
  /// collected in a per-thread bump arena) instead of one prepared-sketch
  /// join per candidate. The join sample each candidate sees is
  /// byte-identical to `query.Estimate(prepared)` — same train-entry
  /// order, same values, same scoring tail — so rankings cannot differ.
  Result<IndexEvaluation> EvaluateAll(const JoinMIQuery& query,
                                      size_t num_threads = 0) const;

  /// \brief Ranks all candidates by estimated MI against the query; hits
  /// whose sketch join is smaller than config.min_join_size are dropped
  /// (the paper's meaningless-estimate guard). Ties break by join size,
  /// then by candidate ref (table, key, value), then by insertion order,
  /// so the ranking is fully deterministic — including across thread
  /// counts and for duplicated candidates.
  Result<std::vector<DiscoveryHit>> Query(const JoinMIQuery& query,
                                          size_t top_k,
                                          size_t num_threads = 0) const;

  // Searchable: the single-interface search path (search.h drives it).
  // `mode` is ignored — an unsharded index has no shard to lose.
  const JoinMIConfig& search_config() const override { return config_; }
  Result<TopKSearchResult> SearchQuery(const JoinMIQuery& query, size_t k,
                                       size_t num_threads,
                                       ShardQueryMode mode) const override;

  /// \brief The SoA probe arena backing the batched EvaluateAll path.
  const FlatSketchIndex& flat() const { return flat_; }

 private:
  JoinMIConfig config_;
  std::vector<IndexedCandidate> candidates_;
  // Mirror of candidates_ in structure-of-arrays form: all key hashes,
  // values, and probe regions packed contiguously. Built once per
  // AddSketch (never per query) and read-only afterwards.
  FlatSketchIndex flat_;
};

/// \brief Serializes the index (config, refs, sketches) to a binary string.
std::string SerializeIndex(const SketchIndex& index);

/// \brief Parses a serialized index; validates magic, version, enum tags,
/// and every embedded sketch, so corrupted inputs fail cleanly. The
/// candidate probe maps are rebuilt on load.
Result<SketchIndex> DeserializeIndex(const std::string& data);

/// \brief Writes the index to a file.
Status WriteIndexFile(const SketchIndex& index, const std::string& path);

/// \brief Reads an index from a file.
Result<SketchIndex> ReadIndexFile(const std::string& path);

}  // namespace joinmi

#endif  // JOINMI_DISCOVERY_SKETCH_INDEX_H_
