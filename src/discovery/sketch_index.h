// Offline sketch index for MI-based data discovery: candidate column pairs
// are sketched once (offline), then a query table's sketch is joined against
// every indexed candidate to rank augmentations by estimated MI — the
// deployment shape motivating the paper (Sections I and III).

#ifndef JOINMI_DISCOVERY_SKETCH_INDEX_H_
#define JOINMI_DISCOVERY_SKETCH_INDEX_H_

#include <string>
#include <vector>

#include "src/core/join_mi.h"
#include "src/discovery/repository.h"

namespace joinmi {

/// \brief One indexed candidate: provenance plus its pre-built sketch.
struct IndexedCandidate {
  ColumnPairRef ref;
  Sketch sketch;
};

/// \brief One ranked answer from a discovery query.
struct DiscoveryHit {
  ColumnPairRef ref;
  double mi = 0.0;
  size_t join_size = 0;
  MIEstimatorKind estimator = MIEstimatorKind::kMLE;
};

/// \brief Sketch-per-candidate index over a repository.
class SketchIndex {
 public:
  explicit SketchIndex(JoinMIConfig config) : config_(std::move(config)) {}

  const JoinMIConfig& config() const { return config_; }
  size_t size() const { return candidates_.size(); }
  const std::vector<IndexedCandidate>& candidates() const {
    return candidates_;
  }

  /// \brief Sketches one candidate column pair and adds it.
  Status AddCandidate(const Table& table, const ColumnPairRef& ref);

  /// \brief Indexes every extractable column pair of the repository.
  /// Column pairs that cannot be sketched (e.g. all-null) are skipped;
  /// returns the number indexed.
  Result<size_t> IndexRepository(const TableRepository& repository);

  /// \brief Ranks all candidates by estimated MI against the query; hits
  /// whose sketch join is smaller than config.min_join_size are dropped
  /// (the paper's meaningless-estimate guard). Ties break by join size.
  Result<std::vector<DiscoveryHit>> Query(const JoinMIQuery& query,
                                          size_t top_k) const;

 private:
  JoinMIConfig config_;
  std::vector<IndexedCandidate> candidates_;
};

}  // namespace joinmi

#endif  // JOINMI_DISCOVERY_SKETCH_INDEX_H_
