#include "src/discovery/replica_router.h"

#include <algorithm>
#include <fstream>
#include <utility>

namespace joinmi {

// ----------------------------------------------------------- Endpoints file

Result<std::vector<std::vector<ShardEndpoint>>> ReadShardEndpoints(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open endpoint file '" + path + "'");
  }
  std::vector<std::vector<ShardEndpoint>> shards;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    // Split on commas and whitespace; either (or both) separate replicas.
    std::vector<ShardEndpoint> replicas;
    size_t pos = 0;
    const std::string separators = " \t\r,";
    while (pos < line.size()) {
      const size_t begin = line.find_first_not_of(separators, pos);
      if (begin == std::string::npos) break;
      const size_t end = line.find_first_of(separators, begin);
      const std::string token =
          line.substr(begin, (end == std::string::npos ? line.size() : end) -
                                 begin);
      auto parsed = ParseShardEndpoint(token);
      if (!parsed.ok()) {
        return Status::InvalidArgument(
            path + ":" + std::to_string(line_no) + ": " +
            parsed.status().message());
      }
      replicas.push_back(std::move(*parsed));
      pos = end == std::string::npos ? line.size() : end;
    }
    if (replicas.empty()) continue;  // blank or comment-only line
    shards.push_back(std::move(replicas));
  }
  if (shards.empty()) {
    return Status::InvalidArgument("endpoint file '" + path +
                                   "' lists no endpoints");
  }
  return shards;
}

// The deprecated single-endpoint reader (declared in rpc_shard_client.h)
// is now a projection of the unified one — the duplicated host:port parse
// loop it used to carry is gone.
Result<std::vector<ShardEndpoint>> ReadEndpointsFile(
    const std::string& path) {
  JOINMI_ASSIGN_OR_RETURN(std::vector<std::vector<ShardEndpoint>> shards,
                          ReadShardEndpoints(path));
  std::vector<ShardEndpoint> endpoints;
  endpoints.reserve(shards.size());
  for (size_t i = 0; i < shards.size(); ++i) {
    if (shards[i].size() != 1) {
      return Status::InvalidArgument(
          path + ": shard " + std::to_string(i) + " lists " +
          std::to_string(shards[i].size()) +
          " replicas — this caller expects exactly one endpoint per "
          "shard; read replicated files with ReadShardEndpoints");
    }
    endpoints.push_back(std::move(shards[i][0]));
  }
  return endpoints;
}

// -------------------------------------------------------------- ReplicaSet

ReplicaSet::ReplicaSet(size_t num_replicas, int cooldown_ms)
    : cooldown_(std::max(0, cooldown_ms)), states_(num_replicas) {}

std::vector<size_t> ReplicaSet::PlanAttempts() {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t n = states_.size();
  std::vector<size_t> healthy;
  std::vector<size_t> cooling;
  const size_t start = n == 0 ? 0 : cursor_++ % n;
  for (size_t offset = 0; offset < n; ++offset) {
    const size_t i = (start + offset) % n;
    (states_[i].down ? cooling : healthy).push_back(i);
  }
  healthy.insert(healthy.end(), cooling.begin(), cooling.end());
  return healthy;
}

std::vector<size_t> ReplicaSet::DueForReprobe() {
  std::lock_guard<std::mutex> lock(mutex_);
  const Clock::time_point now = Clock::now();
  std::vector<size_t> due;
  for (size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].down && now >= states_[i].probe_due) {
      due.push_back(i);
      // Re-arm now, not after the probe: concurrent requests racing past
      // this window must not all spend a probe on the same dead replica.
      states_[i].probe_due = now + cooldown_;
    }
  }
  return due;
}

void ReplicaSet::MarkDown(size_t replica) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!states_[replica].down) ++mark_downs_;
  states_[replica].down = true;
  states_[replica].probe_due = Clock::now() + cooldown_;
}

uint64_t ReplicaSet::total_mark_downs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return mark_downs_;
}

void ReplicaSet::MarkHealthy(size_t replica) {
  std::lock_guard<std::mutex> lock(mutex_);
  states_[replica].down = false;
}

bool ReplicaSet::IsDown(size_t replica) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return states_[replica].down;
}

// ------------------------------------------------------ ReplicaShardClient

Result<std::unique_ptr<ReplicaShardClient>> ReplicaShardClient::Create(
    std::vector<ShardEndpoint> replicas, JoinMIConfig expected_config,
    uint64_t expected_candidates, ReplicaRouterOptions options) {
  if (replicas.empty()) {
    return Status::InvalidArgument(
        "a replicated shard client needs at least one replica endpoint");
  }
  JOINMI_RETURN_NOT_OK(expected_config.Validate());
  std::vector<std::unique_ptr<RpcShardClient>> clients;
  clients.reserve(replicas.size());
  for (ShardEndpoint& endpoint : replicas) {
    // RpcShardClient::Create already embodies the tolerate-outage /
    // fail-on-mismatch split, per replica.
    JOINMI_ASSIGN_OR_RETURN(
        std::unique_ptr<RpcShardClient> client,
        RpcShardClient::Create(std::move(endpoint), expected_config,
                               expected_candidates, options.rpc));
    clients.push_back(std::move(client));
  }
  return std::unique_ptr<ReplicaShardClient>(new ReplicaShardClient(
      std::move(clients), std::move(expected_config), expected_candidates,
      options));
}

Result<std::vector<ShardSearchResult>> ReplicaShardClient::FailoverLoop(
    const std::function<Result<std::vector<ShardSearchResult>>(
        const RpcShardClient&, bool*)>& attempt) const {
  // Cooldown-expired replicas get one cheap liveness probe before the
  // request plans its attempts — a recovered replica rejoins the rotation
  // in time to serve this very query. A failed probe re-arms the cooldown
  // from the probe's COMPLETION (MarkDown), not its start: against a
  // blackholed host a probe blocks for the whole connect timeout, and
  // re-arming only at the start would let every later query find the
  // cooldown already expired and stall on a probe of its own.
  for (size_t i : set_.DueForReprobe()) {
    if (replicas_[i]->Health().ok()) {
      set_.MarkHealthy(i);
    } else {
      set_.MarkDown(i);
    }
  }
  Status last = Status::IOError("no replica attempted");
  for (size_t i : set_.PlanAttempts()) {
    bool reached_wire = false;
    auto result = attempt(*replicas_[i], &reached_wire);
    if (result.ok()) {
      set_.MarkHealthy(i);
      return result;
    }
    if (!result.status().IsIOError()) {
      // Deterministic (config drift, shard-side InvalidArgument, ...):
      // every replica would answer identically, so failing over would
      // only mask the real error.
      return result.status();
    }
    set_.MarkDown(i);
    if (reached_wire) {
      // The replica may be executing the request right now. Re-sending it
      // to a twin could run it twice; the caller gets the error and
      // decides (searches are read-only today, but this layer does not
      // bake that in).
      return Status::IOError(
          "request to replica " + replicas_[i]->endpoint().ToString() +
          " reached the wire and then failed (not failed over): " +
          result.status().message());
    }
    last = result.status();
  }
  std::string endpoints;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (i > 0) endpoints += ", ";
    endpoints += replicas_[i]->endpoint().ToString();
  }
  return Status::IOError(
      "all " + std::to_string(replicas_.size()) + " replicas failed (" +
      endpoints + "); last error: " + last.message());
}

Result<ShardSearchResult> ReplicaShardClient::Search(
    const JoinMIQuery& query, size_t k, size_t num_threads) const {
  std::vector<ShardSearchVariant> variants(1);
  variants[0].k = k;
  variants[0].min_join_size = query.config().min_join_size;
  JOINMI_ASSIGN_OR_RETURN(
      std::vector<ShardSearchResult> results,
      FailoverLoop([&](const RpcShardClient& replica, bool* reached_wire) {
        return replica.SearchVariants(query, variants, num_threads,
                                      reached_wire);
      }));
  return std::move(results[0]);
}

Result<std::vector<ShardSearchResult>> ReplicaShardClient::SearchVariants(
    const JoinMIQuery& query,
    const std::vector<ShardSearchVariant>& variants,
    size_t num_threads) const {
  if (variants.empty()) return std::vector<ShardSearchResult>{};
  return FailoverLoop(
      [&](const RpcShardClient& replica, bool* reached_wire) {
        return replica.SearchVariants(query, variants, num_threads,
                                      reached_wire);
      });
}

Result<rpc::HealthResponse> ReplicaShardClient::Health() const {
  Status last = Status::IOError("no replica attempted");
  for (size_t i : set_.PlanAttempts()) {
    auto health = replicas_[i]->Health();
    if (health.ok()) {
      set_.MarkHealthy(i);
      return health;
    }
    set_.MarkDown(i);
    last = health.status();
  }
  return last;
}

ShardClientFactory ReplicaShardClient::Factory(
    std::vector<std::vector<ShardEndpoint>> replica_endpoints,
    ReplicaRouterOptions options) {
  return [replica_endpoints = std::move(replica_endpoints), options](
             const ShardManifest& manifest, size_t shard,
             const std::string& manifest_dir)
             -> Result<std::unique_ptr<ShardClient>> {
    (void)manifest_dir;  // remote shards have no local files
    JOINMI_RETURN_NOT_OK(
        ValidateServingManifest(manifest, replica_endpoints.size()));
    JOINMI_ASSIGN_OR_RETURN(
        std::unique_ptr<ReplicaShardClient> client,
        ReplicaShardClient::Create(replica_endpoints[shard],
                                   *manifest.config,
                                   manifest.shards[shard].candidate_count,
                                   options));
    return std::unique_ptr<ShardClient>(std::move(client));
  };
}

}  // namespace joinmi
