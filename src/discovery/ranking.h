// Ranking-quality metrics for sketch evaluation on table collections
// (Table II): how well MI estimates from sketches agree with — and rank
// like — MI estimates from the fully materialized joins.

#ifndef JOINMI_DISCOVERY_RANKING_H_
#define JOINMI_DISCOVERY_RANKING_H_

#include <cstddef>
#include <vector>

#include "src/common/status.h"

namespace joinmi {

/// \brief Agreement between full-join and sketch MI estimates over a
/// collection of table pairs.
struct RankingComparison {
  size_t count = 0;         ///< pairs compared
  double mse = 0.0;         ///< mean squared estimate error
  double rmse = 0.0;
  double spearman = 0.0;    ///< rank correlation of the two estimate lists
  double pearson = 0.0;
};

/// \brief Computes all agreement metrics for paired estimate lists.
Result<RankingComparison> CompareEstimates(
    const std::vector<double>& full_join_mi,
    const std::vector<double>& sketch_mi);

/// \brief Fraction of the reference top-k that also appears in the
/// estimate's top-k (a.k.a. precision@k under a ground-truth ranking).
Result<double> TopKOverlap(const std::vector<double>& reference,
                           const std::vector<double>& estimate, size_t k);

/// \brief Indices of the k largest scores, descending (ties by index).
std::vector<size_t> TopKIndices(const std::vector<double>& scores, size_t k);

}  // namespace joinmi

#endif  // JOINMI_DISCOVERY_RANKING_H_
