#include "src/discovery/repository.h"

namespace joinmi {

Status TableRepository::AddTable(const std::string& name,
                                 std::shared_ptr<Table> table) {
  if (table == nullptr) {
    return Status::InvalidArgument("cannot register a null table");
  }
  if (!tables_.emplace(name, std::move(table)).second) {
    return Status::AlreadyExists("table '" + name + "' already registered");
  }
  return Status::OK();
}

Result<std::shared_ptr<Table>> TableRepository::GetTable(
    const std::string& name) const {
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::KeyError("no table named '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> TableRepository::table_names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) {
    (void)table;
    names.push_back(name);
  }
  return names;
}

std::vector<ColumnPairRef> TableRepository::ExtractColumnPairs() const {
  std::vector<ColumnPairRef> pairs;
  for (const auto& [name, table] : tables_) {
    const Schema& schema = table->schema();
    for (size_t k = 0; k < schema.num_fields(); ++k) {
      if (schema.field(k).type != DataType::kString) continue;
      for (size_t v = 0; v < schema.num_fields(); ++v) {
        if (v == k) continue;
        const DataType vt = schema.field(v).type;
        if (vt != DataType::kString && !IsNumeric(vt)) continue;
        pairs.push_back(
            ColumnPairRef{name, schema.field(k).name, schema.field(v).name});
      }
    }
  }
  return pairs;
}

}  // namespace joinmi
