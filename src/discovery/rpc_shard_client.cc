#include "src/discovery/rpc_shard_client.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "src/net/frame.h"
#include "src/sketch/serialize.h"

namespace joinmi {

// ---------------------------------------------------------- Endpoint file

Result<ShardEndpoint> ParseShardEndpoint(const std::string& spec) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    return Status::InvalidArgument("endpoint '" + spec +
                                   "' is not host:port");
  }
  const std::string port_str = spec.substr(colon + 1);
  long port = 0;
  for (char c : port_str) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("endpoint '" + spec +
                                     "' has a non-numeric port");
    }
    port = port * 10 + (c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("endpoint '" + spec +
                                     "' port is out of range");
    }
  }
  if (port < 1) {
    return Status::InvalidArgument("endpoint '" + spec +
                                   "' port is out of range");
  }
  ShardEndpoint endpoint;
  endpoint.host = spec.substr(0, colon);
  endpoint.port = static_cast<uint16_t>(port);
  return endpoint;
}

Result<std::vector<ShardEndpoint>> ReadEndpointsFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open endpoint file '" + path + "'");
  }
  std::vector<ShardEndpoint> endpoints;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Trim whitespace and drop comments.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const size_t end = line.find_last_not_of(" \t\r");
    auto parsed = ParseShardEndpoint(line.substr(begin, end - begin + 1));
    if (!parsed.ok()) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_no) + ": " +
          parsed.status().message());
    }
    endpoints.push_back(std::move(*parsed));
  }
  if (endpoints.empty()) {
    return Status::InvalidArgument("endpoint file '" + path +
                                   "' lists no endpoints");
  }
  return endpoints;
}

// --------------------------------------------------------- RpcShardClient

Result<std::unique_ptr<RpcShardClient>> RpcShardClient::Create(
    ShardEndpoint endpoint, JoinMIConfig expected_config,
    uint64_t expected_candidates, RpcClientOptions options) {
  JOINMI_RETURN_NOT_OK(expected_config.Validate());
  std::unique_ptr<RpcShardClient> client(new RpcShardClient(
      std::move(endpoint), std::move(expected_config), expected_candidates,
      options));
  // Eager dial: a reachable-but-wrong server (handshake mismatch, an
  // InvalidArgument) is a deployment error and fails Create; an
  // unreachable one (IOError) is an outage the router must survive, so
  // the client is returned disconnected and re-dials per request.
  std::lock_guard<std::mutex> lock(client->mutex_);
  const Status status = client->EnsureConnectedLocked();
  if (!status.ok() && status.IsInvalidArgument()) {
    return status;
  }
  return client;
}

Status RpcShardClient::EnsureConnectedLocked() const {
  if (socket_.valid()) {
    // A cached connection whose server has since restarted (or died)
    // accepts writes but can never answer; probe before reuse so the
    // failure lands here — before any request byte — where re-dialing
    // is free, instead of at RecvFrame where retry is forbidden.
    if (!socket_.StaleForReuse()) return Status::OK();
    socket_.Close();
  }
  auto connected = net::Socket::Connect(endpoint_.host, endpoint_.port,
                                        options_.connect_timeout_ms);
  if (!connected.ok()) {
    return Status::IOError("shard server " + endpoint_.ToString() +
                           " is unreachable: " +
                           connected.status().message());
  }
  net::Socket socket = std::move(*connected);
  JOINMI_RETURN_NOT_OK(
      socket.SetTimeouts(options_.io_timeout_ms, options_.io_timeout_ms));
  JOINMI_RETURN_NOT_OK(
      net::SendFrame(&socket, net::FrameType::kHandshakeRequest, ""));
  JOINMI_ASSIGN_OR_RETURN(net::Frame frame, net::RecvFrame(&socket));
  if (frame.type == net::FrameType::kError) {
    Status server_error;
    JOINMI_RETURN_NOT_OK(
        rpc::DecodeErrorPayload(frame.payload, &server_error));
    return server_error;
  }
  if (frame.type != net::FrameType::kHandshakeResponse) {
    return Status::IOError("shard server " + endpoint_.ToString() +
                           " answered the handshake with a " +
                           std::string(net::FrameTypeToString(frame.type)) +
                           " frame");
  }
  JOINMI_ASSIGN_OR_RETURN(rpc::HandshakeResponse handshake,
                          rpc::DecodeHandshakeResponse(frame.payload));
  // The operator== agreement: a server whose shard was built under any
  // other config can never coordinate with this manifest's queries.
  if (handshake.config != config_) {
    return Status::InvalidArgument(
        "shard server " + endpoint_.ToString() +
        " serves a shard built under a different JoinMIConfig (" +
        handshake.config.ToString() + ") than the manifest expects (" +
        config_.ToString() + ")");
  }
  if (handshake.num_candidates != num_candidates_) {
    return Status::InvalidArgument(
        "shard server " + endpoint_.ToString() + " holds " +
        std::to_string(handshake.num_candidates) +
        " candidates but the manifest records " +
        std::to_string(num_candidates_));
  }
  socket_ = std::move(socket);
  return Status::OK();
}

Result<ShardSearchResult> RpcShardClient::Search(const JoinMIQuery& query,
                                                 size_t k,
                                                 size_t num_threads) const {
  (void)num_threads;  // evaluation parallelism belongs to the server
  if (k == 0) {
    return Status::InvalidArgument("shard search requires k >= 1");
  }
  // Everything except min_join_size must match the shard's config: those
  // fields change estimates, and only min_join_size travels with the
  // request. Rejecting here keeps "RPC == local, byte for byte" honest.
  JoinMIConfig comparable = config_;
  comparable.min_join_size = query.config().min_join_size;
  if (query.config() != comparable) {
    return Status::InvalidArgument(
        "query config (" + query.config().ToString() +
        ") disagrees with shard server " + endpoint_.ToString() +
        "'s config (" + config_.ToString() +
        ") beyond min_join_size — the shard would answer under the wrong "
        "configuration");
  }
  rpc::SearchRequest request;
  // Cached on the query: every shard of a fan-out ships the same bytes.
  request.train_sketch = query.SerializedTrainSketch();
  request.k = k;
  request.min_join_size = query.config().min_join_size;
  const std::string payload = rpc::EncodeSearchRequest(request);

  std::lock_guard<std::mutex> lock(mutex_);
  Status last = Status::IOError("no attempt made");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    Status status = EnsureConnectedLocked();
    if (!status.ok()) {
      // Nothing of this request reached the wire; retrying is free.
      socket_.Close();
      last = std::move(status);
      continue;
    }
    size_t bytes_written = 0;
    status = net::SendFrame(&socket_, net::FrameType::kSearchRequest,
                            payload, &bytes_written);
    if (!status.ok()) {
      socket_.Close();
      if (bytes_written == 0) {
        // A cached connection the server already closed fails exactly
        // here with zero bytes out — the classic reused-connection race.
        // Still provably un-sent, so eligible for another attempt.
        last = std::move(status);
        continue;
      }
      return Status::IOError("request to shard server " +
                             endpoint_.ToString() +
                             " failed after a partial write (not retried): " +
                             status.message());
    }
    auto frame = net::RecvFrame(&socket_);
    if (!frame.ok()) {
      // The request is on the wire; the server may have executed it.
      socket_.Close();
      return Status::IOError("no response from shard server " +
                             endpoint_.ToString() + " (not retried): " +
                             frame.status().message());
    }
    if (frame->type == net::FrameType::kError) {
      // Frame boundaries are intact; the connection stays usable.
      Status server_error;
      JOINMI_RETURN_NOT_OK(
          rpc::DecodeErrorPayload(frame->payload, &server_error));
      return server_error;
    }
    if (frame->type != net::FrameType::kSearchResponse) {
      socket_.Close();
      return Status::IOError(
          "shard server " + endpoint_.ToString() +
          " answered a search with a " +
          std::string(net::FrameTypeToString(frame->type)) + " frame");
    }
    auto response = rpc::DecodeSearchResponse(frame->payload);
    if (!response.ok()) {
      socket_.Close();
      return response.status();
    }
    if (!response->status.ok()) {
      return response->status;
    }
    return std::move(response->result);
  }
  return last;
}

Result<rpc::HealthResponse> RpcShardClient::Health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Status status = EnsureConnectedLocked();
  if (!status.ok()) {
    socket_.Close();
    return status;
  }
  status = net::SendFrame(&socket_, net::FrameType::kHealthRequest, "");
  if (!status.ok()) {
    socket_.Close();
    return status;
  }
  auto frame = net::RecvFrame(&socket_);
  if (!frame.ok()) {
    socket_.Close();
    return frame.status();
  }
  if (frame->type == net::FrameType::kError) {
    Status server_error;
    JOINMI_RETURN_NOT_OK(
        rpc::DecodeErrorPayload(frame->payload, &server_error));
    return server_error;
  }
  if (frame->type != net::FrameType::kHealthResponse) {
    socket_.Close();
    return Status::IOError(
        "shard server " + endpoint_.ToString() +
        " answered a health probe with a " +
        std::string(net::FrameTypeToString(frame->type)) + " frame");
  }
  auto response = rpc::DecodeHealthResponse(frame->payload);
  if (!response.ok()) {
    socket_.Close();
    return response.status();
  }
  return *response;
}

ShardClientFactory RpcShardClient::Factory(
    std::vector<ShardEndpoint> endpoints, RpcClientOptions options) {
  return [endpoints = std::move(endpoints), options](
             const ShardManifest& manifest, size_t shard,
             const std::string& manifest_dir)
             -> Result<std::unique_ptr<ShardClient>> {
    (void)manifest_dir;  // remote shards have no local files
    if (!manifest.config.has_value()) {
      return Status::InvalidArgument(
          "manifest has no embedded JoinMIConfig (legacy v1 format) — "
          "remote serving needs it to sketch queries; repartition with "
          "the current build_shards");
    }
    if (endpoints.size() != manifest.shards.size()) {
      return Status::InvalidArgument(
          "manifest names " + std::to_string(manifest.shards.size()) +
          " shards but " + std::to_string(endpoints.size()) +
          " endpoints were provided");
    }
    JOINMI_ASSIGN_OR_RETURN(
        std::unique_ptr<RpcShardClient> client,
        RpcShardClient::Create(endpoints[shard], *manifest.config,
                               manifest.shards[shard].candidate_count,
                               options));
    return std::unique_ptr<ShardClient>(std::move(client));
  };
}

}  // namespace joinmi
