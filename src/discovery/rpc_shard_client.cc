#include "src/discovery/rpc_shard_client.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/net/frame.h"
#include "src/sketch/serialize.h"

namespace joinmi {

// ---------------------------------------------------------- Endpoint file

Result<ShardEndpoint> ParseShardEndpoint(const std::string& spec) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    return Status::InvalidArgument("endpoint '" + spec +
                                   "' is not host:port");
  }
  // A space or comma means several endpoints ran together — most likely a
  // v2 replica line fed to a single-endpoint parser. Reject instead of
  // swallowing the junk into the host name (rfind would happily treat
  // "a:1 b" as the host of ":2").
  if (spec.find_first_of(" \t,") != std::string::npos) {
    return Status::InvalidArgument(
        "endpoint '" + spec +
        "' contains whitespace or a comma — one host:port expected");
  }
  const std::string port_str = spec.substr(colon + 1);
  long port = 0;
  for (char c : port_str) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("endpoint '" + spec +
                                     "' has a non-numeric port");
    }
    port = port * 10 + (c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("endpoint '" + spec +
                                     "' port is out of range");
    }
  }
  if (port < 1) {
    return Status::InvalidArgument("endpoint '" + spec +
                                   "' port is out of range");
  }
  ShardEndpoint endpoint;
  endpoint.host = spec.substr(0, colon);
  endpoint.port = static_cast<uint16_t>(port);
  return endpoint;
}

// ReadEndpointsFile is now a deprecated projection of ReadShardEndpoints;
// both live in replica_router.cc so the parse loop exists exactly once.

Status ValidateServingManifest(const ShardManifest& manifest,
                               size_t num_entries) {
  if (!manifest.config.has_value()) {
    return Status::InvalidArgument(
        "manifest has no embedded JoinMIConfig (legacy v1 format) — "
        "remote serving needs it to sketch queries; repartition with "
        "the current build_shards");
  }
  if (num_entries != manifest.shards.size()) {
    return Status::InvalidArgument(
        "manifest names " + std::to_string(manifest.shards.size()) +
        " shards but " + std::to_string(num_entries) +
        " shard endpoint entries were provided");
  }
  return Status::OK();
}

// --------------------------------------------------------- RpcShardClient

RpcShardClient::RpcShardClient(ShardEndpoint endpoint,
                               JoinMIConfig expected_config,
                               uint64_t expected_candidates,
                               RpcClientOptions options)
    : endpoint_(std::move(endpoint)),
      config_(std::move(expected_config)),
      num_candidates_(expected_candidates),
      options_(options) {
  net::ConnPoolOptions pool_options;
  pool_options.max_connections = options_.pool_size;
  // The dialer runs the full handshake, so every connection the pool ever
  // hands out has already proven it serves this manifest entry.
  pool_ = std::make_unique<net::ConnPool>(
      [this] { return DialAndHandshake(); }, pool_options);
  channels_ = std::make_unique<rpc::ChannelSet>(
      [this]() -> Result<std::shared_ptr<rpc::Channel>> {
        JOINMI_ASSIGN_OR_RETURN(net::ConnPool::Lease lease,
                                pool_->Acquire());
        // The Acquire either reused a handshaken connection or dialed a
        // fresh one — either way server_version_ reflects this server.
        uint32_t version = server_version_.load();
        if (version == 0) version = 1;
        return std::make_shared<rpc::Channel>(std::move(lease), version,
                                              options_.io_timeout_ms,
                                              &pipeline_hwm_);
      },
      options_.pool_size);
}

RpcShardClient::~RpcShardClient() {
  channels_->Close();
  pool_->Close();
}

Result<std::unique_ptr<RpcShardClient>> RpcShardClient::Create(
    ShardEndpoint endpoint, JoinMIConfig expected_config,
    uint64_t expected_candidates, RpcClientOptions options) {
  JOINMI_RETURN_NOT_OK(expected_config.Validate());
  std::unique_ptr<RpcShardClient> client(new RpcShardClient(
      std::move(endpoint), std::move(expected_config), expected_candidates,
      options));
  // Eager dial: a reachable-but-wrong server (handshake mismatch, an
  // InvalidArgument) is a deployment error and fails Create; an
  // unreachable one (IOError) is an outage the router must survive, so
  // the client is returned disconnected and re-dials per request. On
  // success the lease's destructor parks the verified connection in the
  // pool, where the first channel adopts it.
  auto lease = client->pool_->Acquire();
  if (!lease.ok() && lease.status().IsInvalidArgument()) {
    return lease.status();
  }
  return client;
}

Result<net::Socket> RpcShardClient::DialAndHandshake() const {
  auto connected = net::Socket::Connect(endpoint_.host, endpoint_.port,
                                        options_.connect_timeout_ms);
  if (!connected.ok()) {
    return Status::IOError("shard server " + endpoint_.ToString() +
                           " is unreachable: " +
                           connected.status().message());
  }
  net::Socket socket = std::move(*connected);
  JOINMI_RETURN_NOT_OK(
      socket.SetTimeouts(options_.io_timeout_ms, options_.io_timeout_ms));
  rpc::HandshakeRequest hello;
  hello.max_version = std::min<uint32_t>(
      std::max<uint32_t>(options_.max_protocol_version, 1),
      net::kProtocolVersion);
  // The handshake frame itself is always v1 — it must parse on any
  // server; the versions only diverge after both sides agree.
  JOINMI_RETURN_NOT_OK(net::SendFrame(&socket,
                                      net::FrameType::kHandshakeRequest,
                                      rpc::EncodeHandshakeRequest(hello)));
  JOINMI_ASSIGN_OR_RETURN(net::Frame frame, net::RecvFrame(&socket));
  if (frame.type == net::FrameType::kError) {
    Status server_error;
    JOINMI_RETURN_NOT_OK(
        rpc::DecodeErrorPayload(frame.payload, &server_error));
    return server_error;
  }
  if (frame.type != net::FrameType::kHandshakeResponse) {
    return Status::IOError("shard server " + endpoint_.ToString() +
                           " answered the handshake with a " +
                           std::string(net::FrameTypeToString(frame.type)) +
                           " frame");
  }
  JOINMI_ASSIGN_OR_RETURN(rpc::HandshakeResponse handshake,
                          rpc::DecodeHandshakeResponse(frame.payload));
  // The operator== agreement: a server whose shard was built under any
  // other config can never coordinate with this manifest's queries.
  if (handshake.config != config_) {
    return Status::InvalidArgument(
        "shard server " + endpoint_.ToString() +
        " serves a shard built under a different JoinMIConfig (" +
        handshake.config.ToString() + ") than the manifest expects (" +
        config_.ToString() + ")");
  }
  if (handshake.num_candidates != num_candidates_) {
    return Status::InvalidArgument(
        "shard server " + endpoint_.ToString() + " holds " +
        std::to_string(handshake.num_candidates) +
        " candidates but the manifest records " +
        std::to_string(num_candidates_));
  }
  // Belt and braces: never speak above what we offered, whatever the
  // server claims.
  server_version_.store(
      std::min<uint32_t>(handshake.protocol_version, hello.max_version));
  return socket;
}

Result<ShardSearchResult> RpcShardClient::Search(const JoinMIQuery& query,
                                                 size_t k,
                                                 size_t num_threads) const {
  return Search(query, k, num_threads, nullptr);
}

Result<ShardSearchResult> RpcShardClient::Search(const JoinMIQuery& query,
                                                 size_t k,
                                                 size_t num_threads,
                                                 bool* reached_wire) const {
  if (k == 0) {
    return Status::InvalidArgument("shard search requires k >= 1");
  }
  std::vector<ShardSearchVariant> variants(1);
  variants[0].k = k;
  variants[0].min_join_size = query.config().min_join_size;
  JOINMI_ASSIGN_OR_RETURN(
      std::vector<ShardSearchResult> results,
      SearchVariants(query, variants, num_threads, reached_wire));
  return std::move(results[0]);
}

Result<std::vector<ShardSearchResult>> RpcShardClient::SearchVariants(
    const JoinMIQuery& query,
    const std::vector<ShardSearchVariant>& variants,
    size_t num_threads) const {
  return SearchVariants(query, variants, num_threads, nullptr);
}

Result<std::vector<ShardSearchResult>> RpcShardClient::SearchVariants(
    const JoinMIQuery& query,
    const std::vector<ShardSearchVariant>& variants, size_t num_threads,
    bool* reached_wire) const {
  (void)num_threads;  // evaluation parallelism belongs to the server
  for (const ShardSearchVariant& variant : variants) {
    if (variant.k == 0) {
      return Status::InvalidArgument("shard search requires k >= 1");
    }
  }
  // Everything except min_join_size must match the shard's config: those
  // fields change estimates, and only min_join_size travels per variant.
  // Rejecting here keeps "RPC == local, byte for byte" honest.
  JoinMIConfig comparable = config_;
  comparable.min_join_size = query.config().min_join_size;
  if (query.config() != comparable) {
    return Status::InvalidArgument(
        "query config (" + query.config().ToString() +
        ") disagrees with shard server " + endpoint_.ToString() +
        "'s config (" + config_.ToString() +
        ") beyond min_join_size — the shard would answer under the wrong "
        "configuration");
  }
  if (variants.empty()) return std::vector<ShardSearchResult>{};

  Status last = Status::IOError("no attempt made");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    auto channel = channels_->Pick();
    if (!channel.ok()) {
      // Dial or handshake failed — nothing of this request reached the
      // wire, so retrying is free. A handshake *mismatch* is a
      // deterministic deployment error another attempt cannot fix.
      if (channel.status().IsInvalidArgument()) return channel.status();
      last = channel.status();
      continue;
    }
    bool attempt_reached = false;
    auto result = RunVariants(**channel, query, variants, &attempt_reached);
    if (attempt_reached && reached_wire != nullptr) *reached_wire = true;
    if (result.ok()) return result;
    // Anything non-IO is deterministic (bad request, server-side
    // validation); anything IO after the request may have reached the
    // server must not be re-sent — "maybe executed twice" stays
    // impossible.
    if (!result.status().IsIOError()) return result.status();
    if (attempt_reached) return result.status();
    last = result.status();
  }
  return last;
}

Result<std::vector<ShardSearchResult>> RpcShardClient::RunVariants(
    rpc::Channel& channel, const JoinMIQuery& query,
    const std::vector<ShardSearchVariant>& variants,
    bool* reached_wire) const {
  std::vector<ShardSearchResult> results;
  results.reserve(variants.size());
  if (channel.pipelined()) {
    // v2: make sure the sketch is cached server-side (uploaded at most
    // once per connection, idempotent by digest — its reached-ness never
    // taints the search's retry eligibility), then send the digest-only
    // batch.
    const std::string& sketch_bytes = query.SerializedTrainSketch();
    const uint64_t digest = wire::Checksum64(sketch_bytes);
    JOINMI_RETURN_NOT_OK(
        channel.EnsureSketchUploaded(digest, sketch_bytes));
    rpc::BatchSearchRequest request;
    request.sketch_digest = digest;
    request.variants.reserve(variants.size());
    for (const ShardSearchVariant& variant : variants) {
      rpc::BatchSearchVariant wire_variant;
      wire_variant.k = variant.k;
      wire_variant.min_join_size = variant.min_join_size;
      request.variants.push_back(wire_variant);
    }
    auto frame = channel.Call(net::FrameType::kBatchSearchRequest,
                              rpc::EncodeBatchSearchRequest(request),
                              reached_wire);
    if (!frame.ok()) {
      if (*reached_wire) {
        return Status::IOError("no response from shard server " +
                               endpoint_.ToString() + " (not retried): " +
                               frame.status().message());
      }
      return frame.status();
    }
    if (frame->type == net::FrameType::kError) {
      Status server_error;
      JOINMI_RETURN_NOT_OK(
          rpc::DecodeErrorPayload(frame->payload, &server_error));
      return server_error;
    }
    if (frame->type != net::FrameType::kBatchSearchResponse) {
      return Status::IOError(
          "shard server " + endpoint_.ToString() +
          " answered a batch search with a " +
          std::string(net::FrameTypeToString(frame->type)) + " frame");
    }
    JOINMI_ASSIGN_OR_RETURN(rpc::BatchSearchResponse response,
                            rpc::DecodeBatchSearchResponse(frame->payload));
    JOINMI_RETURN_NOT_OK(response.status);
    if (response.responses.size() != variants.size()) {
      return Status::IOError(
          "shard server " + endpoint_.ToString() + " answered " +
          std::to_string(response.responses.size()) + " variants for a " +
          std::to_string(variants.size()) + "-variant batch");
    }
    for (rpc::SearchResponse& one : response.responses) {
      JOINMI_RETURN_NOT_OK(one.status);
      results.push_back(std::move(one.result));
    }
    return results;
  }
  // v1: the legacy dialect — one kSearchRequest per variant, sketch bytes
  // shipped every time, exchanges serialized on the channel.
  for (const ShardSearchVariant& variant : variants) {
    rpc::SearchRequest request;
    request.train_sketch = query.SerializedTrainSketch();
    request.k = variant.k;
    request.min_join_size = variant.min_join_size;
    auto frame = channel.Call(net::FrameType::kSearchRequest,
                              rpc::EncodeSearchRequest(request),
                              reached_wire);
    if (!frame.ok()) {
      if (*reached_wire) {
        return Status::IOError("no response from shard server " +
                               endpoint_.ToString() + " (not retried): " +
                               frame.status().message());
      }
      return frame.status();
    }
    if (frame->type == net::FrameType::kError) {
      Status server_error;
      JOINMI_RETURN_NOT_OK(
          rpc::DecodeErrorPayload(frame->payload, &server_error));
      return server_error;
    }
    if (frame->type != net::FrameType::kSearchResponse) {
      return Status::IOError(
          "shard server " + endpoint_.ToString() +
          " answered a search with a " +
          std::string(net::FrameTypeToString(frame->type)) + " frame");
    }
    JOINMI_ASSIGN_OR_RETURN(rpc::SearchResponse response,
                            rpc::DecodeSearchResponse(frame->payload));
    JOINMI_RETURN_NOT_OK(response.status);
    results.push_back(std::move(response.result));
  }
  return results;
}

Result<rpc::HealthResponse> RpcShardClient::Health() const {
  auto channel = channels_->Pick();
  if (!channel.ok()) {
    return channel.status();
  }
  auto frame =
      (*channel)->Call(net::FrameType::kHealthRequest, "", nullptr);
  if (!frame.ok()) {
    return frame.status();
  }
  if (frame->type == net::FrameType::kError) {
    Status server_error;
    JOINMI_RETURN_NOT_OK(
        rpc::DecodeErrorPayload(frame->payload, &server_error));
    return server_error;
  }
  if (frame->type != net::FrameType::kHealthResponse) {
    return Status::IOError(
        "shard server " + endpoint_.ToString() +
        " answered a health probe with a " +
        std::string(net::FrameTypeToString(frame->type)) + " frame");
  }
  return rpc::DecodeHealthResponse(frame->payload);
}

Result<std::string> RpcShardClient::Stats() const {
  auto channel = channels_->Pick();
  if (!channel.ok()) {
    return channel.status();
  }
  if (!(*channel)->pipelined()) {
    return Status::NotImplemented(
        "shard server " + endpoint_.ToString() +
        " negotiated JMRP v1, which has no stats frame");
  }
  auto frame = (*channel)->Call(net::FrameType::kStatsRequest, "", nullptr);
  if (!frame.ok()) {
    return frame.status();
  }
  if (frame->type == net::FrameType::kError) {
    Status server_error;
    JOINMI_RETURN_NOT_OK(
        rpc::DecodeErrorPayload(frame->payload, &server_error));
    return server_error;
  }
  if (frame->type != net::FrameType::kStatsResponse) {
    return Status::IOError(
        "shard server " + endpoint_.ToString() +
        " answered a stats request with a " +
        std::string(net::FrameTypeToString(frame->type)) + " frame");
  }
  JOINMI_ASSIGN_OR_RETURN(rpc::StatsResponse response,
                          rpc::DecodeStatsResponse(frame->payload));
  JOINMI_RETURN_NOT_OK(response.status);
  return std::move(response.json);
}

Result<rpc::ReloadResponse> RpcShardClient::Reload() const {
  auto channel = channels_->Pick();
  if (!channel.ok()) {
    return channel.status();
  }
  if (!(*channel)->pipelined()) {
    return Status::NotImplemented(
        "shard server " + endpoint_.ToString() +
        " negotiated JMRP v1, which has no reload frame");
  }
  auto frame = (*channel)->Call(net::FrameType::kReloadRequest, "", nullptr);
  if (!frame.ok()) {
    return frame.status();
  }
  if (frame->type == net::FrameType::kError) {
    Status server_error;
    JOINMI_RETURN_NOT_OK(
        rpc::DecodeErrorPayload(frame->payload, &server_error));
    return server_error;
  }
  if (frame->type != net::FrameType::kReloadResponse) {
    return Status::IOError(
        "shard server " + endpoint_.ToString() +
        " answered a reload request with a " +
        std::string(net::FrameTypeToString(frame->type)) + " frame");
  }
  JOINMI_ASSIGN_OR_RETURN(rpc::ReloadResponse response,
                          rpc::DecodeReloadResponse(frame->payload));
  JOINMI_RETURN_NOT_OK(response.status);
  return response;
}

ShardClientFactory RpcShardClient::Factory(
    std::vector<ShardEndpoint> endpoints, RpcClientOptions options) {
  return [endpoints = std::move(endpoints), options](
             const ShardManifest& manifest, size_t shard,
             const std::string& manifest_dir)
             -> Result<std::unique_ptr<ShardClient>> {
    (void)manifest_dir;  // remote shards have no local files
    JOINMI_RETURN_NOT_OK(ValidateServingManifest(manifest, endpoints.size()));
    JOINMI_ASSIGN_OR_RETURN(
        std::unique_ptr<RpcShardClient> client,
        RpcShardClient::Create(endpoints[shard], *manifest.config,
                               manifest.shards[shard].candidate_count,
                               options));
    return std::unique_ptr<ShardClient>(std::move(client));
  };
}

}  // namespace joinmi
