#include "src/discovery/rpc_shard_client.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "src/net/frame.h"
#include "src/sketch/serialize.h"

namespace joinmi {

// ---------------------------------------------------------- Endpoint file

Result<ShardEndpoint> ParseShardEndpoint(const std::string& spec) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    return Status::InvalidArgument("endpoint '" + spec +
                                   "' is not host:port");
  }
  // A space or comma means several endpoints ran together — most likely a
  // v2 replica line fed to a single-endpoint parser. Reject instead of
  // swallowing the junk into the host name (rfind would happily treat
  // "a:1 b" as the host of ":2").
  if (spec.find_first_of(" \t,") != std::string::npos) {
    return Status::InvalidArgument(
        "endpoint '" + spec +
        "' contains whitespace or a comma — one host:port expected");
  }
  const std::string port_str = spec.substr(colon + 1);
  long port = 0;
  for (char c : port_str) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("endpoint '" + spec +
                                     "' has a non-numeric port");
    }
    port = port * 10 + (c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("endpoint '" + spec +
                                     "' port is out of range");
    }
  }
  if (port < 1) {
    return Status::InvalidArgument("endpoint '" + spec +
                                   "' port is out of range");
  }
  ShardEndpoint endpoint;
  endpoint.host = spec.substr(0, colon);
  endpoint.port = static_cast<uint16_t>(port);
  return endpoint;
}

Result<std::vector<ShardEndpoint>> ReadEndpointsFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open endpoint file '" + path + "'");
  }
  std::vector<ShardEndpoint> endpoints;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Trim whitespace and drop comments.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const size_t end = line.find_last_not_of(" \t\r");
    const std::string trimmed = line.substr(begin, end - begin + 1);
    if (trimmed.find_first_of(" \t,") != std::string::npos) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_no) +
          ": line lists more than one endpoint — that is the v2 replica "
          "format; read it with ReadReplicaEndpointsFile");
    }
    auto parsed = ParseShardEndpoint(trimmed);
    if (!parsed.ok()) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_no) + ": " +
          parsed.status().message());
    }
    endpoints.push_back(std::move(*parsed));
  }
  if (endpoints.empty()) {
    return Status::InvalidArgument("endpoint file '" + path +
                                   "' lists no endpoints");
  }
  return endpoints;
}

Status ValidateServingManifest(const ShardManifest& manifest,
                               size_t num_entries) {
  if (!manifest.config.has_value()) {
    return Status::InvalidArgument(
        "manifest has no embedded JoinMIConfig (legacy v1 format) — "
        "remote serving needs it to sketch queries; repartition with "
        "the current build_shards");
  }
  if (num_entries != manifest.shards.size()) {
    return Status::InvalidArgument(
        "manifest names " + std::to_string(manifest.shards.size()) +
        " shards but " + std::to_string(num_entries) +
        " shard endpoint entries were provided");
  }
  return Status::OK();
}

// --------------------------------------------------------- RpcShardClient

RpcShardClient::RpcShardClient(ShardEndpoint endpoint,
                               JoinMIConfig expected_config,
                               uint64_t expected_candidates,
                               RpcClientOptions options)
    : endpoint_(std::move(endpoint)),
      config_(std::move(expected_config)),
      num_candidates_(expected_candidates),
      options_(options) {
  net::ConnPoolOptions pool_options;
  pool_options.max_connections = options_.pool_size;
  // The dialer runs the full handshake, so every connection the pool ever
  // hands out has already proven it serves this manifest entry.
  pool_ = std::make_unique<net::ConnPool>(
      [this] { return DialAndHandshake(); }, pool_options);
}

Result<std::unique_ptr<RpcShardClient>> RpcShardClient::Create(
    ShardEndpoint endpoint, JoinMIConfig expected_config,
    uint64_t expected_candidates, RpcClientOptions options) {
  JOINMI_RETURN_NOT_OK(expected_config.Validate());
  std::unique_ptr<RpcShardClient> client(new RpcShardClient(
      std::move(endpoint), std::move(expected_config), expected_candidates,
      options));
  // Eager dial: a reachable-but-wrong server (handshake mismatch, an
  // InvalidArgument) is a deployment error and fails Create; an
  // unreachable one (IOError) is an outage the router must survive, so
  // the client is returned disconnected and re-dials per request. On
  // success the lease's destructor parks the verified connection in the
  // pool, where the first request reuses it.
  auto lease = client->pool_->Acquire();
  if (!lease.ok() && lease.status().IsInvalidArgument()) {
    return lease.status();
  }
  return client;
}

Result<net::Socket> RpcShardClient::DialAndHandshake() const {
  auto connected = net::Socket::Connect(endpoint_.host, endpoint_.port,
                                        options_.connect_timeout_ms);
  if (!connected.ok()) {
    return Status::IOError("shard server " + endpoint_.ToString() +
                           " is unreachable: " +
                           connected.status().message());
  }
  net::Socket socket = std::move(*connected);
  JOINMI_RETURN_NOT_OK(
      socket.SetTimeouts(options_.io_timeout_ms, options_.io_timeout_ms));
  JOINMI_RETURN_NOT_OK(
      net::SendFrame(&socket, net::FrameType::kHandshakeRequest, ""));
  JOINMI_ASSIGN_OR_RETURN(net::Frame frame, net::RecvFrame(&socket));
  if (frame.type == net::FrameType::kError) {
    Status server_error;
    JOINMI_RETURN_NOT_OK(
        rpc::DecodeErrorPayload(frame.payload, &server_error));
    return server_error;
  }
  if (frame.type != net::FrameType::kHandshakeResponse) {
    return Status::IOError("shard server " + endpoint_.ToString() +
                           " answered the handshake with a " +
                           std::string(net::FrameTypeToString(frame.type)) +
                           " frame");
  }
  JOINMI_ASSIGN_OR_RETURN(rpc::HandshakeResponse handshake,
                          rpc::DecodeHandshakeResponse(frame.payload));
  // The operator== agreement: a server whose shard was built under any
  // other config can never coordinate with this manifest's queries.
  if (handshake.config != config_) {
    return Status::InvalidArgument(
        "shard server " + endpoint_.ToString() +
        " serves a shard built under a different JoinMIConfig (" +
        handshake.config.ToString() + ") than the manifest expects (" +
        config_.ToString() + ")");
  }
  if (handshake.num_candidates != num_candidates_) {
    return Status::InvalidArgument(
        "shard server " + endpoint_.ToString() + " holds " +
        std::to_string(handshake.num_candidates) +
        " candidates but the manifest records " +
        std::to_string(num_candidates_));
  }
  return socket;
}

Result<ShardSearchResult> RpcShardClient::Search(const JoinMIQuery& query,
                                                 size_t k,
                                                 size_t num_threads) const {
  (void)num_threads;  // evaluation parallelism belongs to the server
  if (k == 0) {
    return Status::InvalidArgument("shard search requires k >= 1");
  }
  // Everything except min_join_size must match the shard's config: those
  // fields change estimates, and only min_join_size travels with the
  // request. Rejecting here keeps "RPC == local, byte for byte" honest.
  JoinMIConfig comparable = config_;
  comparable.min_join_size = query.config().min_join_size;
  if (query.config() != comparable) {
    return Status::InvalidArgument(
        "query config (" + query.config().ToString() +
        ") disagrees with shard server " + endpoint_.ToString() +
        "'s config (" + config_.ToString() +
        ") beyond min_join_size — the shard would answer under the wrong "
        "configuration");
  }
  rpc::SearchRequest request;
  // Cached on the query: every shard of a fan-out ships the same bytes.
  request.train_sketch = query.SerializedTrainSketch();
  request.k = k;
  request.min_join_size = query.config().min_join_size;
  const std::string payload = rpc::EncodeSearchRequest(request);

  Status last = Status::IOError("no attempt made");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    // Each attempt leases its own connection: concurrent Search calls on
    // this client proceed in parallel on distinct pooled connections, and
    // the staleness probe inside Acquire keeps a restarted server from
    // costing a request.
    auto lease = pool_->Acquire();
    if (!lease.ok()) {
      // Dial or handshake failed — nothing of this request reached the
      // wire, so retrying is free. A handshake *mismatch* is a
      // deterministic deployment error another attempt cannot fix.
      if (lease.status().IsInvalidArgument()) return lease.status();
      last = lease.status();
      continue;
    }
    size_t bytes_written = 0;
    Status status = net::SendFrame(&lease->socket(),
                                   net::FrameType::kSearchRequest, payload,
                                   &bytes_written);
    if (!status.ok()) {
      lease->Discard();
      if (bytes_written == 0) {
        // A cached connection the server already closed fails exactly
        // here with zero bytes out — the classic reused-connection race.
        // Still provably un-sent, so eligible for another attempt.
        last = std::move(status);
        continue;
      }
      return Status::IOError("request to shard server " +
                             endpoint_.ToString() +
                             " failed after a partial write (not retried): " +
                             status.message());
    }
    auto frame = net::RecvFrame(&lease->socket());
    if (!frame.ok()) {
      // The request is on the wire; the server may have executed it.
      lease->Discard();
      return Status::IOError("no response from shard server " +
                             endpoint_.ToString() + " (not retried): " +
                             frame.status().message());
    }
    if (frame->type == net::FrameType::kError) {
      // Frame boundaries are intact; the connection returns to the pool.
      Status server_error;
      JOINMI_RETURN_NOT_OK(
          rpc::DecodeErrorPayload(frame->payload, &server_error));
      return server_error;
    }
    if (frame->type != net::FrameType::kSearchResponse) {
      lease->Discard();
      return Status::IOError(
          "shard server " + endpoint_.ToString() +
          " answered a search with a " +
          std::string(net::FrameTypeToString(frame->type)) + " frame");
    }
    auto response = rpc::DecodeSearchResponse(frame->payload);
    if (!response.ok()) {
      lease->Discard();
      return response.status();
    }
    if (!response->status.ok()) {
      return response->status;
    }
    return std::move(response->result);
  }
  return last;
}

Result<rpc::HealthResponse> RpcShardClient::Health() const {
  auto lease = pool_->Acquire();
  if (!lease.ok()) {
    return lease.status();
  }
  Status status =
      net::SendFrame(&lease->socket(), net::FrameType::kHealthRequest, "");
  if (!status.ok()) {
    lease->Discard();
    return status;
  }
  auto frame = net::RecvFrame(&lease->socket());
  if (!frame.ok()) {
    lease->Discard();
    return frame.status();
  }
  if (frame->type == net::FrameType::kError) {
    Status server_error;
    JOINMI_RETURN_NOT_OK(
        rpc::DecodeErrorPayload(frame->payload, &server_error));
    return server_error;
  }
  if (frame->type != net::FrameType::kHealthResponse) {
    lease->Discard();
    return Status::IOError(
        "shard server " + endpoint_.ToString() +
        " answered a health probe with a " +
        std::string(net::FrameTypeToString(frame->type)) + " frame");
  }
  auto response = rpc::DecodeHealthResponse(frame->payload);
  if (!response.ok()) {
    lease->Discard();
    return response.status();
  }
  return *response;
}

ShardClientFactory RpcShardClient::Factory(
    std::vector<ShardEndpoint> endpoints, RpcClientOptions options) {
  return [endpoints = std::move(endpoints), options](
             const ShardManifest& manifest, size_t shard,
             const std::string& manifest_dir)
             -> Result<std::unique_ptr<ShardClient>> {
    (void)manifest_dir;  // remote shards have no local files
    JOINMI_RETURN_NOT_OK(ValidateServingManifest(manifest, endpoints.size()));
    JOINMI_ASSIGN_OR_RETURN(
        std::unique_ptr<RpcShardClient> client,
        RpcShardClient::Create(endpoints[shard], *manifest.config,
                               manifest.shards[shard].candidate_count,
                               options));
    return std::unique_ptr<ShardClient>(std::move(client));
  };
}

}  // namespace joinmi
