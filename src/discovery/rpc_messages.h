// Typed JMRP message payloads for shard serving: what travels inside the
// net::Frame envelope between RpcShardClient and a shard server.
//
//   HandshakeRequest   (empty payload, or u32 max protocol version)
//       -> HandshakeResponse: the server's JoinMIConfig (shared wire
//       layout from core/config.h) + u64 candidate count; the client
//       checks both against the manifest with JoinMIConfig::operator==
//       before trusting the shard. Version negotiation is piggybacked
//       asymmetrically for rolling upgrades: a v2-capable client declares
//       its max version in the request payload (a v1 server ignores the
//       handshake payload entirely), and a v2 server echoes a trailing
//       u32 negotiated version in the response ONLY when the request
//       declared one — an undeclared request gets the v1-shaped reply a
//       v1 client's trailing-bytes check requires. A response without the
//       trailing u32 therefore means "v1 server": the client pins that
//       connection's dialect to one request per round trip.
//   SearchRequest      u32 length-prefixed serialized train sketch
//       (sketch/serialize.h format — the query's base table never crosses
//       the wire) + u64 k + u64 min_join_size.
//   SearchResponse     a wire-encoded Status; on OK, the full
//       ShardSearchResult (counters + hits with global indices), so the
//       router's cross-shard merge sees exactly what LocalShardClient
//       would have produced. Per-shard results never carry
//       shard_failures — that field is router-level bookkeeping.
//   HealthRequest      (empty payload) -> HealthResponse
//       u64 candidate count + u64 requests served since startup.
//   Error              a wire-encoded Status, for requests the server
//       could not even parse or dispatch.
//
// All encodings use the wire:: primitives; every decoder is
// truncation-safe and validates enum tags, so a corrupt peer fails with a
// clear IOError instead of poisoning a merge.

#ifndef JOINMI_DISCOVERY_RPC_MESSAGES_H_
#define JOINMI_DISCOVERY_RPC_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/config.h"
#include "src/discovery/sharded_index.h"

namespace joinmi {
namespace rpc {

/// \brief Status as it crosses the wire: u8 code + length-prefixed
/// message. Round trips code and message exactly. (Out-parameter shape
/// because Result<Status> cannot exist: Status is Result's error arm.)
void AppendStatus(std::string* out, const Status& status);
Status ReadStatus(wire::Reader* reader, Status* out);

// ----------------------------------------------------------- Handshake

struct HandshakeRequest {
  /// Highest JMRP version the client speaks. 1 encodes as an empty
  /// payload (byte-identical to a v1 client's handshake); >= 2 encodes as
  /// a u32. Decoding an empty payload yields 1.
  uint32_t max_version = 1;
};

std::string EncodeHandshakeRequest(const HandshakeRequest& request);
Result<HandshakeRequest> DecodeHandshakeRequest(const std::string& payload);

struct HandshakeResponse {
  JoinMIConfig config;
  uint64_t num_candidates = 0;
  /// Negotiated protocol version. 1 encodes without the trailing u32
  /// (the legacy shape); >= 2 appends it. Decoding a legacy-shaped
  /// payload yields 1 — which is also how a v2 client detects a v1
  /// server.
  uint32_t protocol_version = 1;
};

std::string EncodeHandshakeResponse(const HandshakeResponse& response);
Result<HandshakeResponse> DecodeHandshakeResponse(const std::string& payload);

// -------------------------------------------------------------- Search

struct SearchRequest {
  /// SerializeSketch() bytes of the query's train sketch.
  std::string train_sketch;
  uint64_t k = 0;
  /// The query's min_join_size (the one JoinMIQuery honors locally); the
  /// server evaluates under its shard config with this value substituted,
  /// which is what keeps RPC rankings byte-identical to LocalShardClient.
  uint64_t min_join_size = 0;
};

std::string EncodeSearchRequest(const SearchRequest& request);
Result<SearchRequest> DecodeSearchRequest(const std::string& payload);

struct SearchResponse {
  /// The shard-side Search outcome; `result` is meaningful only when OK.
  Status status;
  ShardSearchResult result;
};

std::string EncodeSearchResponse(const SearchResponse& response);
Result<SearchResponse> DecodeSearchResponse(const std::string& payload);

// -------------------------------------------------------------- Health

struct HealthResponse {
  uint64_t num_candidates = 0;
  /// Search requests (single and batch frames) answered since the server
  /// started — handshakes and health probes no longer inflate this, so
  /// the gauge tracks real query traffic.
  uint64_t requests_served = 0;
};

std::string EncodeHealthResponse(const HealthResponse& response);
Result<HealthResponse> DecodeHealthResponse(const std::string& payload);

// -------------------------------------------------- Sketch upload (v2)

struct SketchUploadRequest {
  /// wire::Checksum64 of `train_sketch` — the cache key. The server
  /// recomputes and rejects a mismatch, so a digest can never alias a
  /// different sketch through a buggy client.
  uint64_t digest = 0;
  /// SerializeSketch() bytes of the query's train sketch.
  std::string train_sketch;
};

std::string EncodeSketchUploadRequest(const SketchUploadRequest& request);
Result<SketchUploadRequest> DecodeSketchUploadRequest(
    const std::string& payload);

struct SketchUploadResponse {
  /// Accept/reject verdict for caching the sketch on this connection.
  Status status;
  /// Digest echo, so a pipelined client can sanity-check the pairing.
  uint64_t digest = 0;
};

std::string EncodeSketchUploadResponse(const SketchUploadResponse& response);
Result<SketchUploadResponse> DecodeSketchUploadResponse(
    const std::string& payload);

// --------------------------------------------------- Batch search (v2)

/// \brief One (k, min_join_size) variant evaluated against the cached
/// sketch. Duplicates are legal and answered independently.
struct BatchSearchVariant {
  uint64_t k = 0;
  uint64_t min_join_size = 0;
};

struct BatchSearchRequest {
  /// Digest of a sketch previously cached on this connection via
  /// SketchUploadRequest.
  uint64_t sketch_digest = 0;
  std::vector<BatchSearchVariant> variants;
};

std::string EncodeBatchSearchRequest(const BatchSearchRequest& request);
Result<BatchSearchRequest> DecodeBatchSearchRequest(
    const std::string& payload);

struct BatchSearchResponse {
  /// Batch-level verdict (unknown digest, decode trouble). When OK,
  /// `responses` pairs with the request's variants by position, each
  /// carrying its own per-variant Status.
  Status status;
  std::vector<SearchResponse> responses;
};

std::string EncodeBatchSearchResponse(const BatchSearchResponse& response);
Result<BatchSearchResponse> DecodeBatchSearchResponse(
    const std::string& payload);

// ---------------------------------------------------------- Stats (v2)

/// \brief Answer to kStatsRequest (whose payload is empty): the server's
/// metrics snapshot. The JSON is opaque to the wire layer — its schema is
/// whatever metrics::Registry::SnapshotJson emits — so servers can add
/// metrics without a protocol bump.
struct StatsResponse {
  Status status;
  /// Meaningful only when `status` is OK.
  std::string json;
};

std::string EncodeStatsResponse(const StatsResponse& response);
Result<StatsResponse> DecodeStatsResponse(const std::string& payload);

// --------------------------------------------------------- Reload (v2)

/// \brief Answer to kReloadRequest (whose payload is empty): the server
/// re-resolved its deployment reference (directory / CURRENT pointer) and
/// swapped in the newest manifest generation. epoch/num_candidates are
/// meaningful only when `status` is OK and describe what the server is
/// serving after the swap.
struct ReloadResponse {
  Status status;
  uint64_t epoch = 0;
  uint64_t num_candidates = 0;
};

std::string EncodeReloadResponse(const ReloadResponse& response);
Result<ReloadResponse> DecodeReloadResponse(const std::string& payload);

// --------------------------------------------------------------- Error

std::string EncodeErrorPayload(const Status& status);
/// \brief Decodes an error payload into `*out`; the returned Status
/// reports decode failures, `*out` carries the server's error.
Status DecodeErrorPayload(const std::string& payload, Status* out);

}  // namespace rpc
}  // namespace joinmi

#endif  // JOINMI_DISCOVERY_RPC_MESSAGES_H_
