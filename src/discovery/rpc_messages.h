// Typed JMRP message payloads for shard serving: what travels inside the
// net::Frame envelope between RpcShardClient and a shard server.
//
//   HandshakeRequest   (empty payload) -> HandshakeResponse
//       the server's JoinMIConfig (shared wire layout from core/config.h)
//       + u64 candidate count; the client checks both against the manifest
//       with JoinMIConfig::operator== before trusting the shard.
//   SearchRequest      u32 length-prefixed serialized train sketch
//       (sketch/serialize.h format — the query's base table never crosses
//       the wire) + u64 k + u64 min_join_size.
//   SearchResponse     a wire-encoded Status; on OK, the full
//       ShardSearchResult (counters + hits with global indices), so the
//       router's cross-shard merge sees exactly what LocalShardClient
//       would have produced. Per-shard results never carry
//       shard_failures — that field is router-level bookkeeping.
//   HealthRequest      (empty payload) -> HealthResponse
//       u64 candidate count + u64 requests served since startup.
//   Error              a wire-encoded Status, for requests the server
//       could not even parse or dispatch.
//
// All encodings use the wire:: primitives; every decoder is
// truncation-safe and validates enum tags, so a corrupt peer fails with a
// clear IOError instead of poisoning a merge.

#ifndef JOINMI_DISCOVERY_RPC_MESSAGES_H_
#define JOINMI_DISCOVERY_RPC_MESSAGES_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/core/config.h"
#include "src/discovery/sharded_index.h"

namespace joinmi {
namespace rpc {

/// \brief Status as it crosses the wire: u8 code + length-prefixed
/// message. Round trips code and message exactly. (Out-parameter shape
/// because Result<Status> cannot exist: Status is Result's error arm.)
void AppendStatus(std::string* out, const Status& status);
Status ReadStatus(wire::Reader* reader, Status* out);

// ----------------------------------------------------------- Handshake

struct HandshakeResponse {
  JoinMIConfig config;
  uint64_t num_candidates = 0;
};

std::string EncodeHandshakeResponse(const HandshakeResponse& response);
Result<HandshakeResponse> DecodeHandshakeResponse(const std::string& payload);

// -------------------------------------------------------------- Search

struct SearchRequest {
  /// SerializeSketch() bytes of the query's train sketch.
  std::string train_sketch;
  uint64_t k = 0;
  /// The query's min_join_size (the one JoinMIQuery honors locally); the
  /// server evaluates under its shard config with this value substituted,
  /// which is what keeps RPC rankings byte-identical to LocalShardClient.
  uint64_t min_join_size = 0;
};

std::string EncodeSearchRequest(const SearchRequest& request);
Result<SearchRequest> DecodeSearchRequest(const std::string& payload);

struct SearchResponse {
  /// The shard-side Search outcome; `result` is meaningful only when OK.
  Status status;
  ShardSearchResult result;
};

std::string EncodeSearchResponse(const SearchResponse& response);
Result<SearchResponse> DecodeSearchResponse(const std::string& payload);

// -------------------------------------------------------------- Health

struct HealthResponse {
  uint64_t num_candidates = 0;
  /// Search + health requests answered since the server started.
  uint64_t requests_served = 0;
};

std::string EncodeHealthResponse(const HealthResponse& response);
Result<HealthResponse> DecodeHealthResponse(const std::string& payload);

// --------------------------------------------------------------- Error

std::string EncodeErrorPayload(const Status& status);
/// \brief Decodes an error payload into `*out`; the returned Status
/// reports decode failures, `*out` carries the server's error.
Status DecodeErrorPayload(const std::string& payload, Status* out);

}  // namespace rpc
}  // namespace joinmi

#endif  // JOINMI_DISCOVERY_RPC_MESSAGES_H_
