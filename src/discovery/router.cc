#include "src/discovery/router.h"

#include <algorithm>
#include <utility>

#include "src/core/config.h"
#include "src/discovery/paged_shard_index.h"
#include "src/discovery/replica_router.h"
#include "src/discovery/rpc_shard_client.h"
#include "src/discovery/search.h"
#include "src/ingest/generation.h"
#include "src/sketch/serialize.h"

namespace joinmi {

namespace {

// Resolves the backend factory from the options — the decision callers
// used to make by hand. Replica endpoints (programmatic or a file line
// with several specs) build replica-aware clients; an all-single-endpoint
// file builds plain RPC clients (identical behavior AND error text to the
// pre-router wiring); no endpoints at all means local shard files.
Result<ShardClientFactory> ResolveFactory(const RouterOptions& options) {
  if (options.factory_override) {
    return options.factory_override;
  }
  std::vector<std::vector<ShardEndpoint>> replicas =
      options.replica_endpoints;
  if (replicas.empty() && !options.endpoints_path.empty()) {
    JOINMI_ASSIGN_OR_RETURN(replicas,
                            ReadShardEndpoints(options.endpoints_path));
  }
  if (replicas.empty()) {
    return LocalShardFactory(options.serving);
  }
  const bool replicated =
      std::any_of(replicas.begin(), replicas.end(),
                  [](const std::vector<ShardEndpoint>& shard) {
                    return shard.size() > 1;
                  });
  if (!replicated) {
    std::vector<ShardEndpoint> endpoints;
    endpoints.reserve(replicas.size());
    for (std::vector<ShardEndpoint>& shard : replicas) {
      endpoints.push_back(std::move(shard[0]));
    }
    return RpcShardFactory(std::move(endpoints), options.serving);
  }
  return ReplicaShardFactory(std::move(replicas), options.serving);
}

}  // namespace

Router::Router(RouterOptions options, ShardClientFactory factory,
               std::shared_ptr<const ShardedSketchIndex> index)
    : options_(std::move(options)),
      factory_(std::move(factory)),
      config_(index->config()),
      deployment_ref_(options_.manifest_path),
      epoch_(index->manifest().epoch),
      index_(std::move(index)),
      gate_(options_.max_pending, options_.retry_after_hint_ms) {
  cache_hits_ = registry_.GetCounter("router.cache.hits");
  cache_misses_ = registry_.GetCounter("router.cache.misses");
  cache_evictions_ = registry_.GetCounter("router.cache.evictions");
  admitted_ = registry_.GetCounter("router.admission.admitted");
  rejected_ = registry_.GetCounter("router.admission.rejected");
  queries_ok_ = registry_.GetCounter("router.queries.ok");
  queries_degraded_ = registry_.GetCounter("router.queries.degraded");
  queries_failed_ = registry_.GetCounter("router.queries.failed");
  search_latency_ = registry_.GetHistogram("router.search.latency_us");
  registry_.GetCounter("router.manifest.epoch")->Set(epoch_.load());
}

Result<std::unique_ptr<Router>> Router::Open(RouterOptions options) {
  if (options.manifest_path.empty()) {
    return Status::InvalidArgument(
        "RouterOptions::manifest_path is required");
  }
  JOINMI_ASSIGN_OR_RETURN(ShardClientFactory factory,
                          ResolveFactory(options));
  // The reference may be a deployment directory or a CURRENT pointer —
  // resolve it to the generation being published right now. options_
  // keeps the original reference so the no-arg Reload() re-resolves it.
  JOINMI_ASSIGN_OR_RETURN(const std::string manifest_path,
                          ingest::ResolveManifestPath(options.manifest_path));
  JOINMI_ASSIGN_OR_RETURN(ShardedSketchIndex index,
                          ShardedSketchIndex::Load(manifest_path, factory));
  return std::unique_ptr<Router>(new Router(
      std::move(options), std::move(factory),
      std::make_shared<const ShardedSketchIndex>(std::move(index))));
}

// ------------------------------------------------------------- Query path

const JoinMIConfig& Router::search_config() const { return config_; }

std::shared_ptr<const ShardedSketchIndex> Router::snapshot() const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  return index_;
}

std::string Router::CacheKey(const JoinMIQuery& query, size_t k) const {
  // The manifest epoch (so an answer computed before a publish can never
  // satisfy a lookup after it — defense in depth on top of Reload's
  // unconditional clear) + the full config wire bytes (estimator, widths,
  // seed, min_join_size — everything that changes an estimate) + the
  // sketch digest + k. min_join_size is appended once more explicitly so
  // the key survives a future config encoding that drops it.
  // ShardQueryMode is deliberately NOT in the key: only complete answers
  // are cached, and a complete answer is identical under either mode.
  std::string key;
  wire::AppendPod<uint64_t>(&key, epoch_.load(std::memory_order_acquire));
  AppendJoinMIConfig(&key, query.config());
  wire::AppendPod<uint64_t>(&key,
                            wire::Checksum64(query.SerializedTrainSketch()));
  wire::AppendPod<uint64_t>(&key, static_cast<uint64_t>(k));
  wire::AppendPod<uint64_t>(
      &key, static_cast<uint64_t>(query.config().min_join_size));
  return key;
}

size_t Router::ApproximateBytes(const std::string& key,
                                const TopKSearchResult& result) {
  size_t bytes = sizeof(CacheEntry) + key.size();
  for (const SearchHit& hit : result.hits) {
    bytes += sizeof(SearchHit) + hit.candidate.table_name.size() +
             hit.candidate.key_column.size() +
             hit.candidate.value_column.size();
  }
  return bytes;
}

bool Router::CacheLookup(const std::string& key,
                         TopKSearchResult* out) const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_.find(key);
  if (it == cache_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->result;
  return true;
}

void Router::CacheInsert(std::string key,
                         const TopKSearchResult& result) const {
  const size_t bytes = ApproximateBytes(key, result);
  if (options_.cache_max_bytes != 0 && bytes > options_.cache_max_bytes) {
    return;  // would evict the whole cache to hold one entry
  }
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    // A concurrent query already populated this key (both computed the
    // same bit-identical answer); just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(CacheEntry{std::move(key), result, bytes});
  cache_.emplace(lru_.front().key, lru_.begin());
  cache_bytes_ += bytes;
  while (cache_.size() > options_.cache_entries ||
         (options_.cache_max_bytes != 0 &&
          cache_bytes_ > options_.cache_max_bytes)) {
    const CacheEntry& victim = lru_.back();
    cache_bytes_ -= victim.bytes;
    cache_.erase(victim.key);
    lru_.pop_back();
    cache_evictions_->Add();
  }
}

void Router::CacheClear() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_.clear();
  lru_.clear();
  cache_bytes_ = 0;
}

Result<TopKSearchResult> Router::SearchQuery(const JoinMIQuery& query,
                                             size_t k, size_t num_threads,
                                             ShardQueryMode mode) const {
  // Admission first: an overloaded router sheds deterministically, not
  // "unless the answer happened to be cached".
  auto ticket = gate_.TryEnter();
  if (!ticket.ok()) {
    rejected_->Add();
    return ticket.status();
  }
  admitted_->Add();
  metrics::ScopedTimer timer(search_latency_);

  const size_t threads =
      num_threads != 0 ? num_threads : options_.num_threads;
  std::string key;
  const bool cacheable = options_.cache_entries > 0;
  if (cacheable) {
    key = CacheKey(query, k);
    TopKSearchResult cached;
    if (CacheLookup(key, &cached)) {
      cache_hits_->Add();
      queries_ok_->Add();
      return cached;
    }
    cache_misses_->Add();
  }

  // In-flight queries pin the index they started with; Reload swaps the
  // pointer out from under nobody.
  std::shared_ptr<const ShardedSketchIndex> index = snapshot();
  auto result = index->SearchQuery(query, k, threads, mode);
  if (!result.ok()) {
    queries_failed_->Add();
    return result.status();
  }
  if (!result->shard_failures.empty()) {
    // Degraded: correct for the shards that answered, but caching it
    // would keep serving the outage after the shard recovers.
    queries_degraded_->Add();
    return result;
  }
  queries_ok_->Add();
  if (cacheable) CacheInsert(std::move(key), *result);
  return result;
}

Result<TopKSearchResult> Router::Search(const Table& base,
                                        const SearchSpec& spec, size_t k,
                                        ShardQueryMode mode) const {
  return TopKJoinMISearch(base, spec, *this, k, options_.num_threads, mode);
}

// -------------------------------------------------------------- Lifecycle

Status Router::Reload(const std::string& manifest_ref) {
  // The argument may itself be a directory or CURRENT pointer; resolve
  // it the same way Open does.
  JOINMI_ASSIGN_OR_RETURN(const std::string manifest_path,
                          ingest::ResolveManifestPath(manifest_ref));
  JOINMI_ASSIGN_OR_RETURN(
      ShardedSketchIndex reloaded,
      ShardedSketchIndex::Load(manifest_path, factory_));
  const uint64_t epoch = reloaded.manifest().epoch;
  // config_ is deliberately NOT updated: queries read it lock-free
  // through search_config(), so it is immutable for the router's
  // lifetime. Publishes and compactions never change the config — a
  // generation that does cannot be swapped in under live queries.
  if (!(reloaded.config() == config_)) {
    return Status::InvalidArgument(
        "reload refused: the new manifest generation was built under a "
        "different JoinMIConfig than the one this router opened with — "
        "mixed-config serving would merge incomparable scores");
  }
  auto fresh = std::make_shared<const ShardedSketchIndex>(
      std::move(reloaded));
  {
    std::lock_guard<std::mutex> lock(index_mutex_);
    index_ = std::move(fresh);
    options_.manifest_path = manifest_ref;
    deployment_ref_ = manifest_ref;
  }
  epoch_.store(epoch, std::memory_order_release);
  // New epoch: every cached answer predates this manifest, drop them all
  // (even byte-identical reloads — proving equivalence would cost more
  // than recomputing a few warm queries). The epoch in the cache key
  // already makes stale entries unreachable; clearing reclaims their
  // memory immediately.
  CacheClear();
  registry_.GetCounter("router.reloads")->Add();
  registry_.GetCounter("router.reload.count")->Add();
  registry_.GetCounter("router.manifest.epoch")->Set(epoch);
  return Status::OK();
}

Status Router::Reload() {
  std::string ref;
  {
    std::lock_guard<std::mutex> lock(index_mutex_);
    ref = deployment_ref_;
  }
  return Reload(ref);
}

uint64_t Router::epoch() const {
  return epoch_.load(std::memory_order_acquire);
}

// ---------------------------------------------------------- Introspection

const ShardedSketchIndex& Router::index() const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  return *index_;
}

size_t Router::num_shards() const { return snapshot()->num_shards(); }

size_t Router::size() const { return snapshot()->size(); }

RouterCacheStats Router::cache_stats() const {
  RouterCacheStats stats;
  stats.hits = cache_hits_->value();
  stats.misses = cache_misses_->value();
  stats.evictions = cache_evictions_->value();
  std::lock_guard<std::mutex> lock(cache_mutex_);
  stats.entries = cache_.size();
  stats.bytes = cache_bytes_;
  return stats;
}

std::string Router::StatsJson() const {
  // Absorb the gauges other layers maintain into registry counters so the
  // snapshot is one flat document. Set() (not Add) — these mirror live
  // values.
  registry_.GetCounter("router.admission.pending")->Set(gate_.pending());
  registry_.GetCounter("router.admission.max_pending")
      ->Set(gate_.max_pending());
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    registry_.GetCounter("router.cache.entries")->Set(cache_.size());
    registry_.GetCounter("router.cache.bytes")->Set(cache_bytes_);
  }
  std::shared_ptr<const ShardedSketchIndex> index = snapshot();
  for (size_t i = 0; i < index->num_shards(); ++i) {
    const std::string prefix = "shard." + std::to_string(i) + ".";
    const ShardClient& client = index->client(i);
    if (const auto* rpc = dynamic_cast<const RpcShardClient*>(&client)) {
      registry_.GetCounter(prefix + "rpc.dials")
          ->Set(rpc->pool().total_dials());
      registry_.GetCounter(prefix + "rpc.live_channels")
          ->Set(rpc->live_channels());
      registry_.GetCounter(prefix + "rpc.max_pipelined")
          ->Set(rpc->max_pipelined());
      registry_.GetCounter(prefix + "rpc.negotiated_version")
          ->Set(rpc->negotiated_version());
    } else if (const auto* replicated =
                   dynamic_cast<const ReplicaShardClient*>(&client)) {
      registry_.GetCounter(prefix + "replica.mark_downs")
          ->Set(replicated->total_mark_downs());
      registry_.GetCounter(prefix + "replica.replicas")
          ->Set(replicated->num_replicas());
      uint64_t dials = 0;
      for (size_t r = 0; r < replicated->num_replicas(); ++r) {
        dials += replicated->replica(r).pool().total_dials();
      }
      registry_.GetCounter(prefix + "replica.dials")->Set(dials);
    } else if (const auto* paged =
                   dynamic_cast<const PagedShardClient*>(&client)) {
      const storage::BufferPoolStats pool = paged->pool_stats();
      registry_.GetCounter(prefix + "pool.hits")->Set(pool.hits);
      registry_.GetCounter(prefix + "pool.misses")->Set(pool.misses);
      registry_.GetCounter(prefix + "pool.evictions")->Set(pool.evictions);
    }
  }
  return registry_.SnapshotJson();
}

}  // namespace joinmi
