#include "src/discovery/search.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "src/common/thread_pool.h"

namespace joinmi {

namespace {

struct CandidateOutcome {
  std::optional<JoinMIEstimate> estimate;
};

// Evaluates candidate pair `i` into `outcomes[i]`. Runs on worker threads:
// touches only const shared state plus its own outcome slot.
void EvaluateCandidate(const JoinMIQuery& query,
                       const TableRepository& repository,
                       const ColumnPairRef& ref, CandidateOutcome* outcome) {
  auto table = repository.GetTable(ref.table_name);
  if (!table.ok()) return;
  auto estimate = query.EstimateTable(**table, ref.key_column,
                                      ref.value_column);
  if (!estimate.ok()) return;
  outcome->estimate = *estimate;
}

}  // namespace

Result<TopKSearchResult> TopKJoinMISearch(const Table& base_table,
                                          const SearchSpec& spec,
                                          const TableRepository& repository,
                                          size_t k,
                                          const SearchConfig& config) {
  if (k == 0) {
    return Status::InvalidArgument("top-k search requires k >= 1");
  }
  JOINMI_ASSIGN_OR_RETURN(
      JoinMIQuery query,
      JoinMIQuery::Create(base_table, spec.base_key, spec.base_target,
                          config.join_config));

  const std::vector<ColumnPairRef> pairs = repository.ExtractColumnPairs();
  std::vector<CandidateOutcome> outcomes(pairs.size());

  const size_t num_threads = config.num_threads == 0
                                 ? ThreadPool::DefaultThreadCount()
                                 : config.num_threads;
  if (num_threads <= 1 || pairs.size() <= 1) {
    for (size_t i = 0; i < pairs.size(); ++i) {
      EvaluateCandidate(query, repository, pairs[i], &outcomes[i]);
    }
  } else {
    ThreadPool pool(num_threads);
    for (size_t i = 0; i < pairs.size(); ++i) {
      pool.Submit([&query, &repository, &pairs, &outcomes, i] {
        EvaluateCandidate(query, repository, pairs[i], &outcomes[i]);
      });
    }
    pool.Wait();
  }

  // Merge: indices of evaluated candidates ranked by MI descending, with
  // the enumeration index (== repository order, which is sorted by table
  // name then column names) as the deterministic tie-break.
  std::vector<size_t> ranked;
  ranked.reserve(pairs.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].estimate.has_value()) ranked.push_back(i);
  }
  TopKSearchResult result;
  result.num_candidates = pairs.size();
  result.num_evaluated = ranked.size();
  result.num_skipped = pairs.size() - ranked.size();
  const size_t take = std::min(k, ranked.size());
  auto better = [&outcomes](size_t a, size_t b) {
    const double mi_a = outcomes[a].estimate->mi;
    const double mi_b = outcomes[b].estimate->mi;
    if (mi_a != mi_b) return mi_a > mi_b;
    return a < b;
  };
  std::partial_sort(ranked.begin(), ranked.begin() + take, ranked.end(),
                    better);
  result.hits.reserve(take);
  for (size_t r = 0; r < take; ++r) {
    const size_t i = ranked[r];
    result.hits.push_back(SearchHit{pairs[i], *outcomes[i].estimate});
  }
  return result;
}

}  // namespace joinmi
