#include "src/discovery/search.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "src/common/thread_pool.h"
#include "src/discovery/topk_merge.h"

namespace joinmi {

namespace {

struct CandidateOutcome {
  std::optional<JoinMIEstimate> estimate;
  bool skipped = false;  // overlap below min_join_size (OutOfRange)
};

// Evaluates candidate pair `i` into `outcomes[i]`. Runs on worker threads:
// touches only const shared state plus its own outcome slot. An OutOfRange
// estimate marks the slot skipped; every other failure (missing table,
// unsketchable column, estimator error) leaves {nullopt, skipped=false},
// which the merge counts as a hard error.
void EvaluateCandidate(const JoinMIQuery& query,
                       const TableRepository& repository,
                       const ColumnPairRef& ref, CandidateOutcome* outcome) {
  auto table = repository.GetTable(ref.table_name);
  if (!table.ok()) return;
  auto estimate = query.EstimateTable(**table, ref.key_column,
                                      ref.value_column);
  if (estimate.ok()) {
    outcome->estimate = *estimate;
  } else if (estimate.status().IsOutOfRange()) {
    outcome->skipped = true;
  }
}

// Deterministic top-k merge shared by both unsharded search overloads:
// ranks the present estimates by the canonical discovery order
// (topk_merge.h) with the enumeration index (== candidate order, sorted
// for repositories, insertion order for indexes) as the ordering key, then
// fills result->hits using ref_at(i) for provenance. Also sets
// num_evaluated.
template <typename RefAt>
void MergeTopKByEnumeration(
    const std::vector<std::optional<JoinMIEstimate>>& estimates, size_t k,
    RefAt&& ref_at, TopKSearchResult* result) {
  internal::TopKSelection selection = internal::SelectTopKByMI(
      estimates, k, [](size_t i) { return static_cast<uint64_t>(i); });
  result->num_evaluated = selection.num_evaluated;
  result->hits.reserve(selection.indices.size());
  for (size_t i : selection.indices) {
    result->hits.push_back(SearchHit{ref_at(i), *estimates[i]});
  }
}

}  // namespace

Result<TopKSearchResult> TopKJoinMISearch(const Table& base_table,
                                          const SearchSpec& spec,
                                          const TableRepository& repository,
                                          size_t k,
                                          const SearchConfig& config) {
  if (k == 0) {
    return Status::InvalidArgument("top-k search requires k >= 1");
  }
  JOINMI_ASSIGN_OR_RETURN(
      JoinMIQuery query,
      JoinMIQuery::Create(base_table, spec.base_key, spec.base_target,
                          config.join_config));

  const std::vector<ColumnPairRef> pairs = repository.ExtractColumnPairs();
  std::vector<CandidateOutcome> outcomes(pairs.size());

  const size_t num_threads = config.num_threads == 0
                                 ? ThreadPool::DefaultThreadCount()
                                 : config.num_threads;
  if (num_threads <= 1 || pairs.size() <= 1) {
    for (size_t i = 0; i < pairs.size(); ++i) {
      EvaluateCandidate(query, repository, pairs[i], &outcomes[i]);
    }
  } else {
    ThreadPool pool(num_threads);
    for (size_t i = 0; i < pairs.size(); ++i) {
      pool.Submit([&query, &repository, &pairs, &outcomes, i] {
        EvaluateCandidate(query, repository, pairs[i], &outcomes[i]);
      });
    }
    pool.Wait();
  }

  TopKSearchResult result;
  result.num_candidates = pairs.size();
  std::vector<std::optional<JoinMIEstimate>> estimates;
  estimates.reserve(outcomes.size());
  for (CandidateOutcome& outcome : outcomes) {
    if (!outcome.estimate.has_value()) {
      if (outcome.skipped) {
        ++result.num_skipped;
      } else {
        ++result.num_errors;
      }
    }
    estimates.push_back(std::move(outcome.estimate));
  }
  MergeTopKByEnumeration(estimates, k,
                         [&pairs](size_t i) { return pairs[i]; }, &result);
  return result;
}

Result<TopKSearchResult> TopKJoinMISearch(const Table& base_table,
                                          const SearchSpec& spec,
                                          const Searchable& target, size_t k,
                                          size_t num_threads,
                                          ShardQueryMode mode) {
  if (k == 0) {
    return Status::InvalidArgument("top-k search requires k >= 1");
  }
  // The target's config (not a caller-supplied one) drives the query
  // sketch: candidate sketches were built under it, and only same-config
  // sketches coordinate. This is what makes every indexed ranking match
  // the repository path.
  JOINMI_ASSIGN_OR_RETURN(
      JoinMIQuery query,
      JoinMIQuery::Create(base_table, spec.base_key, spec.base_target,
                          target.search_config()));
  return target.SearchQuery(query, k, num_threads, mode);
}

// SketchIndex's Searchable implementation lives here (not in
// sketch_index.cc) so it shares MergeTopKByEnumeration with the
// repository-scan path — the shared merge is what keeps the two rankings
// provably identical.
Result<TopKSearchResult> SketchIndex::SearchQuery(const JoinMIQuery& query,
                                                  size_t k,
                                                  size_t num_threads,
                                                  ShardQueryMode mode) const {
  (void)mode;  // no shard to lose
  if (k == 0) {
    return Status::InvalidArgument("top-k search requires k >= 1");
  }
  JOINMI_ASSIGN_OR_RETURN(IndexEvaluation evaluation,
                          EvaluateAll(query, num_threads));
  TopKSearchResult result;
  result.num_candidates = size();
  result.num_skipped = evaluation.num_skipped;
  result.num_errors = evaluation.num_errors;
  MergeTopKByEnumeration(
      evaluation.estimates, k,
      [this](size_t i) { return candidates()[i].ref; }, &result);
  return result;
}

Result<TopKSearchResult> ShardedSketchIndex::SearchQuery(
    const JoinMIQuery& query, size_t k, size_t num_threads,
    ShardQueryMode mode) const {
  if (k == 0) {
    return Status::InvalidArgument("top-k search requires k >= 1");
  }
  JOINMI_ASSIGN_OR_RETURN(ShardSearchResult merged,
                          Search(query, k, num_threads, mode));
  TopKSearchResult result;
  result.num_candidates = merged.num_candidates;
  result.num_evaluated = merged.num_evaluated;
  result.num_skipped = merged.num_skipped;
  result.num_errors = merged.num_errors;
  result.shard_failures = std::move(merged.shard_failures);
  result.hits.reserve(merged.hits.size());
  for (ShardSearchHit& hit : merged.hits) {
    result.hits.push_back(SearchHit{std::move(hit.ref), hit.estimate});
  }
  return result;
}

}  // namespace joinmi
