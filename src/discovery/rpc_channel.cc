#include "src/discovery/rpc_channel.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include "src/discovery/rpc_messages.h"

namespace joinmi {
namespace rpc {

Channel::Channel(net::ConnPool::Lease lease, uint32_t protocol_version,
                 int io_timeout_ms, std::atomic<size_t>* pipeline_hwm)
    : lease_(std::move(lease)),
      version_(protocol_version),
      io_timeout_ms_(io_timeout_ms),
      pipeline_hwm_(pipeline_hwm) {
  if (pipelined()) {
    reader_ = std::thread([this] { ReaderLoop(); });
  }
}

Channel::~Channel() {
  stop_reader_.store(true);
  if (reader_.joinable()) reader_.join();
  // A broken connection must not be parked for reuse; a healthy one goes
  // back to the pool through the lease destructor.
  bool discard;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    discard = broken_;
  }
  if (discard) lease_.Discard();
}

bool Channel::broken() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return broken_;
}

void Channel::MarkBroken(const Status& status) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (broken_) return;
  broken_ = true;
  broken_status_ = status;
  for (auto& entry : pending_) {
    entry.second->status = status;
    entry.second->ready = true;
  }
  state_cv_.notify_all();
}

void Channel::ReaderLoop() {
  const int fd = lease_.socket().fd();
  while (!stop_reader_.load()) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (stop_reader_.load()) break;
    if (ready == 0) continue;
    if (ready < 0) {
      if (errno == EINTR) continue;
      MarkBroken(Status::IOError("response reader poll failed"));
      return;
    }
    // Readable: the blocking RecvFrame finishes promptly (the socket's
    // receive timeout still bounds a peer that stalls mid-frame).
    auto frame = net::RecvFrame(&lease_.socket());
    if (!frame.ok()) {
      MarkBroken(frame.status());
      return;
    }
    std::lock_guard<std::mutex> lock(state_mutex_);
    auto waiter = pending_.find(frame->request_id);
    if (waiter == pending_.end()) continue;  // timed-out caller: drop
    waiter->second->frame = std::move(*frame);
    waiter->second->status = Status::OK();
    waiter->second->ready = true;
    state_cv_.notify_all();
  }
}

Result<net::Frame> Channel::Call(net::FrameType type,
                                 const std::string& payload,
                                 bool* reached_wire) {
  const size_t now = in_flight_.fetch_add(1) + 1;
  if (pipeline_hwm_ != nullptr) {
    size_t seen = pipeline_hwm_->load();
    while (seen < now &&
           !pipeline_hwm_->compare_exchange_weak(seen, now)) {
    }
  }
  auto result = pipelined() ? CallV2(type, payload, reached_wire)
                            : CallV1(type, payload, reached_wire);
  in_flight_.fetch_sub(1);
  return result;
}

Result<net::Frame> Channel::CallV2(net::FrameType type,
                                   const std::string& payload,
                                   bool* reached_wire) {
  Pending pending;
  const uint64_t id = next_id_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (broken_) {
      return Status::IOError("channel is broken: " +
                             broken_status_.message());
    }
    pending_.emplace(id, &pending);
  }
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    size_t bytes_written = 0;
    Status sent = net::SendFrameV2(&lease_.socket(), type, id, payload,
                                   &bytes_written);
    if (!sent.ok()) {
      // A partial write reached the wire AND corrupted the frame stream;
      // a zero-byte failure is provably un-sent. Either way this channel
      // is done.
      if (bytes_written > 0 && reached_wire != nullptr) *reached_wire = true;
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        pending_.erase(id);
      }
      MarkBroken(sent);
      return sent;
    }
  }
  if (reached_wire != nullptr) *reached_wire = true;
  std::unique_lock<std::mutex> lock(state_mutex_);
  state_cv_.wait_for(lock, std::chrono::milliseconds(io_timeout_ms_),
                     [&] { return pending.ready; });
  pending_.erase(id);
  if (!pending.ready) {
    // Abandon this call only; the reader drops the late response by id.
    return Status::IOError("timed out waiting for response " +
                           std::to_string(id));
  }
  if (!pending.status.ok()) return pending.status;
  return std::move(pending.frame);
}

Result<net::Frame> Channel::CallV1(net::FrameType type,
                                   const std::string& payload,
                                   bool* reached_wire) {
  std::lock_guard<std::mutex> excl(excl_mutex_);
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (broken_) {
      return Status::IOError("channel is broken: " +
                             broken_status_.message());
    }
  }
  size_t bytes_written = 0;
  Status sent =
      net::SendFrame(&lease_.socket(), type, payload, &bytes_written);
  if (!sent.ok()) {
    if (bytes_written > 0 && reached_wire != nullptr) *reached_wire = true;
    MarkBroken(sent);
    return sent;
  }
  if (reached_wire != nullptr) *reached_wire = true;
  auto frame = net::RecvFrame(&lease_.socket());
  if (!frame.ok()) {
    MarkBroken(frame.status());
    return frame.status();
  }
  return std::move(*frame);
}

Status Channel::EnsureSketchUploaded(uint64_t digest,
                                     const std::string& bytes) {
  if (!pipelined()) {
    return Status::InvalidArgument(
        "sketch upload requires protocol v2; this channel negotiated v1");
  }
  // Held across the exchange so concurrent callers with the same digest
  // upload once, not racing duplicates (the server tolerates duplicates,
  // but re-sending the sketch wastes exactly the bytes the cache exists
  // to save).
  std::lock_guard<std::mutex> upload_lock(upload_mutex_);
  if (uploaded_digests_.count(digest) > 0) return Status::OK();
  SketchUploadRequest request;
  request.digest = digest;
  request.train_sketch = bytes;
  JOINMI_ASSIGN_OR_RETURN(
      net::Frame reply, Call(net::FrameType::kSketchUploadRequest,
                             EncodeSketchUploadRequest(request), nullptr));
  if (reply.type == net::FrameType::kError) {
    Status server_error = Status::OK();
    JOINMI_RETURN_NOT_OK(DecodeErrorPayload(reply.payload, &server_error));
    return server_error;
  }
  if (reply.type != net::FrameType::kSketchUploadResponse) {
    return Status::IOError(
        std::string("shard answered a sketch upload with a ") +
        net::FrameTypeToString(reply.type) + " frame");
  }
  JOINMI_ASSIGN_OR_RETURN(SketchUploadResponse response,
                          DecodeSketchUploadResponse(reply.payload));
  JOINMI_RETURN_NOT_OK(response.status);
  if (response.digest != digest) {
    return Status::IOError("shard acknowledged digest " +
                           std::to_string(response.digest) +
                           " for an upload of digest " +
                           std::to_string(digest));
  }
  uploaded_digests_.insert(digest);
  return Status::OK();
}

ChannelSet::ChannelSet(ChannelFactory factory, size_t max_channels)
    : factory_(std::move(factory)),
      max_channels_(std::max<size_t>(1, max_channels)) {}

ChannelSet::~ChannelSet() { Close(); }

Result<std::shared_ptr<Channel>> ChannelSet::Pick() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (closed_) {
      return Status::IOError("connection pool is closed");
    }
    channels_.erase(
        std::remove_if(channels_.begin(), channels_.end(),
                       [](const std::shared_ptr<Channel>& channel) {
                         return channel->broken();
                       }),
        channels_.end());
    std::shared_ptr<Channel> best;
    size_t best_load = 0;
    for (const auto& channel : channels_) {
      const size_t load = channel->in_flight();
      if (best == nullptr || load < best_load) {
        best = channel;
        best_load = load;
      }
    }
    if (best != nullptr && best_load == 0) return best;
    if (channels_.size() + creating_ < max_channels_) {
      ++creating_;
      lock.unlock();
      auto created = factory_();
      lock.lock();
      --creating_;
      cv_.notify_all();
      if (!created.ok()) return created.status();
      if (closed_) {
        return Status::IOError("connection pool is closed");
      }
      channels_.push_back(*created);
      return std::move(*created);
    }
    // At capacity and everything busy: a pipelined channel shares; a v1
    // channel queues its callers on the exchange mutex. Either way the
    // least-loaded channel is the right place for this request.
    if (best != nullptr) return best;
    // No channels at all but another thread is mid-dial: wait for it.
    cv_.wait_for(lock, std::chrono::milliseconds(2));
  }
}

void ChannelSet::Close() {
  std::vector<std::shared_ptr<Channel>> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    closed_ = true;
    doomed.swap(channels_);
  }
  cv_.notify_all();
  // Channel destructors (reader joins, lease returns) run outside the
  // lock; calls still running keep their own references.
  doomed.clear();
}

size_t ChannelSet::live_channels() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return channels_.size();
}

}  // namespace rpc
}  // namespace joinmi
