#include "src/discovery/opendata_sim.h"

#include <algorithm>
#include <cmath>

#include "src/common/hashing.h"
#include "src/common/random.h"
#include "src/common/string_util.h"

namespace joinmi {

OpenDataParams WBFLikeParams() {
  // WBF (paper Section V-C): join attribute domains ~3.1k (left) / ~3.5k
  // (right); average full join ~34k rows. The large join size relative to
  // the domain comes from repeated keys on the left.
  OpenDataParams params;
  params.name = "WBF";
  params.num_pairs = 240;
  params.left_rows = 12000;
  params.right_rows = 7000;
  params.left_key_domain = 3100;
  params.right_key_domain = 3500;
  params.key_overlap = 0.85;
  params.zipf_s = 1.35;  // strong skew: many join rows per hot key
  params.p_string_value = 0.45;
  params.latent_buckets = 24;
  params.seed = 71;
  return params;
}

OpenDataParams NYCLikeParams() {
  // NYC: much larger left domains (~11.2k) against small right domains
  // (~1k); average full join ~8.5k rows.
  OpenDataParams params;
  params.name = "NYC";
  params.num_pairs = 240;
  params.left_rows = 9000;
  params.right_rows = 2500;
  params.left_key_domain = 11200;
  params.right_key_domain = 1000;
  params.key_overlap = 0.70;
  params.zipf_s = 0.85;  // flatter key frequencies
  params.p_string_value = 0.45;
  params.latent_buckets = 24;
  params.seed = 13;
  return params;
}

namespace {

/// Latent topic bucket of a key id: deterministic and shared by both sides.
/// Half the bucket index follows the key's Zipf rank (small id = hot key),
/// so value distributions correlate with key frequency — the property of
/// real skewed data that frequency-blind key sampling (LV2SK level 1)
/// mis-represents; the other half is a hash so buckets stay diverse inside
/// the shared-key region.
size_t BucketOf(uint64_t key_id, size_t buckets, uint64_t id_space,
                uint64_t salt) {
  const uint64_t rank_part =
      (key_id * static_cast<uint64_t>(buckets)) / std::max<uint64_t>(1, id_space);
  const uint64_t hash_part =
      Mix64(key_id * 0x51AB1ECAFEULL ^ salt) % static_cast<uint64_t>(buckets);
  return static_cast<size_t>((rank_part + hash_part) %
                             static_cast<uint64_t>(buckets));
}

std::string KeyString(const std::string& collection, uint64_t key_id) {
  return collection + "-key-" + std::to_string(key_id);
}

}  // namespace

Result<std::vector<GeneratedTablePair>> GenerateOpenDataCollection(
    const OpenDataParams& params) {
  if (params.num_pairs == 0 || params.left_rows == 0 ||
      params.right_rows == 0) {
    return Status::InvalidArgument("open-data sim sizes must be positive");
  }
  if (params.left_key_domain == 0 || params.right_key_domain == 0) {
    return Status::InvalidArgument("key domains must be positive");
  }
  if (params.key_overlap < 0.0 || params.key_overlap > 1.0) {
    return Status::InvalidArgument("key_overlap must be in [0, 1]");
  }
  if (params.latent_buckets == 0) {
    return Status::InvalidArgument("latent_buckets must be positive");
  }

  Rng collection_rng(params.seed);
  std::vector<GeneratedTablePair> pairs;
  pairs.reserve(params.num_pairs);

  const size_t overlap_keys = static_cast<size_t>(
      params.key_overlap *
      static_cast<double>(
          std::min(params.left_key_domain, params.right_key_domain)));
  // Left ids: [0, left_domain), Zipf-skewed with id 0 hottest. The shared
  // region is the HOT prefix [0, overlap_keys) — real collections join on
  // their frequent keys — and the right side adds fresh ids beyond the
  // left domain for its non-overlapping remainder.
  const uint64_t fresh_base = static_cast<uint64_t>(params.left_key_domain);
  const uint64_t id_space = static_cast<uint64_t>(
      params.left_key_domain + params.right_key_domain);

  for (size_t p = 0; p < params.num_pairs; ++p) {
    Rng rng = collection_rng.Fork();
    GeneratedTablePair pair;
    pair.dependence = rng.NextDouble();
    pair.family = params.num_families == 0 ? p : p % params.num_families;
    const uint64_t bucket_salt = Mix64(params.seed * 0xF00DULL + pair.family);
    const bool y_string = rng.Bernoulli(params.p_string_value);
    const bool z_string = rng.Bernoulli(params.p_string_value);
    pair.target_type = y_string ? DataType::kString : DataType::kDouble;
    pair.feature_type = z_string ? DataType::kString : DataType::kDouble;
    const size_t buckets = params.latent_buckets;
    const double bucket_span = 10.0;

    // ---- Left table: skewed keys, target driven by the latent bucket. ----
    const size_t left_rows = static_cast<size_t>(
        rng.Uniform(0.5, 1.5) * static_cast<double>(params.left_rows));
    std::vector<std::string> left_keys;
    std::vector<Value> left_targets;
    left_keys.reserve(left_rows);
    left_targets.reserve(left_rows);
    for (size_t row = 0; row < left_rows; ++row) {
      // Zipf over the left domain: rank 1 = id 0.
      const uint64_t key_id =
          rng.Zipf(params.left_key_domain, params.zipf_s) - 1;
      left_keys.push_back(KeyString(params.name, key_id));
      const size_t bucket = BucketOf(key_id, buckets, id_space, bucket_salt);
      const bool dependent = rng.Bernoulli(pair.dependence);
      if (y_string) {
        const size_t label =
            dependent ? bucket : static_cast<size_t>(rng.NextBounded(buckets));
        left_targets.emplace_back("cat-" + std::to_string(label));
      } else {
        const double center =
            dependent ? static_cast<double>(bucket) * bucket_span
                      : rng.Uniform(0.0, bucket_span *
                                             static_cast<double>(buckets));
        left_targets.emplace_back(center + rng.Gaussian(0.0, 2.5));
      }
    }

    // ---- Right table: near-uniform keys, value a noisy bucket readout. ---
    const size_t right_rows = static_cast<size_t>(
        rng.Uniform(0.5, 1.5) * static_cast<double>(params.right_rows));
    std::vector<std::string> right_keys;
    std::vector<Value> right_values;
    right_keys.reserve(right_rows);
    right_values.reserve(right_rows);
    for (size_t row = 0; row < right_rows; ++row) {
      // Uniform over the right domain: the shared hot prefix plus fresh
      // right-only ids.
      const uint64_t slot = rng.NextBounded(params.right_key_domain);
      const uint64_t key_id =
          slot < overlap_keys ? slot : fresh_base + (slot - overlap_keys);
      right_keys.push_back(KeyString(params.name, key_id));
      const size_t bucket = BucketOf(key_id, buckets, id_space, bucket_salt);
      if (z_string) {
        right_values.emplace_back("val-" + std::to_string(bucket));
      } else {
        right_values.emplace_back(static_cast<double>(bucket) * bucket_span +
                                  rng.Gaussian(0.0, 1.0));
      }
    }

    auto left_key_col = Column::MakeString(std::move(left_keys));
    JOINMI_ASSIGN_OR_RETURN(auto left_target_col,
                            Column::FromValues(left_targets));
    auto right_key_col = Column::MakeString(std::move(right_keys));
    JOINMI_ASSIGN_OR_RETURN(auto right_value_col,
                            Column::FromValues(right_values));
    JOINMI_ASSIGN_OR_RETURN(
        pair.train,
        Table::FromColumns({{"K", left_key_col}, {"Y", left_target_col}}));
    JOINMI_ASSIGN_OR_RETURN(
        pair.cand,
        Table::FromColumns({{"K", right_key_col}, {"Z", right_value_col}}));
    pairs.push_back(std::move(pair));
  }
  return pairs;
}

}  // namespace joinmi
