// Sharded sketch index: the repository-scale deployment of discovery
// search. A partitioner splits one SketchIndex across N shard index files
// and records the split in a versioned ShardManifest; a query is sketched
// once, fanned out to every shard, and the per-shard top-k lists are merged
// into a global top-k.
//
// Determinism contract: every candidate carries its *global* insertion
// index from the original unsharded enumeration (stored in the manifest),
// and both the per-shard selection and the cross-shard merge order hits by
// (MI desc, global index asc) — exactly the comparator the unsharded
// index-backed TopKJoinMISearch uses. Per-shard top-k under a total order
// loses nothing the global top-k could keep, so a K-shard search returns
// bit-identical rankings to the unsharded path for every K and either
// partitioning policy, duplicated candidates included.
//
// Serving boundary: queries reach shards through the ShardClient interface.
// LocalShardClient is the in-process implementation over a loaded
// SketchIndex; RpcShardClient (rpc_shard_client.h) implements the same
// three methods against a remote shard server process without touching the
// fan-out or merge. Which one a router uses is decided by the
// ShardClientFactory handed to Load — local shard files and host:port
// endpoints are interchangeable deployments of the same manifest.
//
// Availability: Search runs in one of two modes. Strict (the default, and
// the only behavior before networked serving existed) fails the whole
// query on the first shard error, deterministically in shard order.
// Degraded answers from the shards that responded, reporting every failed
// shard in ShardSearchResult::shard_failures — the router keeps serving
// through single-shard outages and the caller can see exactly what the
// answer is missing. A degraded query with zero healthy shards still
// fails: an answer from nothing would be indistinguishable from an empty
// repository.

#ifndef JOINMI_DISCOVERY_SHARDED_INDEX_H_
#define JOINMI_DISCOVERY_SHARDED_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/join_mi.h"
#include "src/discovery/searchable.h"
#include "src/discovery/shard_manifest.h"
#include "src/discovery/sketch_index.h"

namespace joinmi {

// ShardFailure and ShardQueryMode moved to searchable.h (the whole search
// surface shares them); this header re-exports both transitively.

/// \brief One per-shard search answer, annotated with the candidate's
/// global insertion index — the tie-break key of the cross-shard merge.
struct ShardSearchHit {
  uint64_t global_index = 0;
  ColumnPairRef ref;
  JoinMIEstimate estimate;
};

/// \brief Outcome of one shard-level (or merged) top-k search. Hits are
/// sorted by (MI desc, global index asc) and truncated to k.
struct ShardSearchResult {
  std::vector<ShardSearchHit> hits;
  size_t num_candidates = 0;
  size_t num_evaluated = 0;
  size_t num_skipped = 0;
  size_t num_errors = 0;
  /// Shards that did not answer, in shard order. Always empty in strict
  /// mode (a failure fails the query instead) and for single-shard
  /// results; when non-empty, `hits` and the counters cover only the
  /// shards that answered.
  std::vector<ShardFailure> shard_failures;
};

/// \brief One (k, min_join_size) variant of a batched search — many
/// variants share one sketched query, which over RPC shares one uploaded
/// sketch.
struct ShardSearchVariant {
  size_t k = 0;
  /// Evaluated with this min_join_size substituted into the shard config,
  /// exactly as a single Search under a query configured the same way.
  size_t min_join_size = 0;
};

/// \brief Serving boundary of one shard — the RPC seam. The query arrives
/// pre-sketched (over the wire this is the serialized train sketch), so
/// shards never see the base table's rows.
class ShardClient {
 public:
  virtual ~ShardClient() = default;

  /// \brief The shard's JoinMIConfig; all shards of one index must agree.
  virtual const JoinMIConfig& config() const = 0;

  /// \brief Candidates this shard holds.
  virtual size_t num_candidates() const = 0;

  /// \brief This shard's top-k for the query, ordered by
  /// (MI desc, global index asc). `num_threads` 0 = hardware concurrency.
  virtual Result<ShardSearchResult> Search(const JoinMIQuery& query,
                                           size_t k,
                                           size_t num_threads) const = 0;

  /// \brief Evaluates every variant against one query; result[i] answers
  /// variants[i] and equals what Search would return for a query rebuilt
  /// with that variant's min_join_size. All-or-nothing: the first variant
  /// failure fails the batch. The default implementation loops over
  /// Search; RpcShardClient overrides it with one batched frame against
  /// the connection-cached sketch.
  virtual Result<std::vector<ShardSearchResult>> SearchVariants(
      const JoinMIQuery& query,
      const std::vector<ShardSearchVariant>& variants,
      size_t num_threads) const;
};

/// \brief In-process ShardClient over a loaded SketchIndex.
class LocalShardClient : public ShardClient {
 public:
  /// \brief Wraps `index`; `global_indices[i]` is local candidate i's index
  /// in the original unsharded enumeration. Rejects a mapping whose size
  /// disagrees with the index or that is not strictly increasing.
  static Result<std::unique_ptr<LocalShardClient>> Create(
      SketchIndex index, std::vector<uint64_t> global_indices);

  const JoinMIConfig& config() const override { return index_.config(); }
  size_t num_candidates() const override { return index_.size(); }
  Result<ShardSearchResult> Search(const JoinMIQuery& query, size_t k,
                                   size_t num_threads) const override;

 private:
  LocalShardClient(SketchIndex index, std::vector<uint64_t> global_indices)
      : index_(std::move(index)),
        global_indices_(std::move(global_indices)) {}

  SketchIndex index_;
  std::vector<uint64_t> global_indices_;
};

/// \brief Builds the ShardClient serving shard `shard` of `manifest`.
/// `manifest_dir` is the directory holding the manifest file (where
/// relative shard paths resolve), empty when the manifest never touched
/// disk. The factory seam is what makes local files and remote endpoints
/// interchangeable deployments: Load neither knows nor cares which one it
/// is wiring up.
using ShardClientFactory =
    std::function<Result<std::unique_ptr<ShardClient>>(
        const ShardManifest& manifest, size_t shard,
        const std::string& manifest_dir)>;

/// \brief A partitioned index: the manifest plus one client per shard.
class ShardedSketchIndex : public Searchable {
 public:
  /// \brief Assembles a sharded index from an already-validated manifest
  /// and matching clients (the seam for remote shards). Rejects
  /// zero-shard manifests, client counts or per-shard candidate counts
  /// that disagree with the manifest, and shards whose configs differ.
  static Result<ShardedSketchIndex> Create(
      ShardManifest manifest,
      std::vector<std::unique_ptr<ShardClient>> clients);

  /// \brief Loads a manifest and builds one client per shard through
  /// `factory`. LocalFileFactory() reads shard files next to the
  /// manifest; RpcShardClient::Factory (rpc_shard_client.h) dials
  /// host:port endpoints instead.
  static Result<ShardedSketchIndex> Load(const std::string& manifest_path,
                                         const ShardClientFactory& factory);

  /// \brief Loads a manifest and every shard file it names (paths resolved
  /// relative to the manifest's directory) — Load with LocalFileFactory().
  static Result<ShardedSketchIndex> Load(const std::string& manifest_path);

  /// \brief Knobs for loading paged shards; ignored for whole-file ones.
  struct LocalShardLoadOptions {
    /// Buffer-pool budget per paged shard, in pages.
    size_t pool_pages = 64;
    /// Per-shard pinned prepared-probe cache entries (0 disables).
    size_t prepared_cache_entries = 8;
  };

  /// \brief The factory behind single-argument Load: opens each shard
  /// file named by the manifest, dispatching on the entry's recorded
  /// format. A whole-file "JMIX" shard is read whole, its bytes checked
  /// against the manifest checksum and its candidate count against the
  /// manifest entry *before* use, so a truncated, bit-flipped, or swapped
  /// shard file fails with a clear InvalidArgument instead of surfacing
  /// as blob-level corruption or — worse — wrong rankings. A paged "JMPS"
  /// shard opens by header + directory only — the whole-file checksum is
  /// deliberately NOT computed (that would read the entire file and
  /// defeat lazy loading); its internal header/directory checksums are
  /// verified at open and each page's checksum on fault-in, which covers
  /// every byte the queries will actually touch.
  static ShardClientFactory LocalFileFactory();
  static ShardClientFactory LocalFileFactory(
      const LocalShardLoadOptions& options);

  const ShardManifest& manifest() const { return manifest_; }
  /// \brief The shards' agreed JoinMIConfig. Create guarantees at least
  /// one client exists and that all clients agree.
  const JoinMIConfig& config() const { return clients_[0]->config(); }
  size_t num_shards() const { return clients_.size(); }
  /// \brief The client serving shard `shard` — instrumentation seam: the
  /// Router's stats snapshot downcasts to read pool/replica counters.
  const ShardClient& client(size_t shard) const { return *clients_[shard]; }
  /// \brief Total candidates across all shards.
  size_t size() const { return static_cast<size_t>(manifest_.total_candidates); }

  /// \brief Fans the query out to every shard (one ThreadPool task per
  /// shard when `num_threads` > 1) and merges the per-shard top-k lists by
  /// (MI desc, global index asc). Identical results for any thread count.
  /// See ShardQueryMode for how shard failures are handled.
  Result<ShardSearchResult> Search(
      const JoinMIQuery& query, size_t k, size_t num_threads = 0,
      ShardQueryMode mode = ShardQueryMode::kStrict) const;

  /// \brief Batched fan-out: every variant against every shard, merged
  /// per variant with the same comparator as Search. result[i] is
  /// bit-identical to Search over a query rebuilt with variants[i]'s
  /// min_join_size — over RPC the sketch crosses the wire once per
  /// connection instead of once per (variant, shard). Mode semantics
  /// match Search, applied per variant.
  Result<std::vector<ShardSearchResult>> SearchVariants(
      const JoinMIQuery& query,
      const std::vector<ShardSearchVariant>& variants, size_t num_threads = 0,
      ShardQueryMode mode = ShardQueryMode::kStrict) const;

  // Searchable: Search() plus the ShardSearchResult -> TopKSearchResult
  // projection (drops per-hit global indices, which are merge-internal).
  const JoinMIConfig& search_config() const override { return config(); }
  Result<TopKSearchResult> SearchQuery(const JoinMIQuery& query, size_t k,
                                       size_t num_threads,
                                       ShardQueryMode mode) const override;

 private:
  ShardedSketchIndex(ShardManifest manifest,
                     std::vector<std::unique_ptr<ShardClient>> clients)
      : manifest_(std::move(manifest)), clients_(std::move(clients)) {}

  ShardManifest manifest_;
  std::vector<std::unique_ptr<ShardClient>> clients_;
};

/// \brief Deterministic shard assignment for candidate `ref` at enumeration
/// index `index` — exposed so tests and tools agree with the partitioner.
size_t AssignShard(ShardPartitionPolicy policy, size_t index,
                   const ColumnPairRef& ref, size_t num_shards);

/// \brief How BuildShards lays shard files out on disk.
struct ShardBuildOptions {
  /// kWholeFile writes "JMIX" index files (shard_NNNNN.jmix); kPaged
  /// writes "JMPS" paged files (shard_NNNNN.jmps) servable without full
  /// materialization.
  ShardFileFormat format = ShardFileFormat::kWholeFile;
  /// Page size for paged shards; ignored for whole-file ones.
  uint32_t page_size = 4096;
};

/// \brief Partitions `index` into `num_shards` shard files inside
/// `output_dir` (created if missing), writes `manifest.jmim` next to
/// them, and returns the manifest path. The split is a pure function of
/// (index contents, policy, num_shards, options); rebuilding produces
/// byte-identical shard files and manifest.
Result<std::string> BuildShards(const SketchIndex& index, size_t num_shards,
                                ShardPartitionPolicy policy,
                                const std::string& output_dir,
                                const ShardBuildOptions& options);

/// \brief BuildShards with default options (whole-file shards).
Result<std::string> BuildShards(const SketchIndex& index, size_t num_shards,
                                ShardPartitionPolicy policy,
                                const std::string& output_dir);

}  // namespace joinmi

#endif  // JOINMI_DISCOVERY_SHARDED_INDEX_H_
