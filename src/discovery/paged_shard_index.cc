#include "src/discovery/paged_shard_index.h"

#include <utility>

#include "src/common/thread_pool.h"
#include "src/discovery/topk_merge.h"
#include "src/sketch/serialize.h"

namespace joinmi {

std::string EncodeCandidateRecord(const ColumnPairRef& ref,
                                  const Sketch& sketch) {
  std::string out;
  wire::AppendLengthPrefixed(&out, ref.table_name);
  wire::AppendLengthPrefixed(&out, ref.key_column);
  wire::AppendLengthPrefixed(&out, ref.value_column);
  wire::AppendLengthPrefixed(&out, SerializeSketch(sketch));
  return out;
}

Result<CandidateRecord> DecodeCandidateRecord(const std::string& record) {
  wire::Reader reader(record);
  CandidateRecord out;
  JOINMI_RETURN_NOT_OK(reader.ReadLengthPrefixed(&out.ref.table_name));
  JOINMI_RETURN_NOT_OK(reader.ReadLengthPrefixed(&out.ref.key_column));
  JOINMI_RETURN_NOT_OK(reader.ReadLengthPrefixed(&out.ref.value_column));
  std::string blob;
  JOINMI_RETURN_NOT_OK(reader.ReadLengthPrefixed(&blob));
  JOINMI_ASSIGN_OR_RETURN(out.sketch, DeserializeSketch(blob));
  if (!reader.AtEnd()) {
    return Status::IOError("trailing bytes after candidate record");
  }
  return out;
}

Result<std::unique_ptr<PagedShardClient>> PagedShardClient::Open(
    const std::string& path, std::vector<uint64_t> global_indices) {
  return Open(path, std::move(global_indices), Options());
}

Result<std::unique_ptr<PagedShardClient>> PagedShardClient::Open(
    const std::string& path, std::vector<uint64_t> global_indices,
    const Options& options) {
  JOINMI_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::PagedShardFile> file,
      storage::PagedShardFile::Open(path, options.pool_pages));
  if (global_indices.size() != file->num_records()) {
    return Status::InvalidArgument(
        "shard holds " + std::to_string(file->num_records()) +
        " candidates but the global index mapping lists " +
        std::to_string(global_indices.size()));
  }
  for (size_t i = 1; i < global_indices.size(); ++i) {
    if (global_indices[i - 1] >= global_indices[i]) {
      return Status::InvalidArgument(
          "shard global indices are not strictly increasing");
    }
  }
  return std::unique_ptr<PagedShardClient>(
      new PagedShardClient(std::move(file), std::move(global_indices),
                           options.prepared_cache_entries));
}

Result<std::shared_ptr<const PagedShardClient::Materialized>>
PagedShardClient::Materialize(size_t index) const {
  if (cache_capacity_ > 0) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = prepared_cache_.find(index);
    if (it != prepared_cache_.end()) return it->second;
  }
  JOINMI_ASSIGN_OR_RETURN(std::string bytes, file_->ReadRecord(index));
  JOINMI_ASSIGN_OR_RETURN(CandidateRecord record,
                          DecodeCandidateRecord(bytes));
  JOINMI_ASSIGN_OR_RETURN(
      PreparedCandidateSketch prepared,
      PreparedCandidateSketch::Create(std::move(record.sketch)));
  auto materialized = std::make_shared<const Materialized>(
      Materialized{std::move(record.ref), std::move(prepared)});
  if (cache_capacity_ > 0) {
    // First admitted stays: a bounded set of hot candidates keeps its
    // probe maps across queries with zero eviction churn; everything else
    // rematerializes per probe, bounded by the buffer pool.
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (prepared_cache_.size() < cache_capacity_) {
      auto inserted = prepared_cache_.emplace(index, materialized);
      return inserted.first->second;
    }
  }
  return materialized;
}

Result<ShardSearchResult> PagedShardClient::Search(const JoinMIQuery& query,
                                                   size_t k,
                                                   size_t num_threads) const {
  if (k == 0) {
    return Status::InvalidArgument("shard search requires k >= 1");
  }
  // Same whole-shard fail-fast as SketchIndex::EvaluateAll: a seed
  // mismatch is one configuration error, not num_records() hard errors.
  if (query.train_sketch().hash_seed != config().hash_seed) {
    return Status::InvalidArgument(
        "query sketch hash seed " +
        std::to_string(query.train_sketch().hash_seed) +
        " does not match index hash seed " +
        std::to_string(config().hash_seed));
  }

  // Per-candidate outcome, written by exactly one worker. The taxonomy
  // matches the in-memory path, with one paged-only case folded into
  // "hard error": a record whose page fails checksum on fault-in. That
  // keeps a single corrupt page from failing the whole query — only the
  // probes that touch it.
  struct Outcome {
    std::optional<JoinMIEstimate> estimate;
    bool skipped = false;
    ColumnPairRef ref;
  };
  const size_t count = num_candidates();
  std::vector<Outcome> outcomes(count);
  auto evaluate_one = [this, &query, &outcomes](size_t i) {
    auto materialized = Materialize(i);
    if (!materialized.ok()) return;  // hard error
    auto estimate = query.Estimate((*materialized)->prepared);
    if (estimate.ok()) {
      outcomes[i].estimate = *estimate;
      outcomes[i].ref = (*materialized)->ref;
    } else if (estimate.status().IsOutOfRange()) {
      outcomes[i].skipped = true;
    }
  };
  const size_t threads = num_threads == 0 ? ThreadPool::DefaultThreadCount()
                                          : num_threads;
  if (threads <= 1 || count <= 1) {
    for (size_t i = 0; i < count; ++i) evaluate_one(i);
  } else {
    ThreadPool pool(threads);
    for (size_t i = 0; i < count; ++i) {
      pool.Submit([&evaluate_one, i] { evaluate_one(i); });
    }
    pool.Wait();
  }

  ShardSearchResult result;
  result.num_candidates = count;
  std::vector<std::optional<JoinMIEstimate>> estimates;
  estimates.reserve(count);
  for (Outcome& outcome : outcomes) {
    if (outcome.estimate.has_value()) {
      ++result.num_evaluated;
    } else if (outcome.skipped) {
      ++result.num_skipped;
    } else {
      ++result.num_errors;
    }
    estimates.push_back(outcome.estimate);
  }
  internal::TopKSelection selection = internal::SelectTopKByMI(
      estimates, k, [this](size_t i) { return global_indices_[i]; });
  result.hits.reserve(selection.indices.size());
  for (size_t i : selection.indices) {
    result.hits.push_back(ShardSearchHit{global_indices_[i], outcomes[i].ref,
                                         *estimates[i]});
  }
  return result;
}

}  // namespace joinmi
