// discovery::Router — the front tier of serving, and the ONE construction
// path for a queryable deployment. Router::Open(RouterOptions) subsumes
// the manual wiring callers used to do by hand (ShardedSketchIndex::Load
// + picking among LocalFileFactory / RpcShardClient::Factory /
// ReplicaShardClient::Factory and threading three option structs through
// them): name a manifest, optionally an endpoints file, tune one
// ServingOptions, and the router assembles the right backend.
//
// Behind the facade, the router adds what every deployment front tier
// needs and no caller should re-implement:
//
//   Result cache. A bounded LRU over complete query answers, keyed by
//   (the query's full JoinMIConfig wire bytes, the train sketch's
//   Checksum64 digest, k, min_join_size). The config bytes make any
//   estimator/width/seed difference a different key; the digest stands in
//   for the sketch contents the way the v2 upload protocol already trusts
//   it. A hit returns a copy of the stored TopKSearchResult — the doubles
//   are copied, not recomputed, so a cached answer is bit-identical to
//   the answer that populated it. DEGRADED answers (shard_failures
//   non-empty) are never cached: caching a partial answer would keep
//   serving the outage after the shard recovered. Reload() swaps the
//   index and clears the cache, so an answer can never outlive the
//   manifest it was computed from.
//
//   Admission control. An AdmissionGate bounds queries concurrently
//   inside the router (RouterOptions::max_pending; 0 = unbounded). The
//   gate sits BEFORE the cache on purpose: an overloaded front tier must
//   shed deterministically, and "reject unless it happens to be cached"
//   would make rejection timing-dependent. Rejected queries get
//   StatusCode::kOverloaded with a "retry_after_ms=N" hint
//   (common/admission.h) and zero side effects.
//
//   Metrics. Every router owns a metrics::Registry. Hot-path counters
//   (router.cache.{hits,misses,evictions}, router.admission.{admitted,
//   rejected}, router.queries.{ok,degraded,failed}) update on relaxed
//   atomics; StatsJson() additionally absorbs the gauges maintained
//   elsewhere — per-shard connection-pool dials, pipelining high-water
//   marks, replica mark-downs, paged-shard buffer-pool stats — into one
//   JSON document. See README "Front tier" for the name table.
//
// Router implements Searchable, so the free TopKJoinMISearch drives it
// exactly like a bare index — existing call sites upgrade by swapping the
// object, not the call.

#ifndef JOINMI_DISCOVERY_ROUTER_H_
#define JOINMI_DISCOVERY_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/admission.h"
#include "src/common/metrics.h"
#include "src/discovery/searchable.h"
#include "src/discovery/serving_options.h"
#include "src/discovery/sharded_index.h"

namespace joinmi {

/// \brief Everything Router::Open needs to assemble a deployment.
struct RouterOptions {
  /// The deployment reference (required): a manifest file, a CURRENT
  /// pointer file, or a deployment directory — resolved through
  /// ingest::ResolveManifestPath at Open and again at every no-arg
  /// Reload(), so a directory-referenced router follows published
  /// generations. Shard paths resolve relative to the resolved manifest's
  /// directory for local deployments.
  std::string manifest_path;

  /// Remote deployment: an endpoints file (ReadShardEndpoints format —
  /// line i lists shard i's replicas). Empty = serve local shard files.
  std::string endpoints_path;
  /// Remote deployment, programmatic: shard i's replicas, pre-parsed.
  /// Takes precedence over `endpoints_path` when non-empty.
  std::vector<std::vector<ShardEndpoint>> replica_endpoints;

  /// The one knob struct every backend slices (see serving_options.h).
  ServingOptions serving;

  /// Result-cache entry bound; 0 disables caching entirely.
  size_t cache_entries = 128;
  /// Result-cache byte budget (approximate, counts keys + hit payloads);
  /// 0 = no byte bound (the entry bound still applies).
  size_t cache_max_bytes = 16u * 1024u * 1024u;

  /// Queries concurrently inside the router before kOverloaded rejection;
  /// 0 = unbounded (the historical behavior).
  size_t max_pending = 0;
  /// The "retry_after_ms=N" hint stamped into rejections.
  int retry_after_hint_ms = 50;

  /// Default evaluation/fan-out parallelism when a call passes 0.
  size_t num_threads = 0;

  /// Test seam: when set, Open uses this factory verbatim instead of
  /// resolving one from the fields above (e.g. to inject a blocking or
  /// failing ShardClient).
  ShardClientFactory factory_override;
};

/// \brief Point-in-time cache counters, for drills and tests.
struct RouterCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  size_t bytes = 0;
};

class Router : public Searchable {
 public:
  /// \brief Assembles the deployment `options` describes: loads the
  /// manifest, resolves the backend (replica endpoints -> replica-aware
  /// clients; single-endpoint lines -> plain RPC clients; no endpoints ->
  /// local shard files), and wires cache + admission + metrics around it.
  /// Fails loudly on manifest/endpoint mismatches, exactly as the
  /// underlying factories always have.
  static Result<std::unique_ptr<Router>> Open(RouterOptions options);

  // Pinned: the admission gate and registry hand out raw pointers.
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // ----------------------------------------------------------- Searchable

  const JoinMIConfig& search_config() const override;

  /// \brief The front-tier query path: admission gate, then cache, then
  /// the sharded fan-out. `num_threads` 0 falls back to
  /// RouterOptions::num_threads. Cache hits are bit-identical to the
  /// recomputation they stand in for; degraded answers pass through
  /// uncached.
  Result<TopKSearchResult> SearchQuery(const JoinMIQuery& query, size_t k,
                                       size_t num_threads,
                                       ShardQueryMode mode) const override;

  /// \brief Convenience: sketch `base` under the deployment's config and
  /// search — the free TopKJoinMISearch over this router.
  Result<TopKSearchResult> Search(const Table& base, const SearchSpec& spec,
                                  size_t k,
                                  ShardQueryMode mode = ShardQueryMode::kStrict)
      const;

  // ------------------------------------------------------------ Lifecycle

  /// \brief Re-opens the manifest through the same backend factory and
  /// swaps it in atomically. The result cache is cleared uncondition-
  /// ally — a new manifest epoch invalidates every cached answer, even
  /// when the contents happen to agree (and the cache key carries the
  /// epoch besides, so a stale entry could never satisfy a new-epoch
  /// lookup anyway). In-flight queries finish against the index they
  /// started with.
  Status Reload(const std::string& manifest_path);

  /// \brief Re-resolves the deployment reference Open() received
  /// (directory / CURRENT pointer / manifest path) and reloads whatever
  /// generation it names now — the one-call "pick up the publish" path.
  Status Reload();

  /// \brief Manifest epoch of the generation currently serving (0 for
  /// pre-epoch manifests).
  uint64_t epoch() const;

  // -------------------------------------------------------- Introspection

  const ShardedSketchIndex& index() const;
  size_t num_shards() const;
  /// \brief Total candidates served.
  size_t size() const;

  RouterCacheStats cache_stats() const;
  const AdmissionGate& admission() const { return gate_; }
  /// \brief The router's registry — tools may hang extra counters off it.
  metrics::Registry& metrics() const { return registry_; }
  /// \brief One JSON document: registry counters/histograms plus the
  /// absorbed per-shard gauges (pool dials, pipelining HWM, replica
  /// mark-downs, paged buffer-pool stats). See README for the name table.
  std::string StatsJson() const;

 private:
  struct CacheEntry {
    std::string key;
    TopKSearchResult result;
    size_t bytes = 0;
  };
  using LruList = std::list<CacheEntry>;

  Router(RouterOptions options, ShardClientFactory factory,
         std::shared_ptr<const ShardedSketchIndex> index);

  /// Cache key: manifest epoch + config wire bytes + sketch digest + k +
  /// min_join_size.
  std::string CacheKey(const JoinMIQuery& query, size_t k) const;
  static size_t ApproximateBytes(const std::string& key,
                                 const TopKSearchResult& result);

  /// Looks `key` up, refreshing LRU order. True on hit (copies into
  /// `*out`).
  bool CacheLookup(const std::string& key, TopKSearchResult* out) const;
  void CacheInsert(std::string key, const TopKSearchResult& result) const;
  void CacheClear() const;

  std::shared_ptr<const ShardedSketchIndex> snapshot() const;

  RouterOptions options_;
  ShardClientFactory factory_;
  // The deployment's config, copied out of the index so search_config()
  // can return a reference that survives Reload's index swap. A Reload
  // that CHANGES the config while queries are in flight is not supported
  // (the queries' sketches would be stale anyway).
  JoinMIConfig config_;
  // The deployment reference Open() received, verbatim; the no-arg
  // Reload() re-resolves it so a CURRENT flip is picked up without the
  // caller naming the new generation.
  std::string deployment_ref_;
  // Epoch of the manifest currently serving; folded into every cache key.
  std::atomic<uint64_t> epoch_{0};

  mutable std::mutex index_mutex_;
  std::shared_ptr<const ShardedSketchIndex> index_;

  mutable std::mutex cache_mutex_;
  mutable LruList lru_;  // front = most recent
  mutable std::unordered_map<std::string, LruList::iterator> cache_;
  mutable size_t cache_bytes_ = 0;

  mutable AdmissionGate gate_;
  mutable metrics::Registry registry_;
  // Hoisted hot-path metric handles (stable for the registry's lifetime).
  metrics::Counter* cache_hits_;
  metrics::Counter* cache_misses_;
  metrics::Counter* cache_evictions_;
  metrics::Counter* admitted_;
  metrics::Counter* rejected_;
  metrics::Counter* queries_ok_;
  metrics::Counter* queries_degraded_;
  metrics::Counter* queries_failed_;
  metrics::Histogram* search_latency_;
};

}  // namespace joinmi

#endif  // JOINMI_DISCOVERY_ROUTER_H_
