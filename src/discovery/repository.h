// A named collection of tables plus the paper's two-column-table extraction
// (Section V-C): for each table, every pair of a string join-key attribute
// and a string-or-numeric data attribute becomes a candidate two-column
// table T_A[K_A, A].

#ifndef JOINMI_DISCOVERY_REPOSITORY_H_
#define JOINMI_DISCOVERY_REPOSITORY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/table/table.h"

namespace joinmi {

/// \brief Reference to one candidate column pair inside a repository.
struct ColumnPairRef {
  std::string table_name;
  std::string key_column;
  std::string value_column;

  std::string ToString() const {
    return table_name + "[" + key_column + ", " + value_column + "]";
  }
};

/// \brief An in-memory dataset repository.
class TableRepository {
 public:
  /// \brief Registers a table; names must be unique.
  Status AddTable(const std::string& name, std::shared_ptr<Table> table);

  Result<std::shared_ptr<Table>> GetTable(const std::string& name) const;

  size_t num_tables() const { return tables_.size(); }
  std::vector<std::string> table_names() const;

  /// \brief Enumerates all ⟨K_A, A⟩ pairs with K_A a string attribute and A
  /// a string or numeric attribute (the paper's candidate universe).
  std::vector<ColumnPairRef> ExtractColumnPairs() const;

 private:
  // Ordered map keeps enumeration deterministic.
  std::map<std::string, std::shared_ptr<Table>> tables_;
};

}  // namespace joinmi

#endif  // JOINMI_DISCOVERY_REPOSITORY_H_
