// Parallel batch discovery: fan one MI-over-join query out across every
// candidate column pair in a repository and return a deterministic top-k —
// the online half of the paper's discovery deployment (Section V-C), built
// for scale: the base sketch is built once and shared (read-only) by all
// worker threads, and results are merged in candidate-enumeration order so
// rankings are identical for any thread count.
//
// Entry points (the result/spec types live in searchable.h):
//   - the repository-scan overload, which sketches every candidate per
//     query (no index needed);
//   - the Searchable overload, which drives ANY indexed target —
//     SketchIndex, ShardedSketchIndex, or discovery::Router — through one
//     interface. The historical per-type overloads forward here inline and
//     are deprecated.

#ifndef JOINMI_DISCOVERY_SEARCH_H_
#define JOINMI_DISCOVERY_SEARCH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/join_mi.h"
#include "src/discovery/repository.h"
#include "src/discovery/searchable.h"
#include "src/discovery/sharded_index.h"
#include "src/discovery/sketch_index.h"
#include "src/table/table.h"

namespace joinmi {

/// \brief Execution knobs for the repository-scan TopKJoinMISearch.
struct SearchConfig {
  /// Worker threads; 0 means hardware concurrency, 1 runs inline without a
  /// pool. Rankings do not depend on this value.
  size_t num_threads = 0;
  /// Per-query sketching/estimation configuration.
  JoinMIConfig join_config;
};

/// \brief Searches the repository for the k candidate column pairs whose
/// join-aggregation with `base_table` has the highest estimated MI with
/// `spec.base_target`.
///
/// The base table's sketch is built exactly once and probed concurrently;
/// every candidate pair from `repository.ExtractColumnPairs()` is sketched
/// and estimated independently, so the search parallelizes embarrassingly.
/// Candidates whose estimate fails (e.g. overlap below
/// `config.join_config.min_join_size`) are counted in `num_skipped` rather
/// than failing the search.
Result<TopKSearchResult> TopKJoinMISearch(const Table& base_table,
                                          const SearchSpec& spec,
                                          const TableRepository& repository,
                                          size_t k,
                                          const SearchConfig& config = {});

/// \brief Index-backed search over any Searchable target: sketches the
/// base table once with the *target's* JoinMIConfig (so query and
/// candidate sketches are guaranteed to coordinate) and delegates ranking
/// to the target. For a SketchIndex this probes prepared candidate
/// sketches in-process; for a ShardedSketchIndex it fans out across
/// shards and merges on (MI desc, global insertion index asc) —
/// bit-identical to the unsharded index for any shard count, partitioning
/// policy, thread count, and local-vs-remote deployment; for a Router it
/// additionally consults the result cache and admission gate. `mode`
/// governs shard-failure handling (see searchable.h) and is ignored by
/// unsharded targets.
Result<TopKSearchResult> TopKJoinMISearch(
    const Table& base_table, const SearchSpec& spec, const Searchable& target,
    size_t k, size_t num_threads = 0,
    ShardQueryMode mode = ShardQueryMode::kStrict);

/// \brief Deprecated: the SketchIndex-specific overload, kept one release
/// as an inline forwarder. Use the Searchable overload above.
inline Result<TopKSearchResult> TopKJoinMISearch(const Table& base_table,
                                                 const SearchSpec& spec,
                                                 const SketchIndex& index,
                                                 size_t k,
                                                 size_t num_threads = 0) {
  return TopKJoinMISearch(base_table, spec,
                          static_cast<const Searchable&>(index), k,
                          num_threads, ShardQueryMode::kStrict);
}

/// \brief Deprecated: the ShardedSketchIndex-specific overload, kept one
/// release as an inline forwarder. Use the Searchable overload above.
inline Result<TopKSearchResult> TopKJoinMISearch(
    const Table& base_table, const SearchSpec& spec,
    const ShardedSketchIndex& index, size_t k, size_t num_threads = 0,
    ShardQueryMode mode = ShardQueryMode::kStrict) {
  return TopKJoinMISearch(base_table, spec,
                          static_cast<const Searchable&>(index), k,
                          num_threads, mode);
}

}  // namespace joinmi

#endif  // JOINMI_DISCOVERY_SEARCH_H_
