// Parallel batch discovery: fan one MI-over-join query out across every
// candidate column pair in a repository and return a deterministic top-k —
// the online half of the paper's discovery deployment (Section V-C), built
// for scale: the base sketch is built once and shared (read-only) by all
// worker threads, and results are merged in candidate-enumeration order so
// rankings are identical for any thread count.

#ifndef JOINMI_DISCOVERY_SEARCH_H_
#define JOINMI_DISCOVERY_SEARCH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/join_mi.h"
#include "src/discovery/repository.h"
#include "src/discovery/sharded_index.h"
#include "src/discovery/sketch_index.h"
#include "src/table/table.h"

namespace joinmi {

/// \brief Base-table column bindings for one discovery search.
struct SearchSpec {
  std::string base_key;     ///< K_Y: join key in the base table
  std::string base_target;  ///< Y: target attribute in the base table
};

/// \brief Execution knobs for TopKJoinMISearch.
struct SearchConfig {
  /// Worker threads; 0 means hardware concurrency, 1 runs inline without a
  /// pool. Rankings do not depend on this value.
  size_t num_threads = 0;
  /// Per-query sketching/estimation configuration.
  JoinMIConfig join_config;
};

/// \brief One ranked search answer.
struct SearchHit {
  ColumnPairRef candidate;
  JoinMIEstimate estimate;
};

/// \brief Outcome of one top-k discovery search.
struct TopKSearchResult {
  /// Hits sorted by MI descending; ties break on candidate enumeration
  /// order (table name, then key/value column), so the ranking is stable
  /// and reproducible.
  std::vector<SearchHit> hits;
  /// Column pairs enumerated from the repository (or indexed candidates).
  size_t num_candidates = 0;
  /// Candidates that produced an estimate.
  size_t num_evaluated = 0;
  /// Candidates skipped because the sketch-join overlap fell below
  /// config.min_join_size — expected in healthy repositories.
  size_t num_skipped = 0;
  /// Candidates that failed hard (missing tables, unsketchable columns,
  /// estimator errors). Kept separate from num_skipped so "overlap too
  /// small" is distinguishable from "repository is broken".
  size_t num_errors = 0;
  /// Shards that did not answer (sharded overload in degraded mode only;
  /// always empty otherwise). When non-empty, hits and counters cover the
  /// answering shards only.
  std::vector<ShardFailure> shard_failures;
};

/// \brief Searches the repository for the k candidate column pairs whose
/// join-aggregation with `base_table` has the highest estimated MI with
/// `spec.base_target`.
///
/// The base table's sketch is built exactly once and probed concurrently;
/// every candidate pair from `repository.ExtractColumnPairs()` is sketched
/// and estimated independently, so the search parallelizes embarrassingly.
/// Candidates whose estimate fails (e.g. overlap below
/// `config.join_config.min_join_size`) are counted in `num_skipped` rather
/// than failing the search.
Result<TopKSearchResult> TopKJoinMISearch(const Table& base_table,
                                          const SearchSpec& spec,
                                          const TableRepository& repository,
                                          size_t k,
                                          const SearchConfig& config = {});

/// \brief Index-backed search: probes a persisted SketchIndex instead of
/// re-sketching every candidate per query — the paper's sketch-once /
/// query-many deployment. The base table is sketched once with the
/// *index's* JoinMIConfig (so query and index sketches are guaranteed to
/// coordinate), then joined against every pre-built candidate sketch via
/// its prepared probe map. At matched config and seed the ranking is
/// identical to the repository overload's; only the per-query candidate
/// sketching cost disappears. `num_threads` 0 means hardware concurrency.
Result<TopKSearchResult> TopKJoinMISearch(const Table& base_table,
                                          const SearchSpec& spec,
                                          const SketchIndex& index,
                                          size_t k, size_t num_threads = 0);

/// \brief Sharded search: sketches the base table once with the sharded
/// index's config, fans the query out to every shard through its
/// ShardClient, and merges the per-shard top-k lists on
/// (MI desc, global insertion index asc). Because that is the same total
/// order the unsharded index overload ranks by, the result is bit-identical
/// to searching the unsharded index — for any shard count, either
/// partitioning policy, any thread count, and whether shards are local
/// files or remote servers. In ShardQueryMode::kDegraded a failed shard
/// lands in result.shard_failures instead of failing the query (see
/// sharded_index.h); the bit-identical guarantee then covers the shards
/// that answered.
Result<TopKSearchResult> TopKJoinMISearch(
    const Table& base_table, const SearchSpec& spec,
    const ShardedSketchIndex& index, size_t k, size_t num_threads = 0,
    ShardQueryMode mode = ShardQueryMode::kStrict);

}  // namespace joinmi

#endif  // JOINMI_DISCOVERY_SEARCH_H_
