#include "src/discovery/sketch_index.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/common/arena.h"
#include "src/common/thread_pool.h"
#include "src/sketch/serialize.h"

namespace joinmi {

namespace {

// Per-candidate query outcome, written by exactly one worker thread.
struct CandidateOutcome {
  std::optional<JoinMIEstimate> estimate;
  bool skipped = false;  // join below min_join_size (OutOfRange)
};

// The train sketch's runs of equal key_hash, in SoA form: run_keys[i] is
// the i-th distinct key (ascending — the builder sorts entries), and
// run_spans[i] its [begin, end) slice of train.entries. Computed once per
// EvaluateAll and shared by every candidate — the batched path's
// replacement for re-walking the train sketch's probe map per candidate.
// Split into two parallel arrays so the intersection loop scans a dense
// u64 key array (8 keys per cache line).
struct TrainRuns {
  std::vector<uint64_t> keys;
  std::vector<std::pair<uint32_t, uint32_t>> spans;
};

// Candidates scored per ThreadPool task. Small enough that a task's
// working set (one strip of extents + the shared train runs) stays
// cache-resident; large enough to amortize task dispatch.
constexpr size_t kCandidateStrip = 8;

// Shared read-only state for one EvaluateAll fan-out.
struct BatchContext {
  const Sketch* train;
  const TrainRuns* runs;
  const FlatSketchIndex* flat;
  const JoinMIConfig* config;
};

// Scores candidate `c` against the prepared train runs via the flat SoA
// arena. Produces the exact outcome query.Estimate(prepared) would: the
// join sample is assembled in train-entry order with train multiplicity
// and scored by the shared ScoreSketchJoinSample tail, so MI values are
// bit-identical to the per-candidate path.
//
// Scratch discipline: the match list lives in a thread_local bump arena
// and the sample in thread_local vectors that keep their capacity, so a
// warmed worker thread evaluates candidates without heap allocation —
// below-cutoff candidates skip before any sample value is copied.
void EvaluateFlatOne(const BatchContext& ctx, size_t c,
                     CandidateOutcome* outcome) {
  thread_local Arena arena;
  thread_local PairedSample sample;
  arena.Reset();

  struct MatchRun {
    uint32_t begin;
    uint32_t end;
    uint32_t local;
  };
  const TrainRuns& runs = *ctx.runs;
  const size_t num_runs = runs.keys.size();
  MatchRun* matches = arena.AllocateArray<MatchRun>(
      std::min(num_runs, static_cast<size_t>(ctx.flat->extent(c).len)));
  size_t num_matches = 0;
  size_t join_size = 0;
  // Both key arrays are sorted (builder invariant on both sides), so the
  // intersection is a linear merge over two contiguous u64 arrays — no
  // hashing, no pointer chasing, purely sequential reads. Matches fall
  // out in ascending key order == train-entry order, exactly the order
  // the per-candidate probe path emits.
  const uint64_t* train_keys = runs.keys.data();
  const uint64_t* cand_keys = ctx.flat->keys(c);
  const size_t cand_len = ctx.flat->extent(c).len;
  size_t i = 0;
  size_t j = 0;
  while (i < num_runs && j < cand_len) {
    const uint64_t tk = train_keys[i];
    const uint64_t ck = cand_keys[j];
    if (tk < ck) {
      ++i;
    } else if (ck < tk) {
      ++j;
    } else {
      const std::pair<uint32_t, uint32_t>& span = runs.spans[i];
      matches[num_matches++] =
          MatchRun{span.first, span.second, static_cast<uint32_t>(j)};
      join_size += span.second - span.first;
      ++i;
      ++j;
    }
  }
  const JoinMIConfig& config = *ctx.config;
  if (join_size < config.min_join_size) {
    outcome->skipped = true;
    return;
  }
  sample.x.clear();
  sample.y.clear();
  sample.x.reserve(join_size);
  sample.y.reserve(join_size);
  const Value* values = ctx.flat->values(c);
  const std::vector<SketchEntry>& entries = ctx.train->entries;
  for (size_t m = 0; m < num_matches; ++m) {
    const Value& x = values[matches[m].local];
    for (uint32_t i = matches[m].begin; i < matches[m].end; ++i) {
      sample.x.push_back(x);
      sample.y.push_back(entries[i].value);
    }
  }
  auto scored = ScoreSketchJoinSample(sample, join_size, config.estimator,
                                      config.mi_options, config.min_join_size);
  if (scored.ok()) {
    outcome->estimate =
        JoinMIEstimate{scored->mi, scored->estimator, scored->join_size,
                       /*sketched=*/true};
  } else if (scored.status().IsOutOfRange()) {
    outcome->skipped = true;
  }
  // Anything else stays {nullopt, skipped=false}: a hard error.
}

void EvaluateStrip(const BatchContext& ctx, size_t begin, size_t end,
                   CandidateOutcome* outcomes) {
  for (size_t c = begin; c < end; ++c) {
    EvaluateFlatOne(ctx, c, &outcomes[c]);
  }
}

}  // namespace

Status SketchIndex::AddCandidate(const Table& table,
                                 const ColumnPairRef& ref) {
  auto builder =
      MakeSketchBuilder(config_.sketch_method, config_.sketch_options());
  JOINMI_ASSIGN_OR_RETURN(auto key_col, table.GetColumn(ref.key_column));
  JOINMI_ASSIGN_OR_RETURN(auto value_col, table.GetColumn(ref.value_column));
  JOINMI_ASSIGN_OR_RETURN(
      Sketch sketch,
      builder->SketchCandidate(*key_col, *value_col, config_.aggregation));
  return AddSketch(ref, std::move(sketch));
}

Status SketchIndex::AddSketch(const ColumnPairRef& ref, Sketch sketch) {
  if (sketch.hash_seed != config_.hash_seed) {
    return Status::InvalidArgument(
        "sketch for " + ref.ToString() + " was built with hash seed " +
        std::to_string(sketch.hash_seed) + ", index config uses " +
        std::to_string(config_.hash_seed));
  }
  JOINMI_ASSIGN_OR_RETURN(PreparedCandidateSketch prepared,
                          PreparedCandidateSketch::Create(std::move(sketch)));
  // Both probe structures are built here, once per load, never per query:
  // the prepared probe map (per-candidate consumers) and the flat SoA
  // mirror (the batched EvaluateAll path).
  JOINMI_RETURN_NOT_OK(flat_.AddCandidate(prepared.sketch()).status());
  candidates_.push_back(IndexedCandidate{ref, std::move(prepared)});
  return Status::OK();
}

Result<size_t> SketchIndex::IndexRepository(
    const TableRepository& repository) {
  size_t indexed = 0;
  for (const ColumnPairRef& ref : repository.ExtractColumnPairs()) {
    JOINMI_ASSIGN_OR_RETURN(auto table, repository.GetTable(ref.table_name));
    // Candidates that fail to sketch (all-null columns, aggregator/type
    // mismatches) are skipped rather than failing the whole build.
    if (AddCandidate(*table, ref).ok()) ++indexed;
  }
  return indexed;
}

Result<IndexEvaluation> SketchIndex::EvaluateAll(const JoinMIQuery& query,
                                                 size_t num_threads) const {
  // The per-join seed check would catch this candidate by candidate, but a
  // whole-index mismatch is a configuration error worth one clear failure
  // instead of size() identical ones counted as errors.
  if (query.train_sketch().hash_seed != config_.hash_seed) {
    return Status::InvalidArgument(
        "query sketch hash seed " +
        std::to_string(query.train_sketch().hash_seed) +
        " does not match index hash seed " +
        std::to_string(config_.hash_seed));
  }
  std::vector<CandidateOutcome> outcomes(candidates_.size());
  // The train sketch's equal-key runs are shared by every candidate this
  // query touches; compute them once, up front. thread_local so the
  // steady-state query on a warmed thread reuses the vector's capacity.
  thread_local TrainRuns runs;
  runs.keys.clear();
  runs.spans.clear();
  const std::vector<SketchEntry>& entries = query.train_sketch().entries;
  for (uint32_t i = 0; i < entries.size();) {
    uint32_t end = i + 1;
    while (end < entries.size() &&
           entries[end].key_hash == entries[i].key_hash) {
      ++end;
    }
    runs.keys.push_back(entries[i].key_hash);
    runs.spans.emplace_back(i, end);
    i = end;
  }
  const BatchContext ctx{&query.train_sketch(), &runs, &flat_, &config_};
  const size_t threads = num_threads == 0 ? ThreadPool::DefaultThreadCount()
                                          : num_threads;
  if (threads <= 1 || candidates_.size() <= kCandidateStrip) {
    EvaluateStrip(ctx, 0, candidates_.size(), outcomes.data());
  } else {
    ThreadPool pool(threads);
    for (size_t begin = 0; begin < candidates_.size();
         begin += kCandidateStrip) {
      const size_t end =
          std::min(begin + kCandidateStrip, candidates_.size());
      pool.Submit([&ctx, begin, end, &outcomes] {
        EvaluateStrip(ctx, begin, end, outcomes.data());
      });
    }
    pool.Wait();
  }
  IndexEvaluation evaluation;
  evaluation.estimates.reserve(outcomes.size());
  for (CandidateOutcome& outcome : outcomes) {
    if (outcome.estimate.has_value()) {
      ++evaluation.num_evaluated;
    } else if (outcome.skipped) {
      ++evaluation.num_skipped;
    } else {
      ++evaluation.num_errors;
    }
    evaluation.estimates.push_back(std::move(outcome.estimate));
  }
  return evaluation;
}

Result<std::vector<DiscoveryHit>> SketchIndex::Query(const JoinMIQuery& query,
                                                     size_t top_k,
                                                     size_t num_threads) const {
  JOINMI_ASSIGN_OR_RETURN(IndexEvaluation evaluation,
                          EvaluateAll(query, num_threads));
  std::vector<size_t> ranked;
  ranked.reserve(evaluation.num_evaluated);
  for (size_t i = 0; i < evaluation.estimates.size(); ++i) {
    if (evaluation.estimates[i].has_value()) ranked.push_back(i);
  }
  // Strict weak order with no incomparable pairs: MI desc, join size desc,
  // then the candidate ref and finally the insertion index, so duplicated
  // candidates and exact ties cannot reorder across runs or thread counts.
  auto better = [this, &evaluation](size_t a, size_t b) {
    const JoinMIEstimate& ea = *evaluation.estimates[a];
    const JoinMIEstimate& eb = *evaluation.estimates[b];
    if (ea.mi != eb.mi) return ea.mi > eb.mi;
    if (ea.sample_size != eb.sample_size) {
      return ea.sample_size > eb.sample_size;
    }
    const ColumnPairRef& ra = candidates_[a].ref;
    const ColumnPairRef& rb = candidates_[b].ref;
    if (ra.table_name != rb.table_name) {
      return ra.table_name < rb.table_name;
    }
    if (ra.key_column != rb.key_column) {
      return ra.key_column < rb.key_column;
    }
    if (ra.value_column != rb.value_column) {
      return ra.value_column < rb.value_column;
    }
    return a < b;
  };
  const size_t take = std::min(top_k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + take, ranked.end(),
                    better);
  std::vector<DiscoveryHit> hits;
  hits.reserve(take);
  for (size_t r = 0; r < take; ++r) {
    const size_t i = ranked[r];
    const JoinMIEstimate& estimate = *evaluation.estimates[i];
    hits.push_back(DiscoveryHit{candidates_[i].ref, estimate.mi,
                                estimate.sample_size, estimate.estimator});
  }
  return hits;
}

// ------------------------------------------------------------ Persistence

namespace {

constexpr char kIndexMagic[4] = {'J', 'M', 'I', 'X'};
constexpr uint32_t kIndexVersion = 1;

// Bytes before the first candidate record: magic + version + the fixed
// config layout + the u64 candidate count. Anything shorter cannot even
// be an empty index, and saying so (with both sizes) beats the generic
// "truncated buffer" a field-by-field parse would surface.
constexpr size_t kIndexHeaderSize = 4 + 4 + kJoinMIConfigWireSize + 8;

}  // namespace

std::string SerializeIndex(const SketchIndex& index) {
  std::string out;
  wire::AppendRaw(&out, kIndexMagic, sizeof(kIndexMagic));
  wire::AppendPod<uint32_t>(&out, kIndexVersion);
  // The config layout is the shared one from core/config.cc; the index
  // format predates that sharing, so the bytes are unchanged.
  AppendJoinMIConfig(&out, index.config());
  wire::AppendPod<uint64_t>(&out, index.size());
  for (const IndexedCandidate& candidate : index.candidates()) {
    wire::AppendLengthPrefixed(&out, candidate.ref.table_name);
    wire::AppendLengthPrefixed(&out, candidate.ref.key_column);
    wire::AppendLengthPrefixed(&out, candidate.ref.value_column);
    wire::AppendLengthPrefixed(&out, SerializeSketch(candidate.sketch()));
  }
  return out;
}

Result<SketchIndex> DeserializeIndex(const std::string& data) {
  if (data.size() < kIndexHeaderSize) {
    return Status::IOError(
        data.empty()
            ? "index buffer is empty; a valid index is at least " +
                  std::to_string(kIndexHeaderSize) + " bytes (header alone)"
            : "index buffer is " + std::to_string(data.size()) +
                  " bytes but the index header alone is " +
                  std::to_string(kIndexHeaderSize) +
                  " — file truncated or not an index");
  }
  wire::Reader reader(data);
  char magic[4];
  JOINMI_RETURN_NOT_OK(reader.Read(&magic));
  if (std::memcmp(magic, kIndexMagic, sizeof(kIndexMagic)) != 0) {
    return Status::IOError("bad index magic");
  }
  uint32_t version = 0;
  JOINMI_RETURN_NOT_OK(reader.Read(&version));
  if (version != kIndexVersion) {
    return Status::IOError("unsupported index version " +
                           std::to_string(version));
  }
  JOINMI_ASSIGN_OR_RETURN(JoinMIConfig config, ReadJoinMIConfig(&reader));
  uint64_t count = 0;
  JOINMI_RETURN_NOT_OK(reader.Read(&count));
  // Each candidate needs at least 4 length prefixes (16 bytes) on the
  // wire; divide rather than multiply so a crafted count cannot overflow
  // past the check.
  if (count > reader.remaining() / 16) {
    return Status::IOError(
        "index header promises " + std::to_string(count) +
        " candidates but only " + std::to_string(reader.remaining()) +
        " bytes follow the header (at least " + std::to_string(count * 16) +
        " required) — file truncated after the header");
  }
  SketchIndex index(std::move(config));
  for (uint64_t i = 0; i < count; ++i) {
    // Attribute any parse failure to the candidate it happened in — "the
    // file ended inside candidate 37 of 100" localizes a truncation where
    // a bare "truncated buffer" cannot.
    const auto where = [&](const Status& st) {
      return Status(st.code(), "candidate " + std::to_string(i) + " of " +
                                   std::to_string(count) + ": " +
                                   st.message());
    };
    ColumnPairRef ref;
    Status st = reader.ReadLengthPrefixed(&ref.table_name);
    if (st.ok()) st = reader.ReadLengthPrefixed(&ref.key_column);
    if (st.ok()) st = reader.ReadLengthPrefixed(&ref.value_column);
    std::string blob;
    if (st.ok()) st = reader.ReadLengthPrefixed(&blob);
    if (!st.ok()) return where(st);
    auto sketch = DeserializeSketch(blob);
    if (!sketch.ok()) return where(sketch.status());
    // AddSketch re-validates seed agreement and candidate-side invariants,
    // so a tampered or mismatched payload cannot produce a poisoned index.
    st = index.AddSketch(std::move(ref), std::move(*sketch));
    if (!st.ok()) return where(st);
  }
  if (!reader.AtEnd()) {
    return Status::IOError("trailing bytes after index payload");
  }
  return index;
}

Status WriteIndexFile(const SketchIndex& index, const std::string& path) {
  return wire::WriteFileBytes(SerializeIndex(index), path);
}

Result<SketchIndex> ReadIndexFile(const std::string& path) {
  JOINMI_ASSIGN_OR_RETURN(std::string data, wire::ReadFileBytes(path));
  auto index = DeserializeIndex(data);
  if (!index.ok()) {
    // Provenance for operators: which file, and how big it actually was —
    // a 0-byte file from a failed copy and a half-written 40 MB file get
    // tellingly different messages.
    const Status& st = index.status();
    return Status(st.code(), "index file '" + path + "' (" +
                                 std::to_string(data.size()) +
                                 " bytes): " + st.message());
  }
  return index;
}

}  // namespace joinmi
