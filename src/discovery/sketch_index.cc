#include "src/discovery/sketch_index.h"

#include <algorithm>

namespace joinmi {

Status SketchIndex::AddCandidate(const Table& table,
                                 const ColumnPairRef& ref) {
  auto builder =
      MakeSketchBuilder(config_.sketch_method, config_.sketch_options());
  JOINMI_ASSIGN_OR_RETURN(auto key_col, table.GetColumn(ref.key_column));
  JOINMI_ASSIGN_OR_RETURN(auto value_col, table.GetColumn(ref.value_column));
  JOINMI_ASSIGN_OR_RETURN(
      Sketch sketch,
      builder->SketchCandidate(*key_col, *value_col, config_.aggregation));
  candidates_.push_back(IndexedCandidate{ref, std::move(sketch)});
  return Status::OK();
}

Result<size_t> SketchIndex::IndexRepository(
    const TableRepository& repository) {
  size_t indexed = 0;
  for (const ColumnPairRef& ref : repository.ExtractColumnPairs()) {
    JOINMI_ASSIGN_OR_RETURN(auto table, repository.GetTable(ref.table_name));
    // Candidates that fail to sketch (all-null columns, aggregator/type
    // mismatches) are skipped rather than failing the whole build.
    if (AddCandidate(*table, ref).ok()) ++indexed;
  }
  return indexed;
}

Result<std::vector<DiscoveryHit>> SketchIndex::Query(const JoinMIQuery& query,
                                                     size_t top_k) const {
  std::vector<DiscoveryHit> hits;
  hits.reserve(candidates_.size());
  for (const IndexedCandidate& candidate : candidates_) {
    auto estimate = query.Estimate(candidate.sketch);
    if (!estimate.ok()) continue;  // too-small join or incompatible types
    hits.push_back(DiscoveryHit{candidate.ref, estimate->mi,
                                estimate->sample_size, estimate->estimator});
  }
  std::sort(hits.begin(), hits.end(),
            [](const DiscoveryHit& a, const DiscoveryHit& b) {
              if (a.mi != b.mi) return a.mi > b.mi;
              return a.join_size > b.join_size;
            });
  if (hits.size() > top_k) hits.resize(top_k);
  return hits;
}

}  // namespace joinmi
