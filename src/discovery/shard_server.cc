#include "src/discovery/shard_server.h"

#include <sys/socket.h>

#include <chrono>
#include <filesystem>
#include <thread>
#include <utility>

#include "src/core/join_mi.h"
#include "src/discovery/rpc_messages.h"
#include "src/discovery/shard_manifest.h"
#include "src/sketch/serialize.h"

namespace joinmi {

Result<std::unique_ptr<ShardServer>> ShardServer::Create(
    const std::string& manifest_path, size_t shard,
    ShardServerOptions options) {
  if (options.num_workers == 0) {
    return Status::InvalidArgument("shard server needs at least one worker");
  }
  JOINMI_ASSIGN_OR_RETURN(ShardManifest manifest,
                          ReadManifestFile(manifest_path));
  if (shard >= manifest.shards.size()) {
    return Status::InvalidArgument(
        "shard index " + std::to_string(shard) +
        " is out of range: the manifest names " +
        std::to_string(manifest.shards.size()) + " shards");
  }
  // The same verified load path the local router uses: checksum and
  // candidate count against the manifest entry before anything parses.
  const std::string manifest_dir =
      std::filesystem::path(manifest_path).parent_path().string();
  JOINMI_ASSIGN_OR_RETURN(
      std::unique_ptr<ShardClient> client,
      ShardedSketchIndex::LocalFileFactory()(manifest, shard, manifest_dir));
  return std::unique_ptr<ShardServer>(
      new ShardServer(std::move(client), shard, std::move(options)));
}

ShardServer::~ShardServer() { Stop(); }

Status ShardServer::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("shard server already started");
  }
  JOINMI_ASSIGN_OR_RETURN(listener_,
                          net::Listener::Bind(options_.host, options_.port));
  workers_ = std::make_unique<ThreadPool>(options_.num_workers);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ShardServer::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Unblock workers parked in recv on idle connections; their loops then
  // observe stopping_ (or EOF) and wind down.
  {
    std::lock_guard<std::mutex> lock(active_mutex_);
    for (int fd : active_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  workers_.reset();  // drains and joins
  listener_.Close();
}

void ShardServer::AcceptLoop() {
  while (!stopping_.load()) {
    // Short poll so Stop() is honored promptly even with no traffic.
    auto accepted = listener_.AcceptWithTimeout(100);
    if (!accepted.ok()) {
      // OutOfRange is the poll timeout (and EINTR) — just look again.
      if (accepted.status().IsOutOfRange()) continue;
      if (stopping_.load()) break;
      // A real accept failure (e.g. EMFILE under fd exhaustion) leaves
      // the pending connection in the backlog, so poll() stays ready and
      // a bare continue would spin a core; back off before looking again.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    auto socket = std::make_shared<net::Socket>(std::move(*accepted));
    workers_->Submit([this, socket] {
      ServeConnection(std::move(*socket));
    });
  }
}

void ShardServer::ServeConnection(net::Socket socket) {
  if (!socket.SetTimeouts(options_.io_timeout_ms, options_.io_timeout_ms)
           .ok()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(active_mutex_);
    if (stopping_.load()) return;
    active_fds_.insert(socket.fd());
  }
  while (!stopping_.load()) {
    auto frame = net::RecvFrame(&socket);
    if (!frame.ok()) {
      // EOF, timeout, a mismatched protocol version, or garbage: the
      // stream is unusable (or gone), so there is nothing to answer.
      break;
    }
    std::string reply;
    const net::FrameType reply_type = HandleFrame(*frame, &reply);
    requests_served_.fetch_add(1);
    if (!net::SendFrame(&socket, reply_type, reply).ok()) break;
  }
  {
    std::lock_guard<std::mutex> lock(active_mutex_);
    active_fds_.erase(socket.fd());
  }
}

net::FrameType ShardServer::HandleFrame(const net::Frame& frame,
                                        std::string* reply) {
  switch (frame.type) {
    case net::FrameType::kHandshakeRequest: {
      handshakes_served_.fetch_add(1);
      rpc::HandshakeResponse response;
      response.config = client_->config();
      response.num_candidates = client_->num_candidates();
      *reply = rpc::EncodeHandshakeResponse(response);
      return net::FrameType::kHandshakeResponse;
    }
    case net::FrameType::kHealthRequest: {
      rpc::HealthResponse response;
      response.num_candidates = client_->num_candidates();
      response.requests_served = requests_served_.load();
      *reply = rpc::EncodeHealthResponse(response);
      return net::FrameType::kHealthResponse;
    }
    case net::FrameType::kSearchRequest: {
      rpc::SearchResponse response;
      auto run = [&]() -> Result<ShardSearchResult> {
        JOINMI_ASSIGN_OR_RETURN(rpc::SearchRequest request,
                                rpc::DecodeSearchRequest(frame.payload));
        JOINMI_ASSIGN_OR_RETURN(Sketch train_sketch,
                                DeserializeSketch(request.train_sketch));
        // The shard's own config governs the evaluation, with only the
        // caller's min_join_size substituted — the one knob that travels
        // per request (see rpc_messages.h).
        JoinMIConfig query_config = client_->config();
        query_config.min_join_size =
            static_cast<size_t>(request.min_join_size);
        JOINMI_ASSIGN_OR_RETURN(
            JoinMIQuery query,
            JoinMIQuery::FromTrainSketch(std::move(train_sketch),
                                         query_config));
        return client_->Search(query, static_cast<size_t>(request.k),
                               options_.eval_threads);
      };
      auto result = run();
      if (result.ok()) {
        response.status = Status::OK();
        response.result = std::move(*result);
      } else {
        response.status = result.status();
      }
      *reply = rpc::EncodeSearchResponse(response);
      return net::FrameType::kSearchResponse;
    }
    default: {
      *reply = rpc::EncodeErrorPayload(Status::InvalidArgument(
          std::string("shard server cannot handle a ") +
          net::FrameTypeToString(frame.type) + " frame"));
      return net::FrameType::kError;
    }
  }
}

}  // namespace joinmi
