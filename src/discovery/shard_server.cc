#include "src/discovery/shard_server.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "src/core/join_mi.h"
#include "src/discovery/rpc_messages.h"
#include "src/discovery/shard_manifest.h"
#include "src/ingest/delta_shard_client.h"
#include "src/ingest/generation.h"
#include "src/sketch/serialize.h"

namespace joinmi {

namespace {

// One loaded serving generation: the verified client plus the manifest
// epoch it came from. Create() and Reload() share this so they can never
// drift in what they validate.
struct LoadedGeneration {
  std::shared_ptr<const ShardClient> client;
  uint64_t epoch = 0;
};

Result<LoadedGeneration> LoadGeneration(const std::string& manifest_ref,
                                        size_t shard,
                                        const ShardServerOptions& options) {
  // The reference may be a deployment directory or a CURRENT pointer —
  // resolve it to the concrete generation being published right now.
  JOINMI_ASSIGN_OR_RETURN(const std::string manifest_path,
                          ingest::ResolveManifestPath(manifest_ref));
  JOINMI_ASSIGN_OR_RETURN(ShardManifest manifest,
                          ReadManifestFile(manifest_path));
  if (shard >= manifest.shards.size()) {
    return Status::InvalidArgument(
        "shard index " + std::to_string(shard) +
        " is out of range: the manifest names " +
        std::to_string(manifest.shards.size()) + " shards");
  }
  if (options.require_paged &&
      manifest.shards[shard].format != ShardFileFormat::kPaged) {
    return Status::InvalidArgument(
        "paged serving was required but the manifest records shard " +
        std::to_string(shard) + " ('" + manifest.shards[shard].path +
        "') as a " +
        std::string(ShardFileFormatToString(manifest.shards[shard].format)) +
        "-format file — rebuild with --format paged");
  }
  // The same verified load path the local router uses: whole-file shards
  // are checksum- and count-verified against the manifest entry before
  // anything parses; paged shards open by header + directory and verify
  // page checksums on fault-in. Delta overlays verify the committed
  // segment prefix the manifest pins.
  const std::string manifest_dir =
      std::filesystem::path(manifest_path).parent_path().string();
  ShardedSketchIndex::LocalShardLoadOptions load_options;
  if (options.pool_pages > 0) load_options.pool_pages = options.pool_pages;
  JOINMI_ASSIGN_OR_RETURN(std::unique_ptr<ShardClient> client,
                          ShardedSketchIndex::LocalFileFactory(load_options)(
                              manifest, shard, manifest_dir));
  LoadedGeneration loaded;
  loaded.client = std::shared_ptr<const ShardClient>(std::move(client));
  loaded.epoch = manifest.epoch;
  return loaded;
}

// Digs the paged base out of a serving client: a plain PagedShardClient,
// or a delta overlay whose base is paged. Null for whole-file serving.
const PagedShardClient* PagedOf(const ShardClient& client) {
  if (const auto* paged = dynamic_cast<const PagedShardClient*>(&client)) {
    return paged;
  }
  if (const auto* overlay =
          dynamic_cast<const ingest::DeltaShardClient*>(&client)) {
    return dynamic_cast<const PagedShardClient*>(&overlay->base());
  }
  return nullptr;
}

}  // namespace

Result<std::unique_ptr<ShardServer>> ShardServer::Create(
    const std::string& manifest_ref, size_t shard,
    ShardServerOptions options) {
  if (options.num_workers == 0) {
    return Status::InvalidArgument("shard server needs at least one worker");
  }
  JOINMI_ASSIGN_OR_RETURN(LoadedGeneration loaded,
                          LoadGeneration(manifest_ref, shard, options));
  return std::unique_ptr<ShardServer>(
      new ShardServer(std::move(loaded.client), loaded.epoch, manifest_ref,
                      shard, std::move(options)));
}

std::shared_ptr<const ShardClient> ShardServer::Snapshot() const {
  std::lock_guard<std::mutex> lock(client_mutex_);
  return client_;
}

Status ShardServer::Reload() {
  // One reload at a time: two concurrent reloads could otherwise load
  // generations N and N+1 and install them in the wrong order.
  std::lock_guard<std::mutex> reload_lock(reload_mutex_);
  JOINMI_ASSIGN_OR_RETURN(LoadedGeneration loaded,
                          LoadGeneration(manifest_ref_, shard_, options_));
  if (!(loaded.client->config() == config_)) {
    return Status::InvalidArgument(
        "reload refused: the new manifest generation was built under a "
        "different JoinMIConfig than the one this server started with — "
        "mixed-config serving would merge incomparable scores");
  }
  {
    std::lock_guard<std::mutex> lock(client_mutex_);
    client_ = std::move(loaded.client);
  }
  epoch_.store(loaded.epoch, std::memory_order_release);
  reloads_served_->Add();
  return Status::OK();
}

size_t ShardServer::num_candidates() const {
  return Snapshot()->num_candidates();
}

bool ShardServer::serving_paged() const {
  return PagedOf(*Snapshot()) != nullptr;
}

storage::PagedOpenStats ShardServer::paged_open_stats() const {
  auto snapshot = Snapshot();
  const PagedShardClient* paged = PagedOf(*snapshot);
  return paged != nullptr ? paged->open_stats() : storage::PagedOpenStats{};
}

storage::BufferPoolStats ShardServer::pool_stats() const {
  auto snapshot = Snapshot();
  const PagedShardClient* paged = PagedOf(*snapshot);
  return paged != nullptr ? paged->pool_stats() : storage::BufferPoolStats{};
}

size_t ShardServer::pool_capacity() const {
  auto snapshot = Snapshot();
  const PagedShardClient* paged = PagedOf(*snapshot);
  return paged != nullptr ? paged->pool_capacity() : 0;
}

std::string ShardServer::StatsJson() const {
  // Mirror live gauges into the registry (Set, not Add) so the snapshot
  // is one flat document; the hot-path counters are already in it.
  auto snapshot = Snapshot();
  registry_.GetCounter("server.shard")->Set(shard_);
  registry_.GetCounter("server.candidates")->Set(snapshot->num_candidates());
  registry_.GetCounter("server.epoch")
      ->Set(epoch_.load(std::memory_order_acquire));
  registry_.GetCounter("server.connections.open")->Set(open_connections());
  registry_.GetCounter("server.admission.pending")->Set(gate_.pending());
  registry_.GetCounter("server.admission.max_pending")
      ->Set(gate_.max_pending());
  registry_.GetCounter("server.admission.admitted")->Set(gate_.admitted());
  registry_.GetCounter("server.admission.rejected")->Set(gate_.rejected());
  const PagedShardClient* paged = PagedOf(*snapshot);
  registry_.GetCounter("server.paged")->Set(paged != nullptr ? 1 : 0);
  if (paged != nullptr) {
    const storage::PagedOpenStats open = paged->open_stats();
    registry_.GetCounter("server.paged.startup_bytes_read")
        ->Set(open.startup_bytes_read);
    registry_.GetCounter("server.paged.file_size")->Set(open.file_size);
    const storage::BufferPoolStats pool = paged->pool_stats();
    registry_.GetCounter("server.pool.hits")->Set(pool.hits);
    registry_.GetCounter("server.pool.misses")->Set(pool.misses);
    registry_.GetCounter("server.pool.evictions")->Set(pool.evictions);
    registry_.GetCounter("server.pool.capacity")->Set(paged->pool_capacity());
  }
  return registry_.SnapshotJson();
}

ShardServer::~ShardServer() { Stop(); }

Status ShardServer::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("shard server already started");
  }
  JOINMI_ASSIGN_OR_RETURN(net::Listener listener,
                          net::Listener::Bind(options_.host, options_.port));
  port_ = listener.port();
  workers_ = std::make_unique<ThreadPool>(options_.num_workers);
  net::EventLoopOptions loop_options;
  loop_options.idle_timeout_ms = options_.io_timeout_ms;
  JOINMI_ASSIGN_OR_RETURN(
      loop_,
      net::EventLoop::Create(
          std::move(listener),
          [this](net::EventLoop::ConnId conn, net::Frame frame) {
            // Loop thread: never evaluate here. Search frames pass the
            // admission gate FIRST — a rejection is answered directly
            // from the loop (one EncodeErrorPayload, no worker slot), so
            // an overloaded server keeps shedding load at wire speed
            // instead of queueing the rejections themselves. Everything
            // else (handshake, health, upload, stats, reload) bypasses
            // the gate: it is exactly what a backing-off client needs.
            AdmissionGate::Ticket ticket;
            const bool gated =
                frame.type == net::FrameType::kSearchRequest ||
                frame.type == net::FrameType::kBatchSearchRequest;
            if (gated) {
              auto admitted = gate_.TryEnter();
              if (!admitted.ok()) {
                loop_->Send(conn,
                            net::EncodeFrameAs(
                                frame.version, net::FrameType::kError,
                                frame.request_id,
                                rpc::EncodeErrorPayload(admitted.status())));
                return;
              }
              ticket = std::move(*admitted);
            }
            // The ticket rides to the worker and releases when the frame
            // is fully handled — pending counts queued AND executing.
            auto shared = std::make_shared<net::Frame>(std::move(frame));
            auto held =
                std::make_shared<AdmissionGate::Ticket>(std::move(ticket));
            workers_->Submit([this, conn, shared, held] {
              HandleFrame(conn, std::move(*shared));
              held->Release();
            });
          },
          [this](net::EventLoop::ConnId conn) {
            std::lock_guard<std::mutex> lock(cache_mutex_);
            sketch_cache_.erase(conn);
          },
          loop_options));
  return loop_->Start();
}

void ShardServer::Stop() {
  // call_once serializes concurrent Stop() calls: one thread tears down,
  // the rest block until it finished — never a double-join.
  std::call_once(stop_once_, [this] {
    if (loop_ == nullptr) return;  // never started
    // Phase 1: stop accepting and reading, so no new frames arrive.
    loop_->Quiesce();
    // Phase 2: drain the workers (their replies queue into the loop).
    workers_->Wait();
    // Phase 3: flush queued responses, then join the loop thread. After
    // this no frame callback can run, so no new worker task can appear.
    loop_->Stop(/*flush_timeout_ms=*/1000);
    // Phase 4: a frame read just before quiesce took effect may have
    // slipped a task past phase 2; the pool destructor drains it (its
    // reply is dropped by the stopped loop — indistinguishable from a
    // crash mid-send, which clients already handle).
    workers_.reset();
    std::lock_guard<std::mutex> lock(cache_mutex_);
    sketch_cache_.clear();
  });
}

void ShardServer::Reply(net::EventLoop::ConnId conn,
                        const net::Frame& request, net::FrameType type,
                        const std::string& payload) {
  loop_->Send(conn, net::EncodeFrameAs(request.version, type,
                                       request.request_id, payload));
}

void ShardServer::HandleFrame(net::EventLoop::ConnId conn,
                              net::Frame frame) {
  // Admission-time snapshot: this frame evaluates entirely against the
  // generation serving when its worker picked it up, even if a Reload
  // swaps the client mid-evaluation.
  const std::shared_ptr<const ShardClient> snapshot = Snapshot();
  switch (frame.type) {
    case net::FrameType::kHandshakeRequest: {
      handshakes_served_->Add();
      auto decoded = rpc::DecodeHandshakeRequest(frame.payload);
      if (!decoded.ok()) {
        Reply(conn, frame, net::FrameType::kError,
              rpc::EncodeErrorPayload(decoded.status()));
        return;
      }
      rpc::HandshakeResponse response;
      response.config = snapshot->config();
      response.num_candidates = snapshot->num_candidates();
      // Negotiate down to what both sides speak; an undeclared (v1)
      // request keeps protocol_version 1 and the legacy payload shape.
      response.protocol_version =
          std::min<uint32_t>(decoded->max_version, net::kProtocolVersion);
      Reply(conn, frame, net::FrameType::kHandshakeResponse,
            rpc::EncodeHandshakeResponse(response));
      return;
    }
    case net::FrameType::kHealthRequest: {
      health_served_->Add();
      rpc::HealthResponse response;
      response.num_candidates = snapshot->num_candidates();
      response.requests_served = searches_served_->value();
      Reply(conn, frame, net::FrameType::kHealthResponse,
            rpc::EncodeHealthResponse(response));
      return;
    }
    case net::FrameType::kSearchRequest: {
      searches_served_->Add();
      metrics::ScopedTimer timer(search_latency_);
      Reply(conn, frame, net::FrameType::kSearchResponse,
            HandleSearch(frame, *snapshot));
      return;
    }
    case net::FrameType::kSketchUploadRequest: {
      uploads_served_->Add();
      Reply(conn, frame, net::FrameType::kSketchUploadResponse,
            HandleSketchUpload(conn, frame));
      return;
    }
    case net::FrameType::kBatchSearchRequest: {
      searches_served_->Add();
      metrics::ScopedTimer timer(search_latency_);
      Reply(conn, frame, net::FrameType::kBatchSearchResponse,
            HandleBatchSearch(conn, frame, *snapshot));
      return;
    }
    case net::FrameType::kStatsRequest: {
      stats_served_->Add();
      rpc::StatsResponse response;
      response.status = Status::OK();
      response.json = StatsJson();
      Reply(conn, frame, net::FrameType::kStatsResponse,
            rpc::EncodeStatsResponse(response));
      return;
    }
    case net::FrameType::kReloadRequest: {
      rpc::ReloadResponse response;
      response.status = Reload();
      if (response.status.ok()) {
        auto reloaded = Snapshot();
        response.epoch = epoch();
        response.num_candidates = reloaded->num_candidates();
      }
      Reply(conn, frame, net::FrameType::kReloadResponse,
            rpc::EncodeReloadResponse(response));
      return;
    }
    default: {
      Reply(conn, frame, net::FrameType::kError,
            rpc::EncodeErrorPayload(Status::InvalidArgument(
                std::string("shard server cannot handle a ") +
                net::FrameTypeToString(frame.type) + " frame")));
      return;
    }
  }
}

std::string ShardServer::HandleSearch(const net::Frame& frame,
                                      const ShardClient& client) {
  rpc::SearchResponse response;
  auto run = [&]() -> Result<ShardSearchResult> {
    JOINMI_ASSIGN_OR_RETURN(rpc::SearchRequest request,
                            rpc::DecodeSearchRequest(frame.payload));
    JOINMI_ASSIGN_OR_RETURN(Sketch train_sketch,
                            DeserializeSketch(request.train_sketch));
    // The shard's own config governs the evaluation, with only the
    // caller's min_join_size substituted — the one knob that travels
    // per request (see rpc_messages.h).
    JoinMIConfig query_config = client.config();
    query_config.min_join_size = static_cast<size_t>(request.min_join_size);
    JOINMI_ASSIGN_OR_RETURN(
        JoinMIQuery query,
        JoinMIQuery::FromTrainSketch(std::move(train_sketch), query_config));
    return client.Search(query, static_cast<size_t>(request.k),
                         options_.eval_threads);
  };
  auto result = run();
  if (result.ok()) {
    response.status = Status::OK();
    response.result = std::move(*result);
  } else {
    response.status = result.status();
  }
  return rpc::EncodeSearchResponse(response);
}

std::string ShardServer::HandleSketchUpload(net::EventLoop::ConnId conn,
                                            const net::Frame& frame) {
  rpc::SketchUploadResponse response;
  auto run = [&]() -> Status {
    JOINMI_ASSIGN_OR_RETURN(rpc::SketchUploadRequest request,
                            rpc::DecodeSketchUploadRequest(frame.payload));
    response.digest = request.digest;
    const uint64_t computed = wire::Checksum64(request.train_sketch);
    if (computed != request.digest) {
      return Status::InvalidArgument(
          "sketch upload digest mismatch: declared " +
          std::to_string(request.digest) + ", bytes hash to " +
          std::to_string(computed));
    }
    // Deserialize now so a corrupt sketch is rejected at upload time, not
    // on every batch, and cache the parsed form — batch variants copy it
    // instead of re-parsing.
    JOINMI_ASSIGN_OR_RETURN(Sketch sketch,
                            DeserializeSketch(request.train_sketch));
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto& cache = sketch_cache_[conn];
    if (cache.count(request.digest) > 0) return Status::OK();  // idempotent
    if (cache.size() >= kMaxCachedSketches) {
      return Status::InvalidArgument(
          "connection sketch cache is full (" +
          std::to_string(kMaxCachedSketches) +
          " sketches); open a new connection for new queries");
    }
    cache.emplace(request.digest,
                  std::make_shared<const Sketch>(std::move(sketch)));
    return Status::OK();
  };
  response.status = run();
  return rpc::EncodeSketchUploadResponse(response);
}

std::string ShardServer::HandleBatchSearch(net::EventLoop::ConnId conn,
                                           const net::Frame& frame,
                                           const ShardClient& client) {
  rpc::BatchSearchResponse response;
  auto run = [&]() -> Status {
    JOINMI_ASSIGN_OR_RETURN(rpc::BatchSearchRequest request,
                            rpc::DecodeBatchSearchRequest(frame.payload));
    std::shared_ptr<const Sketch> sketch;
    {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      auto conn_cache = sketch_cache_.find(conn);
      if (conn_cache != sketch_cache_.end()) {
        auto entry = conn_cache->second.find(request.sketch_digest);
        if (entry != conn_cache->second.end()) sketch = entry->second;
      }
    }
    if (sketch == nullptr) {
      return Status::InvalidArgument(
          "batch search names sketch digest " +
          std::to_string(request.sketch_digest) +
          " which was never uploaded on this connection");
    }
    response.responses.reserve(request.variants.size());
    for (const rpc::BatchSearchVariant& variant : request.variants) {
      rpc::SearchResponse one;
      auto evaluate = [&]() -> Result<ShardSearchResult> {
        JoinMIConfig query_config = client.config();
        query_config.min_join_size =
            static_cast<size_t>(variant.min_join_size);
        JOINMI_ASSIGN_OR_RETURN(
            JoinMIQuery query,
            JoinMIQuery::FromTrainSketch(*sketch, query_config));
        return client.Search(query, static_cast<size_t>(variant.k),
                             options_.eval_threads);
      };
      auto result = evaluate();
      if (result.ok()) {
        one.status = Status::OK();
        one.result = std::move(*result);
      } else {
        one.status = result.status();
      }
      response.responses.push_back(std::move(one));
    }
    return Status::OK();
  };
  response.status = run();
  if (!response.status.ok()) response.responses.clear();
  return rpc::EncodeBatchSearchResponse(response);
}

}  // namespace joinmi
