// The discovery ranking order, defined once: MI descending, then an
// ordering key ascending (candidate enumeration order for unsharded
// searches, the global insertion index for sharded ones). Every top-k
// selection — the unsharded merge, the per-shard selection, and the
// cross-shard merge — must sort by this same total order; if any of them
// diverges, the bit-identical guarantee between sharded and unsharded
// rankings breaks. Internal to the discovery module.

#ifndef JOINMI_DISCOVERY_TOPK_MERGE_H_
#define JOINMI_DISCOVERY_TOPK_MERGE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/join_mi.h"

namespace joinmi {
namespace internal {

/// \brief True iff (mi_a, key_a) ranks strictly before (mi_b, key_b).
inline bool BetterByMIThenKey(double mi_a, uint64_t key_a, double mi_b,
                              uint64_t key_b) {
  if (mi_a != mi_b) return mi_a > mi_b;
  return key_a < key_b;
}

/// \brief Indices of the top-k present estimates plus how many were
/// present at all (the evaluated count, independent of k).
struct TopKSelection {
  std::vector<size_t> indices;
  size_t num_evaluated = 0;
};

/// \brief Selects the top-k present estimates ordered by
/// (MI desc, order_key_at(i) asc). `order_key_at` maps a local position to
/// its ordering key and must be injective over present estimates.
template <typename OrderKeyAt>
TopKSelection SelectTopKByMI(
    const std::vector<std::optional<JoinMIEstimate>>& estimates, size_t k,
    OrderKeyAt&& order_key_at) {
  TopKSelection selection;
  selection.indices.reserve(estimates.size());
  for (size_t i = 0; i < estimates.size(); ++i) {
    if (estimates[i].has_value()) selection.indices.push_back(i);
  }
  selection.num_evaluated = selection.indices.size();
  auto better = [&estimates, &order_key_at](size_t a, size_t b) {
    return BetterByMIThenKey(estimates[a]->mi, order_key_at(a),
                             estimates[b]->mi, order_key_at(b));
  };
  const size_t take = std::min(k, selection.indices.size());
  std::partial_sort(selection.indices.begin(),
                    selection.indices.begin() + take, selection.indices.end(),
                    better);
  selection.indices.resize(take);
  return selection;
}

}  // namespace internal
}  // namespace joinmi

#endif  // JOINMI_DISCOVERY_TOPK_MERGE_H_
