#include "src/discovery/ranking.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "src/common/stats.h"

namespace joinmi {

Result<RankingComparison> CompareEstimates(
    const std::vector<double>& full_join_mi,
    const std::vector<double>& sketch_mi) {
  RankingComparison cmp;
  cmp.count = full_join_mi.size();
  JOINMI_ASSIGN_OR_RETURN(cmp.mse, MeanSquaredError(full_join_mi, sketch_mi));
  cmp.rmse = std::sqrt(cmp.mse);
  JOINMI_ASSIGN_OR_RETURN(cmp.spearman,
                          SpearmanCorrelation(full_join_mi, sketch_mi));
  JOINMI_ASSIGN_OR_RETURN(cmp.pearson,
                          PearsonCorrelation(full_join_mi, sketch_mi));
  return cmp;
}

std::vector<size_t> TopKIndices(const std::vector<double>& scores, size_t k) {
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  const size_t take = std::min(k, order.size());
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<ptrdiff_t>(take), order.end(),
                    [&scores](size_t a, size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(take);
  return order;
}

Result<double> TopKOverlap(const std::vector<double>& reference,
                           const std::vector<double>& estimate, size_t k) {
  if (reference.size() != estimate.size()) {
    return Status::InvalidArgument("ranking lists must be paired");
  }
  if (k == 0 || reference.empty()) {
    return Status::InvalidArgument("k and list size must be positive");
  }
  const std::vector<size_t> ref_top = TopKIndices(reference, k);
  const std::vector<size_t> est_top = TopKIndices(estimate, k);
  const std::unordered_set<size_t> ref_set(ref_top.begin(), ref_top.end());
  size_t hits = 0;
  for (size_t idx : est_top) {
    if (ref_set.count(idx) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(ref_top.size());
}

}  // namespace joinmi
