#include "src/discovery/rpc_messages.h"

#include <utility>

#include "src/sketch/serialize.h"

namespace joinmi {
namespace rpc {

namespace {

Status CheckAtEnd(const wire::Reader& reader, const char* what) {
  if (!reader.AtEnd()) {
    return Status::IOError(std::string("trailing bytes after ") + what +
                           " payload");
  }
  return Status::OK();
}

void AppendEstimate(std::string* out, const JoinMIEstimate& estimate) {
  wire::AppendPod<double>(out, estimate.mi);
  wire::AppendPod<uint8_t>(out, static_cast<uint8_t>(estimate.estimator));
  wire::AppendPod<uint64_t>(out, estimate.sample_size);
  wire::AppendPod<uint8_t>(out, estimate.sketched ? 1 : 0);
}

Result<JoinMIEstimate> ReadEstimate(wire::Reader* reader) {
  JoinMIEstimate estimate;
  uint8_t estimator = 0, sketched = 0;
  uint64_t sample_size = 0;
  JOINMI_RETURN_NOT_OK(reader->Read(&estimate.mi));
  JOINMI_RETURN_NOT_OK(reader->Read(&estimator));
  JOINMI_RETURN_NOT_OK(reader->Read(&sample_size));
  JOINMI_RETURN_NOT_OK(reader->Read(&sketched));
  if (estimator > static_cast<uint8_t>(MIEstimatorKind::kDCKSG)) {
    return Status::IOError("unknown estimator tag in search response");
  }
  if (sketched > 1) {
    return Status::IOError("bad sketched flag in search response");
  }
  estimate.estimator = static_cast<MIEstimatorKind>(estimator);
  estimate.sample_size = sample_size;
  estimate.sketched = sketched == 1;
  return estimate;
}

}  // namespace

void AppendStatus(std::string* out, const Status& status) {
  wire::AppendPod<uint8_t>(out, static_cast<uint8_t>(status.code()));
  wire::AppendLengthPrefixed(out, status.message());
}

Status ReadStatus(wire::Reader* reader, Status* out) {
  uint8_t code = 0;
  std::string message;
  JOINMI_RETURN_NOT_OK(reader->Read(&code));
  JOINMI_RETURN_NOT_OK(reader->ReadLengthPrefixed(&message));
  if (code > static_cast<uint8_t>(StatusCode::kOverloaded)) {
    return Status::IOError("unknown status code tag " + std::to_string(code));
  }
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

// ------------------------------------------------------------- Handshake

std::string EncodeHandshakeRequest(const HandshakeRequest& request) {
  std::string out;
  // max_version 1 stays an empty payload so the bytes a v1 server sees
  // from an upgraded client are identical to what a v1 client sends.
  if (request.max_version >= 2) {
    wire::AppendPod<uint32_t>(&out, request.max_version);
  }
  return out;
}

Result<HandshakeRequest> DecodeHandshakeRequest(const std::string& payload) {
  HandshakeRequest request;
  if (payload.empty()) return request;
  wire::Reader reader(payload);
  JOINMI_RETURN_NOT_OK(reader.Read(&request.max_version));
  JOINMI_RETURN_NOT_OK(CheckAtEnd(reader, "handshake request"));
  if (request.max_version < 2) {
    return Status::IOError(
        "handshake request declares version " +
        std::to_string(request.max_version) +
        " explicitly; versions below 2 must use the empty payload");
  }
  return request;
}

std::string EncodeHandshakeResponse(const HandshakeResponse& response) {
  std::string out;
  AppendJoinMIConfig(&out, response.config);
  wire::AppendPod<uint64_t>(&out, response.num_candidates);
  // Trailing version only in the negotiated shape: a v1 client's decoder
  // enforces "no trailing bytes", so the legacy shape must stay exact.
  if (response.protocol_version >= 2) {
    wire::AppendPod<uint32_t>(&out, response.protocol_version);
  }
  return out;
}

Result<HandshakeResponse> DecodeHandshakeResponse(
    const std::string& payload) {
  wire::Reader reader(payload);
  HandshakeResponse response;
  JOINMI_ASSIGN_OR_RETURN(response.config, ReadJoinMIConfig(&reader));
  JOINMI_RETURN_NOT_OK(reader.Read(&response.num_candidates));
  if (!reader.AtEnd()) {
    JOINMI_RETURN_NOT_OK(reader.Read(&response.protocol_version));
    if (response.protocol_version < 2) {
      return Status::IOError("handshake response echoes version " +
                             std::to_string(response.protocol_version) +
                             " explicitly; v1 servers omit the field");
    }
  }
  JOINMI_RETURN_NOT_OK(CheckAtEnd(reader, "handshake response"));
  return response;
}

// ---------------------------------------------------------------- Search

std::string EncodeSearchRequest(const SearchRequest& request) {
  std::string out;
  wire::AppendLengthPrefixed(&out, request.train_sketch);
  wire::AppendPod<uint64_t>(&out, request.k);
  wire::AppendPod<uint64_t>(&out, request.min_join_size);
  return out;
}

Result<SearchRequest> DecodeSearchRequest(const std::string& payload) {
  wire::Reader reader(payload);
  SearchRequest request;
  JOINMI_RETURN_NOT_OK(reader.ReadLengthPrefixed(&request.train_sketch));
  JOINMI_RETURN_NOT_OK(reader.Read(&request.k));
  JOINMI_RETURN_NOT_OK(reader.Read(&request.min_join_size));
  JOINMI_RETURN_NOT_OK(CheckAtEnd(reader, "search request"));
  return request;
}

std::string EncodeSearchResponse(const SearchResponse& response) {
  std::string out;
  AppendStatus(&out, response.status);
  if (!response.status.ok()) return out;
  const ShardSearchResult& result = response.result;
  wire::AppendPod<uint64_t>(&out, result.num_candidates);
  wire::AppendPod<uint64_t>(&out, result.num_evaluated);
  wire::AppendPod<uint64_t>(&out, result.num_skipped);
  wire::AppendPod<uint64_t>(&out, result.num_errors);
  wire::AppendPod<uint64_t>(&out, result.hits.size());
  for (const ShardSearchHit& hit : result.hits) {
    wire::AppendPod<uint64_t>(&out, hit.global_index);
    wire::AppendLengthPrefixed(&out, hit.ref.table_name);
    wire::AppendLengthPrefixed(&out, hit.ref.key_column);
    wire::AppendLengthPrefixed(&out, hit.ref.value_column);
    AppendEstimate(&out, hit.estimate);
  }
  return out;
}

Result<SearchResponse> DecodeSearchResponse(const std::string& payload) {
  wire::Reader reader(payload);
  SearchResponse response;
  JOINMI_RETURN_NOT_OK(ReadStatus(&reader, &response.status));
  if (!response.status.ok()) {
    JOINMI_RETURN_NOT_OK(CheckAtEnd(reader, "search response"));
    return response;
  }
  uint64_t num_candidates = 0, num_evaluated = 0, num_skipped = 0,
           num_errors = 0, hit_count = 0;
  JOINMI_RETURN_NOT_OK(reader.Read(&num_candidates));
  JOINMI_RETURN_NOT_OK(reader.Read(&num_evaluated));
  JOINMI_RETURN_NOT_OK(reader.Read(&num_skipped));
  JOINMI_RETURN_NOT_OK(reader.Read(&num_errors));
  JOINMI_RETURN_NOT_OK(reader.Read(&hit_count));
  // Each hit needs at least 34 bytes (global index + three length
  // prefixes + estimate); divide rather than multiply so a crafted count
  // cannot overflow past the check.
  if (hit_count > reader.remaining() / 34) {
    return Status::IOError("search response hit count exceeds payload size");
  }
  response.result.num_candidates = static_cast<size_t>(num_candidates);
  response.result.num_evaluated = static_cast<size_t>(num_evaluated);
  response.result.num_skipped = static_cast<size_t>(num_skipped);
  response.result.num_errors = static_cast<size_t>(num_errors);
  response.result.hits.reserve(static_cast<size_t>(hit_count));
  for (uint64_t i = 0; i < hit_count; ++i) {
    ShardSearchHit hit;
    JOINMI_RETURN_NOT_OK(reader.Read(&hit.global_index));
    JOINMI_RETURN_NOT_OK(reader.ReadLengthPrefixed(&hit.ref.table_name));
    JOINMI_RETURN_NOT_OK(reader.ReadLengthPrefixed(&hit.ref.key_column));
    JOINMI_RETURN_NOT_OK(reader.ReadLengthPrefixed(&hit.ref.value_column));
    JOINMI_ASSIGN_OR_RETURN(hit.estimate, ReadEstimate(&reader));
    response.result.hits.push_back(std::move(hit));
  }
  JOINMI_RETURN_NOT_OK(CheckAtEnd(reader, "search response"));
  return response;
}

// ---------------------------------------------------------------- Health

std::string EncodeHealthResponse(const HealthResponse& response) {
  std::string out;
  wire::AppendPod<uint64_t>(&out, response.num_candidates);
  wire::AppendPod<uint64_t>(&out, response.requests_served);
  return out;
}

Result<HealthResponse> DecodeHealthResponse(const std::string& payload) {
  wire::Reader reader(payload);
  HealthResponse response;
  JOINMI_RETURN_NOT_OK(reader.Read(&response.num_candidates));
  JOINMI_RETURN_NOT_OK(reader.Read(&response.requests_served));
  JOINMI_RETURN_NOT_OK(CheckAtEnd(reader, "health response"));
  return response;
}

// ---------------------------------------------------- Sketch upload (v2)

std::string EncodeSketchUploadRequest(const SketchUploadRequest& request) {
  std::string out;
  wire::AppendPod<uint64_t>(&out, request.digest);
  wire::AppendLengthPrefixed(&out, request.train_sketch);
  return out;
}

Result<SketchUploadRequest> DecodeSketchUploadRequest(
    const std::string& payload) {
  wire::Reader reader(payload);
  SketchUploadRequest request;
  JOINMI_RETURN_NOT_OK(reader.Read(&request.digest));
  JOINMI_RETURN_NOT_OK(reader.ReadLengthPrefixed(&request.train_sketch));
  JOINMI_RETURN_NOT_OK(CheckAtEnd(reader, "sketch upload request"));
  return request;
}

std::string EncodeSketchUploadResponse(const SketchUploadResponse& response) {
  std::string out;
  AppendStatus(&out, response.status);
  wire::AppendPod<uint64_t>(&out, response.digest);
  return out;
}

Result<SketchUploadResponse> DecodeSketchUploadResponse(
    const std::string& payload) {
  wire::Reader reader(payload);
  SketchUploadResponse response;
  JOINMI_RETURN_NOT_OK(ReadStatus(&reader, &response.status));
  JOINMI_RETURN_NOT_OK(reader.Read(&response.digest));
  JOINMI_RETURN_NOT_OK(CheckAtEnd(reader, "sketch upload response"));
  return response;
}

// ----------------------------------------------------- Batch search (v2)

std::string EncodeBatchSearchRequest(const BatchSearchRequest& request) {
  std::string out;
  wire::AppendPod<uint64_t>(&out, request.sketch_digest);
  wire::AppendPod<uint32_t>(&out, static_cast<uint32_t>(request.variants.size()));
  for (const BatchSearchVariant& variant : request.variants) {
    wire::AppendPod<uint64_t>(&out, variant.k);
    wire::AppendPod<uint64_t>(&out, variant.min_join_size);
  }
  return out;
}

Result<BatchSearchRequest> DecodeBatchSearchRequest(
    const std::string& payload) {
  wire::Reader reader(payload);
  BatchSearchRequest request;
  uint32_t count = 0;
  JOINMI_RETURN_NOT_OK(reader.Read(&request.sketch_digest));
  JOINMI_RETURN_NOT_OK(reader.Read(&count));
  // 16 bytes per variant; divide so a crafted count cannot overflow.
  if (count > reader.remaining() / 16) {
    return Status::IOError(
        "batch search request variant count exceeds payload size");
  }
  request.variants.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    BatchSearchVariant variant;
    JOINMI_RETURN_NOT_OK(reader.Read(&variant.k));
    JOINMI_RETURN_NOT_OK(reader.Read(&variant.min_join_size));
    request.variants.push_back(variant);
  }
  JOINMI_RETURN_NOT_OK(CheckAtEnd(reader, "batch search request"));
  return request;
}

std::string EncodeBatchSearchResponse(const BatchSearchResponse& response) {
  std::string out;
  AppendStatus(&out, response.status);
  if (!response.status.ok()) return out;
  wire::AppendPod<uint32_t>(&out,
                            static_cast<uint32_t>(response.responses.size()));
  for (const SearchResponse& variant : response.responses) {
    wire::AppendLengthPrefixed(&out, EncodeSearchResponse(variant));
  }
  return out;
}

Result<BatchSearchResponse> DecodeBatchSearchResponse(
    const std::string& payload) {
  wire::Reader reader(payload);
  BatchSearchResponse response;
  JOINMI_RETURN_NOT_OK(ReadStatus(&reader, &response.status));
  if (!response.status.ok()) {
    JOINMI_RETURN_NOT_OK(CheckAtEnd(reader, "batch search response"));
    return response;
  }
  uint32_t count = 0;
  JOINMI_RETURN_NOT_OK(reader.Read(&count));
  // Each nested response is length-prefixed (u32) and a SearchResponse is
  // never smaller than its 5-byte encoded Status.
  if (count > reader.remaining() / (4 + 5)) {
    return Status::IOError(
        "batch search response count exceeds payload size");
  }
  response.responses.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string nested;
    JOINMI_RETURN_NOT_OK(reader.ReadLengthPrefixed(&nested));
    JOINMI_ASSIGN_OR_RETURN(SearchResponse decoded,
                            DecodeSearchResponse(nested));
    response.responses.push_back(std::move(decoded));
  }
  JOINMI_RETURN_NOT_OK(CheckAtEnd(reader, "batch search response"));
  return response;
}

// ------------------------------------------------------------ Stats (v2)

std::string EncodeStatsResponse(const StatsResponse& response) {
  std::string out;
  AppendStatus(&out, response.status);
  if (!response.status.ok()) return out;
  wire::AppendLengthPrefixed(&out, response.json);
  return out;
}

Result<StatsResponse> DecodeStatsResponse(const std::string& payload) {
  wire::Reader reader(payload);
  StatsResponse response;
  JOINMI_RETURN_NOT_OK(ReadStatus(&reader, &response.status));
  if (!response.status.ok()) {
    JOINMI_RETURN_NOT_OK(CheckAtEnd(reader, "stats response"));
    return response;
  }
  JOINMI_RETURN_NOT_OK(reader.ReadLengthPrefixed(&response.json));
  JOINMI_RETURN_NOT_OK(CheckAtEnd(reader, "stats response"));
  return response;
}

// ---------------------------------------------------------------- Reload

std::string EncodeReloadResponse(const ReloadResponse& response) {
  std::string out;
  AppendStatus(&out, response.status);
  if (!response.status.ok()) return out;
  wire::AppendPod<uint64_t>(&out, response.epoch);
  wire::AppendPod<uint64_t>(&out, response.num_candidates);
  return out;
}

Result<ReloadResponse> DecodeReloadResponse(const std::string& payload) {
  wire::Reader reader(payload);
  ReloadResponse response;
  JOINMI_RETURN_NOT_OK(ReadStatus(&reader, &response.status));
  if (!response.status.ok()) {
    JOINMI_RETURN_NOT_OK(CheckAtEnd(reader, "reload response"));
    return response;
  }
  JOINMI_RETURN_NOT_OK(reader.Read(&response.epoch));
  JOINMI_RETURN_NOT_OK(reader.Read(&response.num_candidates));
  JOINMI_RETURN_NOT_OK(CheckAtEnd(reader, "reload response"));
  return response;
}

// ----------------------------------------------------------------- Error

std::string EncodeErrorPayload(const Status& status) {
  std::string out;
  AppendStatus(&out, status);
  return out;
}

Status DecodeErrorPayload(const std::string& payload, Status* out) {
  wire::Reader reader(payload);
  JOINMI_RETURN_NOT_OK(ReadStatus(&reader, out));
  return CheckAtEnd(reader, "error");
}

}  // namespace rpc
}  // namespace joinmi
