#include "src/discovery/shard_manifest.h"

#include <cstring>

#include "src/sketch/serialize.h"

namespace joinmi {

namespace {

constexpr char kManifestMagic[4] = {'J', 'M', 'I', 'M'};
// v1 had no embedded config; v2 carries the JoinMIConfig so a router can
// serve from the manifest alone; v3 adds a per-shard format tag for paged
// shard files; v4 adds the manifest epoch and per-shard delta-segment
// references for the mutable index. All four read. A manifest needing
// none of the newer fields writes at the oldest sufficient version, so
// e.g. repartitioning an all-JMIX index never breaks an older reader.
constexpr uint32_t kLegacyManifestVersion = 1;
constexpr uint32_t kConfigManifestVersion = 2;
constexpr uint32_t kPagedManifestVersion = 3;
constexpr uint32_t kEpochManifestVersion = 4;

bool AnyPagedShard(const ShardManifest& manifest) {
  for (const ShardManifestEntry& entry : manifest.shards) {
    if (entry.format != ShardFileFormat::kWholeFile) return true;
  }
  return false;
}

bool AnyDeltaShard(const ShardManifest& manifest) {
  for (const ShardManifestEntry& entry : manifest.shards) {
    if (!entry.delta_path.empty()) return true;
  }
  return false;
}

}  // namespace

const char* ShardPartitionPolicyToString(ShardPartitionPolicy policy) {
  switch (policy) {
    case ShardPartitionPolicy::kRoundRobin:
      return "round_robin";
    case ShardPartitionPolicy::kHashByDataset:
      return "hash_dataset";
  }
  return "unknown";
}

Result<ShardPartitionPolicy> ParseShardPartitionPolicy(
    const std::string& name) {
  if (name == "round_robin") return ShardPartitionPolicy::kRoundRobin;
  if (name == "hash_dataset") return ShardPartitionPolicy::kHashByDataset;
  return Status::InvalidArgument(
      "unknown partition policy '" + name +
      "' (expected round_robin or hash_dataset)");
}

const char* ShardFileFormatToString(ShardFileFormat format) {
  switch (format) {
    case ShardFileFormat::kWholeFile:
      return "whole";
    case ShardFileFormat::kPaged:
      return "paged";
  }
  return "unknown";
}

Result<ShardFileFormat> ParseShardFileFormat(const std::string& name) {
  if (name == "whole") return ShardFileFormat::kWholeFile;
  if (name == "paged") return ShardFileFormat::kPaged;
  return Status::InvalidArgument("unknown shard file format '" + name +
                                 "' (expected whole or paged)");
}

Status ShardManifest::Validate() const {
  if (shards.empty()) {
    return Status::InvalidArgument("manifest names no shards");
  }
  // First pass: allocation-free consistency checks. The counted == total
  // comparison must come before the bitmap below, so a tampered
  // total_candidates cannot force a huge allocation — after it, the bitmap
  // is bounded by the index lists actually held in memory.
  uint64_t counted = 0;
  for (size_t s = 0; s < shards.size(); ++s) {
    const ShardManifestEntry& entry = shards[s];
    const std::string where = "shard " + std::to_string(s) + " ('" +
                              entry.path + "')";
    if (entry.path.empty()) {
      return Status::InvalidArgument(where + " has an empty path");
    }
    if (entry.global_indices.size() != entry.candidate_count) {
      return Status::InvalidArgument(
          where + " declares " + std::to_string(entry.candidate_count) +
          " candidates but lists " +
          std::to_string(entry.global_indices.size()) + " global indices");
    }
    if (entry.delta_records > entry.candidate_count) {
      return Status::InvalidArgument(
          where + " claims " + std::to_string(entry.delta_records) +
          " delta records but only " +
          std::to_string(entry.candidate_count) + " candidates");
    }
    if (entry.delta_path.empty() != (entry.delta_records == 0 &&
                                     entry.delta_bytes == 0 &&
                                     entry.delta_checksum == 0)) {
      return Status::InvalidArgument(
          where + " has inconsistent delta fields (path and "
                  "records/bytes/checksum must be set together)");
    }
    if (!entry.delta_path.empty() && entry.delta_records == 0) {
      return Status::InvalidArgument(
          where + " names a delta segment with zero records");
    }
    counted += entry.candidate_count;
    for (size_t i = 0; i < entry.global_indices.size(); ++i) {
      const uint64_t g = entry.global_indices[i];
      if (g >= total_candidates) {
        return Status::InvalidArgument(
            where + " lists global index " + std::to_string(g) +
            " outside the manifest total " +
            std::to_string(total_candidates));
      }
      if (i > 0 && entry.global_indices[i - 1] >= g) {
        return Status::InvalidArgument(
            where + " global indices are not strictly increasing");
      }
    }
  }
  if (counted != total_candidates) {
    return Status::InvalidArgument(
        "shard candidate counts sum to " + std::to_string(counted) +
        " but the manifest total is " + std::to_string(total_candidates));
  }
  // Second pass: every global index claimed by exactly one shard slot.
  // With counts reconciled, exactly `total_candidates` claims exist, so a
  // duplicate is the only remaining way the bitmap can miss a slot.
  std::vector<bool> seen(static_cast<size_t>(total_candidates), false);
  for (const ShardManifestEntry& entry : shards) {
    for (const uint64_t g : entry.global_indices) {
      if (seen[static_cast<size_t>(g)]) {
        return Status::InvalidArgument(
            "global index " + std::to_string(g) +
            " is assigned to more than one shard slot");
      }
      seen[static_cast<size_t>(g)] = true;
    }
  }
  return Status::OK();
}

std::string SerializeManifest(const ShardManifest& manifest) {
  // Oldest sufficient version: all-whole-file, epoch-0, delta-free
  // manifests keep writing v2 — byte-identical to what pre-paged builds
  // wrote and readable by them; the format tag only appears (v3) once
  // some shard actually needs it, and the epoch/delta fields only appear
  // (v4) once ingest has touched the deployment.
  uint32_t version = kConfigManifestVersion;
  if (AnyPagedShard(manifest)) version = kPagedManifestVersion;
  if (manifest.epoch != 0 || AnyDeltaShard(manifest)) {
    version = kEpochManifestVersion;
  }
  std::string out;
  wire::AppendRaw(&out, kManifestMagic, sizeof(kManifestMagic));
  wire::AppendPod<uint32_t>(&out, version);
  wire::AppendPod<uint8_t>(&out, static_cast<uint8_t>(manifest.policy));
  wire::AppendPod<uint8_t>(&out, manifest.config.has_value() ? 1 : 0);
  if (manifest.config.has_value()) {
    AppendJoinMIConfig(&out, *manifest.config);
  }
  if (version >= kEpochManifestVersion) {
    wire::AppendPod<uint64_t>(&out, manifest.epoch);
  }
  wire::AppendPod<uint64_t>(&out, manifest.shards.size());
  wire::AppendPod<uint64_t>(&out, manifest.total_candidates);
  for (const ShardManifestEntry& entry : manifest.shards) {
    wire::AppendLengthPrefixed(&out, entry.path);
    wire::AppendPod<uint64_t>(&out, entry.candidate_count);
    wire::AppendPod<uint64_t>(&out, entry.checksum);
    if (version >= kPagedManifestVersion) {
      wire::AppendPod<uint8_t>(&out, static_cast<uint8_t>(entry.format));
    }
    if (version >= kEpochManifestVersion) {
      const uint8_t has_delta = entry.delta_path.empty() ? 0 : 1;
      wire::AppendPod<uint8_t>(&out, has_delta);
      if (has_delta) {
        wire::AppendLengthPrefixed(&out, entry.delta_path);
        wire::AppendPod<uint64_t>(&out, entry.delta_records);
        wire::AppendPod<uint64_t>(&out, entry.delta_bytes);
        wire::AppendPod<uint64_t>(&out, entry.delta_checksum);
      }
    }
    for (uint64_t g : entry.global_indices) {
      wire::AppendPod<uint64_t>(&out, g);
    }
  }
  return out;
}

Result<ShardManifest> DeserializeManifest(const std::string& data) {
  wire::Reader reader(data);
  char magic[4];
  JOINMI_RETURN_NOT_OK(reader.Read(&magic));
  if (std::memcmp(magic, kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return Status::IOError("bad shard manifest magic");
  }
  uint32_t version = 0;
  JOINMI_RETURN_NOT_OK(reader.Read(&version));
  if (version < kLegacyManifestVersion || version > kEpochManifestVersion) {
    return Status::IOError("unsupported shard manifest version " +
                           std::to_string(version) +
                           " (this build reads v1-v" +
                           std::to_string(kEpochManifestVersion) + ")");
  }
  uint8_t policy = 0;
  JOINMI_RETURN_NOT_OK(reader.Read(&policy));
  if (policy > static_cast<uint8_t>(ShardPartitionPolicy::kHashByDataset)) {
    return Status::IOError("unknown partition policy tag in shard manifest");
  }
  ShardManifest manifest;
  manifest.policy = static_cast<ShardPartitionPolicy>(policy);
  if (version >= 2) {
    uint8_t has_config = 0;
    JOINMI_RETURN_NOT_OK(reader.Read(&has_config));
    if (has_config > 1) {
      return Status::IOError("bad config presence flag in shard manifest");
    }
    if (has_config == 1) {
      JOINMI_ASSIGN_OR_RETURN(JoinMIConfig config,
                              ReadJoinMIConfig(&reader));
      manifest.config = std::move(config);
    }
  }
  if (version >= kEpochManifestVersion) {
    JOINMI_RETURN_NOT_OK(reader.Read(&manifest.epoch));
  }
  uint64_t shard_count = 0;
  JOINMI_RETURN_NOT_OK(reader.Read(&shard_count));
  JOINMI_RETURN_NOT_OK(reader.Read(&manifest.total_candidates));
  // Each shard record takes at least 20 bytes (path length prefix + count +
  // checksum); divide rather than multiply so a crafted count cannot
  // overflow past the check.
  if (shard_count > reader.remaining() / 20) {
    return Status::IOError("manifest shard count exceeds buffer size");
  }
  manifest.shards.reserve(static_cast<size_t>(shard_count));
  for (uint64_t s = 0; s < shard_count; ++s) {
    ShardManifestEntry entry;
    JOINMI_RETURN_NOT_OK(reader.ReadLengthPrefixed(&entry.path));
    JOINMI_RETURN_NOT_OK(reader.Read(&entry.candidate_count));
    JOINMI_RETURN_NOT_OK(reader.Read(&entry.checksum));
    if (version >= kPagedManifestVersion) {
      uint8_t format = 0;
      JOINMI_RETURN_NOT_OK(reader.Read(&format));
      if (format > static_cast<uint8_t>(ShardFileFormat::kPaged)) {
        return Status::IOError("unknown shard file format tag " +
                               std::to_string(format) +
                               " in shard manifest");
      }
      entry.format = static_cast<ShardFileFormat>(format);
    }
    if (version >= kEpochManifestVersion) {
      uint8_t has_delta = 0;
      JOINMI_RETURN_NOT_OK(reader.Read(&has_delta));
      if (has_delta > 1) {
        return Status::IOError("bad delta presence flag in shard manifest");
      }
      if (has_delta == 1) {
        JOINMI_RETURN_NOT_OK(reader.ReadLengthPrefixed(&entry.delta_path));
        JOINMI_RETURN_NOT_OK(reader.Read(&entry.delta_records));
        JOINMI_RETURN_NOT_OK(reader.Read(&entry.delta_bytes));
        JOINMI_RETURN_NOT_OK(reader.Read(&entry.delta_checksum));
      }
    }
    if (entry.candidate_count > reader.remaining() / sizeof(uint64_t)) {
      return Status::IOError("manifest shard candidate count exceeds buffer");
    }
    entry.global_indices.reserve(static_cast<size_t>(entry.candidate_count));
    for (uint64_t i = 0; i < entry.candidate_count; ++i) {
      uint64_t g = 0;
      JOINMI_RETURN_NOT_OK(reader.Read(&g));
      entry.global_indices.push_back(g);
    }
    manifest.shards.push_back(std::move(entry));
  }
  if (!reader.AtEnd()) {
    return Status::IOError("trailing bytes after shard manifest payload");
  }
  JOINMI_RETURN_NOT_OK(manifest.Validate());
  return manifest;
}

Status WriteManifestFile(const ShardManifest& manifest,
                         const std::string& path) {
  JOINMI_RETURN_NOT_OK(manifest.Validate());
  return wire::WriteFileBytes(SerializeManifest(manifest), path);
}

Result<ShardManifest> ReadManifestFile(const std::string& path) {
  JOINMI_ASSIGN_OR_RETURN(std::string data, wire::ReadFileBytes(path));
  return DeserializeManifest(data);
}

}  // namespace joinmi
