// Shard manifest for a partitioned sketch index: the versioned on-disk
// record of how a candidate repository was split across N shard index
// files. The manifest is the unit of deployment — a serving tier loads it,
// opens (or connects to) every shard it names, and can verify that what it
// opened is exactly what the partitioner wrote: per shard it stores the
// index file path, the candidate count, a content checksum over the raw
// file bytes, and the candidates' *global* insertion indices in the
// original unsharded enumeration.
//
// The global indices are what make a fan-out search bit-identical to the
// unsharded one: the unsharded top-k breaks MI ties on insertion order, so
// a cross-shard merge needs each hit's position in that order — local shard
// positions are not enough once candidates interleave (hash partitioning)
// or duplicate across shards. Storing them also keeps the manifest
// self-describing for partitioning policies whose assignment cannot be
// re-derived from shard contents alone.
//
// On-disk format (little-endian, version-tagged):
//   magic "JMIM" | u32 version | u8 policy
//   | v2+: u8 has_config, then the shared JoinMIConfig wire layout
//     (core/config.h) when has_config == 1
//   | v4+: u64 epoch
//   | u64 shard_count | u64 total_candidates
//   | per shard: path (u32 length + bytes, relative to the manifest's
//     directory), u64 candidate_count, u64 checksum,
//     v3+: u8 format,
//     v4+: u8 has_delta, then when has_delta == 1: delta path
//       (u32 length + bytes), u64 delta_records, u64 delta_bytes,
//       u64 delta_checksum,
//     candidate_count x u64 global index
//
// Version history: v1 had no config block. v2 embeds the JoinMIConfig the
// shards were built under, so a query router that only holds the manifest
// — shard files live on remote servers — can still sketch queries and
// verify config agreement at the serving handshake. v1 manifests still
// load, with config absent; remote serving requires a v2+ manifest
// (repartition with the current build_shards to upgrade). v3 adds a
// per-shard u8 format tag after the checksum, recording whether the shard
// file is a whole-file "JMIX" index or a paged "JMPS" file, so loaders
// dispatch transparently. v4 (current) adds the mutable-index fields: a
// monotonic manifest `epoch` naming the generation (see
// src/ingest/generation.h) and optional per-shard delta-segment
// references pinning the committed prefix of an appendable "JMDS" sidecar
// (src/ingest/delta_segment.h). Manifests that need none of the newer
// fields keep serializing at the oldest sufficient version — all
// whole-file, epoch 0, no deltas writes v2 byte-identical to older
// builds; epoch 0 with a paged shard writes v3 — so repartitioning never
// breaks an older reader gratuitously.

#ifndef JOINMI_DISCOVERY_SHARD_MANIFEST_H_
#define JOINMI_DISCOVERY_SHARD_MANIFEST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/config.h"

namespace joinmi {

/// \brief How candidates are assigned to shards. Both policies are pure
/// functions of (enumeration index, ref, shard count), so partitioning the
/// same index the same way always yields the same shards.
enum class ShardPartitionPolicy : uint8_t {
  /// Candidate i goes to shard i % N — perfectly balanced counts.
  kRoundRobin = 0,
  /// All candidates of one table land on the same shard (hash of the table
  /// name) — dataset locality for per-table updates, at the cost of skew.
  kHashByDataset = 1,
};

const char* ShardPartitionPolicyToString(ShardPartitionPolicy policy);

/// \brief Parses the CLI spellings "round_robin" / "hash_dataset".
Result<ShardPartitionPolicy> ParseShardPartitionPolicy(
    const std::string& name);

/// \brief On-disk representation of one shard file.
enum class ShardFileFormat : uint8_t {
  /// A "JMIX" index file, deserialized whole into memory at load.
  kWholeFile = 0,
  /// A "JMPS" paged file (src/storage/paged_shard_file.h), opened by
  /// header + directory and served through a buffer pool.
  kPaged = 1,
};

const char* ShardFileFormatToString(ShardFileFormat format);

/// \brief Parses the CLI spellings "whole" / "paged".
Result<ShardFileFormat> ParseShardFileFormat(const std::string& name);

/// \brief One shard's entry in the manifest.
struct ShardManifestEntry {
  /// Shard index file, relative to the directory holding the manifest
  /// (absolute paths are honored as-is when loading).
  std::string path;
  /// Candidates the shard serves: base file plus delta records.
  uint64_t candidate_count = 0;
  /// wire::Checksum64 over the base shard file's raw bytes (the delta
  /// sidecar is covered separately by delta_checksum below).
  uint64_t checksum = 0;
  /// For each local candidate (in shard insertion order) its index in the
  /// original unsharded enumeration; strictly increasing within a shard.
  /// Base candidates come first, delta candidates after (appends always
  /// receive larger global indices than anything already built).
  std::vector<uint64_t> global_indices;
  /// How the base shard file is laid out on disk (kept after the vector
  /// so pre-paged aggregate initializers keep compiling). Manifests read
  /// from v1/v2 formats always report kWholeFile.
  ShardFileFormat format = ShardFileFormat::kWholeFile;
  /// Delta segment sidecar ("JMDS", src/ingest/delta_segment.h) holding
  /// the shard's last `delta_records` candidates, empty when the shard
  /// has no published delta. Like `path`, relative to the manifest's
  /// directory. delta_bytes/delta_checksum pin the committed prefix of
  /// the (append-only) delta file this manifest generation covers, so a
  /// loader never reads past what was published and fails loudly if the
  /// published bytes are damaged.
  std::string delta_path;
  uint64_t delta_records = 0;
  uint64_t delta_bytes = 0;
  uint64_t delta_checksum = 0;

  /// \brief Candidates in the base shard file alone.
  uint64_t base_candidate_count() const {
    return candidate_count - delta_records;
  }
  bool has_delta() const { return delta_records > 0; }
};

/// \brief The full partitioning record ("JMIM" v2-v4).
struct ShardManifest {
  ShardPartitionPolicy policy = ShardPartitionPolicy::kRoundRobin;
  /// The JoinMIConfig every shard of this partition was built under —
  /// what a shard-file-less router sketches queries with and what the
  /// serving handshake checks agreement against. Absent only for
  /// manifests read from the legacy v1 format.
  std::optional<JoinMIConfig> config;
  /// Monotonic generation number of this manifest within its deployment
  /// (src/ingest/generation.h). A fresh build_shards output is epoch 0;
  /// every ingest publish or compaction bumps it. Manifests read from
  /// pre-v4 formats report 0.
  uint64_t epoch = 0;
  /// Candidates across all shards (== the unsharded index size).
  uint64_t total_candidates = 0;
  std::vector<ShardManifestEntry> shards;

  /// \brief Structural consistency: at least one shard, per-shard index
  /// lists matching candidate_count and strictly increasing, and the union
  /// of all global indices being exactly {0, ..., total_candidates - 1}
  /// (every candidate assigned to exactly one shard slot).
  Status Validate() const;
};

/// \brief Serializes the manifest to its binary format.
std::string SerializeManifest(const ShardManifest& manifest);

/// \brief Parses a serialized manifest; validates magic, version, policy
/// tag, and structural consistency (Validate()), so corrupted or tampered
/// manifests fail cleanly.
Result<ShardManifest> DeserializeManifest(const std::string& data);

/// \brief Writes the manifest to a file.
Status WriteManifestFile(const ShardManifest& manifest,
                         const std::string& path);

/// \brief Reads and validates a manifest from a file.
Result<ShardManifest> ReadManifestFile(const std::string& path);

}  // namespace joinmi

#endif  // JOINMI_DISCOVERY_SHARD_MANIFEST_H_
