// Shard manifest for a partitioned sketch index: the versioned on-disk
// record of how a candidate repository was split across N shard index
// files. The manifest is the unit of deployment — a serving tier loads it,
// opens (or connects to) every shard it names, and can verify that what it
// opened is exactly what the partitioner wrote: per shard it stores the
// index file path, the candidate count, a content checksum over the raw
// file bytes, and the candidates' *global* insertion indices in the
// original unsharded enumeration.
//
// The global indices are what make a fan-out search bit-identical to the
// unsharded one: the unsharded top-k breaks MI ties on insertion order, so
// a cross-shard merge needs each hit's position in that order — local shard
// positions are not enough once candidates interleave (hash partitioning)
// or duplicate across shards. Storing them also keeps the manifest
// self-describing for partitioning policies whose assignment cannot be
// re-derived from shard contents alone.
//
// On-disk format (little-endian, version-tagged):
//   magic "JMIM" | u32 version | u8 policy
//   | v2+: u8 has_config, then the shared JoinMIConfig wire layout
//     (core/config.h) when has_config == 1
//   | u64 shard_count | u64 total_candidates
//   | per shard: path (u32 length + bytes, relative to the manifest's
//     directory), u64 candidate_count, u64 checksum,
//     candidate_count x u64 global index
//
// Version history: v1 had no config block. v2 embeds the JoinMIConfig the
// shards were built under, so a query router that only holds the manifest
// — shard files live on remote servers — can still sketch queries and
// verify config agreement at the serving handshake. v1 manifests still
// load, with config absent; remote serving requires a v2+ manifest
// (repartition with the current build_shards to upgrade). v3 (current)
// adds a per-shard u8 format tag after the checksum, recording whether
// the shard file is a whole-file "JMIX" index or a paged "JMPS" file, so
// loaders dispatch transparently; a manifest whose shards are all
// whole-file still serializes as v2, byte-identical to older builds.

#ifndef JOINMI_DISCOVERY_SHARD_MANIFEST_H_
#define JOINMI_DISCOVERY_SHARD_MANIFEST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/config.h"

namespace joinmi {

/// \brief How candidates are assigned to shards. Both policies are pure
/// functions of (enumeration index, ref, shard count), so partitioning the
/// same index the same way always yields the same shards.
enum class ShardPartitionPolicy : uint8_t {
  /// Candidate i goes to shard i % N — perfectly balanced counts.
  kRoundRobin = 0,
  /// All candidates of one table land on the same shard (hash of the table
  /// name) — dataset locality for per-table updates, at the cost of skew.
  kHashByDataset = 1,
};

const char* ShardPartitionPolicyToString(ShardPartitionPolicy policy);

/// \brief Parses the CLI spellings "round_robin" / "hash_dataset".
Result<ShardPartitionPolicy> ParseShardPartitionPolicy(
    const std::string& name);

/// \brief On-disk representation of one shard file.
enum class ShardFileFormat : uint8_t {
  /// A "JMIX" index file, deserialized whole into memory at load.
  kWholeFile = 0,
  /// A "JMPS" paged file (src/storage/paged_shard_file.h), opened by
  /// header + directory and served through a buffer pool.
  kPaged = 1,
};

const char* ShardFileFormatToString(ShardFileFormat format);

/// \brief Parses the CLI spellings "whole" / "paged".
Result<ShardFileFormat> ParseShardFileFormat(const std::string& name);

/// \brief One shard's entry in the manifest.
struct ShardManifestEntry {
  /// Shard index file, relative to the directory holding the manifest
  /// (absolute paths are honored as-is when loading).
  std::string path;
  /// Candidates the shard file must contain.
  uint64_t candidate_count = 0;
  /// wire::Checksum64 over the shard file's raw bytes.
  uint64_t checksum = 0;
  /// For each local candidate (in shard insertion order) its index in the
  /// original unsharded enumeration; strictly increasing within a shard.
  std::vector<uint64_t> global_indices;
  /// How the shard file is laid out on disk (last member so pre-paged
  /// aggregate initializers keep compiling). Manifests read from v1/v2
  /// formats always report kWholeFile.
  ShardFileFormat format = ShardFileFormat::kWholeFile;
};

/// \brief The full partitioning record ("JMIM" v2/v3).
struct ShardManifest {
  ShardPartitionPolicy policy = ShardPartitionPolicy::kRoundRobin;
  /// The JoinMIConfig every shard of this partition was built under —
  /// what a shard-file-less router sketches queries with and what the
  /// serving handshake checks agreement against. Absent only for
  /// manifests read from the legacy v1 format.
  std::optional<JoinMIConfig> config;
  /// Candidates across all shards (== the unsharded index size).
  uint64_t total_candidates = 0;
  std::vector<ShardManifestEntry> shards;

  /// \brief Structural consistency: at least one shard, per-shard index
  /// lists matching candidate_count and strictly increasing, and the union
  /// of all global indices being exactly {0, ..., total_candidates - 1}
  /// (every candidate assigned to exactly one shard slot).
  Status Validate() const;
};

/// \brief Serializes the manifest to its binary format.
std::string SerializeManifest(const ShardManifest& manifest);

/// \brief Parses a serialized manifest; validates magic, version, policy
/// tag, and structural consistency (Validate()), so corrupted or tampered
/// manifests fail cleanly.
Result<ShardManifest> DeserializeManifest(const std::string& data);

/// \brief Writes the manifest to a file.
Status WriteManifestFile(const ShardManifest& manifest,
                         const std::string& path);

/// \brief Reads and validates a manifest from a file.
Result<ShardManifest> ReadManifestFile(const std::string& path);

}  // namespace joinmi

#endif  // JOINMI_DISCOVERY_SHARD_MANIFEST_H_
