// Channel + ChannelSet: the client half of JMRP v2 pipelining.
//
// A Channel wraps one pooled connection for its whole lifetime (the
// ConnPool lease is held until the channel dies, so pool instrumentation
// now gauges live channels rather than per-request leases). Against a v2
// server the channel runs a dedicated reader thread and a demux map:
// Call() stamps a fresh request_id, registers a waiter slot, sends under
// a write mutex, and blocks on its slot — many calls from many threads
// are simultaneously in flight on ONE connection, and the reader pairs
// whatever response arrives next with its waiter by id. A waiter that
// times out abandons its slot (a late response is dropped by id — the
// channel itself stays healthy); a read or write error breaks the channel
// and fails every pending waiter with the same IOError. Against a v1
// server there is no request_id, so Call() serializes send+receive under
// an exclusive mutex — extra concurrent calls queue, which is exactly the
// old one-request-per-connection discipline.
//
// A Channel also tracks which sketch digests this connection has uploaded
// (EnsureSketchUploaded is once-per-digest, idempotent server-side), so a
// query's serialized train sketch crosses the wire once per connection
// instead of once per request.
//
// ChannelSet owns up to max_channels channels and routes each request to
// the live channel with the fewest calls in flight, dialing a new channel
// (through the injected factory, which leases from the pool and thereby
// inherits its bound and its handshake) only when every existing channel
// is busy. Broken channels are pruned on the next Pick; calls already
// running on one keep their shared_ptr until they finish. Close() poisons
// the set for shutdown.

#ifndef JOINMI_DISCOVERY_RPC_CHANNEL_H_
#define JOINMI_DISCOVERY_RPC_CHANNEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/net/conn_pool.h"
#include "src/net/frame.h"

namespace joinmi {
namespace rpc {

/// \brief One JMRP connection, shared by concurrent requests (protocol
/// v2) or used one-exchange-at-a-time (protocol v1).
class Channel {
 public:
  /// \brief Takes the pooled connection for the channel's lifetime.
  /// `protocol_version` is the handshake-negotiated dialect (1 or 2);
  /// `pipeline_hwm` (optional) receives the high-water mark of calls
  /// simultaneously in flight on this channel — the owning client's
  /// proof of pipelining.
  Channel(net::ConnPool::Lease lease, uint32_t protocol_version,
          int io_timeout_ms, std::atomic<size_t>* pipeline_hwm);
  ~Channel();

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  uint32_t protocol_version() const { return version_; }
  bool pipelined() const { return version_ >= 2; }
  bool broken() const;
  size_t in_flight() const { return in_flight_.load(); }

  /// \brief One request/response exchange. Thread-safe. On failure,
  /// `*reached_wire` (optional, must start false) reports whether any
  /// request byte left this process — the only signal a retry or
  /// failover policy may act on. IOError failures break the channel
  /// (pending and future calls fail deterministically), EXCEPT a
  /// response timeout, which abandons only this call.
  Result<net::Frame> Call(net::FrameType type, const std::string& payload,
                          bool* reached_wire = nullptr);

  /// \brief v2 only: caches `bytes` server-side under `digest` once per
  /// channel; subsequent calls for the same digest are free. Safe to
  /// retry on a fresh channel after any failure — the upload is
  /// idempotent by digest.
  Status EnsureSketchUploaded(uint64_t digest, const std::string& bytes);

 private:
  struct Pending {
    bool ready = false;
    Status status = Status::OK();
    net::Frame frame;
  };

  Result<net::Frame> CallV2(net::FrameType type, const std::string& payload,
                            bool* reached_wire);
  Result<net::Frame> CallV1(net::FrameType type, const std::string& payload,
                            bool* reached_wire);
  void ReaderLoop();
  /// Fails every pending waiter and poisons the channel.
  void MarkBroken(const Status& status);

  net::ConnPool::Lease lease_;
  uint32_t version_ = 1;
  int io_timeout_ms_ = 30000;
  std::atomic<size_t>* pipeline_hwm_ = nullptr;

  std::atomic<uint64_t> next_id_{1};
  std::atomic<size_t> in_flight_{0};
  std::atomic<bool> stop_reader_{false};

  mutable std::mutex state_mutex_;
  std::condition_variable state_cv_;
  std::unordered_map<uint64_t, Pending*> pending_;
  bool broken_ = false;
  Status broken_status_ = Status::OK();

  std::mutex write_mutex_;  // v2: serializes frame sends, nothing else
  std::mutex excl_mutex_;   // v1: serializes whole exchanges

  std::mutex upload_mutex_;
  std::set<uint64_t> uploaded_digests_;

  std::thread reader_;  // v2 only
};

/// \brief Bounded set of channels to one endpoint with least-loaded
/// routing. Thread-safe.
class ChannelSet {
 public:
  using ChannelFactory =
      std::function<Result<std::shared_ptr<Channel>>()>;

  ChannelSet(ChannelFactory factory, size_t max_channels);
  ~ChannelSet();

  ChannelSet(const ChannelSet&) = delete;
  ChannelSet& operator=(const ChannelSet&) = delete;

  /// \brief Returns the channel to run one request on: the live channel
  /// with the fewest in-flight calls, or a freshly dialed one when all
  /// are busy and capacity remains. Errors from the factory propagate
  /// verbatim (dial/handshake failures). After Close(), fails with a
  /// deterministic IOError.
  Result<std::shared_ptr<Channel>> Pick();

  /// \brief Poisons the set and drops its channel references; in-flight
  /// calls finish on their own shared_ptrs. Idempotent.
  void Close();

  size_t live_channels() const;

 private:
  ChannelFactory factory_;
  size_t max_channels_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::shared_ptr<Channel>> channels_;
  size_t creating_ = 0;
  bool closed_ = false;
};

}  // namespace rpc
}  // namespace joinmi

#endif  // JOINMI_DISCOVERY_RPC_CHANNEL_H_
