// The one discovery-search surface every query target implements.
//
// Historically TopKJoinMISearch grew one overload per backend (repository
// scan, SketchIndex, ShardedSketchIndex, ...) and every new serving layer
// meant another. Searchable collapses that: a target exposes the
// JoinMIConfig its candidates were sketched under plus one SearchQuery
// method over an already-sketched query, and the single Searchable-based
// TopKJoinMISearch in search.h drives any of them. SketchIndex,
// ShardedSketchIndex, and Router all implement it; the legacy per-type
// overloads survive as inline forwarders (search.h) for one release.
//
// This header also owns the result/spec types those implementations share
// (previously split between search.h and sharded_index.h), so the
// interface needs no include of either.

#ifndef JOINMI_DISCOVERY_SEARCHABLE_H_
#define JOINMI_DISCOVERY_SEARCHABLE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/join_mi.h"
#include "src/discovery/repository.h"

namespace joinmi {

/// \brief Base-table column bindings for one discovery search.
struct SearchSpec {
  std::string base_key;     ///< K_Y: join key in the base table
  std::string base_target;  ///< Y: target attribute in the base table
};

/// \brief One ranked search answer.
struct SearchHit {
  ColumnPairRef candidate;
  JoinMIEstimate estimate;
};

/// \brief One shard that failed to answer a degraded-mode query.
struct ShardFailure {
  /// Index of the shard in the manifest.
  size_t shard = 0;
  /// Why it failed (connection refused, timeout, shard-side error, ...).
  Status status;
};

/// \brief How a fan-out search treats shard failures.
enum class ShardQueryMode : uint8_t {
  /// Any shard failure fails the whole query (first failure in shard
  /// order, so errors are deterministic). The historical behavior and the
  /// default — bit-identical guarantees hold only over complete answers.
  kStrict = 0,
  /// Failed shards are recorded in shard_failures and the merged top-k
  /// covers the healthy shards only. Fails only when no shard answered.
  kDegraded = 1,
};

/// \brief Outcome of one top-k discovery search.
struct TopKSearchResult {
  /// Hits sorted by MI descending; ties break on candidate enumeration
  /// order (table name, then key/value column), so the ranking is stable
  /// and reproducible.
  std::vector<SearchHit> hits;
  /// Column pairs enumerated from the repository (or indexed candidates).
  size_t num_candidates = 0;
  /// Candidates that produced an estimate.
  size_t num_evaluated = 0;
  /// Candidates skipped because the sketch-join overlap fell below
  /// config.min_join_size — expected in healthy repositories.
  size_t num_skipped = 0;
  /// Candidates that failed hard (missing tables, unsketchable columns,
  /// estimator errors). Kept separate from num_skipped so "overlap too
  /// small" is distinguishable from "repository is broken".
  size_t num_errors = 0;
  /// Shards that did not answer (sharded outage in degraded mode only;
  /// always empty otherwise). When non-empty, hits and counters cover the
  /// answering shards only.
  std::vector<ShardFailure> shard_failures;
};

/// \brief A queryable discovery target: anything that can rank its
/// candidates against a sketched query. The free TopKJoinMISearch in
/// search.h sketches the base table under search_config() and delegates
/// here, so every implementation inherits the same entry point.
class Searchable {
 public:
  virtual ~Searchable() = default;

  /// \brief The JoinMIConfig the target's candidates were sketched under —
  /// the config the query MUST be sketched with to coordinate.
  virtual const JoinMIConfig& search_config() const = 0;

  /// \brief Ranks the target's candidates against `query` and returns the
  /// top k by (MI desc, enumeration order asc). `num_threads` 0 means
  /// hardware concurrency; rankings never depend on it. `mode` matters
  /// only for sharded targets (unsharded ones have no shard to lose).
  virtual Result<TopKSearchResult> SearchQuery(
      const JoinMIQuery& query, size_t k, size_t num_threads,
      ShardQueryMode mode) const = 0;
};

}  // namespace joinmi

#endif  // JOINMI_DISCOVERY_SEARCHABLE_H_
