// Open-data repository simulator: the offline stand-in for the paper's
// World Bank Finances (WBF) and NYC Open Data (NYC) snapshots (Section V-C).
//
// The real experiment samples ~36k-59k pairs of two-column tables from
// Socrata dumps. We cannot ship those, so this module generates collections
// of (T_train, T_cand) pairs whose *structural* statistics match the ones
// the paper reports — join-key domain sizes, full-join sizes, key-frequency
// skew — and whose value columns carry planted dependencies of varying
// strength so the full-join MI spectrum is non-trivial. Those are the
// properties the experiment actually exercises (sketch-vs-full-join
// agreement and ranking quality); absolute MI values will differ from the
// paper's, the comparative shapes should not.

#ifndef JOINMI_DISCOVERY_OPENDATA_SIM_H_
#define JOINMI_DISCOVERY_OPENDATA_SIM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/table/table.h"

namespace joinmi {

/// \brief Collection-level generation parameters.
struct OpenDataParams {
  std::string name = "SIM";
  /// Number of (T_train, T_cand) pairs to generate.
  size_t num_pairs = 200;
  /// Average row counts (actual counts vary uniformly +/- 50%).
  size_t left_rows = 8000;
  size_t right_rows = 4000;
  /// Join-key domain sizes (distinct keys available to each side).
  size_t left_key_domain = 3100;
  size_t right_key_domain = 3500;
  /// Fraction of the smaller key domain shared by both sides.
  double key_overlap = 0.85;
  /// Zipf exponent for left-side key frequencies (1 = strong skew).
  double zipf_s = 1.05;
  /// Probability that the candidate value column is categorical (string);
  /// otherwise numeric. The target column draws independently.
  double p_string_value = 0.45;
  /// Number of latent "topic" buckets driving value dependence.
  size_t latent_buckets = 24;
  /// Number of latent families: pairs in the same family share the same
  /// key -> bucket mapping, so their candidate columns are informative
  /// about each other's targets. 0 (default) gives every pair its own
  /// mapping (pairs are mutually independent).
  size_t num_families = 0;
  uint64_t seed = 2024;
};

/// \brief Presets matching the two collections' reported statistics.
OpenDataParams WBFLikeParams();
OpenDataParams NYCLikeParams();

/// \brief One generated pair; column names follow the synthetic convention:
/// train = [K, Y], cand = [K, Z]. Keys are strings (as in the paper, where
/// join attributes are string-typed).
struct GeneratedTablePair {
  std::shared_ptr<Table> train;
  std::shared_ptr<Table> cand;
  /// Planted dependence strength in [0, 1] (0 = independent).
  double dependence = 0.0;
  /// Latent family this pair belongs to (see OpenDataParams::num_families).
  size_t family = 0;
  DataType target_type = DataType::kDouble;
  DataType feature_type = DataType::kDouble;
};

/// \brief Generates the full collection deterministically from the seed.
Result<std::vector<GeneratedTablePair>> GenerateOpenDataCollection(
    const OpenDataParams& params);

}  // namespace joinmi

#endif  // JOINMI_DISCOVERY_OPENDATA_SIM_H_
