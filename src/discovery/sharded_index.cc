#include "src/discovery/sharded_index.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "src/common/hashing.h"
#include "src/common/thread_pool.h"
#include "src/discovery/paged_shard_index.h"
#include "src/discovery/topk_merge.h"
#include "src/ingest/delta_shard_client.h"
#include "src/sketch/serialize.h"
#include "src/storage/paged_shard_file.h"

namespace joinmi {

namespace {

// Seed for the hash-by-dataset assignment; distinct from any sketch hash
// seed so shard placement never correlates with sketch sampling.
constexpr uint32_t kShardAssignSeed = 0x5A4DC0DEu;

// Orders hits by the canonical discovery order (topk_merge.h) with the
// global insertion index as the key — the same total order the unsharded
// merge uses, which is what makes sharded rankings bit-identical.
bool BetterHit(const ShardSearchHit& a, const ShardSearchHit& b) {
  return internal::BetterByMIThenKey(a.estimate.mi, a.global_index,
                                     b.estimate.mi, b.global_index);
}

std::string ShardFileName(size_t shard, ShardFileFormat format) {
  char name[32];
  std::snprintf(name, sizeof(name),
                format == ShardFileFormat::kPaged ? "shard_%05zu.jmps"
                                                  : "shard_%05zu.jmix",
                shard);
  return name;
}

std::string ResolveShardPath(const ShardManifestEntry& entry,
                             const std::string& manifest_dir) {
  const std::filesystem::path entry_path(entry.path);
  return entry_path.is_absolute()
             ? entry.path
             : (std::filesystem::path(manifest_dir) / entry_path).string();
}

}  // namespace

// ------------------------------------------------------- LocalShardClient

Result<std::unique_ptr<LocalShardClient>> LocalShardClient::Create(
    SketchIndex index, std::vector<uint64_t> global_indices) {
  if (global_indices.size() != index.size()) {
    return Status::InvalidArgument(
        "shard holds " + std::to_string(index.size()) +
        " candidates but the global index mapping lists " +
        std::to_string(global_indices.size()));
  }
  for (size_t i = 1; i < global_indices.size(); ++i) {
    if (global_indices[i - 1] >= global_indices[i]) {
      return Status::InvalidArgument(
          "shard global indices are not strictly increasing");
    }
  }
  return std::unique_ptr<LocalShardClient>(new LocalShardClient(
      std::move(index), std::move(global_indices)));
}

Result<ShardSearchResult> LocalShardClient::Search(const JoinMIQuery& query,
                                                   size_t k,
                                                   size_t num_threads) const {
  if (k == 0) {
    return Status::InvalidArgument("shard search requires k >= 1");
  }
  JOINMI_ASSIGN_OR_RETURN(IndexEvaluation evaluation,
                          index_.EvaluateAll(query, num_threads));
  ShardSearchResult result;
  result.num_candidates = index_.size();
  result.num_evaluated = evaluation.num_evaluated;
  result.num_skipped = evaluation.num_skipped;
  result.num_errors = evaluation.num_errors;
  // Within one shard global order equals local order, but selecting on the
  // global key keeps the shard's top-k consistent with the cross-shard
  // merge by construction.
  internal::TopKSelection selection = internal::SelectTopKByMI(
      evaluation.estimates, k,
      [this](size_t i) { return global_indices_[i]; });
  result.hits.reserve(selection.indices.size());
  for (size_t i : selection.indices) {
    result.hits.push_back(ShardSearchHit{global_indices_[i],
                                         index_.candidates()[i].ref,
                                         *evaluation.estimates[i]});
  }
  return result;
}

// ----------------------------------------------------- ShardedSketchIndex

Result<ShardedSketchIndex> ShardedSketchIndex::Create(
    ShardManifest manifest,
    std::vector<std::unique_ptr<ShardClient>> clients) {
  JOINMI_RETURN_NOT_OK(manifest.Validate());
  // Validate() already rejects zero-shard manifests; this re-check keeps
  // config()'s clients_[0] dereference safe even if Validate ever relaxes.
  if (clients.empty()) {
    return Status::InvalidArgument(
        "a sharded index needs at least one shard client");
  }
  if (clients.size() != manifest.shards.size()) {
    return Status::InvalidArgument(
        "manifest names " + std::to_string(manifest.shards.size()) +
        " shards but " + std::to_string(clients.size()) +
        " clients were provided");
  }
  for (size_t s = 0; s < clients.size(); ++s) {
    if (clients[s] == nullptr) {
      return Status::InvalidArgument("shard client " + std::to_string(s) +
                                     " is null");
    }
    if (clients[s]->num_candidates() != manifest.shards[s].candidate_count) {
      return Status::InvalidArgument(
          "shard " + std::to_string(s) + " ('" + manifest.shards[s].path +
          "') holds " + std::to_string(clients[s]->num_candidates()) +
          " candidates but the manifest records " +
          std::to_string(manifest.shards[s].candidate_count));
    }
    if (clients[s]->config() != clients[0]->config()) {
      return Status::InvalidArgument(
          "shard " + std::to_string(s) +
          " was built under a different JoinMIConfig than shard 0 — "
          "sketches across shards would not coordinate");
    }
  }
  return ShardedSketchIndex(std::move(manifest), std::move(clients));
}

Result<ShardedSketchIndex> ShardedSketchIndex::Load(
    const std::string& manifest_path, const ShardClientFactory& factory) {
  JOINMI_ASSIGN_OR_RETURN(ShardManifest manifest,
                          ReadManifestFile(manifest_path));
  const std::string base =
      std::filesystem::path(manifest_path).parent_path().string();
  std::vector<std::unique_ptr<ShardClient>> clients;
  clients.reserve(manifest.shards.size());
  for (size_t s = 0; s < manifest.shards.size(); ++s) {
    JOINMI_ASSIGN_OR_RETURN(std::unique_ptr<ShardClient> client,
                            factory(manifest, s, base));
    clients.push_back(std::move(client));
  }
  return Create(std::move(manifest), std::move(clients));
}

Result<ShardedSketchIndex> ShardedSketchIndex::Load(
    const std::string& manifest_path) {
  return Load(manifest_path, LocalFileFactory());
}

ShardClientFactory ShardedSketchIndex::LocalFileFactory() {
  return LocalFileFactory(LocalShardLoadOptions());
}

ShardClientFactory ShardedSketchIndex::LocalFileFactory(
    const LocalShardLoadOptions& options) {
  return [options](const ShardManifest& manifest, size_t shard,
                   const std::string& manifest_dir)
             -> Result<std::unique_ptr<ShardClient>> {
    const ShardManifestEntry& entry = manifest.shards[shard];
    const std::string resolved = ResolveShardPath(entry, manifest_dir);
    // The base file holds only the pre-delta prefix of the shard's
    // candidates; appended ones live in the JMDS sidecar and are layered
    // on by LoadDeltaOverlay below.
    const size_t base_count =
        static_cast<size_t>(entry.base_candidate_count());
    std::vector<uint64_t> base_indices(
        entry.global_indices.begin(),
        entry.global_indices.begin() + base_count);
    std::unique_ptr<ShardClient> base;
    if (entry.format == ShardFileFormat::kPaged) {
      // Open is header + directory only; the manifest's whole-file
      // checksum is deliberately not recomputed here — that read would
      // be O(shard) and defeat lazy loading. The JMPS header and
      // directory carry their own checksums (verified now) and every
      // page carries one verified on fault-in, covering all bytes the
      // queries touch.
      PagedShardClient::Options paged_options;
      paged_options.pool_pages = options.pool_pages;
      paged_options.prepared_cache_entries = options.prepared_cache_entries;
      JOINMI_ASSIGN_OR_RETURN(
          std::unique_ptr<PagedShardClient> client,
          PagedShardClient::Open(resolved, base_indices, paged_options));
      base = std::move(client);
    } else {
      JOINMI_ASSIGN_OR_RETURN(std::string bytes,
                              wire::ReadFileBytes(resolved));
      // Verify against the manifest before parsing: a corrupt or swapped
      // shard file must fail here with provenance, not as a blob error
      // (or not at all, if the bit flip lands in sketch payload bytes).
      const uint64_t checksum = wire::Checksum64(bytes);
      if (checksum != entry.checksum) {
        return Status::InvalidArgument(
            "shard file '" + resolved + "' checksum " +
            std::to_string(checksum) + " disagrees with the manifest (" +
            std::to_string(entry.checksum) +
            ") — the file is corrupt or does not belong to this manifest");
      }
      JOINMI_ASSIGN_OR_RETURN(SketchIndex index, DeserializeIndex(bytes));
      if (index.size() != base_count) {
        return Status::InvalidArgument(
            "shard file '" + resolved + "' holds " +
            std::to_string(index.size()) +
            " candidates but the manifest records " +
            std::to_string(base_count) + " (plus " +
            std::to_string(entry.delta_records) + " delta records)");
      }
      JOINMI_ASSIGN_OR_RETURN(
          std::unique_ptr<LocalShardClient> client,
          LocalShardClient::Create(std::move(index),
                                   std::move(base_indices)));
      base = std::move(client);
    }
    return ingest::LoadDeltaOverlay(std::move(base), entry, manifest_dir);
  };
}

Result<std::vector<ShardSearchResult>> ShardClient::SearchVariants(
    const JoinMIQuery& query, const std::vector<ShardSearchVariant>& variants,
    size_t num_threads) const {
  std::vector<ShardSearchResult> results;
  results.reserve(variants.size());
  for (const ShardSearchVariant& variant : variants) {
    if (variant.min_join_size == query.config().min_join_size) {
      JOINMI_ASSIGN_OR_RETURN(ShardSearchResult result,
                              Search(query, variant.k, num_threads));
      results.push_back(std::move(result));
      continue;
    }
    // A variant under a different join-size floor needs a query configured
    // with it — min_join_size is the one knob that travels with the query
    // rather than the shard, so substitute and rebuild from the same
    // sketch. The rebuilt query estimates identically to a Create()-built
    // one, keeping variant results bit-identical to single searches.
    JoinMIConfig config = query.config();
    config.min_join_size = variant.min_join_size;
    JOINMI_ASSIGN_OR_RETURN(JoinMIQuery rebuilt,
                            JoinMIQuery::FromTrainSketch(query.train_sketch(),
                                                         config));
    JOINMI_ASSIGN_OR_RETURN(ShardSearchResult result,
                            Search(rebuilt, variant.k, num_threads));
    results.push_back(std::move(result));
  }
  return results;
}

Result<ShardSearchResult> ShardedSketchIndex::Search(
    const JoinMIQuery& query, size_t k, size_t num_threads,
    ShardQueryMode mode) const {
  if (k == 0) {
    return Status::InvalidArgument("sharded search requires k >= 1");
  }
  const size_t num_shards = clients_.size();
  std::vector<ShardSearchResult> per_shard(num_shards);
  std::vector<Status> statuses(num_shards, Status::OK());
  auto run_shard = [this, &query, k, &per_shard, &statuses](
                       size_t s, size_t shard_threads) {
    auto result = clients_[s]->Search(query, k, shard_threads);
    if (result.ok()) {
      per_shard[s] = std::move(*result);
    } else {
      statuses[s] = result.status();
    }
  };
  const size_t threads = num_threads == 0 ? ThreadPool::DefaultThreadCount()
                                          : num_threads;
  if (threads <= 1 || num_shards <= 1) {
    for (size_t s = 0; s < num_shards; ++s) run_shard(s, threads);
  } else {
    // One task per shard, with the thread budget divided among the shard
    // evaluations (each gets >= 1) so total concurrency stays ~threads
    // whether the index has 2 shards or 200 — never fewer workers than the
    // unsharded path would use, never oversubscribed by nesting.
    const size_t per_shard_threads = std::max<size_t>(1, threads / num_shards);
    ThreadPool pool(std::min(threads, num_shards));
    for (size_t s = 0; s < num_shards; ++s) {
      pool.Submit([&run_shard, s, per_shard_threads] {
        run_shard(s, per_shard_threads);
      });
    }
    pool.Wait();
  }
  ShardSearchResult merged;
  if (mode == ShardQueryMode::kStrict) {
    // First failure in shard order wins, so errors are deterministic too.
    for (size_t s = 0; s < num_shards; ++s) {
      if (!statuses[s].ok()) {
        return Status(statuses[s].code(),
                      "shard " + std::to_string(s) + " failed: " +
                          statuses[s].message());
      }
    }
  } else {
    for (size_t s = 0; s < num_shards; ++s) {
      if (!statuses[s].ok()) {
        merged.shard_failures.push_back(ShardFailure{s, statuses[s]});
      }
    }
    if (merged.shard_failures.size() == num_shards) {
      const Status& first = merged.shard_failures.front().status;
      return Status(first.code(),
                    "every shard failed; first failure (shard " +
                        std::to_string(merged.shard_failures.front().shard) +
                        "): " + first.message());
    }
  }
  size_t total_hits = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    if (!statuses[s].ok()) continue;
    merged.num_candidates += per_shard[s].num_candidates;
    merged.num_evaluated += per_shard[s].num_evaluated;
    merged.num_skipped += per_shard[s].num_skipped;
    merged.num_errors += per_shard[s].num_errors;
    total_hits += per_shard[s].hits.size();
  }
  merged.hits.reserve(total_hits);
  for (size_t s = 0; s < num_shards; ++s) {
    if (!statuses[s].ok()) continue;
    for (ShardSearchHit& hit : per_shard[s].hits) {
      merged.hits.push_back(std::move(hit));
    }
  }
  std::sort(merged.hits.begin(), merged.hits.end(), BetterHit);
  if (merged.hits.size() > k) merged.hits.resize(k);
  return merged;
}

Result<std::vector<ShardSearchResult>> ShardedSketchIndex::SearchVariants(
    const JoinMIQuery& query, const std::vector<ShardSearchVariant>& variants,
    size_t num_threads, ShardQueryMode mode) const {
  for (size_t i = 0; i < variants.size(); ++i) {
    if (variants[i].k == 0) {
      return Status::InvalidArgument("batched search variant " +
                                     std::to_string(i) + " requires k >= 1");
    }
  }
  if (variants.empty()) return std::vector<ShardSearchResult>{};
  const size_t num_shards = clients_.size();
  std::vector<std::vector<ShardSearchResult>> per_shard(num_shards);
  std::vector<Status> statuses(num_shards, Status::OK());
  auto run_shard = [this, &query, &variants, &per_shard, &statuses](
                       size_t s, size_t shard_threads) {
    auto result = clients_[s]->SearchVariants(query, variants, shard_threads);
    if (result.ok() && result->size() != variants.size()) {
      statuses[s] = Status::IOError(
          "shard answered " + std::to_string(result->size()) +
          " variants for a " + std::to_string(variants.size()) +
          "-variant batch");
    } else if (result.ok()) {
      per_shard[s] = std::move(*result);
    } else {
      statuses[s] = result.status();
    }
  };
  const size_t threads = num_threads == 0 ? ThreadPool::DefaultThreadCount()
                                          : num_threads;
  if (threads <= 1 || num_shards <= 1) {
    for (size_t s = 0; s < num_shards; ++s) run_shard(s, threads);
  } else {
    const size_t per_shard_threads = std::max<size_t>(1, threads / num_shards);
    ThreadPool pool(std::min(threads, num_shards));
    for (size_t s = 0; s < num_shards; ++s) {
      pool.Submit([&run_shard, s, per_shard_threads] {
        run_shard(s, per_shard_threads);
      });
    }
    pool.Wait();
  }
  // Failure handling mirrors Search: a shard fails or answers the whole
  // batch, so strict mode fails everything on the first bad shard and
  // degraded mode drops that shard from every variant's merge.
  std::vector<ShardFailure> failures;
  if (mode == ShardQueryMode::kStrict) {
    for (size_t s = 0; s < num_shards; ++s) {
      if (!statuses[s].ok()) {
        return Status(statuses[s].code(),
                      "shard " + std::to_string(s) + " failed: " +
                          statuses[s].message());
      }
    }
  } else {
    for (size_t s = 0; s < num_shards; ++s) {
      if (!statuses[s].ok()) {
        failures.push_back(ShardFailure{s, statuses[s]});
      }
    }
    if (failures.size() == num_shards) {
      const Status& first = failures.front().status;
      return Status(first.code(),
                    "every shard failed; first failure (shard " +
                        std::to_string(failures.front().shard) +
                        "): " + first.message());
    }
  }
  std::vector<ShardSearchResult> merged(variants.size());
  for (size_t i = 0; i < variants.size(); ++i) {
    ShardSearchResult& out = merged[i];
    out.shard_failures = failures;
    size_t total_hits = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      if (!statuses[s].ok()) continue;
      const ShardSearchResult& shard_result = per_shard[s][i];
      out.num_candidates += shard_result.num_candidates;
      out.num_evaluated += shard_result.num_evaluated;
      out.num_skipped += shard_result.num_skipped;
      out.num_errors += shard_result.num_errors;
      total_hits += shard_result.hits.size();
    }
    out.hits.reserve(total_hits);
    for (size_t s = 0; s < num_shards; ++s) {
      if (!statuses[s].ok()) continue;
      for (ShardSearchHit& hit : per_shard[s][i].hits) {
        out.hits.push_back(std::move(hit));
      }
    }
    std::sort(out.hits.begin(), out.hits.end(), BetterHit);
    if (out.hits.size() > variants[i].k) out.hits.resize(variants[i].k);
  }
  return merged;
}

// ------------------------------------------------------------ Partitioner

size_t AssignShard(ShardPartitionPolicy policy, size_t index,
                   const ColumnPairRef& ref, size_t num_shards) {
  switch (policy) {
    case ShardPartitionPolicy::kRoundRobin:
      return index % num_shards;
    case ShardPartitionPolicy::kHashByDataset:
      return MurmurHash3_32(ref.table_name, kShardAssignSeed) % num_shards;
  }
  return 0;
}

Result<std::string> BuildShards(const SketchIndex& index, size_t num_shards,
                                ShardPartitionPolicy policy,
                                const std::string& output_dir,
                                const ShardBuildOptions& options) {
  if (num_shards == 0) {
    return Status::InvalidArgument("cannot partition into 0 shards");
  }
  std::error_code ec;
  std::filesystem::create_directories(output_dir, ec);
  if (ec) {
    return Status::IOError("cannot create shard output directory '" +
                           output_dir + "': " + ec.message());
  }
  std::vector<SketchIndex> shards;
  shards.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards.emplace_back(index.config());
  }
  ShardManifest manifest;
  manifest.policy = policy;
  // Embedding the config (manifest v2) is what lets a router without the
  // shard files — the remote-serving deployment — sketch queries and
  // check handshake agreement.
  manifest.config = index.config();
  manifest.total_candidates = index.size();
  manifest.shards.resize(num_shards);
  for (size_t i = 0; i < index.candidates().size(); ++i) {
    const IndexedCandidate& candidate = index.candidates()[i];
    const size_t s = AssignShard(policy, i, candidate.ref, num_shards);
    // Sketch is copied (not shared): each shard file must be independently
    // loadable, and AddSketch rebuilds the candidate probe map.
    JOINMI_RETURN_NOT_OK(
        shards[s].AddSketch(candidate.ref, candidate.sketch()));
    manifest.shards[s].global_indices.push_back(i);
  }
  const std::filesystem::path dir(output_dir);
  for (size_t s = 0; s < num_shards; ++s) {
    ShardManifestEntry& entry = manifest.shards[s];
    entry.path = ShardFileName(s, options.format);
    entry.candidate_count = shards[s].size();
    entry.format = options.format;
    std::string bytes;
    if (options.format == ShardFileFormat::kPaged) {
      std::vector<std::string> records;
      records.reserve(shards[s].size());
      for (const IndexedCandidate& candidate : shards[s].candidates()) {
        records.push_back(
            EncodeCandidateRecord(candidate.ref, candidate.sketch()));
      }
      JOINMI_ASSIGN_OR_RETURN(
          bytes, storage::BuildPagedShardBytes(index.config(), records,
                                               options.page_size));
    } else {
      bytes = SerializeIndex(shards[s]);
    }
    // The checksum covers the full file bytes for both formats; paged
    // loads skip re-reading it (the JMPS internal checksums take over)
    // but verify tooling and whole-file readers still have it.
    entry.checksum = wire::Checksum64(bytes);
    JOINMI_RETURN_NOT_OK(
        wire::WriteFileBytes(bytes, (dir / entry.path).string()));
  }
  const std::string manifest_path = (dir / "manifest.jmim").string();
  JOINMI_RETURN_NOT_OK(WriteManifestFile(manifest, manifest_path));
  return manifest_path;
}

Result<std::string> BuildShards(const SketchIndex& index, size_t num_shards,
                                ShardPartitionPolicy policy,
                                const std::string& output_dir) {
  return BuildShards(index, num_shards, policy, output_dir,
                     ShardBuildOptions{});
}

}  // namespace joinmi
