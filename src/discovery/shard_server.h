// ShardServer: the serving process for one shard of a partitioned sketch
// index. Loads a single shard file named by a manifest (checksum- and
// count-verified against the manifest entry, exactly like the local
// loader — a server can no more serve a corrupt shard than a router can
// load one), binds a TCP port, and answers JMRP requests: handshake,
// serialized-train-sketch searches, and health probes.
//
// Concurrency: a dedicated accept thread hands each connection to a
// bounded ThreadPool of connection workers; each connection is served
// sequentially (one frame in, one frame out) and every search evaluates
// with a fixed per-request thread count, so total parallelism is
// num_workers x eval_threads regardless of how many routers connect.
// Rankings do not depend on either knob.
//
// This class is the in-process embedding (tests, benchmarks host real
// socket servers without fork/exec); tools/shard_server.cc is the
// operational CLI around it.

#ifndef JOINMI_DISCOVERY_SHARD_SERVER_H_
#define JOINMI_DISCOVERY_SHARD_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "src/common/thread_pool.h"
#include "src/discovery/sharded_index.h"
#include "src/net/frame.h"
#include "src/net/socket.h"

namespace joinmi {

struct ShardServerOptions {
  /// Address to bind; loopback by default (serving beyond the host is a
  /// deliberate operator decision).
  std::string host = "127.0.0.1";
  /// Port to bind; 0 binds an ephemeral port reported by port().
  uint16_t port = 0;
  /// Connection-handler pool size — the bound on concurrent connections
  /// being served (further connections queue in the listener backlog).
  size_t num_workers = 4;
  /// Threads per search evaluation (1 = inline; results never depend on
  /// this).
  size_t eval_threads = 1;
  /// Per-connection read/write bound; an idle or wedged peer is dropped
  /// after this long.
  int io_timeout_ms = 30000;
};

class ShardServer {
 public:
  /// \brief Loads shard `shard` of the manifest at `manifest_path`
  /// (checksum-verified) and prepares a server; call Start() to bind and
  /// serve.
  static Result<std::unique_ptr<ShardServer>> Create(
      const std::string& manifest_path, size_t shard,
      ShardServerOptions options = {});

  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// \brief Binds the listener and spawns the accept thread.
  Status Start();

  /// \brief Stops accepting, shuts down in-flight connections, and joins
  /// every worker. Idempotent.
  void Stop();

  /// \brief The bound port (meaningful after Start; resolves port 0).
  uint16_t port() const { return listener_.port(); }
  const std::string& host() const { return options_.host; }
  size_t shard() const { return shard_; }
  const JoinMIConfig& config() const { return client_->config(); }
  size_t num_candidates() const { return client_->num_candidates(); }
  /// \brief Requests answered (any type) since Start.
  uint64_t requests_served() const { return requests_served_.load(); }
  /// \brief Handshakes answered since Start — one per client connection
  /// ever dialed, so this counts distinct connections, not traffic.
  /// Replica drills read it to prove each replica actually took dials.
  uint64_t handshakes_served() const { return handshakes_served_.load(); }

 private:
  ShardServer(std::unique_ptr<ShardClient> client, size_t shard,
              ShardServerOptions options)
      : client_(std::move(client)), shard_(shard),
        options_(std::move(options)) {}

  void AcceptLoop();
  void ServeConnection(net::Socket socket);
  /// Builds the reply frame for one request frame.
  net::FrameType HandleFrame(const net::Frame& frame, std::string* reply);

  std::unique_ptr<ShardClient> client_;
  size_t shard_ = 0;
  ShardServerOptions options_;

  net::Listener listener_;
  std::unique_ptr<ThreadPool> workers_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> handshakes_served_{0};

  // Live connection fds, so Stop() can shutdown(2) blocked readers
  // instead of waiting out their io timeout.
  std::mutex active_mutex_;
  std::set<int> active_fds_;
};

}  // namespace joinmi

#endif  // JOINMI_DISCOVERY_SHARD_SERVER_H_
