// ShardServer: the serving process for one shard of a partitioned sketch
// index. Loads a single shard file named by a manifest (checksum- and
// count-verified against the manifest entry, exactly like the local
// loader — a server can no more serve a corrupt shard than a router can
// load one), binds a TCP port, and answers JMRP requests: handshakes (v1
// and v2), serialized-train-sketch searches, once-per-connection sketch
// uploads, batched multi-variant searches, and health probes.
//
// Concurrency: a single epoll event loop (net::EventLoop) owns every
// connection's reads and writes; each decoded frame becomes one task on a
// bounded ThreadPool of request workers, and the worker's reply is queued
// back through the loop. Responses therefore complete out of order and
// are paired by the v2 request_id — one connection can have num_workers
// requests in flight, where the old thread-per-connection design served
// each connection strictly sequentially. Every search evaluates with a
// fixed per-request thread count, so total parallelism is bounded by
// num_workers x eval_threads regardless of how many routers connect.
// Rankings do not depend on either knob.
//
// Sketch cache: a v2 client uploads its serialized train sketch once
// (keyed by wire::Checksum64 digest, recomputed server-side) and then
// sends digest-only batch requests. The cache is strictly per-connection
// — entries die with the connection, at most kMaxCachedSketches live per
// connection — so one router can never read or evict another's sketch and
// a dead client leaks nothing.
//
// This class is the in-process embedding (tests, benchmarks host real
// socket servers without fork/exec); tools/shard_server.cc is the
// operational CLI around it.

#ifndef JOINMI_DISCOVERY_SHARD_SERVER_H_
#define JOINMI_DISCOVERY_SHARD_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/common/admission.h"
#include "src/common/metrics.h"
#include "src/common/thread_pool.h"
#include "src/discovery/paged_shard_index.h"
#include "src/discovery/sharded_index.h"
#include "src/net/event_loop.h"
#include "src/net/frame.h"
#include "src/net/socket.h"
#include "src/sketch/sketch.h"

namespace joinmi {

struct ShardServerOptions {
  /// Address to bind; loopback by default (serving beyond the host is a
  /// deliberate operator decision).
  std::string host = "127.0.0.1";
  /// Port to bind; 0 binds an ephemeral port reported by port().
  uint16_t port = 0;
  /// Request-worker pool size — the bound on frames being evaluated
  /// simultaneously (across all connections; further frames queue).
  size_t num_workers = 4;
  /// Threads per search evaluation (1 = inline; results never depend on
  /// this).
  size_t eval_threads = 1;
  /// Idle-connection bound: a connection with no bytes either direction
  /// for this long is dropped.
  int io_timeout_ms = 30000;
  /// Buffer-pool budget when serving a paged ("JMPS") shard; 0 keeps the
  /// loader default. Ignored for whole-file shards.
  size_t pool_pages = 0;
  /// Refuse to serve unless the manifest records the shard as paged —
  /// the operator asked for bounded-memory serving, so silently falling
  /// back to full materialization would defeat the point.
  bool require_paged = false;
  /// Search frames (single and batch) concurrently queued or executing
  /// before new ones are rejected with kOverloaded + a retry-after hint;
  /// 0 = unbounded (the historical queue-forever behavior). Handshakes,
  /// health probes, sketch uploads, and stats requests always bypass the
  /// gate — they are what a backing-off client needs to keep working.
  size_t max_pending = 0;
  /// The "retry_after_ms=N" hint stamped into overload rejections.
  int retry_after_hint_ms = 50;
};

class ShardServer {
 public:
  /// Per-connection bound on cached sketches; an upload past the bound is
  /// rejected (deterministically — eviction could invalidate a pipelined
  /// batch already in flight).
  static constexpr size_t kMaxCachedSketches = 8;

  /// \brief Loads shard `shard` of the deployment at `manifest_ref` — a
  /// manifest file, a CURRENT pointer file, or a deployment directory
  /// (resolved through ingest::ResolveManifestPath, so the server follows
  /// the published generation) — and prepares a server; call Start() to
  /// bind and serve.
  static Result<std::unique_ptr<ShardServer>> Create(
      const std::string& manifest_ref, size_t shard,
      ShardServerOptions options = {});

  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// \brief Binds the listener and starts the event loop.
  Status Start();

  /// \brief Graceful teardown: quiesce (stop accepting/reading), drain
  /// the worker pool, flush pending responses, join the loop. Idempotent
  /// and safe to call from multiple threads concurrently — teardown runs
  /// exactly once and every caller blocks until it finished.
  void Stop();

  /// \brief The bound port (meaningful after Start; resolves port 0).
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }
  size_t shard() const { return shard_; }
  /// \brief The shard's JoinMIConfig. Stable across reloads — Reload()
  /// rejects a generation whose config differs, so every hit this server
  /// ever returns was scored under the same parameters.
  const JoinMIConfig& config() const { return config_; }
  size_t num_candidates() const;

  /// \brief Re-resolves the deployment reference this server was created
  /// from (directory / CURRENT pointer / manifest path) and atomically
  /// swaps in the newest manifest generation. In-flight queries complete
  /// against the client snapshot they took at admission; new frames see
  /// the new generation. Validates shard range, config equality with the
  /// original generation, and require_paged before swapping — a failed
  /// reload leaves the old snapshot serving. Safe to call concurrently
  /// with traffic and with itself (also reachable over the wire via
  /// kReloadRequest).
  Status Reload();

  /// \brief Manifest epoch of the generation currently serving.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  /// \brief Successful Reload() swaps since Create (counting ones that
  /// re-resolved to the same generation).
  uint64_t reloads_served() const { return reloads_served_->value(); }
  /// \brief Search frames answered (single and batch) since Start —
  /// query traffic only; handshakes and health probes have their own
  /// counters below and no longer inflate this.
  uint64_t requests_served() const { return searches_served_->value(); }
  /// \brief Handshakes answered since Start — one per client connection
  /// ever dialed, so this counts distinct connections, not traffic.
  /// Replica drills read it to prove each replica actually took dials.
  uint64_t handshakes_served() const { return handshakes_served_->value(); }
  /// \brief Health probes answered since Start.
  uint64_t health_served() const { return health_served_->value(); }
  /// \brief Sketch uploads accepted or rejected since Start.
  uint64_t sketch_uploads_served() const { return uploads_served_->value(); }
  /// \brief Search frames rejected by the admission gate since Start.
  uint64_t overload_rejections() const { return gate_.rejected(); }
  const AdmissionGate& admission() const { return gate_; }
  /// \brief Currently open serving connections.
  size_t open_connections() const {
    return loop_ ? loop_->open_connections() : 0;
  }

  /// \brief True iff this server answers from a paged shard file (buffer
  /// pool + lazy materialization) rather than an in-memory index. A delta
  /// overlay on a paged base still counts as paged.
  bool serving_paged() const;
  /// \brief Bytes read at startup vs shard file size; meaningful only
  /// when serving_paged(). The operational proof the server did not
  /// materialize the shard.
  storage::PagedOpenStats paged_open_stats() const;
  /// \brief Buffer-pool counters; meaningful only when serving_paged().
  storage::BufferPoolStats pool_stats() const;
  size_t pool_capacity() const;

  /// \brief This server's registry (served over kStatsRequest too).
  metrics::Registry& metrics() const { return registry_; }
  /// \brief One JSON document of every server counter: request counts,
  /// admission gate state, search latency histogram, and — when serving
  /// paged — buffer-pool and startup-read gauges. This is what CI parses
  /// instead of scraping stderr.
  std::string StatsJson() const;

 private:
  ShardServer(std::shared_ptr<const ShardClient> client, uint64_t epoch,
              std::string manifest_ref, size_t shard,
              ShardServerOptions options)
      : client_(std::move(client)), epoch_(epoch),
        manifest_ref_(std::move(manifest_ref)), config_(client_->config()),
        shard_(shard), options_(std::move(options)),
        gate_(options_.max_pending, options_.retry_after_hint_ms) {
    searches_served_ = registry_.GetCounter("server.searches");
    handshakes_served_ = registry_.GetCounter("server.handshakes");
    health_served_ = registry_.GetCounter("server.health_probes");
    uploads_served_ = registry_.GetCounter("server.sketch_uploads");
    stats_served_ = registry_.GetCounter("server.stats_requests");
    reloads_served_ = registry_.GetCounter("server.reloads");
    search_latency_ = registry_.GetHistogram("server.search.latency_us");
  }

  /// The client generation currently serving. Each frame takes one
  /// snapshot at admission and evaluates entirely against it, so a
  /// concurrent Reload never changes a response mid-flight; the old
  /// generation is freed when its last in-flight query drops the ref.
  std::shared_ptr<const ShardClient> Snapshot() const;

  /// Runs on a worker thread: decode, evaluate, queue the reply.
  void HandleFrame(net::EventLoop::ConnId conn, net::Frame frame);
  /// Echoes the request's header dialect (version + request id).
  void Reply(net::EventLoop::ConnId conn, const net::Frame& request,
             net::FrameType type, const std::string& payload);
  std::string HandleSearch(const net::Frame& frame,
                           const ShardClient& client);
  std::string HandleSketchUpload(net::EventLoop::ConnId conn,
                                 const net::Frame& frame);
  std::string HandleBatchSearch(net::EventLoop::ConnId conn,
                                const net::Frame& frame,
                                const ShardClient& client);

  /// Guards client_ swaps; queries only hold it long enough to copy the
  /// shared_ptr.
  mutable std::mutex client_mutex_;
  std::shared_ptr<const ShardClient> client_;
  /// Epoch of the generation client_ was loaded from.
  std::atomic<uint64_t> epoch_{0};
  /// The deployment reference Create() received, re-resolved verbatim by
  /// every Reload() (so a CURRENT flip is picked up without telling the
  /// server a new path).
  std::string manifest_ref_;
  /// Pinned at Create; Reload() enforces equality.
  JoinMIConfig config_;
  size_t shard_ = 0;
  ShardServerOptions options_;

  /// Bounds search frames queued + executing; declared after options_
  /// (its limits come from there).
  AdmissionGate gate_;
  mutable metrics::Registry registry_;
  // The per-request counters, absorbed into the registry (the ad-hoc
  // atomics they replaced lived here); pointers are stable for the
  // registry's lifetime.
  metrics::Counter* searches_served_ = nullptr;
  metrics::Counter* handshakes_served_ = nullptr;
  metrics::Counter* health_served_ = nullptr;
  metrics::Counter* uploads_served_ = nullptr;
  metrics::Counter* stats_served_ = nullptr;
  metrics::Counter* reloads_served_ = nullptr;
  metrics::Histogram* search_latency_ = nullptr;
  /// Serializes Reload() bodies (the swap itself is under client_mutex_;
  /// this keeps two concurrent reloads from racing load-then-swap and
  /// installing the older generation last).
  std::mutex reload_mutex_;

  std::unique_ptr<net::EventLoop> loop_;
  std::unique_ptr<ThreadPool> workers_;
  uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::once_flag stop_once_;

  // Per-connection uploaded-sketch cache, digest-keyed. shared_ptr lets a
  // batch evaluation hold its sketch outside the lock while the loop
  // thread erases the connection's entry.
  std::mutex cache_mutex_;
  std::unordered_map<net::EventLoop::ConnId,
                     std::map<uint64_t, std::shared_ptr<const Sketch>>>
      sketch_cache_;
};

}  // namespace joinmi

#endif  // JOINMI_DISCOVERY_SHARD_SERVER_H_
