// RpcShardClient: the ShardClient implementation that speaks JMRP to a
// remote shard server process, making a ShardedSketchIndex assembled from
// host:port endpoints behave exactly like one assembled from local shard
// files — same methods, same merged rankings, byte for byte.
//
// Connection model: a bounded ConnPool of lazily-dialed TCP connections
// per client (RpcClientOptions::pool_size); every dial runs the JMRP
// handshake (negotiating the protocol version) before the socket enters
// the pool, and idle connections are staleness-probed before reuse. Each
// pooled connection is wrapped in an rpc::Channel for its lifetime.
// Against a v2 server a channel PIPELINES: concurrent Search calls stamp
// distinct request ids, share one connection, and are demultiplexed as
// responses arrive in any order — pool_size bounds connections, not
// in-flight requests. Against a v1 server a channel serializes exchanges,
// reproducing the historical one-request-per-connection discipline.
// Requests route to the channel with the fewest calls in flight; a new
// connection is dialed only when every existing channel is busy and
// capacity remains.
//
// Sketch upload: on v2, Search and SearchVariants first ensure the
// query's serialized train sketch is cached server-side (keyed by its
// Checksum64 digest, uploaded once per connection) and then send
// digest-only batch requests — a q-variant batch ships the sketch bytes
// at most once, not q times.
//
// Creating a client against a *down* server succeeds (the router must be
// able to assemble and serve degraded while a shard is being restarted);
// the outage surfaces per-request. A *reachable* server that fails the
// handshake — wrong JoinMIConfig or candidate count for the manifest
// entry — fails Create loudly instead: that is a deployment
// misconfiguration, not an outage.
//
// Retry policy: a request is retried (bounded by
// RpcClientOptions::max_attempts) only while it is provably not yet on
// the wire — connect/handshake failures, or a send that wrote zero bytes.
// After a partial write, and after any failure past the send, the request
// is NOT retried: the server may have executed it, and "maybe executed
// twice" is a property this layer refuses to introduce even for
// idempotent searches. Sketch uploads are the one exception: they are
// idempotent by digest, so a failed upload may retry on a fresh channel.
// The reached_wire out-parameters report whether any SEARCH byte left the
// process — the signal replica failover keys on.

#ifndef JOINMI_DISCOVERY_RPC_SHARD_CLIENT_H_
#define JOINMI_DISCOVERY_RPC_SHARD_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/discovery/rpc_channel.h"
#include "src/discovery/rpc_messages.h"
#include "src/discovery/sharded_index.h"
#include "src/net/conn_pool.h"
#include "src/net/frame.h"
#include "src/net/socket.h"

namespace joinmi {

/// \brief One shard server address.
struct ShardEndpoint {
  std::string host;
  uint16_t port = 0;

  std::string ToString() const {
    return host + ":" + std::to_string(port);
  }
};

/// \brief Parses "host:port" (the port is the digits after the last
/// colon, so bracketless IPv6 hosts are not supported — use names or
/// IPv4 addresses).
Result<ShardEndpoint> ParseShardEndpoint(const std::string& spec);

/// \brief Deprecated: the single-endpoint-per-shard projection of
/// ReadShardEndpoints (replica_router.h), kept one release. It reads the
/// same file format but rejects any line listing several replicas — new
/// code should read replica sets with ReadShardEndpoints and treat a
/// one-endpoint line as a one-replica set.
Result<std::vector<ShardEndpoint>> ReadEndpointsFile(
    const std::string& path);

/// \brief Client-side networking knobs.
struct RpcClientOptions {
  /// Bound on dialing a shard server; a down server fails this fast.
  int connect_timeout_ms = 2000;
  /// Per-request read/write bound on the established connection.
  int io_timeout_ms = 30000;
  /// Attempts per request, counting the first; extra attempts are spent
  /// only on failures that provably precede the request reaching the wire.
  int max_attempts = 2;
  /// Connections this client may hold to its shard server. Against a v1
  /// server this also bounds in-flight requests; against a v2 server each
  /// connection pipelines, so it bounds sockets, not concurrency.
  size_t pool_size = 4;
  /// Highest JMRP version to offer in the handshake. The default
  /// negotiates v2 (pipelining + batch) with servers that speak it and
  /// falls back to v1 per connection otherwise; set 1 to force the legacy
  /// dialect (benchmark baselines, drills against old servers).
  uint32_t max_protocol_version = net::kProtocolVersion;
};

/// \brief Validates that `manifest` can back remote serving with
/// `num_entries` per-shard endpoint entries: it must embed a JoinMIConfig
/// (v2) and name exactly `num_entries` shards. Shared by the
/// single-endpoint and replicated factories so the two stay in lockstep.
Status ValidateServingManifest(const ShardManifest& manifest,
                               size_t num_entries);

/// \brief ShardClient over a remote shard server.
class RpcShardClient : public ShardClient {
 public:
  /// \brief Builds a client for `endpoint`, expecting the server to hold
  /// `expected_candidates` candidates sketched under `expected_config`
  /// (both from the manifest). Dials eagerly to surface handshake
  /// mismatches at assembly time, but an unreachable server is tolerated —
  /// see the connection model above.
  static Result<std::unique_ptr<RpcShardClient>> Create(
      ShardEndpoint endpoint, JoinMIConfig expected_config,
      uint64_t expected_candidates, RpcClientOptions options = {});

  /// Closes the channel set and the pool so any thread blocked on either
  /// wakes with a deterministic error before members are torn down.
  ~RpcShardClient() override;

  // Pinned in place: the pool's dialer captures `this`, so a moved-from
  // client would leave the pool dialing through a dangling pointer.
  // Create hands out unique_ptrs precisely so nobody needs to move the
  // object itself.
  RpcShardClient(const RpcShardClient&) = delete;
  RpcShardClient& operator=(const RpcShardClient&) = delete;

  /// \brief The manifest-agreed config (identical to the server's; the
  /// handshake enforces it with JoinMIConfig::operator==).
  const JoinMIConfig& config() const override { return config_; }
  size_t num_candidates() const override {
    return static_cast<size_t>(num_candidates_);
  }

  /// \brief Remote search — byte-identical to LocalShardClient over the
  /// same shard. On v2 this is a one-variant batch against the
  /// connection-cached sketch; on v1 it ships the serialized sketch with
  /// the request. `num_threads` is ignored: evaluation parallelism
  /// belongs to the server. Queries whose config disagrees with the
  /// shard's (beyond min_join_size, which travels per variant) are
  /// rejected here — the server would silently answer under *its* config
  /// otherwise.
  Result<ShardSearchResult> Search(const JoinMIQuery& query, size_t k,
                                   size_t num_threads) const override;

  /// \brief Search with failover telemetry: `*reached_wire` (must start
  /// false) is set as soon as any byte of a search frame may have left
  /// the process — after that the server may have executed the request,
  /// so the caller must not re-send it elsewhere.
  Result<ShardSearchResult> Search(const JoinMIQuery& query, size_t k,
                                   size_t num_threads,
                                   bool* reached_wire) const;

  /// \brief Batched remote search: one frame carries every variant
  /// against the uploaded sketch (v2), or a per-variant loop over plain
  /// searches on one connection (v1). result[i] answers variants[i].
  Result<std::vector<ShardSearchResult>> SearchVariants(
      const JoinMIQuery& query,
      const std::vector<ShardSearchVariant>& variants,
      size_t num_threads) const override;

  /// \brief SearchVariants with the reached_wire out-parameter (see
  /// Search).
  Result<std::vector<ShardSearchResult>> SearchVariants(
      const JoinMIQuery& query,
      const std::vector<ShardSearchVariant>& variants, size_t num_threads,
      bool* reached_wire) const;

  /// \brief Liveness + identity probe: cheap, never retried.
  Result<rpc::HealthResponse> Health() const;

  /// \brief The server's metrics snapshot as a JSON document (v2 only —
  /// a v1 server has no stats frame, so this returns NotImplemented
  /// instead of poisoning the connection with a type it must reject).
  /// Never retried: stats are advisory telemetry.
  Result<std::string> Stats() const;

  /// \brief Asks the server to re-resolve its deployment reference and
  /// swap in the newest manifest generation (v2 only; never retried —
  /// reloads are idempotent but the caller should see every failure).
  /// On OK the response reports the epoch and candidate count now
  /// serving. NOTE: after a successful reload the server's candidate
  /// count may no longer match the manifest this client was created
  /// from — existing pooled connections keep working, but fresh dials
  /// re-verify against the stale expectation. Callers that keep
  /// searching should rebuild their clients from the new manifest (the
  /// router's Reload() does exactly that).
  Result<rpc::ReloadResponse> Reload() const;

  const ShardEndpoint& endpoint() const { return endpoint_; }

  /// \brief The connection pool, exposed for instrumentation: tests and
  /// benchmarks read max_in_flight()/total_dials() to prove connection
  /// reuse (or the absence of over-dialing) rather than inferring it from
  /// timing. With channels, in_flight gauges live channels, not requests.
  const net::ConnPool& pool() const { return *pool_; }

  /// \brief Protocol version negotiated with the server by the most
  /// recent handshake; 0 until any dial succeeded.
  uint32_t negotiated_version() const { return server_version_.load(); }

  /// \brief High-water mark of requests simultaneously in flight on ONE
  /// connection — >= 2 proves pipelining actually happened.
  size_t max_pipelined() const { return pipeline_hwm_.load(); }

  /// \brief Channels currently alive (each holds one pooled connection).
  size_t live_channels() const { return channels_->live_channels(); }

  /// \brief ShardClientFactory dialing `endpoints[shard]` for each shard.
  /// Requires a v2 manifest (embedded config) and exactly one endpoint
  /// per shard.
  static ShardClientFactory Factory(std::vector<ShardEndpoint> endpoints,
                                    RpcClientOptions options = {});

 private:
  RpcShardClient(ShardEndpoint endpoint, JoinMIConfig expected_config,
                 uint64_t expected_candidates, RpcClientOptions options);

  /// \brief The pool's dialer: TCP connect + JMRP handshake (version
  /// negotiation included), verifying the server against the
  /// manifest-expected config and candidate count.
  Result<net::Socket> DialAndHandshake() const;

  /// \brief One attempt of a variant batch on `channel`; dispatches to
  /// the batch frame (v2) or a sequential per-variant loop (v1).
  Result<std::vector<ShardSearchResult>> RunVariants(
      rpc::Channel& channel, const JoinMIQuery& query,
      const std::vector<ShardSearchVariant>& variants,
      bool* reached_wire) const;

  ShardEndpoint endpoint_;
  JoinMIConfig config_;
  uint64_t num_candidates_ = 0;
  RpcClientOptions options_;

  // Leases one connection per live channel; pool_size bounds the client's
  // sockets against this shard. unique_ptr because the pool captures
  // `this` in its dialer (stable for a heap-allocated client).
  mutable std::unique_ptr<net::ConnPool> pool_;
  mutable std::unique_ptr<rpc::ChannelSet> channels_;
  // 0 = no dial has succeeded yet; otherwise the latest negotiated
  // version. All connections of one client negotiate against the same
  // server, so the latest answer is authoritative.
  mutable std::atomic<uint32_t> server_version_{0};
  mutable std::atomic<size_t> pipeline_hwm_{0};
};

}  // namespace joinmi

#endif  // JOINMI_DISCOVERY_RPC_SHARD_CLIENT_H_
