// RpcShardClient: the ShardClient implementation that speaks JMRP to a
// remote shard server process, making a ShardedSketchIndex assembled from
// host:port endpoints behave exactly like one assembled from local shard
// files — same three methods, same merged rankings, byte for byte.
//
// Connection model: a bounded ConnPool of lazily-dialed TCP connections
// per client (RpcClientOptions::pool_size), each leased for exactly one
// request/response exchange — M router threads querying the same shard
// hold M leases and have M requests in flight at once, where the old
// single-socket client serialized them behind a mutex. Every dial runs
// the JMRP handshake before the socket enters the pool, idle connections
// are staleness-probed before reuse (a restarted server is re-dialed
// transparently), and connections are re-dialed on demand after failures.
// Creating a client against a *down* server succeeds (the router must be
// able to assemble and serve degraded while a shard is being restarted);
// the outage surfaces per-request from Search/Health, which is what the
// degraded query mode feeds on. A *reachable* server that fails the
// handshake — wrong JoinMIConfig or candidate count for the manifest
// entry — fails Create loudly instead: that is a deployment
// misconfiguration, not an outage.
//
// Retry policy: a request is retried (bounded by
// RpcClientOptions::max_attempts) only while it is provably not yet on
// the wire — connect/handshake failures, or a send that wrote zero bytes.
// After a partial write, and after any failure past the send, the request
// is NOT retried: the server may have executed it, and "maybe executed
// twice" is a property this layer refuses to introduce even for
// idempotent searches.

#ifndef JOINMI_DISCOVERY_RPC_SHARD_CLIENT_H_
#define JOINMI_DISCOVERY_RPC_SHARD_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/discovery/rpc_messages.h"
#include "src/discovery/sharded_index.h"
#include "src/net/conn_pool.h"
#include "src/net/socket.h"

namespace joinmi {

/// \brief One shard server address.
struct ShardEndpoint {
  std::string host;
  uint16_t port = 0;

  std::string ToString() const {
    return host + ":" + std::to_string(port);
  }
};

/// \brief Parses "host:port" (the port is the digits after the last
/// colon, so bracketless IPv6 hosts are not supported — use names or
/// IPv4 addresses).
Result<ShardEndpoint> ParseShardEndpoint(const std::string& spec);

/// \brief Reads a v1 endpoint file: one "host:port" per line, in shard
/// order; blank lines and '#' comments (inline too) ignored. The router
/// pairs line i with manifest shard i, so the file must list exactly one
/// endpoint per shard. Malformed lines fail with the offending
/// `path:line:` position; a line listing several replicas is rejected
/// here with a pointer to the v2 reader (ReadReplicaEndpointsFile in
/// replica_router.h), which reads both formats.
Result<std::vector<ShardEndpoint>> ReadEndpointsFile(
    const std::string& path);

/// \brief Client-side networking knobs.
struct RpcClientOptions {
  /// Bound on dialing a shard server; a down server fails this fast.
  int connect_timeout_ms = 2000;
  /// Per-request read/write bound on the established connection.
  int io_timeout_ms = 30000;
  /// Attempts per request, counting the first; extra attempts are spent
  /// only on failures that provably precede the request reaching the wire.
  int max_attempts = 2;
  /// Connections this client may hold to its shard server — the bound on
  /// the router's simultaneously in-flight requests to that shard. Extra
  /// concurrent requests block for a lease instead of over-dialing.
  size_t pool_size = 4;
};

/// \brief Validates that `manifest` can back remote serving with
/// `num_entries` per-shard endpoint entries: it must embed a JoinMIConfig
/// (v2) and name exactly `num_entries` shards. Shared by the
/// single-endpoint and replicated factories so the two stay in lockstep.
Status ValidateServingManifest(const ShardManifest& manifest,
                               size_t num_entries);

/// \brief ShardClient over a remote shard server.
class RpcShardClient : public ShardClient {
 public:
  /// \brief Builds a client for `endpoint`, expecting the server to hold
  /// `expected_candidates` candidates sketched under `expected_config`
  /// (both from the manifest). Dials eagerly to surface handshake
  /// mismatches at assembly time, but an unreachable server is tolerated —
  /// see the connection model above.
  static Result<std::unique_ptr<RpcShardClient>> Create(
      ShardEndpoint endpoint, JoinMIConfig expected_config,
      uint64_t expected_candidates, RpcClientOptions options = {});

  // Pinned in place: the pool's dialer captures `this`, so a moved-from
  // client would leave the pool dialing through a dangling pointer.
  // Create hands out unique_ptrs precisely so nobody needs to move the
  // object itself.
  RpcShardClient(const RpcShardClient&) = delete;
  RpcShardClient& operator=(const RpcShardClient&) = delete;

  /// \brief The manifest-agreed config (identical to the server's; the
  /// handshake enforces it with JoinMIConfig::operator==).
  const JoinMIConfig& config() const override { return config_; }
  size_t num_candidates() const override {
    return static_cast<size_t>(num_candidates_);
  }

  /// \brief Remote search. Serializes the query's train sketch, ships it
  /// with k and the query's min_join_size, and decodes the shard's result
  /// — byte-identical to LocalShardClient over the same shard.
  /// `num_threads` is ignored: evaluation parallelism belongs to the
  /// server. Queries whose config disagrees with the shard's (beyond
  /// min_join_size, which travels with the request) are rejected here —
  /// the server would silently answer under *its* config otherwise.
  Result<ShardSearchResult> Search(const JoinMIQuery& query, size_t k,
                                   size_t num_threads) const override;

  /// \brief Liveness + identity probe: cheap, never retried.
  Result<rpc::HealthResponse> Health() const;

  const ShardEndpoint& endpoint() const { return endpoint_; }

  /// \brief The connection pool, exposed for instrumentation: tests and
  /// benchmarks read max_in_flight()/total_dials() to prove multiplexing
  /// (or the absence of over-dialing) rather than inferring it from
  /// timing.
  const net::ConnPool& pool() const { return *pool_; }

  /// \brief ShardClientFactory dialing `endpoints[shard]` for each shard.
  /// Requires a v2 manifest (embedded config) and exactly one endpoint
  /// per shard.
  static ShardClientFactory Factory(std::vector<ShardEndpoint> endpoints,
                                    RpcClientOptions options = {});

 private:
  RpcShardClient(ShardEndpoint endpoint, JoinMIConfig expected_config,
                 uint64_t expected_candidates, RpcClientOptions options);

  /// \brief The pool's dialer: TCP connect + JMRP handshake, verifying the
  /// server against the manifest-expected config and candidate count.
  Result<net::Socket> DialAndHandshake() const;

  ShardEndpoint endpoint_;
  JoinMIConfig config_;
  uint64_t num_candidates_ = 0;
  RpcClientOptions options_;

  // Leases one connection per in-flight request; pool_size bounds the
  // client's concurrency against this shard. unique_ptr because the pool
  // captures `this` in its dialer (stable for a heap-allocated client).
  mutable std::unique_ptr<net::ConnPool> pool_;
};

}  // namespace joinmi

#endif  // JOINMI_DISCOVERY_RPC_SHARD_CLIENT_H_
