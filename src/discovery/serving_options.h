// ServingOptions: one struct describing a serving topology's knobs, where
// there used to be three unrelated ones (RpcClientOptions for networking,
// ShardedSketchIndex::LocalShardLoadOptions / PagedShardClient::Options
// for paged local shards, and a loose cooldown on ReplicaRouterOptions).
// RouterOptions embeds a ServingOptions and every ShardClientFactory
// implementation consumes its slice, so an operator tunes a deployment in
// one place regardless of which backend serves it. The per-layer structs
// survive as derived slices (rpc()/replica()/local()) because each layer's
// API keeps its narrow signature.

#ifndef JOINMI_DISCOVERY_SERVING_OPTIONS_H_
#define JOINMI_DISCOVERY_SERVING_OPTIONS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/discovery/replica_router.h"
#include "src/discovery/rpc_shard_client.h"
#include "src/discovery/sharded_index.h"
#include "src/net/frame.h"

namespace joinmi {

struct ServingOptions {
  // ---- networking (every remote shard client) ----
  /// Bound on dialing a shard server; a down server fails this fast.
  int connect_timeout_ms = 2000;
  /// Per-request read/write bound on an established connection.
  int io_timeout_ms = 30000;
  /// Attempts per request, counting the first; extra attempts are spent
  /// only on failures that provably precede the request reaching the wire.
  int max_attempts = 2;
  /// Connections each shard client may hold to one server.
  size_t pool_size = 4;
  /// Highest JMRP version to offer in the handshake.
  uint32_t max_protocol_version = net::kProtocolVersion;

  // ---- replica selection ----
  /// How long a failed replica sits out before a Health() reprobe.
  int cooldown_ms = 1000;

  // ---- local paged shards ----
  /// Buffer-pool budget per paged shard, in pages.
  size_t pool_pages = 64;
  /// Per-shard pinned prepared-probe cache entries (0 disables).
  size_t prepared_cache_entries = 8;

  /// \brief The networking slice an RpcShardClient consumes.
  RpcClientOptions rpc() const {
    RpcClientOptions options;
    options.connect_timeout_ms = connect_timeout_ms;
    options.io_timeout_ms = io_timeout_ms;
    options.max_attempts = max_attempts;
    options.pool_size = pool_size;
    options.max_protocol_version = max_protocol_version;
    return options;
  }

  /// \brief The slice a ReplicaShardClient consumes (networking + cooldown).
  ReplicaRouterOptions replica() const {
    ReplicaRouterOptions options;
    options.rpc = rpc();
    options.cooldown_ms = cooldown_ms;
    return options;
  }

  /// \brief The slice the local-file factory consumes (paged-shard knobs).
  ShardedSketchIndex::LocalShardLoadOptions local() const {
    ShardedSketchIndex::LocalShardLoadOptions options;
    options.pool_pages = pool_pages;
    options.prepared_cache_entries = prepared_cache_entries;
    return options;
  }
};

/// \brief The three ShardClientFactory implementations, each fed from one
/// ServingOptions — the construction seam Router::Open wires up, exposed
/// for callers assembling a ShardedSketchIndex directly.
inline ShardClientFactory LocalShardFactory(const ServingOptions& options) {
  return ShardedSketchIndex::LocalFileFactory(options.local());
}

inline ShardClientFactory RpcShardFactory(
    std::vector<ShardEndpoint> endpoints, const ServingOptions& options) {
  return RpcShardClient::Factory(std::move(endpoints), options.rpc());
}

inline ShardClientFactory ReplicaShardFactory(
    std::vector<std::vector<ShardEndpoint>> replica_endpoints,
    const ServingOptions& options) {
  return ReplicaShardClient::Factory(std::move(replica_endpoints),
                                     options.replica());
}

}  // namespace joinmi

#endif  // JOINMI_DISCOVERY_SERVING_OPTIONS_H_
