// Replica-aware routing: the failover layer between the sharded fan-out
// and the per-server RpcShardClient. A ReplicaShardClient serves one
// shard's slot in the router but holds one pooled RPC client per
// *replica* — interchangeable servers all serving the same shard file —
// so a query survives any single replica's death: strict mode now fails
// only when EVERY replica of some shard is down, and degraded mode
// reports a shard failure only for shards with zero live replicas.
//
// Selection policy (ReplicaSet): requests round-robin across healthy
// replicas, spreading load. A replica whose Search fails with a
// connect/IO error is marked down and sits out a cooldown
// (ReplicaRouterOptions::cooldown_ms); while it cools, requests fail over
// to the next healthy replica in rotation. When the cooldown expires, the
// next request issues a cheap Health() probe — success returns the
// replica to rotation (and resets nothing else: its pooled connections
// re-dial lazily), failure re-arms the cooldown, so a dead replica costs
// at most one probe per cooldown period rather than a failed Search
// attempt per query. If every replica is marked down, the rotation is
// attempted anyway (last resort — a replica may have returned between
// probes); only when every replica actually refuses does the shard fail,
// which is the error the strict/degraded modes then see.
//
// Correctness: replicas serve byte-identical shard files (the handshake
// pins config and candidate count to the manifest entry, exactly like the
// single-endpoint client), so WHICH replica answers never changes a
// ranking — failover is invisible to the bit-identical merge guarantee.
// Deterministic errors (config drift, a shard-side InvalidArgument) are
// returned immediately, not failed over: every replica would answer the
// same way, and masking a deployment error behind a healthy twin would
// hide real misconfiguration.
//
// The endpoints file v2 maps each shard line to N replicas (see
// ReadReplicaEndpointsFile); v1 single-endpoint files parse unchanged as
// one replica per shard.

#ifndef JOINMI_DISCOVERY_REPLICA_ROUTER_H_
#define JOINMI_DISCOVERY_REPLICA_ROUTER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/discovery/rpc_shard_client.h"
#include "src/discovery/sharded_index.h"

namespace joinmi {

/// \brief Knobs for replica selection and the per-replica RPC clients.
struct ReplicaRouterOptions {
  /// Networking options for every replica's RpcShardClient (pool size,
  /// timeouts, retry budget).
  RpcClientOptions rpc;
  /// How long a failed replica sits out before the next request spends a
  /// Health() probe on it. Values below 0 are treated as 0 (probe every
  /// request — useful in tests, wasteful in production).
  int cooldown_ms = 1000;
};

/// \brief THE endpoints-file reader: line i lists the replicas of shard i
/// as host:port specs separated by commas and/or whitespace. A v1 file —
/// exactly one endpoint per line — is a valid file with one replica per
/// shard, so both historical formats read here; the v1/v2 split is gone.
/// Blank lines and '#' comments (inline too) are ignored; malformed specs
/// fail with the offending `path:line:` position.
Result<std::vector<std::vector<ShardEndpoint>>> ReadShardEndpoints(
    const std::string& path);

/// \brief Deprecated: the pre-unification name for ReadShardEndpoints,
/// kept one release as a thin wrapper.
inline Result<std::vector<std::vector<ShardEndpoint>>>
ReadReplicaEndpointsFile(const std::string& path) {
  return ReadShardEndpoints(path);
}

/// \brief Health-tracked round-robin selection over one shard's replicas.
/// Thread-safe; pure bookkeeping (never touches the network) so it is
/// testable without sockets.
class ReplicaSet {
 public:
  ReplicaSet(size_t num_replicas, int cooldown_ms);

  /// \brief The replica indices one request should try, in order: healthy
  /// replicas first, starting from the advancing round-robin cursor, then
  /// still-cooling replicas as a last resort (attempting a probably-dead
  /// replica beats failing a query outright when nothing else is left).
  /// A down replica whose cooldown has expired is NOT resurrected here —
  /// that is Reprobe's job, on a cheap Health() probe instead of a real
  /// request.
  std::vector<size_t> PlanAttempts();

  /// \brief Down replicas whose cooldown has expired, i.e. due for a
  /// Health() probe now. Re-arms each one's cooldown so a dead replica is
  /// probed at most once per period no matter how many requests race by.
  std::vector<size_t> DueForReprobe();

  void MarkDown(size_t replica);
  void MarkHealthy(size_t replica);
  /// \brief True while the replica is marked down (cooldown expiry does
  /// not clear the mark; only MarkHealthy does).
  bool IsDown(size_t replica) const;
  size_t size() const { return states_.size(); }
  /// \brief Healthy->down transitions since construction (re-arming an
  /// already-down replica does not count) — the mark-down telemetry the
  /// metrics surface exports.
  uint64_t total_mark_downs() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct ReplicaState {
    bool down = false;
    Clock::time_point probe_due{};  // next Health() probe, while down
  };

  const std::chrono::milliseconds cooldown_;
  mutable std::mutex mutex_;
  std::vector<ReplicaState> states_;
  uint64_t cursor_ = 0;
  uint64_t mark_downs_ = 0;
};

/// \brief ShardClient over N interchangeable replicas of one shard.
class ReplicaShardClient : public ShardClient {
 public:
  /// \brief Builds one RpcShardClient per replica, each expecting the
  /// manifest's config and candidate count. Like the single-endpoint
  /// client: unreachable replicas are tolerated (the outage surfaces per
  /// request, where failover absorbs it), but a reachable replica that
  /// fails the handshake fails Create loudly — a misdeployed replica
  /// would otherwise silently shed its traffic onto its twins.
  static Result<std::unique_ptr<ReplicaShardClient>> Create(
      std::vector<ShardEndpoint> replicas, JoinMIConfig expected_config,
      uint64_t expected_candidates, ReplicaRouterOptions options = {});

  const JoinMIConfig& config() const override { return config_; }
  size_t num_candidates() const override {
    return static_cast<size_t>(num_candidates_);
  }

  /// \brief Remote search with failover: tries replicas in ReplicaSet
  /// order, marking connect/IO failures down and moving on; returns the
  /// first replica's answer (byte-identical across replicas by the
  /// handshake guarantee). Only requests that provably never reached the
  /// wire fail over — once any search byte may have left the process the
  /// request may already be executing, so the replica is marked down but
  /// the error is returned rather than re-sent to a twin ("maybe executed
  /// twice" stays impossible across replicas, exactly as it does across
  /// retries). Fails over-all only when every replica failed, with a
  /// status naming them all.
  Result<ShardSearchResult> Search(const JoinMIQuery& query, size_t k,
                                   size_t num_threads) const override;

  /// \brief Batched search with the same failover policy: un-sent batches
  /// fail over whole; a batch that reached the wire does not.
  Result<std::vector<ShardSearchResult>> SearchVariants(
      const JoinMIQuery& query,
      const std::vector<ShardSearchVariant>& variants,
      size_t num_threads) const override;

  /// \brief Probes replicas in selection order and returns the first
  /// healthy answer — the shard is "healthy" while any replica is.
  Result<rpc::HealthResponse> Health() const;

  size_t num_replicas() const { return replicas_.size(); }
  /// \brief The per-replica client (instrumentation: pool stats, endpoint).
  const RpcShardClient& replica(size_t i) const { return *replicas_[i]; }
  /// \brief Selection-state introspection for tests and drills.
  bool replica_down(size_t i) const { return set_.IsDown(i); }
  /// \brief Healthy->down transitions across this shard's replicas — the
  /// counter the Router's metrics snapshot absorbs.
  uint64_t total_mark_downs() const { return set_.total_mark_downs(); }

  /// \brief ShardClientFactory over a v2 endpoints map: shard i is served
  /// by `replica_endpoints[i]` (>= 1 endpoints each). Requires a v2
  /// manifest (embedded config) and exactly one endpoint list per shard.
  /// This is the replicated counterpart of RpcShardClient::Factory and
  /// plugs into the same ShardedSketchIndex::Load seam.
  static ShardClientFactory Factory(
      std::vector<std::vector<ShardEndpoint>> replica_endpoints,
      ReplicaRouterOptions options = {});

 private:
  /// Probes cooldown-expired replicas, then runs `attempt` against
  /// replicas in selection order under the reached-wire failover policy.
  Result<std::vector<ShardSearchResult>> FailoverLoop(
      const std::function<Result<std::vector<ShardSearchResult>>(
          const RpcShardClient&, bool*)>& attempt) const;

  ReplicaShardClient(std::vector<std::unique_ptr<RpcShardClient>> replicas,
                     JoinMIConfig config, uint64_t num_candidates,
                     ReplicaRouterOptions options)
      : replicas_(std::move(replicas)),
        config_(std::move(config)),
        num_candidates_(num_candidates),
        set_(replicas_.size(), options.cooldown_ms) {}

  std::vector<std::unique_ptr<RpcShardClient>> replicas_;
  JoinMIConfig config_;
  uint64_t num_candidates_ = 0;
  mutable ReplicaSet set_;
};

}  // namespace joinmi

#endif  // JOINMI_DISCOVERY_REPLICA_ROUTER_H_
