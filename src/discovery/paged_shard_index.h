// PagedShardClient: the ShardClient over a "JMPS" paged shard file. Where
// LocalShardClient deserializes a whole "JMIX" file into a SketchIndex at
// load, this client opens the paged file by header + directory only and
// materializes candidates lazily: a probe faults the candidate's record
// bytes through the file's buffer pool, decodes the sketch, and builds
// its PreparedCandidateSketch on the spot. Capacity is bounded by the
// pool's page budget, not by shard size, and startup cost is O(directory)
// — the properties that let one server hold shards bigger than RAM and
// restart near-instantly.
//
// Determinism: Search mirrors LocalShardClient exactly — same fail-fast
// hash-seed check, same per-candidate outcome taxonomy (estimate /
// OutOfRange-skipped / hard error), same (MI desc, global index asc)
// selection over the manifest's global indices — so rankings are
// bit-identical to the in-memory path for every k/policy/thread count,
// including under pools small enough to evict mid-query. One deliberate
// divergence in failure granularity: a page whose checksum fails on
// fault-in errors only the candidates whose records touch that page
// (counted in num_errors); the rest of the shard keeps answering.
//
// A small pinned prepared-probe cache (first-admitted, never evicted)
// keeps the hottest candidates' probe maps built across queries without
// growing with the shard.

#ifndef JOINMI_DISCOVERY_PAGED_SHARD_INDEX_H_
#define JOINMI_DISCOVERY_PAGED_SHARD_INDEX_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/discovery/sharded_index.h"
#include "src/storage/paged_shard_file.h"

namespace joinmi {

/// \brief One candidate as stored in a paged shard's record: provenance
/// plus the raw (unprepared) sketch.
struct CandidateRecord {
  ColumnPairRef ref;
  Sketch sketch;
};

/// \brief Encodes a candidate into the paged-shard record layout — the
/// same field sequence a "JMIX" candidate uses (three length-prefixed ref
/// strings, then the length-prefixed serialized sketch), so the two
/// formats stay field-compatible.
std::string EncodeCandidateRecord(const ColumnPairRef& ref,
                                  const Sketch& sketch);

/// \brief Parses a paged-shard candidate record; validates the embedded
/// sketch and rejects trailing bytes.
Result<CandidateRecord> DecodeCandidateRecord(const std::string& record);

/// \brief ShardClient over a paged shard file.
class PagedShardClient : public ShardClient {
 public:
  struct Options {
    /// Buffer-pool budget in pages.
    size_t pool_pages = 64;
    /// Candidates whose PreparedCandidateSketch stays pinned in memory
    /// across queries (first admitted, never evicted). 0 disables.
    size_t prepared_cache_entries = 8;
  };

  /// \brief Opens `path` (header + directory only; no candidate record is
  /// read) and validates `global_indices` the same way LocalShardClient
  /// does: one per record, strictly increasing.
  static Result<std::unique_ptr<PagedShardClient>> Open(
      const std::string& path, std::vector<uint64_t> global_indices);
  static Result<std::unique_ptr<PagedShardClient>> Open(
      const std::string& path, std::vector<uint64_t> global_indices,
      const Options& options);

  const JoinMIConfig& config() const override { return file_->config(); }
  size_t num_candidates() const override { return file_->num_records(); }
  Result<ShardSearchResult> Search(const JoinMIQuery& query, size_t k,
                                   size_t num_threads) const override;

  /// \brief Buffer-pool counters — the proof eviction did (or did not)
  /// happen under a given pool size.
  storage::BufferPoolStats pool_stats() const { return file_->pool_stats(); }
  /// \brief Bytes read at open vs file size — the no-full-materialization
  /// receipt.
  const storage::PagedOpenStats& open_stats() const {
    return file_->open_stats();
  }
  size_t pool_capacity() const { return file_->pool_capacity(); }

 private:
  /// A lazily materialized candidate held by the prepared cache.
  struct Materialized {
    ColumnPairRef ref;
    PreparedCandidateSketch prepared;
  };

  PagedShardClient(std::unique_ptr<storage::PagedShardFile> file,
                   std::vector<uint64_t> global_indices, size_t cache_entries)
      : file_(std::move(file)),
        global_indices_(std::move(global_indices)),
        cache_capacity_(cache_entries) {}

  /// Faults candidate `index` in: cache hit, or record read + sketch
  /// decode + probe-map build (admitted to the cache while it has room).
  Result<std::shared_ptr<const Materialized>> Materialize(size_t index) const;

  std::unique_ptr<storage::PagedShardFile> file_;
  std::vector<uint64_t> global_indices_;

  const size_t cache_capacity_;
  mutable std::mutex cache_mutex_;
  mutable std::unordered_map<size_t, std::shared_ptr<const Materialized>>
      prepared_cache_;
};

}  // namespace joinmi

#endif  // JOINMI_DISCOVERY_PAGED_SHARD_INDEX_H_
