// Minimal RFC-4180-ish CSV reader/writer: quoted fields, embedded commas and
// quotes, header row, automatic type inference. Used by the examples so
// downstream users can feed their own data files.

#ifndef JOINMI_TABLE_CSV_H_
#define JOINMI_TABLE_CSV_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/table/table.h"

namespace joinmi {

struct CsvReadOptions {
  char delimiter = ',';
  /// First row is a header of column names.
  bool has_header = true;
  /// Run type inference; otherwise all columns are strings.
  bool infer_types = true;
};

/// \brief Parses CSV text into a Table.
Result<std::shared_ptr<Table>> ReadCsvString(const std::string& text,
                                             const CsvReadOptions& options = {});

/// \brief Reads a CSV file into a Table.
Result<std::shared_ptr<Table>> ReadCsvFile(const std::string& path,
                                           const CsvReadOptions& options = {});

/// \brief Serializes a table as CSV (always writes a header row).
std::string WriteCsvString(const Table& table, char delimiter = ',');

/// \brief Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter = ',');

}  // namespace joinmi

#endif  // JOINMI_TABLE_CSV_H_
