// Type-erased cell values and logical column types. One estimator/sketch
// stack serves string, integer, and floating data by operating on Values.

#ifndef JOINMI_TABLE_VALUE_H_
#define JOINMI_TABLE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "src/common/status.h"

namespace joinmi {

/// \brief Logical column type.
///
/// Following the paper's simplification (Section II), kString models
/// unordered-categorical ("discrete") data while kInt64/kDouble model
/// ordered-numerical data; integers with repeats behave as discrete or
/// mixture depending on the estimator.
enum class DataType : uint8_t {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
};

const char* DataTypeToString(DataType type);

/// \brief True for kInt64 / kDouble.
bool IsNumeric(DataType type);

/// \brief A nullable, type-erased cell.
class Value {
 public:
  /// Null value.
  Value() : data_(std::monostate{}) {}
  Value(int64_t v) : data_(v) {}            // NOLINT(runtime/explicit)
  Value(double v) : data_(v) {}             // NOLINT(runtime/explicit)
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT(runtime/explicit)

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }

  DataType type() const {
    if (is_int64()) return DataType::kInt64;
    if (is_double()) return DataType::kDouble;
    if (is_string()) return DataType::kString;
    return DataType::kNull;
  }

  /// \brief Underlying int64; precondition: is_int64().
  int64_t int64() const { return std::get<int64_t>(data_); }
  /// \brief Underlying double; precondition: is_double().
  double dbl() const { return std::get<double>(data_); }
  /// \brief Underlying string; precondition: is_string().
  const std::string& str() const { return std::get<std::string>(data_); }

  /// \brief Numeric view: int64 widened to double. Error for string/null.
  Result<double> AsDouble() const;

  /// \brief Canonical string form ("" for null) used for hashing string keys
  /// and for CSV output.
  std::string ToString() const;

  /// \brief Equality; numeric values compare as doubles so Value(3) ==
  /// Value(3.0), consistent with Hash().
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// \brief Total order: null < int64/double (by numeric value) < string.
  /// Numeric cross-type comparisons compare as double.
  bool operator<(const Value& other) const;

  /// \brief Stable 64-bit hash consistent with operator== (numeric values
  /// equal as doubles hash identically).
  uint64_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

}  // namespace joinmi

#endif  // JOINMI_TABLE_VALUE_H_
