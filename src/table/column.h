// Typed in-memory columns. Storage is type-specialized (contiguous vectors
// plus a validity bitmap) while the accessor surface is Value-based so the
// sketch and estimator layers stay type-erased.

#ifndef JOINMI_TABLE_COLUMN_H_
#define JOINMI_TABLE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/table/value.h"

namespace joinmi {

/// \brief An immutable, typed column of nullable values.
class Column {
 public:
  /// \brief Builds an int64 column; `validity` empty means all-valid.
  static std::shared_ptr<Column> MakeInt64(std::vector<int64_t> values,
                                           std::vector<bool> validity = {});
  /// \brief Builds a double column.
  static std::shared_ptr<Column> MakeDouble(std::vector<double> values,
                                            std::vector<bool> validity = {});
  /// \brief Builds a string column.
  static std::shared_ptr<Column> MakeString(std::vector<std::string> values,
                                            std::vector<bool> validity = {});
  /// \brief Builds a column from type-erased cells; all cells must be null
  /// or of one consistent type (int64 promoted to double if mixed).
  static Result<std::shared_ptr<Column>> FromValues(
      const std::vector<Value>& values);

  DataType type() const { return type_; }
  size_t size() const { return size_; }
  size_t null_count() const { return null_count_; }

  /// \brief True if row i holds a value.
  bool IsValid(size_t i) const {
    return validity_.empty() ? true : validity_[i];
  }

  /// \brief Cell accessor; returns Value::Null() for null rows.
  Value GetValue(size_t i) const;

  /// \brief Typed accessors; preconditions: matching type() and IsValid(i).
  int64_t Int64At(size_t i) const { return int64_data_[i]; }
  double DoubleAt(size_t i) const { return double_data_[i]; }
  const std::string& StringAt(size_t i) const { return string_data_[i]; }

  /// \brief Numeric view of row i (int64 widened). Error on string columns.
  Result<double> NumericAt(size_t i) const;

  /// \brief Gathers rows by index into a new column. Indices must be in
  /// range; kNullIndex produces a null cell (used by left joins).
  static constexpr size_t kNullIndex = static_cast<size_t>(-1);
  Result<std::shared_ptr<Column>> Take(const std::vector<size_t>& indices) const;

  /// \brief Number of distinct non-null values.
  size_t CountDistinct() const;

  /// \brief All non-null cells as Values (convenience for estimators).
  std::vector<Value> ToValues() const;

 private:
  Column() = default;

  DataType type_ = DataType::kNull;
  size_t size_ = 0;
  size_t null_count_ = 0;
  std::vector<bool> validity_;  // empty == all valid
  std::vector<int64_t> int64_data_;
  std::vector<double> double_data_;
  std::vector<std::string> string_data_;
};

/// \brief Incremental column builder (used by CSV reader and joins).
class ColumnBuilder {
 public:
  explicit ColumnBuilder(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return size_; }

  Status Append(const Value& v);
  void AppendNull();

  /// \brief Finishes the column; the builder is left empty.
  Result<std::shared_ptr<Column>> Finish();

 private:
  DataType type_;
  size_t size_ = 0;
  bool any_null_ = false;
  std::vector<bool> validity_;
  std::vector<int64_t> int64_data_;
  std::vector<double> double_data_;
  std::vector<std::string> string_data_;
};

}  // namespace joinmi

#endif  // JOINMI_TABLE_COLUMN_H_
