#include "src/table/table.h"

#include <algorithm>
#include <numeric>

namespace joinmi {

Result<std::shared_ptr<Table>> Table::Make(
    Schema schema, std::vector<std::shared_ptr<Column>> columns) {
  JOINMI_RETURN_NOT_OK(schema.Validate());
  if (schema.num_fields() != columns.size()) {
    return Status::InvalidArgument("schema/column count mismatch");
  }
  size_t rows = columns.empty() ? 0 : columns[0]->size();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == nullptr) {
      return Status::InvalidArgument("null column pointer");
    }
    if (columns[i]->size() != rows) {
      return Status::InvalidArgument("column length mismatch in table");
    }
    if (columns[i]->type() != schema.field(i).type) {
      return Status::TypeError("column type does not match schema field '" +
                               schema.field(i).name + "'");
    }
  }
  return std::shared_ptr<Table>(
      new Table(std::move(schema), std::move(columns), rows));
}

Result<std::shared_ptr<Table>> Table::FromColumns(
    std::vector<std::pair<std::string, std::shared_ptr<Column>>> named) {
  std::vector<Field> fields;
  std::vector<std::shared_ptr<Column>> columns;
  fields.reserve(named.size());
  columns.reserve(named.size());
  for (auto& [name, col] : named) {
    if (col == nullptr) {
      return Status::InvalidArgument("null column for field '" + name + "'");
    }
    fields.push_back(Field{name, col->type()});
    columns.push_back(std::move(col));
  }
  return Make(Schema(std::move(fields)), std::move(columns));
}

Result<std::shared_ptr<Column>> Table::GetColumn(
    const std::string& name) const {
  JOINMI_ASSIGN_OR_RETURN(size_t idx, schema_.FieldIndex(name));
  return columns_[idx];
}

Result<std::shared_ptr<Table>> Table::Take(
    const std::vector<size_t>& indices) const {
  std::vector<std::shared_ptr<Column>> taken;
  taken.reserve(columns_.size());
  for (const auto& col : columns_) {
    JOINMI_ASSIGN_OR_RETURN(auto t, col->Take(indices));
    taken.push_back(std::move(t));
  }
  // Taken columns keep their types, but all-null takes may lose them; rebuild
  // the schema from the result columns to stay consistent.
  std::vector<Field> fields;
  fields.reserve(columns_.size());
  for (size_t i = 0; i < taken.size(); ++i) {
    fields.push_back(Field{schema_.field(i).name, taken[i]->type()});
  }
  return Make(Schema(std::move(fields)), std::move(taken));
}

Result<std::shared_ptr<Table>> Table::Select(
    const std::vector<std::string>& names) const {
  std::vector<Field> fields;
  std::vector<std::shared_ptr<Column>> cols;
  for (const auto& name : names) {
    JOINMI_ASSIGN_OR_RETURN(size_t idx, schema_.FieldIndex(name));
    fields.push_back(schema_.field(idx));
    cols.push_back(columns_[idx]);
  }
  return Make(Schema(std::move(fields)), std::move(cols));
}

Result<std::shared_ptr<Table>> Table::Head(size_t n) const {
  std::vector<size_t> indices(std::min(n, num_rows_));
  std::iota(indices.begin(), indices.end(), size_t{0});
  return Take(indices);
}

std::string Table::ToString(size_t max_rows) const {
  std::string out = schema_.ToString();
  out += "\n";
  const size_t rows = std::min(max_rows, num_rows_);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += " | ";
      const Value v = columns_[c]->GetValue(r);
      out += v.is_null() ? "NULL" : v.ToString();
    }
    out += "\n";
  }
  if (rows < num_rows_) {
    out += "... (" + std::to_string(num_rows_ - rows) + " more rows)\n";
  }
  return out;
}

}  // namespace joinmi
