#include "src/table/column.h"

#include <algorithm>
#include <unordered_set>

namespace joinmi {

namespace {
size_t CountNulls(const std::vector<bool>& validity) {
  size_t nulls = 0;
  for (bool v : validity) {
    if (!v) ++nulls;
  }
  return nulls;
}
}  // namespace

std::shared_ptr<Column> Column::MakeInt64(std::vector<int64_t> values,
                                          std::vector<bool> validity) {
  auto col = std::shared_ptr<Column>(new Column());
  col->type_ = DataType::kInt64;
  col->size_ = values.size();
  col->int64_data_ = std::move(values);
  col->validity_ = std::move(validity);
  col->null_count_ = CountNulls(col->validity_);
  return col;
}

std::shared_ptr<Column> Column::MakeDouble(std::vector<double> values,
                                           std::vector<bool> validity) {
  auto col = std::shared_ptr<Column>(new Column());
  col->type_ = DataType::kDouble;
  col->size_ = values.size();
  col->double_data_ = std::move(values);
  col->validity_ = std::move(validity);
  col->null_count_ = CountNulls(col->validity_);
  return col;
}

std::shared_ptr<Column> Column::MakeString(std::vector<std::string> values,
                                           std::vector<bool> validity) {
  auto col = std::shared_ptr<Column>(new Column());
  col->type_ = DataType::kString;
  col->size_ = values.size();
  col->string_data_ = std::move(values);
  col->validity_ = std::move(validity);
  col->null_count_ = CountNulls(col->validity_);
  return col;
}

Result<std::shared_ptr<Column>> Column::FromValues(
    const std::vector<Value>& values) {
  // Determine the consensus type: int64 promotes to double when mixed.
  DataType type = DataType::kNull;
  for (const Value& v : values) {
    if (v.is_null()) continue;
    if (type == DataType::kNull) {
      type = v.type();
    } else if (type != v.type()) {
      if (IsNumeric(type) && IsNumeric(v.type())) {
        type = DataType::kDouble;
      } else {
        return Status::TypeError("mixed string/numeric cells in FromValues");
      }
    }
  }
  if (type == DataType::kNull) type = DataType::kString;  // all-null column
  ColumnBuilder builder(type);
  for (const Value& v : values) {
    JOINMI_RETURN_NOT_OK(builder.Append(v));
  }
  return builder.Finish();
}

Value Column::GetValue(size_t i) const {
  if (!IsValid(i)) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value(int64_data_[i]);
    case DataType::kDouble:
      return Value(double_data_[i]);
    case DataType::kString:
      return Value(string_data_[i]);
    case DataType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

Result<double> Column::NumericAt(size_t i) const {
  if (!IsValid(i)) return Status::TypeError("NumericAt on null cell");
  if (type_ == DataType::kInt64) return static_cast<double>(int64_data_[i]);
  if (type_ == DataType::kDouble) return double_data_[i];
  return Status::TypeError("NumericAt on non-numeric column");
}

Result<std::shared_ptr<Column>> Column::Take(
    const std::vector<size_t>& indices) const {
  ColumnBuilder builder(type_ == DataType::kNull ? DataType::kString : type_);
  for (size_t idx : indices) {
    if (idx == kNullIndex) {
      builder.AppendNull();
      continue;
    }
    if (idx >= size_) {
      return Status::IndexError("Take index out of range");
    }
    JOINMI_RETURN_NOT_OK(builder.Append(GetValue(idx)));
  }
  return builder.Finish();
}

size_t Column::CountDistinct() const {
  std::unordered_set<uint64_t> seen;
  seen.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    if (!IsValid(i)) continue;
    seen.insert(GetValue(i).Hash());
  }
  return seen.size();
}

std::vector<Value> Column::ToValues() const {
  std::vector<Value> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    if (!IsValid(i)) continue;
    out.push_back(GetValue(i));
  }
  return out;
}

Status ColumnBuilder::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kInt64:
      if (!v.is_int64()) {
        return Status::TypeError("appending non-int64 to int64 builder");
      }
      int64_data_.push_back(v.int64());
      break;
    case DataType::kDouble: {
      JOINMI_ASSIGN_OR_RETURN(double d, v.AsDouble());
      double_data_.push_back(d);
      break;
    }
    case DataType::kString:
      if (!v.is_string()) {
        return Status::TypeError("appending non-string to string builder");
      }
      string_data_.push_back(v.str());
      break;
    case DataType::kNull:
      return Status::TypeError("cannot append to null-typed builder");
  }
  validity_.push_back(true);
  ++size_;
  return Status::OK();
}

void ColumnBuilder::AppendNull() {
  switch (type_) {
    case DataType::kInt64:
      int64_data_.push_back(0);
      break;
    case DataType::kDouble:
      double_data_.push_back(0.0);
      break;
    default:
      string_data_.emplace_back();
      break;
  }
  validity_.push_back(false);
  any_null_ = true;
  ++size_;
}

Result<std::shared_ptr<Column>> ColumnBuilder::Finish() {
  std::vector<bool> validity;
  if (any_null_) validity = std::move(validity_);
  std::shared_ptr<Column> col;
  switch (type_) {
    case DataType::kInt64:
      col = Column::MakeInt64(std::move(int64_data_), std::move(validity));
      break;
    case DataType::kDouble:
      col = Column::MakeDouble(std::move(double_data_), std::move(validity));
      break;
    case DataType::kString:
      col = Column::MakeString(std::move(string_data_), std::move(validity));
      break;
    case DataType::kNull:
      return Status::TypeError("cannot finish null-typed builder");
  }
  // Reset so the builder can be reused.
  validity_.clear();
  int64_data_.clear();
  double_data_.clear();
  string_data_.clear();
  size_ = 0;
  any_null_ = false;
  return col;
}

}  // namespace joinmi
