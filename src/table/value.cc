#include "src/table/value.h"

#include <cmath>
#include <cstdio>

#include "src/common/hashing.h"

namespace joinmi {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "null";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

bool IsNumeric(DataType type) {
  return type == DataType::kInt64 || type == DataType::kDouble;
}

Result<double> Value::AsDouble() const {
  if (is_double()) return dbl();
  if (is_int64()) return static_cast<double>(int64());
  return Status::TypeError("value of type " +
                           std::string(DataTypeToString(type())) +
                           " is not numeric");
}

std::string Value::ToString() const {
  if (is_null()) return "";
  if (is_string()) return str();
  if (is_int64()) return std::to_string(int64());
  // Shortest round-trip representation for doubles.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", dbl());
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, dbl());
    double parsed = 0.0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == dbl()) return shorter;
  }
  return buf;
}

bool Value::operator==(const Value& other) const {
  const bool a_num = is_int64() || is_double();
  const bool b_num = other.is_int64() || other.is_double();
  if (a_num && b_num) {
    const double a = is_double() ? dbl() : static_cast<double>(int64());
    const double b =
        other.is_double() ? other.dbl() : static_cast<double>(other.int64());
    return a == b;
  }
  return data_ == other.data_;
}

bool Value::operator<(const Value& other) const {
  const bool a_num = is_int64() || is_double();
  const bool b_num = other.is_int64() || other.is_double();
  if (is_null() || other.is_null()) return is_null() && !other.is_null();
  if (a_num && b_num) {
    const double a = is_double() ? dbl() : static_cast<double>(int64());
    const double b =
        other.is_double() ? other.dbl() : static_cast<double>(other.int64());
    return a < b;
  }
  if (a_num != b_num) return a_num;  // numbers sort before strings
  return str() < other.str();
}

uint64_t Value::Hash() const {
  if (is_null()) return 0x6E756C6CULL;  // "null"
  if (is_string()) {
    return Mix64(MurmurHash3_32(str(), /*seed=*/0x5EEDu) |
                 (static_cast<uint64_t>(str().size()) << 32));
  }
  // Hash numerics through their double representation so 3 == 3.0 hash
  // identically (consistent with operator== via AsDouble comparisons in
  // group-by keys; exact int64s beyond 2^53 are out of scope for this data).
  const double d = is_double() ? dbl() : static_cast<double>(int64());
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  if (d == 0.0) bits = 0;  // +0.0 / -0.0 collapse
  return Mix64(bits ^ 0xD0B1E5ULL);
}

}  // namespace joinmi
