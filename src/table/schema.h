// Field and Schema: named, typed column descriptors for tables.

#ifndef JOINMI_TABLE_SCHEMA_H_
#define JOINMI_TABLE_SCHEMA_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/table/value.h"

namespace joinmi {

/// \brief A named, typed column descriptor.
struct Field {
  std::string name;
  DataType type = DataType::kNull;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief An ordered collection of fields with unique names.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// \brief Index of a field by name.
  Result<size_t> FieldIndex(const std::string& name) const;

  /// \brief True if a field with the given name exists.
  bool HasField(const std::string& name) const;

  /// \brief Fails if any field name repeats.
  Status Validate() const;

  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace joinmi

#endif  // JOINMI_TABLE_SCHEMA_H_
