#include "src/table/csv.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "src/common/string_util.h"
#include "src/table/type_inference.h"

namespace joinmi {

namespace {

/// Splits a full CSV document into rows of fields, honoring quotes.
Status ParseCsv(const std::string& text, char delim,
                std::vector<std::vector<std::string>>* rows) {
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_data = false;
  const size_t n = text.size();
  for (size_t i = 0; i < n; ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      row_has_data = true;
    } else if (c == delim) {
      row.push_back(std::move(field));
      field.clear();
      row_has_data = true;
    } else if (c == '\n' || c == '\r') {
      if (c == '\r' && i + 1 < n && text[i + 1] == '\n') ++i;
      if (row_has_data || !field.empty()) {
        row.push_back(std::move(field));
        field.clear();
        rows->push_back(std::move(row));
        row.clear();
        row_has_data = false;
      }
    } else {
      field += c;
      row_has_data = true;
    }
  }
  if (in_quotes) return Status::IOError("unterminated quoted CSV field");
  if (row_has_data || !field.empty()) {
    row.push_back(std::move(field));
    rows->push_back(std::move(row));
  }
  return Status::OK();
}

std::string EscapeCsvField(const std::string& field, char delim) {
  const bool needs_quotes =
      field.find(delim) != std::string::npos ||
      field.find('"') != std::string::npos ||
      field.find('\n') != std::string::npos ||
      field.find('\r') != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<std::shared_ptr<Table>> ReadCsvString(const std::string& text,
                                             const CsvReadOptions& options) {
  std::vector<std::vector<std::string>> rows;
  JOINMI_RETURN_NOT_OK(ParseCsv(text, options.delimiter, &rows));
  if (rows.empty()) {
    return Status::IOError("empty CSV input");
  }
  std::vector<std::string> header;
  size_t first_data_row = 0;
  if (options.has_header) {
    header = rows[0];
    first_data_row = 1;
  } else {
    header.resize(rows[0].size());
    for (size_t i = 0; i < header.size(); ++i) {
      header[i] = "col" + std::to_string(i);
    }
  }
  const size_t num_cols = header.size();
  for (size_t r = first_data_row; r < rows.size(); ++r) {
    if (rows[r].size() != num_cols) {
      return Status::IOError(
          StrFormat("CSV row %zu has %zu fields, expected %zu", r,
                    rows[r].size(), num_cols));
    }
  }
  std::vector<std::pair<std::string, std::shared_ptr<Column>>> named;
  named.reserve(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    std::vector<std::string> cells;
    cells.reserve(rows.size() - first_data_row);
    for (size_t r = first_data_row; r < rows.size(); ++r) {
      cells.push_back(rows[r][c]);
    }
    std::shared_ptr<Column> col;
    if (options.infer_types) {
      JOINMI_ASSIGN_OR_RETURN(col, ParseColumn(cells));
    } else {
      col = Column::MakeString(std::move(cells));
    }
    named.emplace_back(std::string(Trim(header[c])), std::move(col));
  }
  return Table::FromColumns(std::move(named));
}

Result<std::shared_ptr<Table>> ReadCsvFile(const std::string& path,
                                           const CsvReadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadCsvString(buffer.str(), options);
}

std::string WriteCsvString(const Table& table, char delimiter) {
  std::string out;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out += delimiter;
    out += EscapeCsvField(table.schema().field(c).name, delimiter);
  }
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += delimiter;
      const Value v = table.column(c)->GetValue(r);
      if (!v.is_null()) out += EscapeCsvField(v.ToString(), delimiter);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << WriteCsvString(table, delimiter);
  if (!out) return Status::IOError("failed writing '" + path + "'");
  return Status::OK();
}

}  // namespace joinmi
