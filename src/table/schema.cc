#include "src/table/schema.h"

#include <unordered_set>

namespace joinmi {

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::KeyError("no field named '" + name + "'");
}

bool Schema::HasField(const std::string& name) const {
  return FieldIndex(name).ok();
}

Status Schema::Validate() const {
  std::unordered_set<std::string> seen;
  for (const Field& f : fields_) {
    if (f.name.empty()) {
      return Status::InvalidArgument("schema contains an unnamed field");
    }
    if (!seen.insert(f.name).second) {
      return Status::InvalidArgument("duplicate field name '" + f.name + "'");
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "schema{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ": ";
    out += DataTypeToString(fields_[i].type);
  }
  out += "}";
  return out;
}

}  // namespace joinmi
