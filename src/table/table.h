// In-memory immutable table: a schema plus equal-length columns.

#ifndef JOINMI_TABLE_TABLE_H_
#define JOINMI_TABLE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/table/column.h"
#include "src/table/schema.h"

namespace joinmi {

/// \brief An immutable relational table.
class Table {
 public:
  /// \brief Builds a table, validating schema/column agreement.
  static Result<std::shared_ptr<Table>> Make(
      Schema schema, std::vector<std::shared_ptr<Column>> columns);

  /// \brief Convenience: builds a table from (name, column) pairs, inferring
  /// field types from the columns.
  static Result<std::shared_ptr<Table>> FromColumns(
      std::vector<std::pair<std::string, std::shared_ptr<Column>>> named);

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return num_rows_; }

  const std::shared_ptr<Column>& column(size_t i) const { return columns_[i]; }

  /// \brief Column lookup by field name.
  Result<std::shared_ptr<Column>> GetColumn(const std::string& name) const;

  /// \brief Gathers rows into a new table (kNullIndex rows become nulls).
  Result<std::shared_ptr<Table>> Take(const std::vector<size_t>& indices) const;

  /// \brief Selects a subset of columns by name, in the given order.
  Result<std::shared_ptr<Table>> Select(
      const std::vector<std::string>& names) const;

  /// \brief First `n` rows (or all if fewer) as a new table.
  Result<std::shared_ptr<Table>> Head(size_t n) const;

  /// \brief Human-readable preview of up to `max_rows` rows.
  std::string ToString(size_t max_rows = 10) const;

 private:
  Table(Schema schema, std::vector<std::shared_ptr<Column>> columns,
        size_t num_rows)
      : schema_(std::move(schema)),
        columns_(std::move(columns)),
        num_rows_(num_rows) {}

  Schema schema_;
  std::vector<std::shared_ptr<Column>> columns_;
  size_t num_rows_ = 0;
};

}  // namespace joinmi

#endif  // JOINMI_TABLE_TABLE_H_
