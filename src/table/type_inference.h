// Tablesaw-style column type inference from string cells: the paper's real-
// data pipeline (Section V-C, footnote 2) uses the Tablesaw library to decide
// whether an attribute is a string or numeric column; this is our native
// equivalent.

#ifndef JOINMI_TABLE_TYPE_INFERENCE_H_
#define JOINMI_TABLE_TYPE_INFERENCE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/table/column.h"

namespace joinmi {

/// \brief Inference result for a column of raw strings.
struct InferredType {
  DataType type = DataType::kString;
  /// Number of cells treated as null ("", "null", "na", "n/a", case-insensitive).
  size_t null_count = 0;
};

/// \brief Infers the narrowest type that parses every non-null cell:
/// int64 -> double -> string.
InferredType InferType(const std::vector<std::string>& cells);

/// \brief Parses raw string cells into a typed column using InferType.
Result<std::shared_ptr<Column>> ParseColumn(
    const std::vector<std::string>& cells);

/// \brief True if the cell spelling denotes a missing value.
bool IsNullToken(const std::string& cell);

}  // namespace joinmi

#endif  // JOINMI_TABLE_TYPE_INFERENCE_H_
