#include "src/table/type_inference.h"

#include "src/common/string_util.h"

namespace joinmi {

bool IsNullToken(const std::string& cell) {
  const std::string lower = ToLower(Trim(cell));
  return lower.empty() || lower == "null" || lower == "na" || lower == "n/a" ||
         lower == "nan" || lower == "none";
}

InferredType InferType(const std::vector<std::string>& cells) {
  InferredType result;
  bool all_int = true;
  bool all_double = true;
  bool any_value = false;
  for (const std::string& cell : cells) {
    if (IsNullToken(cell)) {
      ++result.null_count;
      continue;
    }
    any_value = true;
    int64_t i64;
    double d;
    if (!ParseInt64(cell, &i64)) all_int = false;
    if (!ParseDouble(cell, &d)) {
      all_double = false;
      all_int = false;
    }
    if (!all_double) break;  // already forced to string
  }
  if (!any_value) {
    result.type = DataType::kString;
  } else if (all_int) {
    result.type = DataType::kInt64;
  } else if (all_double) {
    result.type = DataType::kDouble;
  } else {
    result.type = DataType::kString;
  }
  return result;
}

Result<std::shared_ptr<Column>> ParseColumn(
    const std::vector<std::string>& cells) {
  const InferredType inferred = InferType(cells);
  ColumnBuilder builder(inferred.type);
  for (const std::string& cell : cells) {
    if (IsNullToken(cell)) {
      builder.AppendNull();
      continue;
    }
    switch (inferred.type) {
      case DataType::kInt64: {
        int64_t v = 0;
        ParseInt64(cell, &v);
        JOINMI_RETURN_NOT_OK(builder.Append(Value(v)));
        break;
      }
      case DataType::kDouble: {
        double v = 0.0;
        ParseDouble(cell, &v);
        JOINMI_RETURN_NOT_OK(builder.Append(Value(v)));
        break;
      }
      default:
        JOINMI_RETURN_NOT_OK(builder.Append(Value(std::string(Trim(cell)))));
        break;
    }
  }
  return builder.Finish();
}

}  // namespace joinmi
