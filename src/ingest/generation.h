// Manifest generations and the CURRENT pointer: how a deployment names
// which index state it serves.
//
// Every publish writes a brand-new manifest file for the next epoch
// (generation files are never rewritten in place) and then flips a small
// `CURRENT` pointer file at the deployment root via write-temp + fsync +
// rename — the only mutation readers can race, and rename(2) makes it
// atomic. CURRENT records the manifest filename plus a checksum of its
// bytes, so resolution fails loudly instead of serving a half-written or
// damaged generation: CURRENT always names a complete, checksum-valid
// manifest.
//
// CURRENT format (text, three lines):
//   JMCUR v1
//   <manifest filename, relative to the deployment dir>
//   <decimal FNV-1a checksum of the manifest bytes>

#ifndef JOINMI_INGEST_GENERATION_H_
#define JOINMI_INGEST_GENERATION_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace joinmi {
namespace ingest {

inline constexpr char kCurrentFileName[] = "CURRENT";

/// \brief Canonical manifest filename for an epoch: "manifest.jmim" for
/// epoch 0 (what build_shards writes), "manifest-g000042.jmim" beyond.
std::string GenerationManifestName(uint64_t epoch);

/// \brief Writes `data` to `path` with write + fsync + checked close —
/// unlike wire::WriteFileBytes, the bytes are on stable storage when this
/// returns, which is what publish paths need before a pointer or
/// manifest may name the file.
Status WriteFileDurable(const std::string& path, const std::string& data);

/// \brief Atomically points `dir`/CURRENT at `manifest_filename` (which
/// must already exist in `dir`): writes CURRENT.tmp with the filename and
/// manifest checksum, fsyncs it, renames over CURRENT, fsyncs the
/// directory. A crash at any step leaves either the old pointer or the
/// new one, never a torn file.
Status PublishCurrent(const std::string& dir,
                      const std::string& manifest_filename);

/// \brief Resolves a deployment reference to a concrete manifest path.
/// Accepts: a directory (uses its CURRENT pointer when present, else
/// falls back to manifest.jmim), a CURRENT pointer file, or a manifest
/// file itself (returned as-is). Pointer resolution verifies the named
/// manifest exists and matches the recorded checksum.
Result<std::string> ResolveManifestPath(const std::string& path);

}  // namespace ingest
}  // namespace joinmi

#endif  // JOINMI_INGEST_GENERATION_H_
