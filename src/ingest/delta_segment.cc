#include "src/ingest/delta_segment.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/sketch/serialize.h"

namespace joinmi {
namespace ingest {

namespace {

// FNV-1a 64, byte-streamable — same constants as wire::Checksum64 so a
// chain checksum maintained incrementally here equals Checksum64 over the
// same prefix.
constexpr uint64_t kFnvBasis = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvUpdate(uint64_t hash, const char* data, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t FnvUpdate(uint64_t hash, const std::string& data) {
  return FnvUpdate(hash, data.data(), data.size());
}

constexpr uint8_t kRecordTag = 1;
constexpr uint8_t kCommitTag = 2;

std::string EncodeHeader(const JoinMIConfig& config, uint64_t shard) {
  std::string out;
  wire::AppendRaw(&out, kDeltaSegmentMagic, sizeof(kDeltaSegmentMagic));
  wire::AppendPod<uint32_t>(&out, kDeltaSegmentVersion);
  wire::AppendPod<uint64_t>(&out, shard);
  AppendJoinMIConfig(&out, config);
  wire::AppendPod<uint64_t>(&out, wire::Checksum64(out));
  return out;
}

void EncodeRecordEntry(std::string* out, const DeltaRecord& record) {
  wire::AppendPod<uint8_t>(out, kRecordTag);
  std::string body;
  wire::AppendPod<uint64_t>(&body, record.global_index);
  body.append(record.payload);
  // record_checksum covers global_index || payload.
  uint64_t record_checksum = wire::Checksum64(body);
  wire::AppendPod<uint64_t>(out, record.global_index);
  wire::AppendPod<uint32_t>(out,
                            static_cast<uint32_t>(record.payload.size()));
  out->append(record.payload);
  wire::AppendPod<uint64_t>(out, record_checksum);
}

// Parses the header of `data`, filling shard/config and returning the
// header length; `hash` is advanced over the header bytes.
Status ParseHeader(const std::string& data, uint64_t* shard,
                   JoinMIConfig* config, size_t* header_len,
                   uint64_t* hash) {
  wire::Reader reader(data);
  std::string magic;
  JOINMI_RETURN_NOT_OK(reader.ReadBytes(sizeof(kDeltaSegmentMagic), &magic));
  if (magic != std::string(kDeltaSegmentMagic, sizeof(kDeltaSegmentMagic))) {
    return Status::IOError("not a delta segment (bad magic)");
  }
  uint32_t version = 0;
  JOINMI_RETURN_NOT_OK(reader.Read(&version));
  if (version != kDeltaSegmentVersion) {
    return Status::IOError("unsupported delta segment version " +
                           std::to_string(version));
  }
  JOINMI_RETURN_NOT_OK(reader.Read(shard));
  JOINMI_ASSIGN_OR_RETURN(*config, ReadJoinMIConfig(&reader));
  size_t checksum_at = data.size() - reader.remaining();
  uint64_t stored = 0;
  JOINMI_RETURN_NOT_OK(reader.Read(&stored));
  uint64_t computed = FnvUpdate(kFnvBasis, data.data(), checksum_at);
  if (stored != computed) {
    return Status::IOError("delta segment header checksum mismatch");
  }
  *header_len = checksum_at + sizeof(uint64_t);
  *hash = FnvUpdate(computed, data.data() + checksum_at, sizeof(uint64_t));
  return Status::OK();
}

struct ParsedSegment {
  DeltaSegmentContents contents;
  uint64_t chain_hash = 0;  // hash of the committed prefix
};

// Scans entries after the header, keeping the longest prefix that ends in
// a valid commit. Anything invalid — truncation, checksum mismatch, an
// unknown tag, a commit whose count or chain disagrees — marks the start
// of the discarded tail.
ParsedSegment ParseEntries(const std::string& data, size_t header_len,
                           uint64_t header_hash,
                           DeltaSegmentContents contents) {
  ParsedSegment out;
  contents.committed_bytes = header_len;
  contents.committed_checksum = header_hash;
  uint64_t hash = header_hash;
  size_t pos = header_len;
  std::vector<DeltaRecord> pending;
  while (pos < data.size()) {
    uint8_t tag = static_cast<uint8_t>(data[pos]);
    if (tag == kRecordTag) {
      size_t need = 1 + sizeof(uint64_t) + sizeof(uint32_t);
      if (pos + need > data.size()) break;
      uint64_t global_index = 0;
      uint32_t payload_len = 0;
      std::memcpy(&global_index, data.data() + pos + 1, sizeof(uint64_t));
      std::memcpy(&payload_len, data.data() + pos + 1 + sizeof(uint64_t),
                  sizeof(uint32_t));
      size_t entry_len = need + payload_len + sizeof(uint64_t);
      if (pos + entry_len > data.size()) break;
      std::string body;
      wire::AppendPod<uint64_t>(&body, global_index);
      body.append(data, pos + need, payload_len);
      uint64_t stored = 0;
      std::memcpy(&stored, data.data() + pos + need + payload_len,
                  sizeof(uint64_t));
      if (stored != wire::Checksum64(body)) break;
      DeltaRecord record;
      record.global_index = global_index;
      record.payload = data.substr(pos + need, payload_len);
      pending.push_back(std::move(record));
      hash = FnvUpdate(hash, data.data() + pos, entry_len);
      pos += entry_len;
    } else if (tag == kCommitTag) {
      size_t entry_len = 1 + sizeof(uint64_t) + sizeof(uint64_t);
      if (pos + entry_len > data.size()) break;
      uint64_t cumulative = 0;
      uint64_t chain = 0;
      std::memcpy(&cumulative, data.data() + pos + 1, sizeof(uint64_t));
      std::memcpy(&chain, data.data() + pos + 1 + sizeof(uint64_t),
                  sizeof(uint64_t));
      if (chain != hash) break;
      if (cumulative != contents.records.size() + pending.size()) break;
      for (auto& record : pending) {
        contents.records.push_back(std::move(record));
      }
      pending.clear();
      hash = FnvUpdate(hash, data.data() + pos, entry_len);
      pos += entry_len;
      contents.committed_bytes = pos;
      contents.committed_checksum = hash;
    } else {
      break;
    }
  }
  contents.discarded_tail_bytes = data.size() - contents.committed_bytes;
  out.chain_hash = contents.committed_checksum;
  out.contents = std::move(contents);
  return out;
}

Result<ParsedSegment> ParseSegment(const std::string& data) {
  DeltaSegmentContents contents;
  size_t header_len = 0;
  uint64_t hash = 0;
  JOINMI_RETURN_NOT_OK(ParseHeader(data, &contents.shard, &contents.config,
                                   &header_len, &hash));
  return ParseEntries(data, header_len, hash, std::move(contents));
}

Status WriteAllFd(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("delta segment write failed: ") +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<DeltaSegmentContents> ReadDeltaSegmentFile(const std::string& path) {
  JOINMI_ASSIGN_OR_RETURN(std::string data, wire::ReadFileBytes(path));
  JOINMI_ASSIGN_OR_RETURN(ParsedSegment parsed, ParseSegment(data));
  return std::move(parsed.contents);
}

Result<DeltaSegmentContents> ReadDeltaSegmentPrefix(
    const std::string& path, uint64_t committed_bytes,
    uint64_t expected_checksum) {
  JOINMI_ASSIGN_OR_RETURN(std::string data, wire::ReadFileBytes(path));
  if (data.size() < committed_bytes) {
    return Status::IOError("delta segment '" + path + "' shorter than its " +
                           "published prefix (" +
                           std::to_string(data.size()) + " < " +
                           std::to_string(committed_bytes) + " bytes)");
  }
  std::string prefix = data.substr(0, committed_bytes);
  if (wire::Checksum64(prefix) != expected_checksum) {
    return Status::IOError("delta segment '" + path +
                           "' failed its published checksum");
  }
  JOINMI_ASSIGN_OR_RETURN(ParsedSegment parsed, ParseSegment(prefix));
  if (parsed.contents.committed_bytes != committed_bytes ||
      parsed.contents.discarded_tail_bytes != 0) {
    return Status::IOError("delta segment '" + path +
                           "' published prefix does not end at a commit");
  }
  return std::move(parsed.contents);
}

Result<std::unique_ptr<DeltaSegmentWriter>> DeltaSegmentWriter::Open(
    const std::string& path, const JoinMIConfig& config, uint64_t shard) {
  auto writer = std::unique_ptr<DeltaSegmentWriter>(new DeltaSegmentWriter());
  writer->path_ = path;
  writer->shard_ = shard;
  writer->config_ = config;

  auto existing = wire::ReadFileBytes(path);
  if (existing.ok()) {
    JOINMI_ASSIGN_OR_RETURN(ParsedSegment parsed, ParseSegment(*existing));
    if (parsed.contents.shard != shard) {
      return Status::InvalidArgument(
          "delta segment '" + path + "' belongs to shard " +
          std::to_string(parsed.contents.shard) + ", not " +
          std::to_string(shard));
    }
    if (!(parsed.contents.config == config)) {
      return Status::InvalidArgument("delta segment '" + path +
                                     "' was written under a different "
                                     "index config");
    }
    writer->records_ = std::move(parsed.contents.records);
    writer->committed_bytes_ = parsed.contents.committed_bytes;
    writer->chain_checksum_ = parsed.chain_hash;
    writer->recovered_tail_bytes_ = parsed.contents.discarded_tail_bytes;
    writer->fd_ = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
    if (writer->fd_ < 0) {
      return Status::IOError("cannot open delta segment '" + path +
                             "': " + std::strerror(errno));
    }
    if (writer->recovered_tail_bytes_ > 0) {
      if (::ftruncate(writer->fd_,
                      static_cast<off_t>(writer->committed_bytes_)) != 0) {
        return Status::IOError("cannot truncate torn tail of '" + path +
                               "': " + std::strerror(errno));
      }
      if (::fsync(writer->fd_) != 0) {
        return Status::IOError("fsync failed for '" + path +
                               "': " + std::strerror(errno));
      }
    }
    if (::lseek(writer->fd_, 0, SEEK_END) < 0) {
      return Status::IOError("cannot seek delta segment '" + path +
                             "': " + std::strerror(errno));
    }
    return writer;
  }

  // Fresh segment: header only, durable before the writer is handed out.
  std::string header = EncodeHeader(config, shard);
  writer->fd_ =
      ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (writer->fd_ < 0) {
    return Status::IOError("cannot create delta segment '" + path +
                           "': " + std::strerror(errno));
  }
  JOINMI_RETURN_NOT_OK(WriteAllFd(writer->fd_, header));
  if (::fsync(writer->fd_) != 0) {
    return Status::IOError("fsync failed for '" + path +
                           "': " + std::strerror(errno));
  }
  writer->committed_bytes_ = header.size();
  writer->chain_checksum_ = wire::Checksum64(header);
  return writer;
}

DeltaSegmentWriter::~DeltaSegmentWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status DeltaSegmentWriter::Append(const std::vector<DeltaRecord>& records) {
  if (records.empty()) return Status::OK();
  std::string batch;
  for (const auto& record : records) {
    EncodeRecordEntry(&batch, record);
  }
  uint64_t chain = FnvUpdate(chain_checksum_, batch);
  wire::AppendPod<uint8_t>(&batch, kCommitTag);
  wire::AppendPod<uint64_t>(&batch,
                            static_cast<uint64_t>(records_.size() +
                                                  records.size()));
  wire::AppendPod<uint64_t>(&batch, chain);
  JOINMI_RETURN_NOT_OK(WriteAllFd(fd_, batch));
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync failed for '" + path_ +
                           "': " + std::strerror(errno));
  }
  chain_checksum_ = FnvUpdate(chain_checksum_, batch);
  committed_bytes_ += batch.size();
  records_.insert(records_.end(), records.begin(), records.end());
  return Status::OK();
}

}  // namespace ingest
}  // namespace joinmi
