#include "src/ingest/delta_shard_client.h"

#include <algorithm>
#include <filesystem>
#include <utility>
#include <vector>

#include "src/discovery/paged_shard_index.h"
#include "src/discovery/topk_merge.h"
#include "src/ingest/delta_segment.h"

namespace joinmi {
namespace ingest {

namespace {

bool BetterHit(const ShardSearchHit& a, const ShardSearchHit& b) {
  return internal::BetterByMIThenKey(a.estimate.mi, a.global_index,
                                     b.estimate.mi, b.global_index);
}

std::string ResolveDeltaPath(const ShardManifestEntry& entry,
                             const std::string& manifest_dir) {
  const std::filesystem::path delta_path(entry.delta_path);
  return delta_path.is_absolute()
             ? entry.delta_path
             : (std::filesystem::path(manifest_dir) / delta_path).string();
}

}  // namespace

Result<std::unique_ptr<DeltaShardClient>> DeltaShardClient::Create(
    std::unique_ptr<ShardClient> base, std::unique_ptr<ShardClient> delta) {
  if (base == nullptr || delta == nullptr) {
    return Status::InvalidArgument("delta overlay needs both clients");
  }
  if (!(base->config() == delta->config())) {
    return Status::InvalidArgument(
        "delta segment was appended under a different JoinMIConfig than "
        "its base shard");
  }
  return std::unique_ptr<DeltaShardClient>(
      new DeltaShardClient(std::move(base), std::move(delta)));
}

Result<ShardSearchResult> DeltaShardClient::Search(const JoinMIQuery& query,
                                                   size_t k,
                                                   size_t num_threads) const {
  JOINMI_ASSIGN_OR_RETURN(ShardSearchResult merged,
                          base_->Search(query, k, num_threads));
  JOINMI_ASSIGN_OR_RETURN(ShardSearchResult delta,
                          delta_->Search(query, k, num_threads));
  merged.num_candidates += delta.num_candidates;
  merged.num_evaluated += delta.num_evaluated;
  merged.num_skipped += delta.num_skipped;
  merged.num_errors += delta.num_errors;
  // Each side's top-k is already selected under the global total order,
  // so nothing the combined top-k could keep was dropped; re-sorting the
  // union restores one ordered list.
  merged.hits.reserve(merged.hits.size() + delta.hits.size());
  for (ShardSearchHit& hit : delta.hits) {
    merged.hits.push_back(std::move(hit));
  }
  std::sort(merged.hits.begin(), merged.hits.end(), BetterHit);
  if (merged.hits.size() > k) merged.hits.resize(k);
  return merged;
}

Result<std::unique_ptr<ShardClient>> LoadDeltaOverlay(
    std::unique_ptr<ShardClient> base, const ShardManifestEntry& entry,
    const std::string& manifest_dir) {
  if (!entry.has_delta()) return std::move(base);
  const std::string resolved = ResolveDeltaPath(entry, manifest_dir);
  JOINMI_ASSIGN_OR_RETURN(
      DeltaSegmentContents contents,
      ReadDeltaSegmentPrefix(resolved, entry.delta_bytes,
                             entry.delta_checksum));
  if (contents.records.size() < entry.delta_records) {
    return Status::InvalidArgument(
        "delta segment '" + resolved + "' holds " +
        std::to_string(contents.records.size()) +
        " committed records but the manifest publishes " +
        std::to_string(entry.delta_records));
  }
  if (!(contents.config == base->config())) {
    return Status::InvalidArgument(
        "delta segment '" + resolved +
        "' was written under a different JoinMIConfig than its base shard");
  }
  // The manifest's global-index tail is authoritative; each published
  // record must sit exactly where the manifest says it does.
  const size_t base_count =
      static_cast<size_t>(entry.base_candidate_count());
  SketchIndex delta_index(base->config());
  std::vector<uint64_t> delta_globals;
  delta_globals.reserve(static_cast<size_t>(entry.delta_records));
  for (size_t i = 0; i < static_cast<size_t>(entry.delta_records); ++i) {
    const DeltaRecord& record = contents.records[i];
    const uint64_t expected = entry.global_indices[base_count + i];
    if (record.global_index != expected) {
      return Status::InvalidArgument(
          "delta segment '" + resolved + "' record " + std::to_string(i) +
          " carries global index " + std::to_string(record.global_index) +
          " but the manifest assigns " + std::to_string(expected));
    }
    JOINMI_ASSIGN_OR_RETURN(CandidateRecord candidate,
                            DecodeCandidateRecord(record.payload));
    JOINMI_RETURN_NOT_OK(
        delta_index.AddSketch(candidate.ref, std::move(candidate.sketch)));
    delta_globals.push_back(record.global_index);
  }
  JOINMI_ASSIGN_OR_RETURN(
      std::unique_ptr<LocalShardClient> delta_client,
      LocalShardClient::Create(std::move(delta_index),
                               std::move(delta_globals)));
  JOINMI_ASSIGN_OR_RETURN(
      std::unique_ptr<DeltaShardClient> overlay,
      DeltaShardClient::Create(std::move(base), std::move(delta_client)));
  return std::unique_ptr<ShardClient>(std::move(overlay));
}

}  // namespace ingest
}  // namespace joinmi
