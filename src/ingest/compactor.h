// Compactor: folds a shard's delta segment into a fresh base file.
//
// Compaction rewrites one shard as if it had been built from scratch
// with every (base + published-and-unpublished-committed) candidate:
// whole-file shards re-serialize through SerializeIndex, paged shards
// through BuildPagedShardBytes at the base's page size — the exact
// writers build_shards uses, so the compacted file is byte-identical to
// a from-scratch build of the same candidate set. The new base gets a
// generation-stamped name (shard_00001.g000002.jmix); the old base and
// delta files are never touched, so a reader holding the previous
// manifest generation keeps serving it untouched. The rewritten entry is
// verified (checksum recomputation, page verification, a full reload)
// before the coordinator publishes it through the same CURRENT swap as
// any other generation.

#ifndef JOINMI_INGEST_COMPACTOR_H_
#define JOINMI_INGEST_COMPACTOR_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/discovery/sharded_index.h"

namespace joinmi {
namespace ingest {

/// \brief Rewrites shards of one deployment directory.
class Compactor {
 public:
  /// \brief `dir` is the deployment root (where the manifest's relative
  /// paths resolve); `manifest` is the generation being compacted.
  Compactor(std::string dir, const ShardManifest& manifest)
      : dir_(std::move(dir)), manifest_(manifest) {}

  /// \brief Folds shard `shard`'s committed delta records (all of
  /// `delta_records` — the caller passes an entry whose delta fields
  /// already cover what should be folded) into a fresh base file named
  /// for `target_epoch`, verifies it, and returns the rewritten manifest
  /// entry: new path/checksum, no delta fields, global_indices unchanged.
  Result<ShardManifestEntry> CompactShard(size_t shard,
                                          uint64_t target_epoch) const;

 private:
  std::string dir_;
  const ShardManifest& manifest_;
};

}  // namespace ingest
}  // namespace joinmi

#endif  // JOINMI_INGEST_COMPACTOR_H_
