// Delta segments: the append-only write path of the mutable index.
//
// A delta segment ("JMDS" v1) is a per-shard sidecar file that absorbs
// candidates appended after the base shard file was built. The base file
// (JMIX or JMPS) stays immutable; the delta grows by appending
// checksummed records followed by a commit entry, and serving overlays
// the two (see ingest/delta_shard_client.h) so queries observe
// base+delta merged in global-insertion-index order — bit-identical to a
// from-scratch rebuild containing the same candidates.
//
// On-disk format (little-endian):
//   header:  magic "JMDS" | u32 version=1 | u64 shard
//            | config (core/config.h wire block)
//            | u64 header_checksum          (FNV-1a over preceding bytes)
//   record:  u8 tag=1 | u64 global_index | u32 payload_len | payload
//            | u64 record_checksum          (over global_index || payload)
//   commit:  u8 tag=2 | u64 cumulative_record_count
//            | u64 chain_checksum           (FNV-1a over every preceding
//                                            byte of the file)
//
// Records become durable only when a commit entry lands: the writer
// appends record(s) + commit + fsync as one batch, and readers accept the
// longest prefix ending in a valid commit, discarding any torn tail. A
// manifest entry pins (delta_bytes, delta_checksum) of the committed
// prefix it covers, so the serving load path (ReadDeltaSegmentPrefix)
// fails loudly if published bytes are ever damaged — torn tails are a
// crash-recovery artifact, silent corruption is not.

#ifndef JOINMI_INGEST_DELTA_SEGMENT_H_
#define JOINMI_INGEST_DELTA_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/config.h"

namespace joinmi {
namespace ingest {

inline constexpr char kDeltaSegmentMagic[4] = {'J', 'M', 'D', 'S'};
inline constexpr uint32_t kDeltaSegmentVersion = 1;

/// \brief One appended candidate: its global insertion index plus the
/// serialized candidate record (paged_shard_index.h EncodeCandidateRecord
/// bytes — ref + sketch), kept opaque at this layer.
struct DeltaRecord {
  uint64_t global_index = 0;
  std::string payload;
};

/// \brief Parsed state of a delta segment file.
struct DeltaSegmentContents {
  uint64_t shard = 0;
  JoinMIConfig config;
  /// Committed records in append order (torn tail already discarded).
  std::vector<DeltaRecord> records;
  /// Length of the committed prefix (header if no commit landed yet).
  uint64_t committed_bytes = 0;
  /// FNV-1a checksum of that prefix — what a manifest entry pins.
  uint64_t committed_checksum = 0;
  /// Bytes past the last valid commit (torn/garbage tail, not an error).
  uint64_t discarded_tail_bytes = 0;
};

/// \brief Reads a delta segment, accepting the longest committed prefix.
/// Bytes after the last valid commit entry are reported as
/// discarded_tail_bytes, never served. Header corruption is a hard error.
Result<DeltaSegmentContents> ReadDeltaSegmentFile(const std::string& path);

/// \brief Reads exactly the manifest-pinned committed prefix: the file
/// must hold at least `committed_bytes` whose checksum matches
/// `expected_checksum` and whose last entry is a commit. Any mismatch is
/// a hard error — this is the serving path, where damage to published
/// bytes must fail loudly instead of quietly shrinking the index.
Result<DeltaSegmentContents> ReadDeltaSegmentPrefix(
    const std::string& path, uint64_t committed_bytes,
    uint64_t expected_checksum);

/// \brief Appender over a delta segment file. Open() creates the file (or
/// recovers an existing one, truncating any torn tail); Append() writes a
/// batch of records plus one commit entry and fsyncs before returning, so
/// an acknowledged append survives a crash.
class DeltaSegmentWriter {
 public:
  static Result<std::unique_ptr<DeltaSegmentWriter>> Open(
      const std::string& path, const JoinMIConfig& config, uint64_t shard);
  ~DeltaSegmentWriter();

  DeltaSegmentWriter(const DeltaSegmentWriter&) = delete;
  DeltaSegmentWriter& operator=(const DeltaSegmentWriter&) = delete;

  /// \brief Durably appends `records` under a single commit entry.
  Status Append(const std::vector<DeltaRecord>& records);

  const std::string& path() const { return path_; }
  uint64_t shard() const { return shard_; }
  const JoinMIConfig& config() const { return config_; }
  /// Committed records in append order (recovered + appended).
  const std::vector<DeltaRecord>& records() const { return records_; }
  uint64_t committed_records() const { return records_.size(); }
  uint64_t committed_bytes() const { return committed_bytes_; }
  uint64_t committed_checksum() const { return chain_checksum_; }
  /// Torn-tail bytes truncated during Open() recovery.
  uint64_t recovered_tail_bytes() const { return recovered_tail_bytes_; }

 private:
  DeltaSegmentWriter() = default;

  std::string path_;
  uint64_t shard_ = 0;
  JoinMIConfig config_;
  std::vector<DeltaRecord> records_;
  uint64_t committed_bytes_ = 0;
  // Streaming FNV-1a over the committed prefix; equals
  // wire::Checksum64(first committed_bytes_ of the file).
  uint64_t chain_checksum_ = 0;
  uint64_t recovered_tail_bytes_ = 0;
  int fd_ = -1;
};

}  // namespace ingest
}  // namespace joinmi

#endif  // JOINMI_INGEST_DELTA_SEGMENT_H_
