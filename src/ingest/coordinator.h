// IngestCoordinator: the single-writer control plane of a mutable
// deployment directory.
//
// One coordinator owns the write path of one deployment: it appends
// candidates durably into per-shard delta segments (routed by the
// manifest's partition policy, numbered by global insertion index exactly
// as a from-scratch build would number them), publishes new manifest
// generations, and drives compaction — all through the CURRENT-pointer
// swap (generation.h), so readers always load a complete, checksum-valid
// generation and serving flips epochs atomically.
//
// Separation of durable vs visible: Append() commits records to the
// delta files (they survive a crash) but serving ignores them until
// Publish() pins them into a manifest generation and flips CURRENT. A
// coordinator re-opened after a crash recovers committed-but-unpublished
// records and carries on.

#ifndef JOINMI_INGEST_COORDINATOR_H_
#define JOINMI_INGEST_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/discovery/paged_shard_index.h"
#include "src/discovery/sharded_index.h"
#include "src/ingest/delta_segment.h"

namespace joinmi {
namespace ingest {

/// \brief Write-path coordinator over one deployment directory.
class IngestCoordinator {
 public:
  /// \brief Opens the deployment at `dir` (resolving CURRENT), recovering
  /// any existing delta segments: torn tails are truncated, committed but
  /// unpublished records are re-adopted, and a delta holding fewer
  /// committed records than the manifest published is a hard error (the
  /// published state would be unservable).
  static Result<std::unique_ptr<IngestCoordinator>> Open(
      const std::string& dir);

  const ShardManifest& manifest() const { return manifest_; }
  uint64_t epoch() const { return manifest_.epoch; }
  const std::string& manifest_path() const { return manifest_path_; }
  /// Candidates the published manifest serves.
  uint64_t published_candidates() const {
    return manifest_.total_candidates;
  }
  /// Committed-but-unpublished candidates across all shards.
  uint64_t pending_candidates() const {
    return next_global_ - manifest_.total_candidates;
  }
  uint64_t next_global_index() const { return next_global_; }

  /// \brief Durably appends `candidates`: each gets the next global
  /// insertion index and the shard AssignShard picks for it, then lands
  /// in that shard's delta segment under a commit record. When this
  /// returns OK every record survives a crash; none is served until
  /// Publish().
  Status Append(const std::vector<CandidateRecord>& candidates);

  /// \brief Publishes every committed delta record as manifest generation
  /// epoch+1 and flips CURRENT. Returns the new epoch (legal with nothing
  /// pending — an empty generation bump).
  Result<uint64_t> Publish();

  /// \brief Folds every committed delta record (published or not) into
  /// fresh base files via the Compactor and publishes the compacted,
  /// delta-free manifest as epoch+1. Returns the new epoch.
  Result<uint64_t> Compact();

 private:
  IngestCoordinator() = default;

  /// Opens (or creates) the delta writer for `shard`.
  Result<DeltaSegmentWriter*> Writer(size_t shard);
  /// The manifest with every committed delta record folded into its
  /// entries — what Publish writes and Compact compacts.
  Result<ShardManifest> ManifestCoveringCommitted() const;
  Status WriteAndFlip(ShardManifest manifest);

  std::string dir_;
  std::string manifest_path_;
  ShardManifest manifest_;
  // writers_[s] is null until shard s first needs its delta.
  std::vector<std::unique_ptr<DeltaSegmentWriter>> writers_;
  uint64_t next_global_ = 0;
};

}  // namespace ingest
}  // namespace joinmi

#endif  // JOINMI_INGEST_COORDINATOR_H_
