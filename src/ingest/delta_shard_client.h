// DeltaShardClient: the read side of a shard with an uncompacted delta.
//
// A base shard file (whole-file JMIX or paged JMPS) stays immutable while
// appends accumulate in its JMDS sidecar; this client overlays the two so
// a query sees base+delta candidates merged by (MI desc, global insertion
// index asc) — the same total order every other merge in the system uses.
// Because appended candidates always carry larger global indices than the
// base, and the per-side top-k is taken under that total order, the
// overlay's top-k is bit-identical to a from-scratch rebuild holding the
// same candidates. The fan-out, router, and RPC layers never know the
// shard is composite.

#ifndef JOINMI_INGEST_DELTA_SHARD_CLIENT_H_
#define JOINMI_INGEST_DELTA_SHARD_CLIENT_H_

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/discovery/sharded_index.h"

namespace joinmi {
namespace ingest {

/// \brief ShardClient overlaying a base shard with its delta segment.
class DeltaShardClient : public ShardClient {
 public:
  /// \brief Wraps `base` (the immutable shard file) and `delta` (an
  /// in-memory client over the published delta records). Rejects config
  /// disagreement — a delta appended under a different config could never
  /// coordinate with the base's sketches.
  static Result<std::unique_ptr<DeltaShardClient>> Create(
      std::unique_ptr<ShardClient> base, std::unique_ptr<ShardClient> delta);

  const JoinMIConfig& config() const override { return base_->config(); }
  size_t num_candidates() const override {
    return base_->num_candidates() + delta_->num_candidates();
  }
  Result<ShardSearchResult> Search(const JoinMIQuery& query, size_t k,
                                   size_t num_threads) const override;

  /// \brief The immutable base client — instrumentation seam so a stats
  /// snapshot can still reach e.g. paged buffer-pool counters through the
  /// overlay.
  const ShardClient& base() const { return *base_; }
  size_t delta_candidates() const { return delta_->num_candidates(); }

 private:
  DeltaShardClient(std::unique_ptr<ShardClient> base,
                   std::unique_ptr<ShardClient> delta)
      : base_(std::move(base)), delta_(std::move(delta)) {}

  std::unique_ptr<ShardClient> base_;
  std::unique_ptr<ShardClient> delta_;
};

/// \brief Loads the published delta of `entry` (path resolved relative to
/// `manifest_dir`) and overlays it onto `base`: reads exactly the
/// manifest-pinned committed prefix (failing loudly on any damage),
/// checks each record's global index against the manifest's tail, and
/// returns base when the entry has no delta.
Result<std::unique_ptr<ShardClient>> LoadDeltaOverlay(
    std::unique_ptr<ShardClient> base, const ShardManifestEntry& entry,
    const std::string& manifest_dir);

}  // namespace ingest
}  // namespace joinmi

#endif  // JOINMI_INGEST_DELTA_SHARD_CLIENT_H_
