#include "src/ingest/compactor.h"

#include <cstdio>
#include <filesystem>
#include <utility>
#include <vector>

#include "src/discovery/paged_shard_index.h"
#include "src/ingest/delta_segment.h"
#include "src/ingest/generation.h"
#include "src/sketch/serialize.h"
#include "src/storage/paged_shard_file.h"

namespace joinmi {
namespace ingest {

namespace {

std::string Resolve(const std::string& relative, const std::string& dir) {
  const std::filesystem::path path(relative);
  return path.is_absolute()
             ? relative
             : (std::filesystem::path(dir) / path).string();
}

std::string CompactedShardName(size_t shard, uint64_t epoch,
                               ShardFileFormat format) {
  char name[48];
  std::snprintf(name, sizeof(name),
                format == ShardFileFormat::kPaged ? "shard_%05zu.g%06llu.jmps"
                                                  : "shard_%05zu.g%06llu.jmix",
                shard, static_cast<unsigned long long>(epoch));
  return name;
}

}  // namespace

Result<ShardManifestEntry> Compactor::CompactShard(
    size_t shard, uint64_t target_epoch) const {
  if (shard >= manifest_.shards.size()) {
    return Status::IndexError("shard " + std::to_string(shard) +
                              " out of range");
  }
  ShardManifestEntry entry = manifest_.shards[shard];
  if (!entry.has_delta()) return entry;
  if (!manifest_.config.has_value()) {
    return Status::InvalidArgument(
        "cannot compact a legacy (v1) manifest without an embedded config");
  }
  const JoinMIConfig& config = *manifest_.config;

  const std::string delta_resolved = Resolve(entry.delta_path, dir_);
  JOINMI_ASSIGN_OR_RETURN(
      DeltaSegmentContents delta,
      ReadDeltaSegmentPrefix(delta_resolved, entry.delta_bytes,
                             entry.delta_checksum));
  if (delta.records.size() != entry.delta_records) {
    return Status::InvalidArgument(
        "delta segment '" + delta_resolved + "' committed prefix holds " +
        std::to_string(delta.records.size()) + " records, manifest says " +
        std::to_string(entry.delta_records));
  }

  // Rebuild the shard exactly as build_shards would have written it had
  // the appended candidates been present from the start: same writers,
  // same insertion order (base then delta == global-index order), so the
  // output is byte-identical to a from-scratch build.
  const std::string base_resolved = Resolve(entry.path, dir_);
  std::string bytes;
  if (entry.format == ShardFileFormat::kPaged) {
    JOINMI_ASSIGN_OR_RETURN(
        std::unique_ptr<storage::PagedShardFile> base_file,
        storage::PagedShardFile::Open(base_resolved, /*pool_pages=*/4));
    if (base_file->num_records() !=
        static_cast<size_t>(entry.base_candidate_count())) {
      return Status::InvalidArgument(
          "base shard file '" + base_resolved + "' holds " +
          std::to_string(base_file->num_records()) +
          " records, manifest expects " +
          std::to_string(entry.base_candidate_count()));
    }
    std::vector<std::string> records;
    records.reserve(static_cast<size_t>(entry.candidate_count));
    for (size_t i = 0; i < base_file->num_records(); ++i) {
      JOINMI_ASSIGN_OR_RETURN(std::string record, base_file->ReadRecord(i));
      records.push_back(std::move(record));
    }
    for (const DeltaRecord& record : delta.records) {
      records.push_back(record.payload);
    }
    JOINMI_ASSIGN_OR_RETURN(
        bytes, storage::BuildPagedShardBytes(config, records,
                                             base_file->page_size()));
  } else {
    JOINMI_ASSIGN_OR_RETURN(std::string base_bytes,
                            wire::ReadFileBytes(base_resolved));
    if (wire::Checksum64(base_bytes) != entry.checksum) {
      return Status::InvalidArgument(
          "base shard file '" + base_resolved +
          "' fails its manifest checksum; refusing to compact");
    }
    JOINMI_ASSIGN_OR_RETURN(SketchIndex base_index,
                            DeserializeIndex(base_bytes));
    SketchIndex compacted(config);
    for (const IndexedCandidate& candidate : base_index.candidates()) {
      JOINMI_RETURN_NOT_OK(
          compacted.AddSketch(candidate.ref, candidate.sketch()));
    }
    for (const DeltaRecord& record : delta.records) {
      JOINMI_ASSIGN_OR_RETURN(CandidateRecord candidate,
                              DecodeCandidateRecord(record.payload));
      JOINMI_RETURN_NOT_OK(
          compacted.AddSketch(candidate.ref, std::move(candidate.sketch)));
    }
    bytes = SerializeIndex(compacted);
  }

  const std::string new_name =
      CompactedShardName(shard, target_epoch, entry.format);
  const std::string new_path = Resolve(new_name, dir_);
  JOINMI_RETURN_NOT_OK(WriteFileDurable(new_path, bytes));

  // Verify what actually landed on disk before the entry can be
  // published: re-read, checksum, and structurally validate.
  JOINMI_ASSIGN_OR_RETURN(std::string reread, wire::ReadFileBytes(new_path));
  const uint64_t checksum = wire::Checksum64(reread);
  if (checksum != wire::Checksum64(bytes)) {
    return Status::IOError("compacted shard '" + new_path +
                           "' read back different bytes than were written");
  }
  if (entry.format == ShardFileFormat::kPaged) {
    uint64_t bad_page = 0;
    Status verified = storage::VerifyPagedShardFile(new_path, &bad_page);
    if (!verified.ok()) {
      return Status::IOError("compacted shard '" + new_path +
                             "' fails page verification (page " +
                             std::to_string(bad_page) +
                             "): " + verified.message());
    }
  } else {
    JOINMI_ASSIGN_OR_RETURN(SketchIndex reloaded, DeserializeIndex(reread));
    if (reloaded.size() != static_cast<size_t>(entry.candidate_count)) {
      return Status::IOError(
          "compacted shard '" + new_path + "' reloads " +
          std::to_string(reloaded.size()) + " candidates, expected " +
          std::to_string(entry.candidate_count));
    }
  }

  entry.path = new_name;
  entry.checksum = checksum;
  entry.delta_path.clear();
  entry.delta_records = 0;
  entry.delta_bytes = 0;
  entry.delta_checksum = 0;
  return entry;
}

}  // namespace ingest
}  // namespace joinmi
