#include "src/ingest/generation.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "src/sketch/serialize.h"

namespace joinmi {
namespace ingest {

namespace {

constexpr char kCurrentMagicLine[] = "JMCUR v1";

Status SyncPath(const std::string& path, bool directory) {
  int fd = ::open(path.c_str(),
                  directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path +
                           "' for fsync: " + std::strerror(errno));
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync failed for '" + path +
                           "': " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Status WriteFileDurable(const std::string& path, const std::string& data) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::IOError("cannot create '" + path +
                           "': " + std::strerror(errno));
  }
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError("write failed for '" + path +
                             "': " + std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::IOError("fsync failed for '" + path +
                           "': " + std::strerror(errno));
  }
  if (::close(fd) != 0) {
    return Status::IOError("close failed for '" + path +
                           "': " + std::strerror(errno));
  }
  return Status::OK();
}

namespace {

struct CurrentPointer {
  std::string manifest_filename;
  uint64_t checksum = 0;
};

Result<CurrentPointer> ParseCurrent(const std::string& path,
                                    const std::string& data) {
  std::istringstream in(data);
  std::string magic, filename, checksum_line;
  if (!std::getline(in, magic) || magic != kCurrentMagicLine) {
    return Status::IOError("'" + path + "' is not a CURRENT pointer file");
  }
  if (!std::getline(in, filename) || filename.empty() ||
      filename.find('/') != std::string::npos) {
    return Status::IOError("CURRENT pointer '" + path +
                           "' names an invalid manifest file");
  }
  if (!std::getline(in, checksum_line) || checksum_line.empty()) {
    return Status::IOError("CURRENT pointer '" + path +
                           "' is missing its checksum line");
  }
  CurrentPointer pointer;
  pointer.manifest_filename = filename;
  errno = 0;
  char* end = nullptr;
  pointer.checksum = std::strtoull(checksum_line.c_str(), &end, 10);
  if (errno != 0 || end == checksum_line.c_str() || *end != '\0') {
    return Status::IOError("CURRENT pointer '" + path +
                           "' has a malformed checksum");
  }
  return pointer;
}

Result<std::string> ResolvePointerFile(const std::string& pointer_path,
                                       const std::string& dir,
                                       const std::string& data) {
  JOINMI_ASSIGN_OR_RETURN(CurrentPointer pointer,
                          ParseCurrent(pointer_path, data));
  std::string manifest_path =
      (std::filesystem::path(dir) / pointer.manifest_filename).string();
  JOINMI_ASSIGN_OR_RETURN(std::string manifest_bytes,
                          wire::ReadFileBytes(manifest_path));
  if (wire::Checksum64(manifest_bytes) != pointer.checksum) {
    return Status::IOError("manifest '" + manifest_path +
                           "' does not match the checksum recorded in '" +
                           pointer_path + "'");
  }
  return manifest_path;
}

}  // namespace

std::string GenerationManifestName(uint64_t epoch) {
  if (epoch == 0) return "manifest.jmim";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "manifest-g%06llu.jmim",
                static_cast<unsigned long long>(epoch));
  return buf;
}

Status PublishCurrent(const std::string& dir,
                      const std::string& manifest_filename) {
  std::filesystem::path root(dir);
  std::string manifest_path = (root / manifest_filename).string();
  JOINMI_ASSIGN_OR_RETURN(std::string manifest_bytes,
                          wire::ReadFileBytes(manifest_path));
  // Pin the manifest to disk before the pointer can name it.
  JOINMI_RETURN_NOT_OK(SyncPath(manifest_path, /*directory=*/false));

  std::ostringstream out;
  out << kCurrentMagicLine << "\n"
      << manifest_filename << "\n"
      << wire::Checksum64(manifest_bytes) << "\n";
  std::string tmp_path = (root / (std::string(kCurrentFileName) + ".tmp"))
                             .string();
  std::string current_path = (root / kCurrentFileName).string();
  JOINMI_RETURN_NOT_OK(WriteFileDurable(tmp_path, out.str()));
  if (::rename(tmp_path.c_str(), current_path.c_str()) != 0) {
    return Status::IOError("cannot rename '" + tmp_path + "' over '" +
                           current_path + "': " + std::strerror(errno));
  }
  return SyncPath(dir, /*directory=*/true);
}

Result<std::string> ResolveManifestPath(const std::string& path) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    std::filesystem::path root(path);
    std::string current = (root / kCurrentFileName).string();
    auto pointer_bytes = wire::ReadFileBytes(current);
    if (pointer_bytes.ok()) {
      return ResolvePointerFile(current, path, *pointer_bytes);
    }
    std::string fallback = (root / "manifest.jmim").string();
    if (std::filesystem::exists(fallback, ec)) return fallback;
    return Status::IOError("'" + path +
                           "' has neither a CURRENT pointer nor a "
                           "manifest.jmim");
  }
  JOINMI_ASSIGN_OR_RETURN(std::string data, wire::ReadFileBytes(path));
  if (data.compare(0, 5, "JMCUR") == 0) {
    std::string dir = std::filesystem::path(path).parent_path().string();
    if (dir.empty()) dir = ".";
    return ResolvePointerFile(path, dir, data);
  }
  // Anything else is treated as a manifest file; its own reader validates
  // the magic.
  return path;
}

}  // namespace ingest
}  // namespace joinmi
