#include "src/ingest/coordinator.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "src/ingest/compactor.h"
#include "src/ingest/generation.h"

namespace joinmi {
namespace ingest {

namespace {

std::string Resolve(const std::string& relative, const std::string& dir) {
  const std::filesystem::path path(relative);
  return path.is_absolute()
             ? relative
             : (std::filesystem::path(dir) / path).string();
}

// A shard's delta sidecar sits next to its base file and is named after
// it, so each base generation gets a fresh (empty) delta after
// compaction renames the base.
std::string DeltaName(const ShardManifestEntry& entry) {
  return entry.path + ".jmds";
}

}  // namespace

Result<std::unique_ptr<IngestCoordinator>> IngestCoordinator::Open(
    const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return Status::InvalidArgument("ingest deployment '" + dir +
                                   "' is not a directory");
  }
  auto coordinator =
      std::unique_ptr<IngestCoordinator>(new IngestCoordinator());
  coordinator->dir_ = dir;
  JOINMI_ASSIGN_OR_RETURN(coordinator->manifest_path_,
                          ResolveManifestPath(dir));
  JOINMI_ASSIGN_OR_RETURN(coordinator->manifest_,
                          ReadManifestFile(coordinator->manifest_path_));
  if (!coordinator->manifest_.config.has_value()) {
    return Status::InvalidArgument(
        "cannot ingest into a legacy (v1) manifest without an embedded "
        "config — repartition with the current build_shards first");
  }
  const ShardManifest& manifest = coordinator->manifest_;
  coordinator->writers_.resize(manifest.shards.size());
  coordinator->next_global_ = manifest.total_candidates;

  // Recover existing delta segments: adopt committed-but-unpublished
  // records, and refuse to continue if a delta lost records the manifest
  // already published (that generation would be unservable).
  std::vector<uint64_t> pending;
  for (size_t s = 0; s < manifest.shards.size(); ++s) {
    const ShardManifestEntry& entry = manifest.shards[s];
    const std::string delta_path = Resolve(DeltaName(entry), dir);
    if (!std::filesystem::exists(delta_path, ec)) {
      if (entry.has_delta()) {
        return Status::IOError("published delta segment '" + delta_path +
                               "' is missing");
      }
      continue;
    }
    JOINMI_ASSIGN_OR_RETURN(DeltaSegmentWriter * writer,
                            coordinator->Writer(s));
    const uint64_t committed = writer->committed_records();
    if (committed < entry.delta_records) {
      return Status::IOError(
          "delta segment '" + delta_path + "' holds " +
          std::to_string(committed) + " committed records but the "
          "manifest already published " +
          std::to_string(entry.delta_records) +
          " — published state is damaged");
    }
    const size_t base_count =
        static_cast<size_t>(entry.base_candidate_count());
    for (uint64_t i = 0; i < entry.delta_records; ++i) {
      const uint64_t expected =
          entry.global_indices[base_count + static_cast<size_t>(i)];
      if (writer->records()[static_cast<size_t>(i)].global_index !=
          expected) {
        return Status::IOError("delta segment '" + delta_path +
                               "' disagrees with the manifest about "
                               "published record " + std::to_string(i));
      }
    }
    for (uint64_t i = entry.delta_records; i < committed; ++i) {
      pending.push_back(
          writer->records()[static_cast<size_t>(i)].global_index);
    }
  }
  std::sort(pending.begin(), pending.end());
  for (size_t i = 0; i < pending.size(); ++i) {
    if (pending[i] != manifest.total_candidates + i) {
      return Status::IOError(
          "committed-but-unpublished delta records are not contiguous "
          "after the published total (" + std::to_string(pending[i]) +
          " vs expected " +
          std::to_string(manifest.total_candidates + i) + ")");
    }
  }
  coordinator->next_global_ = manifest.total_candidates + pending.size();
  return coordinator;
}

Result<DeltaSegmentWriter*> IngestCoordinator::Writer(size_t shard) {
  if (writers_[shard] == nullptr) {
    const ShardManifestEntry& entry = manifest_.shards[shard];
    JOINMI_ASSIGN_OR_RETURN(
        writers_[shard],
        DeltaSegmentWriter::Open(Resolve(DeltaName(entry), dir_),
                                 *manifest_.config, shard));
  }
  return writers_[shard].get();
}

Status IngestCoordinator::Append(
    const std::vector<CandidateRecord>& candidates) {
  if (candidates.empty()) return Status::OK();
  const JoinMIConfig& config = *manifest_.config;
  // Validate every sketch against the deployment config before any byte
  // lands on disk — a mis-seeded sketch would otherwise poison the delta
  // and only fail at serving load.
  {
    SketchIndex probe(config);
    for (const CandidateRecord& candidate : candidates) {
      JOINMI_RETURN_NOT_OK(probe.AddSketch(candidate.ref, candidate.sketch));
    }
  }
  // Route in global order, flushing each run of consecutive same-shard
  // records as one commit batch. Commits therefore land in global order
  // too, keeping the committed set contiguous even mid-crash.
  const size_t num_shards = manifest_.shards.size();
  std::vector<DeltaRecord> run;
  size_t run_shard = num_shards;  // sentinel
  auto flush = [this, &run, &run_shard]() -> Status {
    if (run.empty()) return Status::OK();
    JOINMI_ASSIGN_OR_RETURN(DeltaSegmentWriter * writer, Writer(run_shard));
    JOINMI_RETURN_NOT_OK(writer->Append(run));
    next_global_ = run.back().global_index + 1;
    run.clear();
    return Status::OK();
  };
  uint64_t g = next_global_;
  for (const CandidateRecord& candidate : candidates) {
    const size_t shard =
        AssignShard(manifest_.policy, static_cast<size_t>(g), candidate.ref,
                    num_shards);
    if (shard != run_shard) {
      JOINMI_RETURN_NOT_OK(flush());
      run_shard = shard;
    }
    DeltaRecord record;
    record.global_index = g++;
    record.payload = EncodeCandidateRecord(candidate.ref, candidate.sketch);
    run.push_back(std::move(record));
  }
  return flush();
}

Result<ShardManifest> IngestCoordinator::ManifestCoveringCommitted() const {
  ShardManifest manifest = manifest_;
  for (size_t s = 0; s < writers_.size(); ++s) {
    const DeltaSegmentWriter* writer = writers_[s].get();
    if (writer == nullptr || writer->committed_records() == 0) continue;
    ShardManifestEntry& entry = manifest.shards[s];
    const uint64_t committed = writer->committed_records();
    for (uint64_t i = entry.delta_records; i < committed; ++i) {
      entry.global_indices.push_back(
          writer->records()[static_cast<size_t>(i)].global_index);
      ++entry.candidate_count;
      ++manifest.total_candidates;
    }
    entry.delta_path = DeltaName(manifest_.shards[s]);
    entry.delta_records = committed;
    entry.delta_bytes = writer->committed_bytes();
    entry.delta_checksum = writer->committed_checksum();
  }
  return manifest;
}

Status IngestCoordinator::WriteAndFlip(ShardManifest manifest) {
  JOINMI_RETURN_NOT_OK(manifest.Validate());
  const std::string name = GenerationManifestName(manifest.epoch);
  const std::string path = Resolve(name, dir_);
  JOINMI_RETURN_NOT_OK(WriteFileDurable(path, SerializeManifest(manifest)));
  JOINMI_RETURN_NOT_OK(PublishCurrent(dir_, name));
  manifest_ = std::move(manifest);
  manifest_path_ = path;
  return Status::OK();
}

Result<uint64_t> IngestCoordinator::Publish() {
  JOINMI_ASSIGN_OR_RETURN(ShardManifest manifest,
                          ManifestCoveringCommitted());
  manifest.epoch = manifest_.epoch + 1;
  JOINMI_RETURN_NOT_OK(WriteAndFlip(std::move(manifest)));
  return manifest_.epoch;
}

Result<uint64_t> IngestCoordinator::Compact() {
  JOINMI_ASSIGN_OR_RETURN(ShardManifest manifest,
                          ManifestCoveringCommitted());
  const uint64_t target_epoch = manifest_.epoch + 1;
  Compactor compactor(dir_, manifest);
  for (size_t s = 0; s < manifest.shards.size(); ++s) {
    if (!manifest.shards[s].has_delta()) continue;
    JOINMI_ASSIGN_OR_RETURN(ShardManifestEntry compacted,
                            compactor.CompactShard(s, target_epoch));
    manifest.shards[s] = std::move(compacted);
  }
  manifest.epoch = target_epoch;
  JOINMI_RETURN_NOT_OK(WriteAndFlip(std::move(manifest)));
  // Compacted shards have generation-stamped base names now, so their
  // (folded) delta files no longer belong to any entry; drop the writers
  // so future appends open fresh sidecars next to the new bases.
  for (auto& writer : writers_) writer.reset();
  return manifest_.epoch;
}

}  // namespace ingest
}  // namespace joinmi
