#include "src/join/group_by.h"

namespace joinmi {

Result<std::vector<KeyGroup>> GroupRowsByKey(const Column& key_column) {
  std::vector<KeyGroup> groups;
  std::unordered_map<uint64_t, size_t> index;  // key hash -> groups position
  index.reserve(key_column.size());
  for (size_t row = 0; row < key_column.size(); ++row) {
    if (!key_column.IsValid(row)) continue;
    const Value key = key_column.GetValue(row);
    const uint64_t h = key.Hash();
    auto [it, inserted] = index.emplace(h, groups.size());
    if (inserted) {
      groups.push_back(KeyGroup{key, {}});
    } else if (!(groups[it->second].key == key)) {
      // 64-bit mixed hashes colliding on differing values is effectively a
      // data error at our table sizes; report rather than corrupt groups.
      return Status::UnknownError("key hash collision in group-by");
    }
    groups[it->second].rows.push_back(row);
  }
  return groups;
}

Result<std::shared_ptr<Table>> GroupByAggregate(
    const Table& table, const std::string& key_name,
    const std::string& value_name, AggKind agg,
    const std::string& output_value_name) {
  JOINMI_ASSIGN_OR_RETURN(auto key_col, table.GetColumn(key_name));
  JOINMI_ASSIGN_OR_RETURN(auto value_col, table.GetColumn(value_name));
  JOINMI_ASSIGN_OR_RETURN(DataType out_type,
                          AggOutputType(agg, value_col->type()));
  JOINMI_ASSIGN_OR_RETURN(auto groups, GroupRowsByKey(*key_col));

  ColumnBuilder key_builder(key_col->type());
  ColumnBuilder value_builder(out_type);
  for (const KeyGroup& group : groups) {
    AggregatorState state(agg);
    for (size_t row : group.rows) {
      if (!value_col->IsValid(row)) continue;
      JOINMI_RETURN_NOT_OK(state.Update(value_col->GetValue(row)));
    }
    if (state.count() == 0) continue;  // group had only null values
    JOINMI_ASSIGN_OR_RETURN(Value agg_value, state.Finish());
    JOINMI_RETURN_NOT_OK(key_builder.Append(group.key));
    JOINMI_RETURN_NOT_OK(value_builder.Append(agg_value));
  }
  JOINMI_ASSIGN_OR_RETURN(auto out_key, key_builder.Finish());
  JOINMI_ASSIGN_OR_RETURN(auto out_value, value_builder.Finish());
  const std::string out_name = output_value_name.empty()
                                   ? std::string(AggKindToString(agg)) + "_" +
                                         value_name
                                   : output_value_name;
  return Table::FromColumns({{key_name, out_key}, {out_name, out_value}});
}

KeyFrequencies CountKeyFrequencies(const Column& key_column) {
  KeyFrequencies freq;
  freq.counts.reserve(key_column.size());
  for (size_t row = 0; row < key_column.size(); ++row) {
    if (!key_column.IsValid(row)) continue;
    ++freq.counts[key_column.GetValue(row).Hash()];
    ++freq.total_rows;
  }
  return freq;
}

}  // namespace joinmi
