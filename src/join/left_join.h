// Materialized left-outer join with join-aggregation semantics (the SQL
// query of Section III-B). This is the ground-truth path: sketches are
// evaluated against MI computed on this output.

#ifndef JOINMI_JOIN_LEFT_JOIN_H_
#define JOINMI_JOIN_LEFT_JOIN_H_

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/join/aggregators.h"
#include "src/table/table.h"

namespace joinmi {

/// \brief Options for the join-aggregation query.
struct JoinAggregateOptions {
  /// Featurization function applied to T_cand values per key.
  AggKind agg = AggKind::kAvg;
  /// Drop left rows whose key has no match on the right (the paper's policy:
  /// "we discard any rows with NULL values resulting from T_aug not
  /// containing some key"). If false, unmatched rows keep a null feature.
  bool drop_unmatched = true;
  /// Name of the derived feature column in the output.
  std::string feature_name = "X";
};

/// \brief Result of a materialized join-aggregation.
struct JoinAggregateResult {
  /// Output table with schema [key, Y, X]: the left key column, the target
  /// column from T_train, and the derived feature from T_cand.
  std::shared_ptr<Table> table;
  /// Number of left rows with at least one right match.
  size_t matched_rows = 0;
  /// Number of left rows without a match (dropped or null-filled).
  size_t unmatched_rows = 0;
};

/// \brief Evaluates
///   SELECT L.key, L.target, AGG(R.value)
///   FROM train L LEFT JOIN cand R ON L.key = R.key GROUP BY R.key
/// preserving the left table's row multiplicity (many-to-one join).
///
/// Rows with a NULL join key or NULL target on the left are skipped, as are
/// right rows with NULL key or value, matching the sketch builders so full
/// join and sketch paths see the same effective relation.
Result<JoinAggregateResult> LeftJoinAggregate(
    const Table& train, const std::string& train_key,
    const std::string& train_target, const Table& cand,
    const std::string& cand_key, const std::string& cand_value,
    const JoinAggregateOptions& options = {});

/// \brief Exact size of the equi-join (number of matching row pairs),
/// without materializing it. Used by benchmarks and the discovery layer.
Result<size_t> EquiJoinSize(const Column& left_key, const Column& right_key);

}  // namespace joinmi

#endif  // JOINMI_JOIN_LEFT_JOIN_H_
