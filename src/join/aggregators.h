// Featurization functions AGG (Section III-B): map the multiset of values
// sharing a join key to a single feature value. The choice of AGG shapes the
// derived feature's distribution and data type (Example 2 in the paper).

#ifndef JOINMI_JOIN_AGGREGATORS_H_
#define JOINMI_JOIN_AGGREGATORS_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/table/value.h"

namespace joinmi {

/// \brief Built-in featurization functions.
enum class AggKind : uint8_t {
  kFirst = 0,  ///< first value seen (CSK's repeated-key policy)
  kAvg,        ///< arithmetic mean (numeric only)
  kSum,        ///< sum (numeric only)
  kMin,        ///< minimum under Value ordering
  kMax,        ///< maximum under Value ordering
  kCount,      ///< group cardinality (type-independent, yields int64)
  kMode,       ///< most frequent value (first-seen tie-break)
  kMedian,     ///< median (numeric only; midpoint for even sizes)
};

const char* AggKindToString(AggKind kind);

/// \brief Parses "avg", "sum", ... (case-insensitive).
Result<AggKind> AggKindFromString(const std::string& name);

/// \brief Output type of an aggregator for a given input type.
///
/// COUNT always yields int64; AVG/MEDIAN yield double; the rest preserve the
/// input type.
Result<DataType> AggOutputType(AggKind kind, DataType input);

/// \brief Applies the aggregator to a non-empty group of non-null values.
Result<Value> Aggregate(AggKind kind, const std::vector<Value>& group);

/// \brief Streaming aggregator: accepts values one at a time so group-by and
/// sketch builders never buffer groups they will discard.
class AggregatorState {
 public:
  explicit AggregatorState(AggKind kind) : kind_(kind) {}

  AggKind kind() const { return kind_; }
  size_t count() const { return count_; }

  Status Update(const Value& v);

  /// \brief Final aggregate; error if no values were added.
  Result<Value> Finish() const;

  void Reset();

 private:
  AggKind kind_;
  size_t count_ = 0;
  double sum_ = 0.0;
  Value first_;
  Value min_;
  Value max_;
  // MODE / MEDIAN need the full group; only populated for those kinds.
  std::vector<Value> buffer_;
};

}  // namespace joinmi

#endif  // JOINMI_JOIN_AGGREGATORS_H_
