#include "src/join/left_join.h"

#include <unordered_map>

#include "src/join/group_by.h"

namespace joinmi {

Result<JoinAggregateResult> LeftJoinAggregate(
    const Table& train, const std::string& train_key,
    const std::string& train_target, const Table& cand,
    const std::string& cand_key, const std::string& cand_value,
    const JoinAggregateOptions& options) {
  JOINMI_ASSIGN_OR_RETURN(auto left_key_col, train.GetColumn(train_key));
  JOINMI_ASSIGN_OR_RETURN(auto target_col, train.GetColumn(train_target));

  // Build T_aug = SELECT key, AGG(value) FROM cand GROUP BY key as a
  // hash map key-hash -> aggregated feature value.
  JOINMI_ASSIGN_OR_RETURN(auto cand_key_col, cand.GetColumn(cand_key));
  JOINMI_ASSIGN_OR_RETURN(auto cand_value_col, cand.GetColumn(cand_value));
  JOINMI_ASSIGN_OR_RETURN(DataType feature_type,
                          AggOutputType(options.agg, cand_value_col->type()));
  JOINMI_ASSIGN_OR_RETURN(auto groups, GroupRowsByKey(*cand_key_col));
  std::unordered_map<uint64_t, Value> aug;
  aug.reserve(groups.size());
  for (const KeyGroup& group : groups) {
    AggregatorState state(options.agg);
    for (size_t row : group.rows) {
      if (!cand_value_col->IsValid(row)) continue;
      JOINMI_RETURN_NOT_OK(state.Update(cand_value_col->GetValue(row)));
    }
    if (state.count() == 0) continue;
    JOINMI_ASSIGN_OR_RETURN(Value v, state.Finish());
    aug.emplace(group.key.Hash(), std::move(v));
  }

  // Probe: each left row contributes at most one output row.
  ColumnBuilder key_builder(left_key_col->type());
  ColumnBuilder target_builder(target_col->type());
  ColumnBuilder feature_builder(feature_type);
  JoinAggregateResult result;
  for (size_t row = 0; row < train.num_rows(); ++row) {
    if (!left_key_col->IsValid(row) || !target_col->IsValid(row)) continue;
    const Value key = left_key_col->GetValue(row);
    const auto it = aug.find(key.Hash());
    if (it == aug.end()) {
      ++result.unmatched_rows;
      if (options.drop_unmatched) continue;
      JOINMI_RETURN_NOT_OK(key_builder.Append(key));
      JOINMI_RETURN_NOT_OK(target_builder.Append(target_col->GetValue(row)));
      feature_builder.AppendNull();
      continue;
    }
    ++result.matched_rows;
    JOINMI_RETURN_NOT_OK(key_builder.Append(key));
    JOINMI_RETURN_NOT_OK(target_builder.Append(target_col->GetValue(row)));
    JOINMI_RETURN_NOT_OK(feature_builder.Append(it->second));
  }
  JOINMI_ASSIGN_OR_RETURN(auto out_key, key_builder.Finish());
  JOINMI_ASSIGN_OR_RETURN(auto out_target, target_builder.Finish());
  JOINMI_ASSIGN_OR_RETURN(auto out_feature, feature_builder.Finish());
  JOINMI_ASSIGN_OR_RETURN(
      result.table,
      Table::FromColumns({{train_key, out_key},
                          {train_target, out_target},
                          {options.feature_name, out_feature}}));
  return result;
}

Result<size_t> EquiJoinSize(const Column& left_key, const Column& right_key) {
  const KeyFrequencies right = CountKeyFrequencies(right_key);
  size_t join_size = 0;
  for (size_t row = 0; row < left_key.size(); ++row) {
    if (!left_key.IsValid(row)) continue;
    const auto it = right.counts.find(left_key.GetValue(row).Hash());
    if (it != right.counts.end()) join_size += it->second;
  }
  return join_size;
}

}  // namespace joinmi
