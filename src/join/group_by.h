// Hash group-by over a key column. Produces, for each distinct key, the row
// indices of its group — the building block for join-aggregation queries and
// for the candidate-side ("T_cand") stage of every sketch builder.

#ifndef JOINMI_JOIN_GROUP_BY_H_
#define JOINMI_JOIN_GROUP_BY_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/join/aggregators.h"
#include "src/table/table.h"

namespace joinmi {

/// \brief One group: the key plus the row indices holding it.
struct KeyGroup {
  Value key;
  std::vector<size_t> rows;
};

/// \brief Groups the rows of `key_column` by value. Null keys are skipped
/// (the paper discards NULL-key rows; Section III-A). Group order is
/// first-appearance order, so results are deterministic.
Result<std::vector<KeyGroup>> GroupRowsByKey(const Column& key_column);

/// \brief SELECT key, AGG(value) FROM table GROUP BY key.
///
/// Returns a two-column table [key_name, value_name] with one row per
/// distinct non-null key, in first-appearance order. Null values inside a
/// group are skipped; groups with only nulls are dropped.
Result<std::shared_ptr<Table>> GroupByAggregate(
    const Table& table, const std::string& key_name,
    const std::string& value_name, AggKind agg,
    const std::string& output_value_name = "");

/// \brief Frequency map from key-hash to occurrence count, plus total rows
/// counted. Used by LV2SK's per-key sample-size rule n_k = max(1, floor(n p_k)).
struct KeyFrequencies {
  std::unordered_map<uint64_t, size_t> counts;
  size_t total_rows = 0;  // non-null key rows
  size_t distinct_keys() const { return counts.size(); }
};

/// \brief Single pass key-frequency computation.
KeyFrequencies CountKeyFrequencies(const Column& key_column);

}  // namespace joinmi

#endif  // JOINMI_JOIN_GROUP_BY_H_
