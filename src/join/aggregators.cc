#include "src/join/aggregators.h"

#include <algorithm>
#include <unordered_map>

#include "src/common/string_util.h"

namespace joinmi {

const char* AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kFirst:
      return "first";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kSum:
      return "sum";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kCount:
      return "count";
    case AggKind::kMode:
      return "mode";
    case AggKind::kMedian:
      return "median";
  }
  return "unknown";
}

Result<AggKind> AggKindFromString(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "first") return AggKind::kFirst;
  if (lower == "avg" || lower == "mean") return AggKind::kAvg;
  if (lower == "sum") return AggKind::kSum;
  if (lower == "min") return AggKind::kMin;
  if (lower == "max") return AggKind::kMax;
  if (lower == "count") return AggKind::kCount;
  if (lower == "mode") return AggKind::kMode;
  if (lower == "median") return AggKind::kMedian;
  return Status::InvalidArgument("unknown aggregator '" + name + "'");
}

Result<DataType> AggOutputType(AggKind kind, DataType input) {
  switch (kind) {
    case AggKind::kCount:
      return DataType::kInt64;
    case AggKind::kAvg:
    case AggKind::kMedian:
      if (!IsNumeric(input)) {
        return Status::TypeError(std::string(AggKindToString(kind)) +
                                 " requires a numeric input column");
      }
      return DataType::kDouble;
    case AggKind::kSum:
      if (!IsNumeric(input)) {
        return Status::TypeError("sum requires a numeric input column");
      }
      return input;
    case AggKind::kFirst:
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kMode:
      return input;
  }
  return Status::InvalidArgument("unknown aggregator kind");
}

Result<Value> Aggregate(AggKind kind, const std::vector<Value>& group) {
  AggregatorState state(kind);
  for (const Value& v : group) {
    JOINMI_RETURN_NOT_OK(state.Update(v));
  }
  return state.Finish();
}

Status AggregatorState::Update(const Value& v) {
  if (v.is_null()) {
    return Status::InvalidArgument("aggregators do not accept null values");
  }
  if (count_ == 0) {
    first_ = v;
    min_ = v;
    max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (max_ < v) max_ = v;
  }
  switch (kind_) {
    case AggKind::kAvg:
    case AggKind::kSum:
    case AggKind::kMedian: {
      JOINMI_ASSIGN_OR_RETURN(double d, v.AsDouble());
      sum_ += d;
      if (kind_ == AggKind::kMedian) buffer_.push_back(v);
      break;
    }
    case AggKind::kMode:
      buffer_.push_back(v);
      break;
    default:
      break;
  }
  ++count_;
  return Status::OK();
}

Result<Value> AggregatorState::Finish() const {
  if (count_ == 0) {
    return Status::InvalidArgument("aggregating an empty group");
  }
  switch (kind_) {
    case AggKind::kFirst:
      return first_;
    case AggKind::kMin:
      return min_;
    case AggKind::kMax:
      return max_;
    case AggKind::kCount:
      return Value(static_cast<int64_t>(count_));
    case AggKind::kAvg:
      return Value(sum_ / static_cast<double>(count_));
    case AggKind::kSum:
      if (first_.is_int64()) {
        return Value(static_cast<int64_t>(sum_));
      }
      return Value(sum_);
    case AggKind::kMedian: {
      std::vector<double> xs;
      xs.reserve(buffer_.size());
      for (const Value& v : buffer_) {
        JOINMI_ASSIGN_OR_RETURN(double d, v.AsDouble());
        xs.push_back(d);
      }
      std::sort(xs.begin(), xs.end());
      const size_t mid = xs.size() / 2;
      if (xs.size() % 2 == 1) return Value(xs[mid]);
      return Value((xs[mid - 1] + xs[mid]) / 2.0);
    }
    case AggKind::kMode: {
      std::unordered_map<uint64_t, size_t> counts;
      counts.reserve(buffer_.size());
      for (const Value& v : buffer_) ++counts[v.Hash()];
      size_t max_count = 0;
      for (const auto& [hash, c] : counts) {
        (void)hash;
        max_count = std::max(max_count, c);
      }
      // First-seen value among those tied at the maximal count.
      for (const Value& v : buffer_) {
        if (counts[v.Hash()] == max_count) return v;
      }
      return first_;  // unreachable: buffer_ is non-empty
    }
  }
  return Status::InvalidArgument("unknown aggregator kind");
}

void AggregatorState::Reset() {
  count_ = 0;
  sum_ = 0.0;
  first_ = Value::Null();
  min_ = Value::Null();
  max_ = Value::Null();
  buffer_.clear();
}

}  // namespace joinmi
