#include "src/mi/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace joinmi {

SortedPoints1D::SortedPoints1D(std::vector<double> points)
    : points_(std::move(points)) {
  std::sort(points_.begin(), points_.end());
}

double SortedPoints1D::KthNeighborDistance(double x, int k) const {
  const size_t n = points_.size();
  // hi = first element >= x; lo = last element < x.
  size_t hi = static_cast<size_t>(
      std::lower_bound(points_.begin(), points_.end(), x) - points_.begin());
  size_t lo_plus1 = hi;  // lo = lo_plus1 - 1 to avoid size_t underflow
  // Skip one copy of x itself (callers query with member points).
  if (hi < n && points_[hi] == x) ++hi;
  double dist = 0.0;
  for (int taken = 0; taken < k; ++taken) {
    const double left =
        lo_plus1 > 0 ? x - points_[lo_plus1 - 1]
                     : std::numeric_limits<double>::infinity();
    const double right = hi < n ? points_[hi] - x
                                : std::numeric_limits<double>::infinity();
    if (left <= right) {
      dist = left;
      --lo_plus1;
    } else {
      dist = right;
      ++hi;
    }
  }
  return dist;
}

size_t SortedPoints1D::CountWithin(double x, double r, bool strict,
                                   bool exclude_self) const {
  size_t begin, end;
  if (strict) {
    // (x - r, x + r): elements e with e > x - r and e < x + r.
    begin = static_cast<size_t>(
        std::upper_bound(points_.begin(), points_.end(), x - r) -
        points_.begin());
    end = static_cast<size_t>(
        std::lower_bound(points_.begin(), points_.end(), x + r) -
        points_.begin());
  } else {
    // [x - r, x + r].
    begin = static_cast<size_t>(
        std::lower_bound(points_.begin(), points_.end(), x - r) -
        points_.begin());
    end = static_cast<size_t>(
        std::upper_bound(points_.begin(), points_.end(), x + r) -
        points_.begin());
  }
  size_t count = end > begin ? end - begin : 0;
  if (exclude_self && count > 0) {
    // x itself is inside the interval iff its self-distance 0 qualifies.
    const bool self_in_range = strict ? (r > 0.0) : (r >= 0.0);
    if (self_in_range &&
        std::binary_search(points_.begin(), points_.end(), x)) {
      --count;
    }
  }
  return count;
}

KdTree2D::KdTree2D(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  order_.resize(xs_.size());
  std::iota(order_.begin(), order_.end(), size_t{0});
  if (!order_.empty()) {
    nodes_.reserve(2 * order_.size() / kLeafSize + 4);
    root_ = Build(0, order_.size(), /*depth=*/0);
  }
}

size_t KdTree2D::Build(size_t begin, size_t end, int depth) {
  const size_t node_index = nodes_.size();
  nodes_.emplace_back();
  if (end - begin <= kLeafSize) {
    nodes_[node_index].axis = -1;
    nodes_[node_index].left = begin;
    nodes_[node_index].right = end;
    return node_index;
  }
  const int axis = depth % 2;
  const std::vector<double>& coord = axis == 0 ? xs_ : ys_;
  const size_t mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + static_cast<ptrdiff_t>(begin),
                   order_.begin() + static_cast<ptrdiff_t>(mid),
                   order_.begin() + static_cast<ptrdiff_t>(end),
                   [&coord](size_t a, size_t b) { return coord[a] < coord[b]; });
  const double split = coord[order_[mid]];
  const size_t left_child = Build(begin, mid, depth + 1);
  const size_t right_child = Build(mid, end, depth + 1);
  nodes_[node_index].axis = axis;
  nodes_[node_index].split = split;
  nodes_[node_index].left = left_child;
  nodes_[node_index].right = right_child;
  return node_index;
}

void KdTree2D::QueryKth(size_t node, size_t self, double px, double py, int k,
                        std::vector<double>* heap) const {
  const Node& nd = nodes_[node];
  if (nd.axis == -1) {
    for (size_t pos = nd.left; pos < nd.right; ++pos) {
      const size_t j = order_[pos];
      if (j == self) continue;
      const double d = std::max(std::fabs(xs_[j] - px), std::fabs(ys_[j] - py));
      if (heap->size() < static_cast<size_t>(k)) {
        heap->push_back(d);
        std::push_heap(heap->begin(), heap->end());
      } else if (d < heap->front()) {
        std::pop_heap(heap->begin(), heap->end());
        heap->back() = d;
        std::push_heap(heap->begin(), heap->end());
      }
    }
    return;
  }
  const double q = nd.axis == 0 ? px : py;
  const size_t near = q < nd.split ? nd.left : nd.right;
  const size_t far = q < nd.split ? nd.right : nd.left;
  QueryKth(near, self, px, py, k, heap);
  const double axis_dist = std::fabs(q - nd.split);
  if (heap->size() < static_cast<size_t>(k) || axis_dist <= heap->front()) {
    QueryKth(far, self, px, py, k, heap);
  }
}

double KdTree2D::KthNeighborDistance(size_t i, int k) const {
  std::vector<double> heap;
  heap.reserve(static_cast<size_t>(k) + 1);
  QueryKth(root_, i, xs_[i], ys_[i], k, &heap);
  return heap.front();
}

void KdTree2D::QueryCount(size_t node, size_t self, double px, double py,
                          double r, bool strict, size_t* count) const {
  const Node& nd = nodes_[node];
  if (nd.axis == -1) {
    for (size_t pos = nd.left; pos < nd.right; ++pos) {
      const size_t j = order_[pos];
      if (j == self) continue;
      const double d = std::max(std::fabs(xs_[j] - px), std::fabs(ys_[j] - py));
      if (strict ? d < r : d <= r) ++(*count);
    }
    return;
  }
  const double q = nd.axis == 0 ? px : py;
  const size_t near = q < nd.split ? nd.left : nd.right;
  const size_t far = q < nd.split ? nd.right : nd.left;
  QueryCount(near, self, px, py, r, strict, count);
  const double axis_dist = std::fabs(q - nd.split);
  // A point in the far subtree is at Chebyshev distance >= axis_dist.
  const bool far_can_match = strict ? axis_dist < r : axis_dist <= r;
  if (far_can_match) QueryCount(far, self, px, py, r, strict, count);
}

size_t KdTree2D::CountWithin(size_t i, double r, bool strict) const {
  size_t count = 0;
  QueryCount(root_, i, xs_[i], ys_[i], r, strict, &count);
  return count;
}

size_t KdTree2D::CountCoincident(size_t i) const {
  return CountWithin(i, 0.0, /*strict=*/false);
}

}  // namespace joinmi
