// KSG estimator (Kraskov, Stögbauer, Grassberger 2004, algorithm 1) for MI
// between continuous variables:
//   I = psi(k) + psi(N) - < psi(n_x + 1) + psi(n_y + 1) >
// where eps_i is the Chebyshev distance to the k-th neighbor in joint space
// and n_x / n_y count marginal neighbors strictly inside eps_i.

#ifndef JOINMI_MI_KSG_H_
#define JOINMI_MI_KSG_H_

#include <vector>

#include "src/common/status.h"

namespace joinmi {

/// \brief KSG-1 MI estimate in nats. Requires N > k samples.
///
/// Ties in the data yield eps_i = 0 for some points, which degrades the
/// estimate (the KSG model assumes continuous marginals); callers should
/// perturb tied data or use MixedKSG.
Result<double> MutualInformationKSG(const std::vector<double>& xs,
                                    const std::vector<double>& ys, int k = 3);

}  // namespace joinmi

#endif  // JOINMI_MI_KSG_H_
