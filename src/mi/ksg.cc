#include "src/mi/ksg.h"

#include "src/common/math.h"
#include "src/mi/knn.h"

namespace joinmi {

Result<double> MutualInformationKSG(const std::vector<double>& xs,
                                    const std::vector<double>& ys, int k) {
  const size_t n = xs.size();
  if (n != ys.size()) {
    return Status::InvalidArgument("MI inputs must be paired");
  }
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (n <= static_cast<size_t>(k)) {
    return Status::InvalidArgument("KSG needs more than k samples");
  }
  KdTree2D joint(xs, ys);
  SortedPoints1D sorted_x(xs);
  SortedPoints1D sorted_y(ys);

  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double eps = joint.KthNeighborDistance(i, k);
    // Marginal counts strictly inside the ball, self excluded (KSG-1).
    const double nx = static_cast<double>(
        sorted_x.CountWithin(xs[i], eps, /*strict=*/true));
    const double ny = static_cast<double>(
        sorted_y.CountWithin(ys[i], eps, /*strict=*/true));
    acc += Digamma(nx + 1.0) + Digamma(ny + 1.0);
  }
  const double mi = Digamma(static_cast<double>(k)) +
                    Digamma(static_cast<double>(n)) -
                    acc / static_cast<double>(n);
  return mi < 0.0 ? 0.0 : mi;
}

}  // namespace joinmi
