// Frequency statistics for discrete (plug-in) entropy and MI estimation:
// dense integer coding of type-erased values, marginal histograms, and joint
// contingency tables.

#ifndef JOINMI_MI_HISTOGRAM_H_
#define JOINMI_MI_HISTOGRAM_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/table/value.h"

namespace joinmi {

/// \brief Maps arbitrary hashable values to dense codes 0..m-1 in
/// first-appearance order.
class ValueCoder {
 public:
  /// \brief Code for `v`, assigning a fresh one on first sight.
  uint32_t Encode(const Value& v);

  /// \brief Existing code, or -1 if unseen.
  int64_t Lookup(const Value& v) const;

  size_t num_codes() const { return next_code_; }

 private:
  std::unordered_map<uint64_t, uint32_t> codes_;
  uint32_t next_code_ = 0;
};

/// \brief Encodes a value vector to dense codes.
std::vector<uint32_t> EncodeValues(const std::vector<Value>& values,
                                   ValueCoder* coder);

/// \brief Marginal frequency histogram over dense codes.
struct Histogram {
  std::vector<uint64_t> counts;  // index = code
  uint64_t total = 0;

  size_t num_bins() const { return counts.size(); }
};

/// \brief Builds a histogram over codes (bins sized to max code + 1).
Histogram BuildHistogram(const std::vector<uint32_t>& codes);

/// \brief Sparse joint contingency table over code pairs.
struct JointHistogram {
  /// (x_code, y_code) packed into 64 bits -> joint count.
  std::unordered_map<uint64_t, uint64_t> counts;
  uint64_t total = 0;
  size_t num_cells() const { return counts.size(); }
};

/// \brief Builds the joint table for paired code vectors (equal length).
Result<JointHistogram> BuildJointHistogram(const std::vector<uint32_t>& xs,
                                           const std::vector<uint32_t>& ys);

/// \brief Packs a code pair into the joint-table key.
inline uint64_t PackCodes(uint32_t x, uint32_t y) {
  return (static_cast<uint64_t>(x) << 32) | y;
}

}  // namespace joinmi

#endif  // JOINMI_MI_HISTOGRAM_H_
