// Plug-in (maximum likelihood) mutual information for discrete-discrete data
// via I = H(X) + H(Y) - H(X,Y), plus bias-correction variants and the
// closed-form bias approximation from Roulston 1999 (Equation 6 in the paper).

#ifndef JOINMI_MI_MLE_H_
#define JOINMI_MI_MLE_H_

#include <vector>

#include "src/common/status.h"
#include "src/table/value.h"

namespace joinmi {

/// \brief Plug-in MI over paired type-erased samples. Works for any
/// hashable values (strings, ints, doubles-with-repeats).
Result<double> MutualInformationMLE(const std::vector<Value>& xs,
                                    const std::vector<Value>& ys);

/// \brief Miller–Madow corrected plug-in MI: each entropy term gets its own
/// support-size correction, i.e. I_MM = I_MLE - (m_X + m_Y - m_XY - 1) / (2N).
Result<double> MutualInformationMillerMadow(const std::vector<Value>& xs,
                                            const std::vector<Value>& ys);

/// \brief Laplace-smoothed plug-in MI (smoothed marginal/joint entropies).
Result<double> MutualInformationLaplace(const std::vector<Value>& xs,
                                        const std::vector<Value>& ys,
                                        double alpha = 1.0);

/// \brief First-order bias of the MLE MI estimator (paper Equation 6):
/// E[I_hat] - I ~= (m_X + m_Y - m_XY - 1) / (2N).
double MleMIBiasApproximation(size_t m_x, size_t m_y, size_t m_xy, size_t n);

}  // namespace joinmi

#endif  // JOINMI_MI_MLE_H_
