// Nearest-neighbor machinery for the KSG family of estimators: 1-D sorted
// point sets with windowed k-NN / range counting, and a 2-D kd-tree under the
// Chebyshev (max) norm.

#ifndef JOINMI_MI_KNN_H_
#define JOINMI_MI_KNN_H_

#include <cstddef>
#include <vector>

#include "src/common/status.h"

namespace joinmi {

/// \brief Sorted 1-D point set supporting k-NN distances and range counts in
/// O(log n + k) per query.
class SortedPoints1D {
 public:
  explicit SortedPoints1D(std::vector<double> points);

  size_t size() const { return points_.size(); }

  /// \brief Distance from `x` to its k-th nearest neighbor, where one copy
  /// of `x` itself is excluded (callers query with member points).
  /// Precondition: k < size().
  double KthNeighborDistance(double x, int k) const;

  /// \brief Number of points p with |p - x| < r (strict) or <= r, excluding
  /// one copy of x itself when exclude_self is true.
  size_t CountWithin(double x, double r, bool strict,
                     bool exclude_self = true) const;

  const std::vector<double>& sorted_points() const { return points_; }

 private:
  std::vector<double> points_;
};

/// \brief Static 2-D kd-tree over (x, y) points with Chebyshev metric.
///
/// Built once in O(n log n); supports distance-to-kth-neighbor queries and
/// closed/open ball counting. Points are referenced by index so estimators
/// can exclude the query point itself.
class KdTree2D {
 public:
  KdTree2D(std::vector<double> xs, std::vector<double> ys);

  size_t size() const { return xs_.size(); }

  /// \brief Chebyshev distance from point `i` to its k-th nearest neighbor
  /// (self excluded). Precondition: k < size().
  double KthNeighborDistance(size_t i, int k) const;

  /// \brief Number of points j != i with Chebyshev distance to point i
  /// strictly less than r (strict=true) or <= r.
  size_t CountWithin(size_t i, double r, bool strict) const;

  /// \brief Number of points j != i at Chebyshev distance exactly 0.
  size_t CountCoincident(size_t i) const;

 private:
  struct Node {
    // Children are implicit (2*node+1 / 2*node+2) in a balanced layout;
    // leaves hold point index ranges instead.
    double split = 0.0;
    int axis = -1;           // -1 marks a leaf
    size_t left = 0;         // child node index or range begin (leaf)
    size_t right = 0;        // child node index or range end (leaf)
  };

  size_t Build(size_t begin, size_t end, int depth);
  void QueryKth(size_t node, size_t self, double px, double py, int k,
                std::vector<double>* heap) const;
  void QueryCount(size_t node, size_t self, double px, double py, double r,
                  bool strict, size_t* count) const;

  static constexpr size_t kLeafSize = 16;

  std::vector<double> xs_, ys_;   // original point order
  std::vector<size_t> order_;     // permutation grouped by leaf
  std::vector<Node> nodes_;
  size_t root_ = 0;
};

}  // namespace joinmi

#endif  // JOINMI_MI_KNN_H_
