#include "src/mi/entropy.h"

#include <algorithm>
#include <cmath>

#include "src/common/math.h"
#include "src/mi/knn.h"

namespace joinmi {

double EntropyMLE(const Histogram& hist) {
  if (hist.total == 0) return 0.0;
  const double n = static_cast<double>(hist.total);
  double h = 0.0;
  for (uint64_t count : hist.counts) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / n;
    h -= p * std::log(p);
  }
  return h;
}

double EntropyMillerMadow(const Histogram& hist) {
  if (hist.total == 0) return 0.0;
  size_t support = 0;
  for (uint64_t count : hist.counts) {
    if (count > 0) ++support;
  }
  return EntropyMLE(hist) + (static_cast<double>(support) - 1.0) /
                                (2.0 * static_cast<double>(hist.total));
}

double EntropyLaplace(const Histogram& hist, double alpha) {
  if (hist.total == 0) return 0.0;
  size_t support = 0;
  for (uint64_t count : hist.counts) {
    if (count > 0) ++support;
  }
  const double n = static_cast<double>(hist.total);
  const double denom = n + alpha * static_cast<double>(support);
  double h = 0.0;
  for (uint64_t count : hist.counts) {
    if (count == 0) continue;
    const double p = (static_cast<double>(count) + alpha) / denom;
    h -= p * std::log(p);
  }
  return h;
}

double JointEntropyMLE(const JointHistogram& joint) {
  if (joint.total == 0) return 0.0;
  const double n = static_cast<double>(joint.total);
  double h = 0.0;
  for (const auto& [cell, count] : joint.counts) {
    (void)cell;
    const double p = static_cast<double>(count) / n;
    h -= p * std::log(p);
  }
  return h;
}

Result<double> DifferentialEntropyKnn(const std::vector<double>& xs, int k) {
  const size_t n = xs.size();
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (n <= static_cast<size_t>(k)) {
    return Status::InvalidArgument("need more than k samples for kNN entropy");
  }
  SortedPoints1D sorted(xs);
  double log_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double eps = sorted.KthNeighborDistance(xs[i], k);
    // Repeated values give eps = 0; the continuous-entropy model breaks
    // there, so floor at a tiny spacing (standard practice).
    eps = std::max(eps, 1e-15);
    log_sum += std::log(eps);
  }
  return Digamma(static_cast<double>(n)) - Digamma(static_cast<double>(k)) +
         std::log(2.0) + log_sum / static_cast<double>(n);
}

Result<double> DifferentialEntropySpacing(std::vector<double> xs) {
  const size_t n = xs.size();
  if (n < 2) {
    return Status::InvalidArgument("need at least 2 samples for spacings");
  }
  std::sort(xs.begin(), xs.end());
  double log_sum = 0.0;
  size_t used = 0;
  for (size_t i = 0; i + 1 < n; ++i) {
    const double spacing = xs[i + 1] - xs[i];
    if (spacing <= 0.0) continue;
    log_sum += std::log(spacing);
    ++used;
  }
  if (used == 0) {
    return Status::InvalidArgument("all sample spacings are zero");
  }
  return log_sum / static_cast<double>(used) +
         Digamma(static_cast<double>(n)) - Digamma(1.0);
}

}  // namespace joinmi
