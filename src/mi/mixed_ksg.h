// MixedKSG estimator (Gao, Kannan, Oh, Viswanath, NeurIPS 2017) for MI
// between variables whose distributions may be continuous, discrete, or
// discrete-continuous mixtures (e.g., join-derived features with repeated
// values). Recovers the plug-in estimator on purely discrete regions and
// KSG-like behavior on continuous regions:
//   I = (1/N) sum_i [ psi(k~_i) + log N - log(n_x,i) - log(n_y,i) ]
// with k~_i = #coincident points when the k-th neighbor distance is zero,
// and n counts taken over closed balls (self included).

#ifndef JOINMI_MI_MIXED_KSG_H_
#define JOINMI_MI_MIXED_KSG_H_

#include <vector>

#include "src/common/status.h"

namespace joinmi {

/// \brief MixedKSG MI estimate in nats. Requires N > k samples. Handles
/// ties natively; no perturbation needed.
Result<double> MutualInformationMixedKSG(const std::vector<double>& xs,
                                         const std::vector<double>& ys,
                                         int k = 3);

}  // namespace joinmi

#endif  // JOINMI_MI_MIXED_KSG_H_
