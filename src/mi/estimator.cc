#include "src/mi/estimator.h"

#include "src/common/random.h"
#include "src/common/string_util.h"
#include "src/mi/dc_ksg.h"
#include "src/mi/ksg.h"
#include "src/mi/mixed_ksg.h"
#include "src/mi/mle.h"

namespace joinmi {

const char* MIEstimatorKindToString(MIEstimatorKind kind) {
  switch (kind) {
    case MIEstimatorKind::kMLE:
      return "MLE";
    case MIEstimatorKind::kMillerMadow:
      return "MillerMadow";
    case MIEstimatorKind::kLaplace:
      return "Laplace";
    case MIEstimatorKind::kKSG:
      return "KSG";
    case MIEstimatorKind::kMixedKSG:
      return "MixedKSG";
    case MIEstimatorKind::kDCKSG:
      return "DC-KSG";
  }
  return "unknown";
}

Result<MIEstimatorKind> MIEstimatorKindFromString(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "mle") return MIEstimatorKind::kMLE;
  if (lower == "millermadow" || lower == "miller-madow") {
    return MIEstimatorKind::kMillerMadow;
  }
  if (lower == "laplace") return MIEstimatorKind::kLaplace;
  if (lower == "ksg") return MIEstimatorKind::kKSG;
  if (lower == "mixedksg" || lower == "mixed-ksg") {
    return MIEstimatorKind::kMixedKSG;
  }
  if (lower == "dcksg" || lower == "dc-ksg") return MIEstimatorKind::kDCKSG;
  return Status::InvalidArgument("unknown MI estimator '" + name + "'");
}

Result<MIEstimatorKind> ChooseEstimator(DataType x_type, DataType y_type) {
  const bool x_num = IsNumeric(x_type);
  const bool y_num = IsNumeric(y_type);
  if (x_type == DataType::kNull || y_type == DataType::kNull) {
    return Status::TypeError("cannot choose an estimator for null columns");
  }
  if (!x_num && !y_num) return MIEstimatorKind::kMLE;
  if (x_num && y_num) return MIEstimatorKind::kMixedKSG;
  return MIEstimatorKind::kDCKSG;
}

Result<std::vector<double>> ToNumericVector(const std::vector<Value>& values) {
  std::vector<double> out;
  out.reserve(values.size());
  for (const Value& v : values) {
    JOINMI_ASSIGN_OR_RETURN(double d, v.AsDouble());
    out.push_back(d);
  }
  return out;
}

std::vector<double> PerturbForTies(const std::vector<double>& xs, double sigma,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(xs);
  for (double& x : out) x += rng.Gaussian(0.0, sigma);
  return out;
}

namespace {

Status CheckSample(const PairedSample& sample) {
  if (sample.x.size() != sample.y.size()) {
    return Status::InvalidArgument("paired sample arity mismatch");
  }
  if (sample.x.empty()) {
    return Status::InvalidArgument("empty paired sample");
  }
  for (size_t i = 0; i < sample.x.size(); ++i) {
    if (sample.x[i].is_null() || sample.y[i].is_null()) {
      return Status::InvalidArgument("paired sample contains nulls");
    }
  }
  return Status::OK();
}

bool AllNumeric(const std::vector<Value>& values) {
  for (const Value& v : values) {
    if (!IsNumeric(v.type())) return false;
  }
  return true;
}

Result<std::vector<double>> NumericSide(const std::vector<Value>& values,
                                        const MIOptions& options,
                                        uint64_t seed_salt) {
  JOINMI_ASSIGN_OR_RETURN(std::vector<double> xs, ToNumericVector(values));
  if (options.perturb_sigma > 0.0) {
    xs = PerturbForTies(xs, options.perturb_sigma,
                        options.perturb_seed ^ seed_salt);
  }
  return xs;
}

}  // namespace

Result<double> EstimateMI(MIEstimatorKind kind, const PairedSample& sample,
                          const MIOptions& options) {
  JOINMI_RETURN_NOT_OK(CheckSample(sample));
  switch (kind) {
    case MIEstimatorKind::kMLE:
      return MutualInformationMLE(sample.x, sample.y);
    case MIEstimatorKind::kMillerMadow:
      return MutualInformationMillerMadow(sample.x, sample.y);
    case MIEstimatorKind::kLaplace:
      return MutualInformationLaplace(sample.x, sample.y,
                                      options.laplace_alpha);
    case MIEstimatorKind::kKSG: {
      JOINMI_ASSIGN_OR_RETURN(auto xs, NumericSide(sample.x, options, 0xA));
      JOINMI_ASSIGN_OR_RETURN(auto ys, NumericSide(sample.y, options, 0xB));
      return MutualInformationKSG(xs, ys, options.k);
    }
    case MIEstimatorKind::kMixedKSG: {
      // MixedKSG handles ties natively; perturbation (if requested) is
      // still honored for apples-to-apples estimator comparisons.
      JOINMI_ASSIGN_OR_RETURN(auto xs, NumericSide(sample.x, options, 0xA));
      JOINMI_ASSIGN_OR_RETURN(auto ys, NumericSide(sample.y, options, 0xB));
      return MutualInformationMixedKSG(xs, ys, options.k);
    }
    case MIEstimatorKind::kDCKSG: {
      // The numeric side is continuous; the other side is discrete. When
      // both are numeric, X is treated as the discrete side.
      const bool y_numeric = AllNumeric(sample.y);
      if (y_numeric) {
        JOINMI_ASSIGN_OR_RETURN(auto ys, NumericSide(sample.y, options, 0xB));
        return MutualInformationDCKSG(sample.x, ys, options.k);
      }
      if (AllNumeric(sample.x)) {
        JOINMI_ASSIGN_OR_RETURN(auto xs, NumericSide(sample.x, options, 0xA));
        return MutualInformationDCKSG(sample.y, xs, options.k);
      }
      return Status::TypeError("DC-KSG requires one numeric side");
    }
  }
  return Status::InvalidArgument("unknown estimator kind");
}

Result<double> EstimateMIAuto(const PairedSample& sample,
                              const MIOptions& options) {
  JOINMI_RETURN_NOT_OK(CheckSample(sample));
  // Infer side types: numeric iff every value is numeric.
  const DataType x_type =
      AllNumeric(sample.x) ? DataType::kDouble : DataType::kString;
  const DataType y_type =
      AllNumeric(sample.y) ? DataType::kDouble : DataType::kString;
  JOINMI_ASSIGN_OR_RETURN(MIEstimatorKind kind,
                          ChooseEstimator(x_type, y_type));
  return EstimateMI(kind, sample, options);
}

}  // namespace joinmi
