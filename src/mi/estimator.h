// Unified MI-estimation facade. Estimators are pure functions over paired
// samples, so the materialized-join path and the sketch path share them —
// the property the paper's sketches rely on ("can be used with any existing
// sample-based MI estimator").

#ifndef JOINMI_MI_ESTIMATOR_H_
#define JOINMI_MI_ESTIMATOR_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/table/value.h"

namespace joinmi {

/// \brief Available MI estimators.
enum class MIEstimatorKind : uint8_t {
  kMLE = 0,      ///< plug-in, discrete-discrete
  kMillerMadow,  ///< bias-corrected plug-in
  kLaplace,      ///< Laplace-smoothed plug-in
  kKSG,          ///< Kraskov et al. 2004, continuous-continuous
  kMixedKSG,     ///< Gao et al. 2017, mixtures
  kDCKSG,        ///< Ross 2014, discrete-continuous
};

const char* MIEstimatorKindToString(MIEstimatorKind kind);
Result<MIEstimatorKind> MIEstimatorKindFromString(const std::string& name);

/// \brief Estimation options.
struct MIOptions {
  /// Neighbor count for the KSG family.
  int k = 3;
  /// Laplace smoothing strength (kLaplace only).
  double laplace_alpha = 1.0;
  /// If > 0, add Gaussian noise of this magnitude to continuous inputs to
  /// break ties before KSG (the paper's perturbation device, Section V-A).
  double perturb_sigma = 0.0;
  /// Seed for the perturbation noise.
  uint64_t perturb_seed = 0x7E57AB1EULL;
};

/// \brief A paired sample of (feature, target) observations.
struct PairedSample {
  std::vector<Value> x;
  std::vector<Value> y;

  size_t size() const { return x.size(); }
};

/// \brief The paper's estimator-selection policy (Section V): string x
/// string -> MLE; numeric x numeric -> MixedKSG; mixed -> DC-KSG.
Result<MIEstimatorKind> ChooseEstimator(DataType x_type, DataType y_type);

/// \brief Estimates MI (in nats) over the paired sample with the given
/// estimator. Type requirements:
///  - kMLE/kMillerMadow/kLaplace: any hashable values on both sides;
///  - kKSG/kMixedKSG: numeric on both sides;
///  - kDCKSG: exactly one side numeric (the discrete side may be anything;
///    if both sides are eligible, X is treated as discrete).
Result<double> EstimateMI(MIEstimatorKind kind, const PairedSample& sample,
                          const MIOptions& options = {});

/// \brief Auto-selecting wrapper: infers the value types from the sample and
/// dispatches per ChooseEstimator.
Result<double> EstimateMIAuto(const PairedSample& sample,
                              const MIOptions& options = {});

/// \brief Extracts a numeric vector from values (int64 widened); error if a
/// value is non-numeric or null.
Result<std::vector<double>> ToNumericVector(const std::vector<Value>& values);

/// \brief Adds seeded Gaussian noise to break ties (paper Section V-A).
std::vector<double> PerturbForTies(const std::vector<double>& xs, double sigma,
                                   uint64_t seed);

}  // namespace joinmi

#endif  // JOINMI_MI_ESTIMATOR_H_
