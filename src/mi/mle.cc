#include "src/mi/mle.h"

#include <cmath>

#include "src/mi/entropy.h"
#include "src/mi/histogram.h"

namespace joinmi {

namespace {

struct DiscretePrep {
  Histogram hx;
  Histogram hy;
  JointHistogram hxy;
};

Result<DiscretePrep> Prepare(const std::vector<Value>& xs,
                             const std::vector<Value>& ys) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("MI inputs must be paired");
  }
  if (xs.empty()) {
    return Status::InvalidArgument("MI of empty sample");
  }
  ValueCoder cx, cy;
  const std::vector<uint32_t> x_codes = EncodeValues(xs, &cx);
  const std::vector<uint32_t> y_codes = EncodeValues(ys, &cy);
  DiscretePrep prep;
  prep.hx = BuildHistogram(x_codes);
  prep.hy = BuildHistogram(y_codes);
  JOINMI_ASSIGN_OR_RETURN(prep.hxy, BuildJointHistogram(x_codes, y_codes));
  return prep;
}

}  // namespace

Result<double> MutualInformationMLE(const std::vector<Value>& xs,
                                    const std::vector<Value>& ys) {
  JOINMI_ASSIGN_OR_RETURN(DiscretePrep prep, Prepare(xs, ys));
  const double mi = EntropyMLE(prep.hx) + EntropyMLE(prep.hy) -
                    JointEntropyMLE(prep.hxy);
  // Plug-in MI is non-negative analytically; clamp away float round-off.
  return mi < 0.0 ? 0.0 : mi;
}

Result<double> MutualInformationMillerMadow(const std::vector<Value>& xs,
                                            const std::vector<Value>& ys) {
  JOINMI_ASSIGN_OR_RETURN(DiscretePrep prep, Prepare(xs, ys));
  const double mi = EntropyMillerMadow(prep.hx) + EntropyMillerMadow(prep.hy) -
                    (JointEntropyMLE(prep.hxy) +
                     (static_cast<double>(prep.hxy.num_cells()) - 1.0) /
                         (2.0 * static_cast<double>(prep.hxy.total)));
  return mi < 0.0 ? 0.0 : mi;
}

Result<double> MutualInformationLaplace(const std::vector<Value>& xs,
                                        const std::vector<Value>& ys,
                                        double alpha) {
  if (alpha < 0.0) {
    return Status::InvalidArgument("Laplace alpha must be >= 0");
  }
  JOINMI_ASSIGN_OR_RETURN(DiscretePrep prep, Prepare(xs, ys));
  // Smooth the joint over the product support m_X * m_Y so marginal and
  // joint smoothing are consistent (marginals of the smoothed joint equal
  // the smoothed marginals with alpha' = alpha * m_other).
  const double n = static_cast<double>(prep.hxy.total);
  const double mx = static_cast<double>(prep.hx.num_bins());
  const double my = static_cast<double>(prep.hy.num_bins());
  const double joint_denom = n + alpha * mx * my;

  double h_joint = 0.0;
  for (const auto& [cell, count] : prep.hxy.counts) {
    (void)cell;
    const double p = (static_cast<double>(count) + alpha) / joint_denom;
    h_joint -= p * std::log(p);
  }
  // Unobserved joint cells each carry probability alpha / joint_denom.
  const double unseen =
      mx * my - static_cast<double>(prep.hxy.num_cells());
  if (unseen > 0.0 && alpha > 0.0) {
    const double p = alpha / joint_denom;
    h_joint -= unseen * p * std::log(p);
  }

  auto smoothed_marginal = [&](const Histogram& hist, double other_m) {
    const double denom = n + alpha * mx * my;
    double h = 0.0;
    for (uint64_t count : hist.counts) {
      const double p = (static_cast<double>(count) + alpha * other_m) / denom;
      if (p > 0.0) h -= p * std::log(p);
    }
    return h;
  };
  const double mi = smoothed_marginal(prep.hx, my) +
                    smoothed_marginal(prep.hy, mx) - h_joint;
  return mi < 0.0 ? 0.0 : mi;
}

double MleMIBiasApproximation(size_t m_x, size_t m_y, size_t m_xy, size_t n) {
  return (static_cast<double>(m_x) + static_cast<double>(m_y) -
          static_cast<double>(m_xy) - 1.0) /
         (2.0 * static_cast<double>(n));
}

}  // namespace joinmi
