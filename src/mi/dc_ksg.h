// DC-KSG estimator (Ross, PLoS ONE 2014) for MI between a discrete variable
// X and a continuous variable Y:
//   I = psi(N) + <psi(k_i)> - <psi(N_xi)> - <psi(m_i + 1)>
// where N_xi is the multiplicity of sample i's discrete value, d_i is the
// distance to the k_i-th nearest neighbor among samples sharing that value
// (k_i = min(k, N_xi - 1)), and m_i counts samples of any class strictly
// within d_i. Samples whose class is unique are dropped (no within-class
// neighbor exists), matching the scikit-learn implementation the paper uses.

#ifndef JOINMI_MI_DC_KSG_H_
#define JOINMI_MI_DC_KSG_H_

#include <vector>

#include "src/common/status.h"
#include "src/table/value.h"

namespace joinmi {

/// \brief DC-KSG MI estimate in nats; X discrete (any hashable Value),
/// Y continuous.
Result<double> MutualInformationDCKSG(const std::vector<Value>& xs_discrete,
                                      const std::vector<double>& ys,
                                      int k = 3);

/// \brief Convenience overload for numeric-coded discrete X.
Result<double> MutualInformationDCKSG(const std::vector<uint32_t>& x_codes,
                                      const std::vector<double>& ys, int k = 3);

}  // namespace joinmi

#endif  // JOINMI_MI_DC_KSG_H_
