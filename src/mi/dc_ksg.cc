#include "src/mi/dc_ksg.h"

#include <algorithm>
#include <cmath>

#include "src/common/math.h"
#include "src/mi/histogram.h"
#include "src/mi/knn.h"

namespace joinmi {

Result<double> MutualInformationDCKSG(const std::vector<Value>& xs_discrete,
                                      const std::vector<double>& ys, int k) {
  ValueCoder coder;
  std::vector<uint32_t> codes;
  codes.reserve(xs_discrete.size());
  for (const Value& v : xs_discrete) codes.push_back(coder.Encode(v));
  return MutualInformationDCKSG(codes, ys, k);
}

Result<double> MutualInformationDCKSG(const std::vector<uint32_t>& x_codes,
                                      const std::vector<double>& ys, int k) {
  const size_t n = x_codes.size();
  if (n != ys.size()) {
    return Status::InvalidArgument("MI inputs must be paired");
  }
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (n < 2) return Status::InvalidArgument("DC-KSG needs at least 2 samples");

  // Partition y values by class.
  uint32_t num_classes = 0;
  for (uint32_t code : x_codes) num_classes = std::max(num_classes, code + 1);
  std::vector<std::vector<double>> class_ys(num_classes);
  for (size_t i = 0; i < n; ++i) class_ys[x_codes[i]].push_back(ys[i]);

  std::vector<SortedPoints1D> class_points;
  class_points.reserve(num_classes);
  std::vector<size_t> class_count(num_classes, 0);
  for (uint32_t c = 0; c < num_classes; ++c) {
    class_count[c] = class_ys[c].size();
    class_points.emplace_back(std::move(class_ys[c]));
  }

  // First pass: per-sample within-class radii; samples with a unique class
  // are dropped from the estimate entirely (including the psi(N') term).
  std::vector<double> radius(n, 0.0);
  std::vector<int> k_used(n, 0);
  std::vector<bool> keep(n, false);
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t count = class_count[x_codes[i]];
    if (count < 2) continue;
    const int ki = std::min<int>(k, static_cast<int>(count) - 1);
    radius[i] = class_points[x_codes[i]].KthNeighborDistance(ys[i], ki);
    k_used[i] = ki;
    keep[i] = true;
    ++kept;
  }
  if (kept == 0) {
    return Status::InvalidArgument(
        "DC-KSG: every discrete value is unique; no within-class neighbors");
  }

  // Second pass: neighbor counts strictly within the radius, over the kept
  // samples only (scikit-learn drops unique-class points before building its
  // KDTree, and shrinks the radius with nextafter to turn the closed query
  // into an open one; strict counting over kept points is equivalent).
  std::vector<double> kept_ys;
  kept_ys.reserve(kept);
  for (size_t i = 0; i < n; ++i) {
    if (keep[i]) kept_ys.push_back(ys[i]);
  }
  SortedPoints1D all_points(std::move(kept_ys));
  double acc_k = 0.0, acc_class = 0.0, acc_m = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (!keep[i]) continue;
    const size_t m_i = all_points.CountWithin(ys[i], radius[i],
                                              /*strict=*/true);
    acc_k += Digamma(static_cast<double>(k_used[i]));
    acc_class += Digamma(static_cast<double>(class_count[x_codes[i]]));
    acc_m += Digamma(static_cast<double>(m_i) + 1.0);
  }
  const double inv = 1.0 / static_cast<double>(kept);
  const double mi = Digamma(static_cast<double>(kept)) + inv * acc_k -
                    inv * acc_class - inv * acc_m;
  return mi < 0.0 ? 0.0 : mi;
}

}  // namespace joinmi
