#include "src/mi/mixed_ksg.h"

#include <cmath>

#include "src/common/math.h"
#include "src/mi/knn.h"

namespace joinmi {

Result<double> MutualInformationMixedKSG(const std::vector<double>& xs,
                                         const std::vector<double>& ys,
                                         int k) {
  const size_t n = xs.size();
  if (n != ys.size()) {
    return Status::InvalidArgument("MI inputs must be paired");
  }
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (n <= static_cast<size_t>(k)) {
    return Status::InvalidArgument("MixedKSG needs more than k samples");
  }
  KdTree2D joint(xs, ys);
  SortedPoints1D sorted_x(xs);
  SortedPoints1D sorted_y(ys);

  const double log_n = std::log(static_cast<double>(n));
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double rho = joint.KthNeighborDistance(i, k);
    double k_tilde, nx, ny;
    if (rho == 0.0) {
      // Discrete region: use the multiplicity of the joint point, and count
      // exact marginal coincidences. All counts include the point itself,
      // matching the reference implementation (query_ball_point with a tiny
      // radius includes the center).
      k_tilde = static_cast<double>(joint.CountCoincident(i) + 1);
      nx = static_cast<double>(sorted_x.CountWithin(
          xs[i], 0.0, /*strict=*/false, /*exclude_self=*/false));
      ny = static_cast<double>(sorted_y.CountWithin(
          ys[i], 0.0, /*strict=*/false, /*exclude_self=*/false));
    } else {
      // Continuous region: open-ball marginal counts (the reference shrinks
      // the radius by 1e-15 to exclude points at exactly rho), self
      // included (distance 0 < rho).
      k_tilde = static_cast<double>(k);
      nx = static_cast<double>(sorted_x.CountWithin(
          xs[i], rho, /*strict=*/true, /*exclude_self=*/false));
      ny = static_cast<double>(sorted_y.CountWithin(
          ys[i], rho, /*strict=*/true, /*exclude_self=*/false));
    }
    acc += Digamma(k_tilde) + log_n - std::log(nx) - std::log(ny);
  }
  const double mi = acc / static_cast<double>(n);
  return mi < 0.0 ? 0.0 : mi;
}

}  // namespace joinmi
