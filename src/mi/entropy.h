// Entropy estimators (Section II of the paper): plug-in (MLE) discrete
// entropy with bias-correction variants, and differential entropy from
// nearest-neighbor / spacing statistics. All values are in nats.

#ifndef JOINMI_MI_ENTROPY_H_
#define JOINMI_MI_ENTROPY_H_

#include <vector>

#include "src/common/status.h"
#include "src/mi/histogram.h"

namespace joinmi {

/// \brief Plug-in (maximum likelihood) entropy of a histogram:
/// -sum (Ni/N) log(Ni/N). Biased downward by ~(m-1)/(2N) (Roulston 1999).
double EntropyMLE(const Histogram& hist);

/// \brief Miller–Madow corrected entropy: MLE + (m-1)/(2N) with m = number
/// of observed support points.
double EntropyMillerMadow(const Histogram& hist);

/// \brief Laplace-smoothed plug-in entropy: probabilities estimated as
/// (Ni + alpha) / (N + alpha * m). The Conclusion's suggested alternative
/// for controlling false discoveries.
double EntropyLaplace(const Histogram& hist, double alpha = 1.0);

/// \brief Plug-in joint entropy of a contingency table.
double JointEntropyMLE(const JointHistogram& joint);

/// \brief Kozachenko–Leonenko differential entropy of a 1-D sample:
/// H = psi(N) - psi(k) + log(2) + (1/N) sum log(eps_i), where eps_i is the
/// distance to the k-th nearest neighbor. Zero-distance neighbors are
/// handled by flooring eps at a tiny positive value.
Result<double> DifferentialEntropyKnn(const std::vector<double>& xs, int k = 3);

/// \brief One-spacing differential entropy:
/// H ~= (1/(N-1)) sum log(x_(i+1) - x_(i)) + psi(N) - psi(1).
///
/// Note: the paper's Section II prints the correction with the opposite sign
/// (psi(1) - psi(N)); that form diverges to -inf with N, so we implement the
/// standard (Learned-Miller) orientation. Zero spacings are skipped.
Result<double> DifferentialEntropySpacing(std::vector<double> xs);

}  // namespace joinmi

#endif  // JOINMI_MI_ENTROPY_H_
