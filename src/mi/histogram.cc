#include "src/mi/histogram.h"

namespace joinmi {

uint32_t ValueCoder::Encode(const Value& v) {
  const auto [it, inserted] = codes_.emplace(v.Hash(), next_code_);
  if (inserted) ++next_code_;
  return it->second;
}

int64_t ValueCoder::Lookup(const Value& v) const {
  const auto it = codes_.find(v.Hash());
  return it == codes_.end() ? -1 : static_cast<int64_t>(it->second);
}

std::vector<uint32_t> EncodeValues(const std::vector<Value>& values,
                                   ValueCoder* coder) {
  std::vector<uint32_t> codes;
  codes.reserve(values.size());
  for (const Value& v : values) codes.push_back(coder->Encode(v));
  return codes;
}

Histogram BuildHistogram(const std::vector<uint32_t>& codes) {
  Histogram hist;
  for (uint32_t code : codes) {
    if (code >= hist.counts.size()) hist.counts.resize(code + 1, 0);
    ++hist.counts[code];
    ++hist.total;
  }
  return hist;
}

Result<JointHistogram> BuildJointHistogram(const std::vector<uint32_t>& xs,
                                           const std::vector<uint32_t>& ys) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("joint histogram inputs must be paired");
  }
  JointHistogram joint;
  joint.counts.reserve(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    ++joint.counts[PackCodes(xs[i], ys[i])];
    ++joint.total;
  }
  return joint;
}

}  // namespace joinmi
