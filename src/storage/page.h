// Fixed-size checksummed pages: the unit of disk I/O for paged shard
// storage. A page is `page_size` raw bytes on disk — a 16-byte header
// (page index, used payload bytes, FNV-1a checksum over the payload)
// followed by the payload area, zero-padded to the page boundary. The
// checksum is verified when a page faults into the buffer pool, not when
// the file is opened, so corruption is caught exactly when (and only
// when) the corrupt bytes would be read — the classic DBMS page
// discipline that lets a file be served without ever being scanned
// whole.
//
// The page index lives in the header so a page read from offset k must
// agree it *is* page k — a misdirected read (seek bug, swapped pages,
// hand-truncated file) fails loudly even when both pages carry
// internally consistent checksums.
//
// On-disk page layout (little-endian):
//   u32 page_index | u32 payload_size | u64 checksum(payload)
//   | payload_size payload bytes | zero padding to page_size

#ifndef JOINMI_STORAGE_PAGE_H_
#define JOINMI_STORAGE_PAGE_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace joinmi {
namespace storage {

/// \brief Bytes of the on-page header preceding the payload.
constexpr uint32_t kPageHeaderSize = 16;

/// \brief Default page size for paged shard files (whole page, header
/// included). 4 KiB matches the common filesystem block size.
constexpr uint32_t kDefaultPageSize = 4096;

/// \brief Allowed page-size range. The floor keeps the payload area
/// non-trivial; the ceiling keeps one page fault from becoming a bulk
/// read.
constexpr uint32_t kMinPageSize = 64;
constexpr uint32_t kMaxPageSize = 1u << 24;

/// \brief Parsed page header.
struct PageHeader {
  uint32_t page_index = 0;
  /// Payload bytes actually used; the rest of the payload area is zero
  /// padding. Full for every page except possibly the file's last.
  uint32_t payload_size = 0;
  /// wire::Checksum64 over the used payload bytes.
  uint64_t checksum = 0;
};

/// \brief True iff `page_size` is within bounds and leaves payload room.
bool ValidPageSize(uint32_t page_size);

/// \brief Usable payload bytes of a page of `page_size` total bytes.
inline uint32_t PagePayloadCapacity(uint32_t page_size) {
  return page_size - kPageHeaderSize;
}

/// \brief Encodes one page: header + payload + zero padding, exactly
/// `page_size` bytes. `payload` must fit the payload area.
std::string EncodePage(uint32_t page_index, const std::string& payload,
                       uint32_t page_size);

/// \brief Parses and validates the header of a raw page, verifying the
/// stored index against `expected_index`, the payload bound against
/// `page_size`, and the checksum against the payload bytes. On success
/// `payload` receives the used payload bytes.
Status DecodePage(const std::string& page_bytes, uint32_t expected_index,
                  uint32_t page_size, std::string* payload);

}  // namespace storage
}  // namespace joinmi

#endif  // JOINMI_STORAGE_PAGE_H_
