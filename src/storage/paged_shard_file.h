// "JMPS" v1 — the paged shard file format, and the reader that serves it
// through a bounded buffer pool. Where a "JMIX" shard must be read and
// deserialized whole before the first probe, a JMPS shard opens by
// reading only its fixed-size header and record directory: candidate
// records stay on disk in fixed-size checksummed pages (src/storage/page)
// and fault in on demand, so a shard larger than RAM is servable and
// server restart cost is O(directory), not O(shard).
//
// File layout:
//   [file header, kPagedShardHeaderSize bytes]
//   [page 0] [page 1] ... [page page_count-1]      (page_size bytes each)
//   [directory: per record u32 page | u32 offset | u64 length]
//
// File header (little-endian, fixed kPagedShardHeaderSize bytes):
//   magic "JMPS" | u32 version | u32 page_size | u64 page_count
//   | u64 record_count | u64 directory_offset | u64 directory_size
//   | u64 directory_checksum | config block (kJoinMIConfigWireSize bytes)
//   | u64 header_checksum (over all preceding header bytes)
//
// Records are opaque byte strings packed back-to-back across the logical
// concatenation of page payloads: a record that does not fit the rest of
// a page spills into the next page with no continuation marker — the
// directory's (page, offset, length) is the sole locator. Every page's
// payload is full except possibly the last. Integrity is layered: the
// header and directory carry their own checksums (verified at open),
// each page carries a payload checksum (verified on fault-in), so a
// corrupt page fails exactly the probes that touch it while the rest of
// the shard keeps serving.

#ifndef JOINMI_STORAGE_PAGED_SHARD_FILE_H_
#define JOINMI_STORAGE_PAGED_SHARD_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/config.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/page.h"

namespace joinmi {
namespace storage {

/// \brief Magic prefix of paged shard files.
extern const char kPagedShardMagic[4];

/// \brief Current paged shard format version.
constexpr uint32_t kPagedShardVersion = 1;

/// \brief Fixed byte size of the file header: 4 magic + 4 version +
/// 4 page_size + 8 page_count + 8 record_count + 8 directory_offset +
/// 8 directory_size + 8 directory_checksum + config + 8 header_checksum.
constexpr size_t kPagedShardHeaderSize = 52 + kJoinMIConfigWireSize + 8;

/// \brief Directory entry: where record i starts and how long it is.
/// A record may continue past its page's payload into following pages.
struct RecordLocation {
  uint32_t page = 0;
  uint32_t offset = 0;
  uint64_t length = 0;
};

/// \brief Bytes read while opening, vs the whole file — the receipt that
/// open really was header + directory only.
struct PagedOpenStats {
  uint64_t startup_bytes_read = 0;
  uint64_t file_size = 0;
};

/// \brief Builds the complete byte image of a JMPS v1 file holding
/// `records` (opaque byte strings, directory order = insertion order)
/// under `config`. Fails if `page_size` is out of bounds or any record
/// is empty (a zero-length record is indistinguishable from a directory
/// bug at read time).
Result<std::string> BuildPagedShardBytes(const JoinMIConfig& config,
                                         const std::vector<std::string>& records,
                                         uint32_t page_size);

/// \brief A JMPS file opened for serving: header + directory in memory,
/// pages faulted through a BufferPool of `pool_pages` frames.
///
/// ReadRecord is safe to call from many threads concurrently; each call
/// pins at most one page at a time, so any pool size >= 1 is deadlock
/// free (tiny pools just evict more).
class PagedShardFile {
 public:
  /// \brief Opens `path`, reading and validating only the file header and
  /// the record directory (both checksummed). Page payloads are not
  /// touched until ReadRecord faults them in.
  static Result<std::unique_ptr<PagedShardFile>> Open(const std::string& path,
                                                      size_t pool_pages);

  ~PagedShardFile();
  PagedShardFile(const PagedShardFile&) = delete;
  PagedShardFile& operator=(const PagedShardFile&) = delete;

  /// \brief Reads record `index`'s bytes, faulting (and checksum-verifying)
  /// the page(s) it spans.
  Result<std::string> ReadRecord(size_t index) const;

  const JoinMIConfig& config() const { return config_; }
  size_t num_records() const { return directory_.size(); }
  uint32_t page_size() const { return page_size_; }
  uint64_t page_count() const { return page_count_; }
  const std::vector<RecordLocation>& directory() const { return directory_; }
  const PagedOpenStats& open_stats() const { return open_stats_; }
  BufferPoolStats pool_stats() const { return pool_->stats(); }
  size_t pool_capacity() const { return pool_->capacity(); }

 private:
  PagedShardFile() = default;

  /// pread of page `id`'s raw bytes + DecodePage; the pool's fetcher.
  Status FetchPage(BufferPool::PageId id, std::string* payload) const;

  int fd_ = -1;
  std::string path_;
  JoinMIConfig config_;
  uint32_t page_size_ = 0;
  uint64_t page_count_ = 0;
  std::vector<RecordLocation> directory_;
  PagedOpenStats open_stats_;
  std::unique_ptr<BufferPool> pool_;
};

/// \brief Walks every page of the file at `path`, verifying page indices
/// and payload checksums, then replays the directory against the pages'
/// used-payload accounting (records packed back-to-back, all pages full
/// except the last, lengths summing to the used payload). On the first
/// bad page, returns a non-OK status and sets `*bad_page` to its index
/// (or to page_count for directory-level inconsistencies).
Status VerifyPagedShardFile(const std::string& path, uint64_t* bad_page);

}  // namespace storage
}  // namespace joinmi

#endif  // JOINMI_STORAGE_PAGED_SHARD_FILE_H_
