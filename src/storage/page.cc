#include "src/storage/page.h"

#include "src/sketch/serialize.h"

namespace joinmi {
namespace storage {

bool ValidPageSize(uint32_t page_size) {
  return page_size >= kMinPageSize && page_size <= kMaxPageSize;
}

std::string EncodePage(uint32_t page_index, const std::string& payload,
                       uint32_t page_size) {
  std::string out;
  out.reserve(page_size);
  wire::AppendPod<uint32_t>(&out, page_index);
  wire::AppendPod<uint32_t>(&out, static_cast<uint32_t>(payload.size()));
  wire::AppendPod<uint64_t>(&out, wire::Checksum64(payload));
  out.append(payload);
  out.resize(page_size, '\0');
  return out;
}

Status DecodePage(const std::string& page_bytes, uint32_t expected_index,
                  uint32_t page_size, std::string* payload) {
  if (page_bytes.size() != page_size) {
    return Status::IOError(
        "page " + std::to_string(expected_index) + " read " +
        std::to_string(page_bytes.size()) + " bytes instead of the " +
        std::to_string(page_size) + "-byte page size — file truncated "
        "mid-page");
  }
  wire::Reader reader(page_bytes);
  PageHeader header;
  JOINMI_RETURN_NOT_OK(reader.Read(&header.page_index));
  JOINMI_RETURN_NOT_OK(reader.Read(&header.payload_size));
  JOINMI_RETURN_NOT_OK(reader.Read(&header.checksum));
  if (header.page_index != expected_index) {
    return Status::IOError(
        "page read from slot " + std::to_string(expected_index) +
        " carries index " + std::to_string(header.page_index) +
        " — pages are misdirected or the file was rearranged");
  }
  if (header.payload_size > PagePayloadCapacity(page_size)) {
    return Status::IOError(
        "page " + std::to_string(expected_index) + " declares " +
        std::to_string(header.payload_size) +
        " payload bytes but the payload area holds only " +
        std::to_string(PagePayloadCapacity(page_size)));
  }
  std::string bytes;
  JOINMI_RETURN_NOT_OK(reader.ReadBytes(header.payload_size, &bytes));
  const uint64_t computed = wire::Checksum64(bytes);
  if (computed != header.checksum) {
    return Status::IOError(
        "page " + std::to_string(expected_index) + " checksum " +
        std::to_string(computed) + " disagrees with its header (" +
        std::to_string(header.checksum) + ") — the page is corrupt");
  }
  *payload = std::move(bytes);
  return Status::OK();
}

}  // namespace storage
}  // namespace joinmi
