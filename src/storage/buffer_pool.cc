#include "src/storage/buffer_pool.h"

#include <utility>

namespace joinmi {
namespace storage {

BufferPool::BufferPool(size_t capacity, Fetcher fetcher)
    : frames_(capacity == 0 ? 1 : capacity), fetcher_(std::move(fetcher)) {
  resident_.reserve(frames_.size());
}

const std::string& BufferPool::PageRef::data() const {
  // Safe without the pool lock: `data` is immutable while pinned — the
  // fault that filled it completed before the pin was handed out, and
  // eviction cannot touch a pinned frame.
  return pool_->frames_[frame_].data;
}

void BufferPool::PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

void BufferPool::Unpin(size_t frame) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --frames_[frame].pins;
  }
  cv_.notify_all();
}

bool BufferPool::FindVictim(size_t* frame) {
  // Clock sweep: two full passes — the first clears reference bits, so
  // any unpinned frame is claimable by the second at the latest.
  for (size_t step = 0; step < 2 * frames_.size(); ++step) {
    Frame& f = frames_[clock_hand_];
    const size_t at = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    if (f.pins > 0 || f.loading) continue;
    if (f.referenced) {
      f.referenced = false;
      continue;
    }
    *frame = at;
    return true;
  }
  return false;
}

Result<BufferPool::PageRef> BufferPool::Pin(PageId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = resident_.find(id);
    if (it != resident_.end()) {
      Frame& f = frames_[it->second];
      if (f.loading) {
        // Another thread is faulting this page in; wait for it and
        // re-examine (the fault may fail and vacate the frame).
        cv_.wait(lock);
        continue;
      }
      ++f.pins;
      f.referenced = true;
      ++stats_.hits;
      return PageRef(this, it->second);
    }

    size_t victim;
    if (!FindVictim(&victim)) {
      // Every frame is pinned or mid-fault: wait for a release. Callers
      // pin one page at a time, so some pin always drops eventually.
      cv_.wait(lock);
      continue;
    }
    Frame& f = frames_[victim];
    if (f.valid) {
      resident_.erase(f.id);
      ++stats_.evictions;
    }
    f.id = id;
    f.pins = 1;
    f.referenced = true;
    f.loading = true;
    f.valid = false;
    f.data.clear();
    resident_[id] = victim;
    ++stats_.misses;

    // Fault in outside the lock so concurrent misses on other pages
    // overlap their I/O. The `loading` flag keeps the frame off-limits.
    lock.unlock();
    std::string data;
    Status st = fetcher_(id, &data);
    lock.lock();

    f.loading = false;
    if (!st.ok()) {
      // Vacate fully so a later Pin retries the fetch; waiters on this
      // page re-check and fault it themselves.
      f.pins = 0;
      f.valid = false;
      resident_.erase(id);
      lock.unlock();
      cv_.notify_all();
      return st;
    }
    f.data = std::move(data);
    f.valid = true;
    lock.unlock();
    cv_.notify_all();
    return PageRef(this, victim);
  }
}

size_t BufferPool::resident() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_.size();
}

size_t BufferPool::pinned() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const Frame& f : frames_) total += f.pins;
  return total;
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace storage
}  // namespace joinmi
