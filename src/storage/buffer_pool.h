// Bounded buffer pool: at most `capacity` page payloads resident at once,
// faulted in on demand through an injected fetcher and recycled by clock
// eviction. The pool is what turns a paged shard file into a
// serve-bigger-than-RAM index: probes pin the page they are reading,
// unpinned pages are eviction candidates, and the page budget is a hard
// invariant — the pool never holds more than `capacity` payloads no
// matter how many threads fault concurrently.
//
// Pin/unpin contract:
//   - Pin(id) returns an RAII PageRef; the page cannot be evicted while
//     any PageRef to it lives.
//   - A miss faults the page in through the fetcher *outside* the pool
//     lock (concurrent faults of different pages proceed in parallel);
//     concurrent pins of the same page wait for the in-flight fault and
//     share its result — the fetcher runs once per residency.
//   - When every frame is pinned, Pin blocks until some PageRef drops.
//     Callers that hold many pins concurrently must size the pool at
//     least as large as their worst-case simultaneous pin count, or they
//     deadlock themselves (the paged index pins one page per thread).
//   - A fetch failure is returned to every waiter of that fault and
//     leaves no residue: the frame is freed and a later Pin of the same
//     id retries the fetch.
//
// Eviction is clock (second chance): every pin sets the frame's
// reference bit; the sweep clears bits until it finds an unpinned,
// unreferenced frame. Hits, misses, and evictions are counted — the
// observability hook tests and benchmarks use to prove eviction really
// happened (or really didn't).

#ifndef JOINMI_STORAGE_BUFFER_POOL_H_
#define JOINMI_STORAGE_BUFFER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"

namespace joinmi {
namespace storage {

/// \brief Monotonic counters since construction.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

class BufferPool {
 public:
  using PageId = uint64_t;
  /// Fetches page `id`'s payload into `data`. Runs outside the pool lock;
  /// must be safe to call from several threads for different ids.
  using Fetcher = std::function<Status(PageId id, std::string* data)>;

  /// \brief A pool of `capacity` frames (>= 1 enforced by clamping).
  BufferPool(size_t capacity, Fetcher fetcher);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// \brief RAII pin: keeps the page resident while alive. Move-only.
  class PageRef {
   public:
    PageRef() = default;
    PageRef(PageRef&& other) noexcept { *this = std::move(other); }
    PageRef& operator=(PageRef&& other) noexcept {
      Release();
      pool_ = other.pool_;
      frame_ = other.frame_;
      other.pool_ = nullptr;
      return *this;
    }
    ~PageRef() { Release(); }

    /// \brief The pinned page's payload. Valid while the ref lives.
    const std::string& data() const;

   private:
    friend class BufferPool;
    PageRef(BufferPool* pool, size_t frame) : pool_(pool), frame_(frame) {}
    void Release();

    BufferPool* pool_ = nullptr;
    size_t frame_ = 0;
  };

  /// \brief Pins page `id`, faulting it in on a miss. Blocks while every
  /// frame is pinned by other refs; fails only if the fetcher fails.
  Result<PageRef> Pin(PageId id);

  size_t capacity() const { return frames_.size(); }
  /// \brief Pages currently resident (never exceeds capacity()).
  size_t resident() const;
  /// \brief Pins currently outstanding across all frames.
  size_t pinned() const;
  BufferPoolStats stats() const;

 private:
  struct Frame {
    PageId id = 0;
    std::string data;
    size_t pins = 0;
    bool referenced = false;
    /// A fault is in flight: `data` is being written outside the lock.
    bool loading = false;
    /// Frame holds a valid resident page (id is meaningful).
    bool valid = false;
  };

  void Unpin(size_t frame);
  /// Picks an evictable frame (clock sweep) or returns false if every
  /// frame is pinned or loading. Caller holds the lock.
  bool FindVictim(size_t* frame);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> resident_;
  size_t clock_hand_ = 0;
  BufferPoolStats stats_;
  Fetcher fetcher_;
};

}  // namespace storage
}  // namespace joinmi

#endif  // JOINMI_STORAGE_BUFFER_POOL_H_
