#include "src/storage/paged_shard_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "src/sketch/serialize.h"

namespace joinmi {
namespace storage {

const char kPagedShardMagic[4] = {'J', 'M', 'P', 'S'};

namespace {

/// Fixed-width fields of the file header, parsed before the config block.
struct ParsedHeader {
  uint32_t page_size = 0;
  uint64_t page_count = 0;
  uint64_t record_count = 0;
  uint64_t directory_offset = 0;
  uint64_t directory_size = 0;
  uint64_t directory_checksum = 0;
  JoinMIConfig config;
};

/// Record directory entry width: u32 page + u32 offset + u64 length.
constexpr size_t kDirectoryEntrySize = 16;

Status ParseHeader(const std::string& header_bytes, const std::string& path,
                   ParsedHeader* out) {
  if (header_bytes.size() != kPagedShardHeaderSize) {
    return Status::IOError(
        "paged shard '" + path + "' header is " +
        std::to_string(header_bytes.size()) + " bytes; the " +
        std::to_string(kPagedShardHeaderSize) +
        "-byte JMPS header requires a larger file — truncated or not a "
        "paged shard");
  }
  if (std::memcmp(header_bytes.data(), kPagedShardMagic,
                  sizeof(kPagedShardMagic)) != 0) {
    return Status::IOError("paged shard '" + path +
                           "' lacks the JMPS magic — not a paged shard file");
  }
  // The trailing u64 covers every preceding header byte, so a bit flip
  // anywhere in the header (including the config block) fails here.
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum,
              header_bytes.data() + kPagedShardHeaderSize - sizeof(uint64_t),
              sizeof(uint64_t));
  const uint64_t computed = wire::Checksum64(
      header_bytes.substr(0, kPagedShardHeaderSize - sizeof(uint64_t)));
  if (computed != stored_checksum) {
    return Status::IOError("paged shard '" + path +
                           "' header checksum mismatch — header is corrupt");
  }

  wire::Reader reader(header_bytes);
  std::string magic;
  JOINMI_RETURN_NOT_OK(reader.ReadBytes(sizeof(kPagedShardMagic), &magic));
  uint32_t version = 0;
  JOINMI_RETURN_NOT_OK(reader.Read(&version));
  if (version != kPagedShardVersion) {
    return Status::IOError("paged shard '" + path + "' has format version " +
                           std::to_string(version) +
                           "; this build reads version " +
                           std::to_string(kPagedShardVersion));
  }
  JOINMI_RETURN_NOT_OK(reader.Read(&out->page_size));
  JOINMI_RETURN_NOT_OK(reader.Read(&out->page_count));
  JOINMI_RETURN_NOT_OK(reader.Read(&out->record_count));
  JOINMI_RETURN_NOT_OK(reader.Read(&out->directory_offset));
  JOINMI_RETURN_NOT_OK(reader.Read(&out->directory_size));
  JOINMI_RETURN_NOT_OK(reader.Read(&out->directory_checksum));
  JOINMI_ASSIGN_OR_RETURN(out->config, ReadJoinMIConfig(&reader));

  if (!ValidPageSize(out->page_size)) {
    return Status::IOError("paged shard '" + path + "' declares page size " +
                           std::to_string(out->page_size) +
                           ", outside the supported [" +
                           std::to_string(kMinPageSize) + ", " +
                           std::to_string(kMaxPageSize) + "] range");
  }
  const uint64_t expected_directory_offset =
      kPagedShardHeaderSize + out->page_count * out->page_size;
  if (out->directory_offset != expected_directory_offset) {
    return Status::IOError(
        "paged shard '" + path + "' directory offset " +
        std::to_string(out->directory_offset) + " disagrees with " +
        std::to_string(out->page_count) + " pages of " +
        std::to_string(out->page_size) + " bytes (expected " +
        std::to_string(expected_directory_offset) + ")");
  }
  if (out->directory_size != out->record_count * kDirectoryEntrySize) {
    return Status::IOError(
        "paged shard '" + path + "' directory size " +
        std::to_string(out->directory_size) + " does not hold exactly " +
        std::to_string(out->record_count) + " " +
        std::to_string(kDirectoryEntrySize) + "-byte entries");
  }
  return Status::OK();
}

/// pread exactly `len` bytes at `offset`, looping over partial reads.
Status PreadExact(int fd, uint64_t offset, size_t len, const std::string& path,
                  std::string* out) {
  out->resize(len);
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd, &(*out)[done], len - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("read of '" + path + "' at offset " +
                             std::to_string(offset + done) + " failed: " +
                             std::strerror(errno));
    }
    if (n == 0) {
      return Status::IOError("'" + path + "' ends at byte " +
                             std::to_string(offset + done) + "; " +
                             std::to_string(len) + " bytes at offset " +
                             std::to_string(offset) +
                             " were expected — file truncated");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ParseDirectory(const std::string& bytes, uint64_t expected_checksum,
                      uint64_t record_count, uint64_t page_count,
                      uint32_t page_size, const std::string& path,
                      std::vector<RecordLocation>* out) {
  if (wire::Checksum64(bytes) != expected_checksum) {
    return Status::IOError("paged shard '" + path +
                           "' record directory checksum mismatch — the "
                           "directory is corrupt");
  }
  const uint64_t capacity = PagePayloadCapacity(page_size);
  const uint64_t total_payload = page_count * capacity;
  out->clear();
  out->reserve(record_count);
  wire::Reader reader(bytes);
  for (uint64_t i = 0; i < record_count; ++i) {
    RecordLocation loc;
    JOINMI_RETURN_NOT_OK(reader.Read(&loc.page));
    JOINMI_RETURN_NOT_OK(reader.Read(&loc.offset));
    JOINMI_RETURN_NOT_OK(reader.Read(&loc.length));
    if (loc.page >= page_count || loc.offset >= capacity || loc.length == 0 ||
        loc.page * capacity + loc.offset + loc.length > total_payload) {
      return Status::IOError(
          "paged shard '" + path + "' directory entry " + std::to_string(i) +
          " (page " + std::to_string(loc.page) + ", offset " +
          std::to_string(loc.offset) + ", length " +
          std::to_string(loc.length) + ") points outside the " +
          std::to_string(page_count) + "-page payload area");
    }
    out->push_back(loc);
  }
  return Status::OK();
}

}  // namespace

Result<std::string> BuildPagedShardBytes(
    const JoinMIConfig& config, const std::vector<std::string>& records,
    uint32_t page_size) {
  if (!ValidPageSize(page_size)) {
    return Status::InvalidArgument(
        "page size " + std::to_string(page_size) + " outside the supported [" +
        std::to_string(kMinPageSize) + ", " + std::to_string(kMaxPageSize) +
        "] range");
  }
  const uint64_t capacity = PagePayloadCapacity(page_size);

  // Records pack back-to-back in one logical payload stream; the
  // directory pins down where each starts so readers never need
  // continuation markers inside pages.
  std::string directory;
  uint64_t payload_pos = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].empty()) {
      return Status::InvalidArgument("record " + std::to_string(i) +
                                     " is empty; paged shards require "
                                     "non-empty records");
    }
    wire::AppendPod<uint32_t>(&directory,
                              static_cast<uint32_t>(payload_pos / capacity));
    wire::AppendPod<uint32_t>(&directory,
                              static_cast<uint32_t>(payload_pos % capacity));
    wire::AppendPod<uint64_t>(&directory, records[i].size());
    payload_pos += records[i].size();
  }
  const uint64_t page_count = (payload_pos + capacity - 1) / capacity;

  std::string out;
  out.reserve(kPagedShardHeaderSize + page_count * page_size +
              directory.size());
  wire::AppendRaw(&out, kPagedShardMagic, sizeof(kPagedShardMagic));
  wire::AppendPod<uint32_t>(&out, kPagedShardVersion);
  wire::AppendPod<uint32_t>(&out, page_size);
  wire::AppendPod<uint64_t>(&out, page_count);
  wire::AppendPod<uint64_t>(&out, static_cast<uint64_t>(records.size()));
  wire::AppendPod<uint64_t>(&out,
                            kPagedShardHeaderSize + page_count * page_size);
  wire::AppendPod<uint64_t>(&out, static_cast<uint64_t>(directory.size()));
  wire::AppendPod<uint64_t>(&out, wire::Checksum64(directory));
  AppendJoinMIConfig(&out, config);
  wire::AppendPod<uint64_t>(&out, wire::Checksum64(out));

  // Slice the record stream into full pages (the last may be partial).
  std::string payload;
  payload.reserve(std::min<uint64_t>(payload_pos, capacity * 4));
  uint32_t page_index = 0;
  auto flush_page = [&]() {
    out += EncodePage(page_index++, payload, page_size);
    payload.clear();
  };
  for (const std::string& record : records) {
    size_t off = 0;
    while (off < record.size()) {
      const size_t take = std::min<size_t>(record.size() - off,
                                           capacity - payload.size());
      payload.append(record, off, take);
      off += take;
      if (payload.size() == capacity) flush_page();
    }
  }
  if (!payload.empty()) flush_page();

  out += directory;
  return out;
}

Result<std::unique_ptr<PagedShardFile>> PagedShardFile::Open(
    const std::string& path, size_t pool_pages) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open paged shard '" + path +
                           "': " + std::strerror(errno));
  }
  std::unique_ptr<PagedShardFile> file(new PagedShardFile());
  file->fd_ = fd;
  file->path_ = path;

  struct stat st;
  if (::fstat(fd, &st) != 0) {
    return Status::IOError("cannot stat paged shard '" + path +
                           "': " + std::strerror(errno));
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  if (file_size < kPagedShardHeaderSize) {
    return Status::IOError(
        "paged shard '" + path + "' is " + std::to_string(file_size) +
        " bytes; the " + std::to_string(kPagedShardHeaderSize) +
        "-byte JMPS header alone is larger — file is " +
        (file_size == 0 ? std::string("empty") : std::string("truncated")));
  }

  std::string header_bytes;
  JOINMI_RETURN_NOT_OK(
      PreadExact(fd, 0, kPagedShardHeaderSize, path, &header_bytes));
  ParsedHeader header;
  JOINMI_RETURN_NOT_OK(ParseHeader(header_bytes, path, &header));

  const uint64_t expected_size =
      header.directory_offset + header.directory_size;
  if (file_size != expected_size) {
    return Status::IOError(
        "paged shard '" + path + "' is " + std::to_string(file_size) +
        " bytes but its header describes " + std::to_string(expected_size) +
        " (header + " + std::to_string(header.page_count) + " pages + " +
        std::to_string(header.directory_size) + "-byte directory) — file " +
        (file_size < expected_size ? "truncated" : "has trailing garbage"));
  }

  std::string directory_bytes;
  JOINMI_RETURN_NOT_OK(PreadExact(fd, header.directory_offset,
                                  header.directory_size, path,
                                  &directory_bytes));
  JOINMI_RETURN_NOT_OK(ParseDirectory(
      directory_bytes, header.directory_checksum, header.record_count,
      header.page_count, header.page_size, path, &file->directory_));

  file->config_ = header.config;
  file->page_size_ = header.page_size;
  file->page_count_ = header.page_count;
  file->open_stats_.startup_bytes_read =
      kPagedShardHeaderSize + header.directory_size;
  file->open_stats_.file_size = file_size;

  PagedShardFile* raw = file.get();
  file->pool_ = std::make_unique<BufferPool>(
      pool_pages, [raw](BufferPool::PageId id, std::string* payload) {
        return raw->FetchPage(id, payload);
      });
  return file;
}

PagedShardFile::~PagedShardFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status PagedShardFile::FetchPage(BufferPool::PageId id,
                                 std::string* payload) const {
  std::string raw;
  JOINMI_RETURN_NOT_OK(PreadExact(
      fd_, kPagedShardHeaderSize + id * page_size_, page_size_, path_, &raw));
  return DecodePage(raw, static_cast<uint32_t>(id), page_size_, payload);
}

Result<std::string> PagedShardFile::ReadRecord(size_t index) const {
  if (index >= directory_.size()) {
    return Status::IndexError("record index " + std::to_string(index) +
                              " out of range for paged shard '" + path_ +
                              "' holding " +
                              std::to_string(directory_.size()) + " records");
  }
  const RecordLocation& loc = directory_[index];
  const uint64_t capacity = PagePayloadCapacity(page_size_);
  uint64_t pos = loc.page * capacity + loc.offset;
  uint64_t remaining = loc.length;
  std::string record;
  record.reserve(remaining);
  // One pin at a time: the ref drops at the end of each iteration, so a
  // pool of any size serves records spanning arbitrarily many pages.
  while (remaining > 0) {
    const uint64_t page = pos / capacity;
    const uint64_t in_page = pos % capacity;
    JOINMI_ASSIGN_OR_RETURN(BufferPool::PageRef ref, pool_->Pin(page));
    const std::string& payload = ref.data();
    if (in_page >= payload.size()) {
      return Status::IOError(
          "paged shard '" + path_ + "' record " + std::to_string(index) +
          " expects data at payload offset " + std::to_string(in_page) +
          " of page " + std::to_string(page) + ", but that page holds only " +
          std::to_string(payload.size()) +
          " bytes — directory and pages disagree");
    }
    const uint64_t take =
        std::min<uint64_t>(remaining, payload.size() - in_page);
    record.append(payload, in_page, take);
    pos += take;
    remaining -= take;
  }
  return record;
}

Status VerifyPagedShardFile(const std::string& path, uint64_t* bad_page) {
  *bad_page = 0;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open paged shard '" + path +
                           "': " + std::strerror(errno));
  }
  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};

  std::string header_bytes;
  JOINMI_RETURN_NOT_OK(
      PreadExact(fd, 0, kPagedShardHeaderSize, path, &header_bytes));
  ParsedHeader header;
  JOINMI_RETURN_NOT_OK(ParseHeader(header_bytes, path, &header));

  // Pass 1: every page decodes (index agrees with its slot, checksum
  // agrees with its payload). Record per-page used-payload sizes for the
  // directory replay.
  const uint64_t capacity = PagePayloadCapacity(header.page_size);
  std::vector<uint64_t> page_payload(header.page_count, 0);
  for (uint64_t i = 0; i < header.page_count; ++i) {
    *bad_page = i;
    std::string raw;
    JOINMI_RETURN_NOT_OK(
        PreadExact(fd, kPagedShardHeaderSize + i * header.page_size,
                   header.page_size, path, &raw));
    std::string payload;
    JOINMI_RETURN_NOT_OK(
        DecodePage(raw, static_cast<uint32_t>(i), header.page_size, &payload));
    if (i + 1 < header.page_count && payload.size() != capacity) {
      return Status::IOError(
          "paged shard '" + path + "' page " + std::to_string(i) +
          " holds " + std::to_string(payload.size()) + " payload bytes but "
          "every page before the last must be full (" +
          std::to_string(capacity) + ")");
    }
    page_payload[i] = payload.size();
  }

  // Pass 2: the directory replays as back-to-back packing over exactly
  // the bytes the pages hold. Directory-level faults report page_count
  // as the "page" — they are not attributable to a single page.
  *bad_page = header.page_count;
  std::string directory_bytes;
  JOINMI_RETURN_NOT_OK(PreadExact(fd, header.directory_offset,
                                  header.directory_size, path,
                                  &directory_bytes));
  std::vector<RecordLocation> directory;
  JOINMI_RETURN_NOT_OK(ParseDirectory(
      directory_bytes, header.directory_checksum, header.record_count,
      header.page_count, header.page_size, path, &directory));
  uint64_t pos = 0;
  for (size_t i = 0; i < directory.size(); ++i) {
    const RecordLocation& loc = directory[i];
    if (loc.page != pos / capacity || loc.offset != pos % capacity) {
      return Status::IOError(
          "paged shard '" + path + "' directory entry " + std::to_string(i) +
          " places the record at (page " + std::to_string(loc.page) +
          ", offset " + std::to_string(loc.offset) +
          ") but back-to-back packing puts it at (page " +
          std::to_string(pos / capacity) + ", offset " +
          std::to_string(pos % capacity) + ")");
    }
    pos += loc.length;
  }
  uint64_t used = 0;
  for (uint64_t bytes : page_payload) used += bytes;
  if (pos != used) {
    return Status::IOError(
        "paged shard '" + path + "' directory accounts for " +
        std::to_string(pos) + " record bytes but the pages hold " +
        std::to_string(used) + " used payload bytes");
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace joinmi
