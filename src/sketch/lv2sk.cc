// LV2SK: two-level sampling (Section IV-A). Level 1 performs coordinated
// KMV sampling over distinct keys (minimum h_u(h(k))); level 2 caps the rows
// kept per selected key at n_k = max(1, floor(n * N_k / N)) via uniform
// subsampling without replacement. The total size is bounded by 2n. The
// per-tuple selection probability 1 / (m_K * max(1, floor(n N_k / N)))
// depends on the key-frequency distribution — the bias source TUPSK fixes.

#include "src/sketch/two_level.h"

#include <algorithm>
#include <unordered_map>

#include "src/common/random.h"
#include "src/sketch/key_hash.h"

namespace joinmi {
namespace internal {

namespace {
struct KeyedRows {
  uint64_t key_hash = 0;
  double key_rank = 0.0;  // level-1 rank
  std::vector<size_t> rows;
};
}  // namespace

Result<Sketch> BuildTwoLevelTrain(const SketchBuilder& builder,
                                  const Column& keys, const Column& values,
                                  bool priority_weighted, Sketch sketch) {
  const SketchOptions& options = builder.options();
  // Group usable rows by key.
  std::vector<KeyedRows> groups;
  std::unordered_map<uint64_t, size_t> index;
  index.reserve(keys.size());
  size_t total_rows = 0;
  for (size_t row = 0; row < keys.size(); ++row) {
    if (!keys.IsValid(row) || !values.IsValid(row)) continue;
    const uint64_t h = HashKey(keys.GetValue(row), options.hash_seed);
    auto [it, inserted] = index.emplace(h, groups.size());
    if (inserted) {
      groups.push_back(KeyedRows{h, KeyUnitHash(h), {}});
    }
    groups[it->second].rows.push_back(row);
    ++total_rows;
  }
  if (priority_weighted) {
    // Priority sampling: rank = u / w with weight w = key frequency, so
    // heavy keys are preferentially retained at level 1.
    for (KeyedRows& group : groups) {
      group.key_rank /= static_cast<double>(group.rows.size());
    }
  }
  // Level 1: the n keys with minimum rank.
  const size_t n = options.capacity;
  const size_t selected = std::min(n, groups.size());
  std::partial_sort(groups.begin(),
                    groups.begin() + static_cast<ptrdiff_t>(selected),
                    groups.end(), [](const KeyedRows& a, const KeyedRows& b) {
                      if (a.key_rank != b.key_rank)
                        return a.key_rank < b.key_rank;
                      return a.key_hash < b.key_hash;
                    });
  // Level 2: per-key cap n_k = max(1, floor(n * N_k / N)), sampled uniformly
  // without replacement (Fisher–Yates prefix), deterministic per seed/key.
  Rng base_rng(options.sampling_seed);
  for (size_t g = 0; g < selected; ++g) {
    KeyedRows& group = groups[g];
    const size_t freq = group.rows.size();
    const size_t cap = std::max<size_t>(
        1, static_cast<size_t>(static_cast<double>(n) *
                               static_cast<double>(freq) /
                               static_cast<double>(total_rows)));
    const size_t take = std::min(cap, freq);
    Rng rng(base_rng.Next64() ^ group.key_hash);
    for (size_t i = 0; i < take; ++i) {
      const size_t j = i + static_cast<size_t>(rng.NextBounded(freq - i));
      std::swap(group.rows[i], group.rows[j]);
      sketch.entries.push_back(SketchEntry{
          group.key_hash, group.key_rank, values.GetValue(group.rows[i])});
    }
  }
  std::sort(sketch.entries.begin(), sketch.entries.end(),
            [](const SketchEntry& a, const SketchEntry& b) {
              if (a.key_hash != b.key_hash) return a.key_hash < b.key_hash;
              return a.rank < b.rank;
            });
  return sketch;
}

}  // namespace internal

Result<Sketch> Lv2skBuilder::SketchTrain(const Column& keys,
                                         const Column& values) const {
  JOINMI_ASSIGN_OR_RETURN(Sketch sketch,
                          InitSketch(keys, values, SketchSide::kTrain));
  return internal::BuildTwoLevelTrain(*this, keys, values,
                                      /*priority_weighted=*/false,
                                      std::move(sketch));
}

}  // namespace joinmi
