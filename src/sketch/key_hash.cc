#include "src/sketch/key_hash.h"

#include "src/common/hashing.h"

namespace joinmi {

uint64_t HashKey(const Value& key, uint32_t seed) {
  if (key.is_string()) {
    const uint32_t h = MurmurHash3_32(key.str(), seed);
    return Mix64((static_cast<uint64_t>(h) << 32) |
                 (key.str().size() & 0xFFFFFFFFULL));
  }
  // Numeric / null keys: mix the canonical value hash with the seed.
  return Mix64(key.Hash() ^ (static_cast<uint64_t>(seed) * 0x9E3779B9ULL));
}

double KeyUnitHash(uint64_t key_hash) { return FibonacciUnitHash(key_hash); }

double TupleUnitHash(uint64_t key_hash, uint64_t occurrence) {
  return FibonacciUnitHash(HashCombine(key_hash, occurrence));
}

}  // namespace joinmi
