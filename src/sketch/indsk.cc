// INDSK: independent Bernoulli/uniform sampling baseline (Section V
// "Sketching Methods"). Each table draws a uniform reservoir sample of n
// rows with its own seed — no hash coordination — so the expected overlap of
// sampled keys, and hence the recovered join size, is quadratically smaller
// (Acharya et al. 1999), which is what Table I demonstrates.

#include <algorithm>

#include "src/common/random.h"
#include "src/sketch/builder.h"
#include "src/sketch/key_hash.h"

namespace joinmi {

namespace {

/// Reservoir-samples up to n usable rows; ranks are the sampling order
/// (arbitrary but deterministic for a fixed seed).
Result<Sketch> ReservoirRows(const SketchBuilder& builder, const Column& keys,
                             const Column& values, Sketch sketch) {
  const SketchOptions& options = builder.options();
  Rng rng(options.sampling_seed);
  std::vector<SketchEntry> reservoir;
  reservoir.reserve(options.capacity);
  size_t seen = 0;
  for (size_t row = 0; row < keys.size(); ++row) {
    if (!keys.IsValid(row) || !values.IsValid(row)) continue;
    const uint64_t key_hash = HashKey(keys.GetValue(row), options.hash_seed);
    ++seen;
    if (reservoir.size() < options.capacity) {
      reservoir.push_back(SketchEntry{key_hash, 0.0, values.GetValue(row)});
    } else {
      const uint64_t slot = rng.NextBounded(seen);
      if (slot < options.capacity) {
        reservoir[slot] = SketchEntry{key_hash, 0.0, values.GetValue(row)};
      }
    }
  }
  sketch.entries = std::move(reservoir);
  std::sort(sketch.entries.begin(), sketch.entries.end(),
            [](const SketchEntry& a, const SketchEntry& b) {
              if (a.key_hash != b.key_hash) return a.key_hash < b.key_hash;
              return a.value.Hash() < b.value.Hash();
            });
  return sketch;
}

}  // namespace

Result<Sketch> IndskBuilder::SketchTrain(const Column& keys,
                                         const Column& values) const {
  JOINMI_ASSIGN_OR_RETURN(Sketch sketch,
                          InitSketch(keys, values, SketchSide::kTrain));
  return ReservoirRows(*this, keys, values, std::move(sketch));
}

Result<Sketch> IndskBuilder::SketchCandidate(const Column& keys,
                                             const Column& values,
                                             AggKind agg) const {
  JOINMI_ASSIGN_OR_RETURN(Sketch sketch,
                          InitSketch(keys, values, SketchSide::kCandidate));
  JOINMI_ASSIGN_OR_RETURN(
      auto aggregated, AggregateByKey(keys, values, agg, options_.hash_seed));
  // Uniform reservoir over the aggregated (unique) keys, independent seed.
  Rng rng(options_.sampling_seed ^ 0xC0FFEEULL);
  std::vector<SketchEntry> reservoir;
  reservoir.reserve(options_.capacity);
  size_t seen = 0;
  for (const AggregatedKey& entry : aggregated) {
    ++seen;
    if (reservoir.size() < options_.capacity) {
      reservoir.push_back(SketchEntry{entry.key_hash, 0.0, entry.value});
    } else {
      const uint64_t slot = rng.NextBounded(seen);
      if (slot < options_.capacity) {
        reservoir[slot] = SketchEntry{entry.key_hash, 0.0, entry.value};
      }
    }
  }
  sketch.entries = std::move(reservoir);
  std::sort(sketch.entries.begin(), sketch.entries.end(),
            [](const SketchEntry& a, const SketchEntry& b) {
              return a.key_hash < b.key_hash;
            });
  return sketch;
}

}  // namespace joinmi
