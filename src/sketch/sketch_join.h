// Sketch join: merging two independently built sketches on their hashed
// keys to recover a sample of the full (left-outer, many-to-one) join, and
// estimating MI on that sample (Section IV "Approach Overview").

#ifndef JOINMI_SKETCH_SKETCH_JOIN_H_
#define JOINMI_SKETCH_SKETCH_JOIN_H_

#include "src/common/status.h"
#include "src/mi/estimator.h"
#include "src/sketch/sketch.h"

namespace joinmi {

/// \brief Result of joining a train sketch with a candidate sketch.
struct SketchJoinResult {
  /// Paired (feature X from candidate, target Y from train) samples, one
  /// per matching train entry — train-side multiplicity is preserved, so
  /// repeated keys reproduce repeated feature values as in the real join.
  PairedSample sample;
  /// Number of joined pairs (== sample.size()).
  size_t join_size = 0;
  /// Distinct keys contributing at least one pair.
  size_t matched_keys = 0;
};

/// \brief Joins the sketches on h(k). The candidate sketch must be
/// aggregated (unique keys); each train entry matches at most one candidate
/// entry. Sketches must be built with the same hash seed.
Result<SketchJoinResult> JoinSketches(const Sketch& train,
                                      const Sketch& candidate);

/// \brief End-to-end sketch-based MI estimate.
struct SketchMIResult {
  double mi = 0.0;
  MIEstimatorKind estimator = MIEstimatorKind::kMLE;
  size_t join_size = 0;
};

/// \brief Joins sketches and runs the given estimator on the recovered
/// sample. `min_join_size` guards against meaningless estimates from tiny
/// overlaps (the paper discards joins below 100 samples in Section V-C).
Result<SketchMIResult> EstimateSketchMI(const Sketch& train,
                                        const Sketch& candidate,
                                        MIEstimatorKind estimator,
                                        const MIOptions& options = {},
                                        size_t min_join_size = 1);

/// \brief As above but auto-selects the estimator from the sample types
/// (paper policy: string/string -> MLE, numeric/numeric -> MixedKSG,
/// otherwise DC-KSG).
Result<SketchMIResult> EstimateSketchMIAuto(const Sketch& train,
                                            const Sketch& candidate,
                                            const MIOptions& options = {},
                                            size_t min_join_size = 1);

}  // namespace joinmi

#endif  // JOINMI_SKETCH_SKETCH_JOIN_H_
