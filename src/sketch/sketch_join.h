// Sketch join: merging two independently built sketches on their hashed
// keys to recover a sample of the full (left-outer, many-to-one) join, and
// estimating MI on that sample (Section IV "Approach Overview").

#ifndef JOINMI_SKETCH_SKETCH_JOIN_H_
#define JOINMI_SKETCH_SKETCH_JOIN_H_

#include <cstdint>
#include <optional>
#include <utility>

#include "src/common/status.h"
#include "src/mi/estimator.h"
#include "src/sketch/flat_probe_table.h"
#include "src/sketch/sketch.h"

namespace joinmi {

/// \brief Result of joining a train sketch with a candidate sketch.
struct SketchJoinResult {
  /// Paired (feature X from candidate, target Y from train) samples, one
  /// per matching train entry — train-side multiplicity is preserved, so
  /// repeated keys reproduce repeated feature values as in the real join.
  PairedSample sample;
  /// Number of joined pairs (== sample.size()).
  size_t join_size = 0;
  /// Distinct keys contributing at least one pair.
  size_t matched_keys = 0;
};

/// \brief Joins the sketches on h(k). The candidate sketch must be
/// aggregated (unique keys); each train entry matches at most one candidate
/// entry. Sketches must be built with the same hash seed: key hashes from
/// different seeds are incomparable, so a mismatch returns InvalidArgument
/// instead of a silently meaningless (empty or garbage) join.
Result<SketchJoinResult> JoinSketches(const Sketch& train,
                                      const Sketch& candidate);

/// \brief A train sketch pre-indexed for repeated probing.
///
/// In the discovery setting one base (train) sketch is joined against
/// thousands of candidate sketches. `JoinSketches` pays a per-join hash-map
/// build over the candidate entries; preparing the train side once instead
/// turns each join into pure lookups. Join output is byte-identical to
/// `JoinSketches` on the wrapped sketch: pairs are emitted in train-entry
/// order, preserving multiplicity.
class PreparedTrainSketch {
 public:
  /// \brief Takes ownership of a train-side sketch and builds the key-hash
  /// group index. Fails if entries are not sorted by key_hash (the builder
  /// invariant every sketch variant maintains).
  static Result<PreparedTrainSketch> Create(Sketch train);

  const Sketch& sketch() const { return train_; }

  /// \brief Joins against a candidate sketch using the prebuilt index.
  /// The candidate must honor the probe contract — entries sorted by
  /// key_hash with no duplicates (the builder invariant). Violations
  /// return InvalidArgument rather than a silently wrong (reordered or
  /// double-counted) join sample.
  Result<SketchJoinResult> Join(const Sketch& candidate) const;

 private:
  PreparedTrainSketch(Sketch train, FlatProbeTable groups)
      : train_(std::move(train)), groups_(std::move(groups)) {}

  Sketch train_;
  /// key_hash -> packed (begin << 32 | end) index range into
  /// train_.entries (entries with equal key_hash are contiguous because
  /// the builder sorts them). Open addressing: a probe is one contiguous
  /// scan instead of unordered_map's bucket + node chase.
  FlatProbeTable groups_;
};

/// \brief A candidate sketch pre-indexed for repeated probing — the
/// symmetric optimization to PreparedTrainSketch for the persisted-index
/// setting, where candidate sketches are long-lived and every query brings
/// a fresh train sketch. `JoinSketches` pays a per-join probe-map build
/// over the candidate entries; preparing the candidate once turns each
/// query's join into pure lookups. Join output is byte-identical to
/// `JoinSketches` on the wrapped sketch.
class PreparedCandidateSketch {
 public:
  /// \brief Takes ownership of a candidate-side sketch and builds the
  /// key-hash probe map. Fails on train-side input or duplicate keys.
  static Result<PreparedCandidateSketch> Create(Sketch candidate);

  const Sketch& sketch() const { return candidate_; }

  /// \brief Joins a train sketch against this candidate using the prebuilt
  /// probe map. Enforces the same seed/side preconditions as JoinSketches.
  Result<SketchJoinResult> Join(const Sketch& train) const;

 private:
  PreparedCandidateSketch(Sketch candidate, FlatProbeTable probe)
      : candidate_(std::move(candidate)), probe_(std::move(probe)) {}

  Sketch candidate_;
  /// key_hash -> index into candidate_.entries (keys unique post-agg).
  FlatProbeTable probe_;
};

/// \brief End-to-end sketch-based MI estimate.
struct SketchMIResult {
  double mi = 0.0;
  MIEstimatorKind estimator = MIEstimatorKind::kMLE;
  size_t join_size = 0;
};

/// \brief Scores an already-recovered join sample exactly as the
/// EstimateSketchMI* entry points do: the min_join_size guard first
/// (OutOfRange — the paper's meaningless-estimate cutoff), then estimator
/// dispatch (`estimator` if set, otherwise the auto policy inferred from
/// the sample's value types), then EstimateMI. This is the single scoring
/// tail shared by the per-candidate and batched-index paths — sharing it
/// is what keeps their rankings bit-identical.
Result<SketchMIResult> ScoreSketchJoinSample(
    const PairedSample& sample, size_t join_size,
    const std::optional<MIEstimatorKind>& estimator, const MIOptions& options,
    size_t min_join_size);

/// \brief Joins sketches and runs the given estimator on the recovered
/// sample. `min_join_size` guards against meaningless estimates from tiny
/// overlaps (the paper discards joins below 100 samples in Section V-C).
Result<SketchMIResult> EstimateSketchMI(const Sketch& train,
                                        const Sketch& candidate,
                                        MIEstimatorKind estimator,
                                        const MIOptions& options = {},
                                        size_t min_join_size = 1);

/// \brief As above but auto-selects the estimator from the sample types
/// (paper policy: string/string -> MLE, numeric/numeric -> MixedKSG,
/// otherwise DC-KSG).
Result<SketchMIResult> EstimateSketchMIAuto(const Sketch& train,
                                            const Sketch& candidate,
                                            const MIOptions& options = {},
                                            size_t min_join_size = 1);

/// \brief Prepared-train variants for the many-candidates setting; results
/// match the Sketch overloads exactly.
Result<SketchMIResult> EstimateSketchMI(const PreparedTrainSketch& train,
                                        const Sketch& candidate,
                                        MIEstimatorKind estimator,
                                        const MIOptions& options = {},
                                        size_t min_join_size = 1);

Result<SketchMIResult> EstimateSketchMIAuto(const PreparedTrainSketch& train,
                                            const Sketch& candidate,
                                            const MIOptions& options = {},
                                            size_t min_join_size = 1);

/// \brief Prepared-candidate variants for the persisted-index setting;
/// results match the Sketch overloads exactly.
Result<SketchMIResult> EstimateSketchMI(const Sketch& train,
                                        const PreparedCandidateSketch& candidate,
                                        MIEstimatorKind estimator,
                                        const MIOptions& options = {},
                                        size_t min_join_size = 1);

Result<SketchMIResult> EstimateSketchMIAuto(
    const Sketch& train, const PreparedCandidateSketch& candidate,
    const MIOptions& options = {}, size_t min_join_size = 1);

}  // namespace joinmi

#endif  // JOINMI_SKETCH_SKETCH_JOIN_H_
