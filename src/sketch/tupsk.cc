// TUPSK: tuple-based sampling (Section IV-B). Each row is identified by the
// occurrence tuple ⟨k, j⟩ — key value k appearing for the j-th time — and
// ranked by h_u(⟨k, j⟩). Keeping the n minimum ranks gives every row the
// same inclusion probability regardless of the key-frequency distribution,
// which is the property that removes the estimator bias LV2SK suffers under
// key-target dependence.

#include <unordered_map>

#include "src/sketch/builder.h"
#include "src/sketch/key_hash.h"

namespace joinmi {

Result<Sketch> TupskBuilder::SketchTrain(const Column& keys,
                                         const Column& values) const {
  JOINMI_ASSIGN_OR_RETURN(Sketch sketch,
                          InitSketch(keys, values, SketchSide::kTrain));
  // Single pass: track the running occurrence index j per key; offer every
  // row at rank h_u(⟨k, j⟩).
  std::unordered_map<uint64_t, uint64_t> occurrence;
  occurrence.reserve(keys.size());
  KmvHeap heap(options_.capacity);
  for (size_t row = 0; row < keys.size(); ++row) {
    if (!keys.IsValid(row) || !values.IsValid(row)) continue;
    const uint64_t key_hash = HashKey(keys.GetValue(row), options_.hash_seed);
    const uint64_t j = ++occurrence[key_hash];
    const double rank = TupleUnitHash(key_hash, j);
    if (!heap.WouldAdmit(rank)) continue;
    heap.Offer(SketchEntry{key_hash, rank, values.GetValue(row)});
  }
  sketch.entries = heap.TakeSorted();
  return sketch;
}

double TupskBuilder::CandidateRank(uint64_t key_hash) const {
  // h_u(⟨k, 1⟩): aggregation leaves unique keys, and hashing the first
  // occurrence tuple keeps the candidate side coordinated with the j = 1
  // rows of the train sketch.
  return TupleUnitHash(key_hash, 1);
}

}  // namespace joinmi
