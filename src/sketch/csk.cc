// CSK: the paper's straightforward extension of Correlation Sketches
// (Santos et al., SIGMOD 2021) from correlation to MI estimation. KMV
// coordinated sampling over distinct keys; since CSK does not prescribe how
// to handle repeated join keys, the first value seen for a key is kept
// (Section V "Sketching Methods") — on both sides, i.e. no aggregation
// semantics are applied.

#include <unordered_set>

#include "src/sketch/builder.h"
#include "src/sketch/key_hash.h"

namespace joinmi {

namespace {

Result<Sketch> FirstValuePerKeyKmv(const SketchBuilder& builder,
                                   const Column& keys, const Column& values,
                                   Sketch sketch) {
  const SketchOptions& options = builder.options();
  // KMV over distinct keys; the first row seen for a key supplies its value.
  // Later rows with the same key are ignored entirely (CSK assumes unique
  // or aggregatable keys).
  std::unordered_set<uint64_t> seen;
  seen.reserve(keys.size());
  KmvHeap heap(options.capacity);
  for (size_t row = 0; row < keys.size(); ++row) {
    if (!keys.IsValid(row) || !values.IsValid(row)) continue;
    const uint64_t key_hash = HashKey(keys.GetValue(row), options.hash_seed);
    if (!seen.insert(key_hash).second) continue;  // repeated key: keep first
    const double rank = KeyUnitHash(key_hash);
    if (!heap.WouldAdmit(rank)) continue;
    heap.Offer(SketchEntry{key_hash, rank, values.GetValue(row)});
  }
  sketch.entries = heap.TakeSorted();
  return sketch;
}

}  // namespace

Result<Sketch> CskBuilder::SketchTrain(const Column& keys,
                                       const Column& values) const {
  JOINMI_ASSIGN_OR_RETURN(Sketch sketch,
                          InitSketch(keys, values, SketchSide::kTrain));
  return FirstValuePerKeyKmv(*this, keys, values, std::move(sketch));
}

Result<Sketch> CskBuilder::SketchCandidate(const Column& keys,
                                           const Column& values,
                                           AggKind agg) const {
  // CSK ignores the aggregation function by design: the first value seen
  // associated with a join key is used instead (the paper's adaptation).
  (void)agg;
  JOINMI_ASSIGN_OR_RETURN(Sketch sketch,
                          InitSketch(keys, values, SketchSide::kCandidate));
  return FirstValuePerKeyKmv(*this, keys, values, std::move(sketch));
}

}  // namespace joinmi
