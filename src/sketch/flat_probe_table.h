// Open-addressing hash table specialized for the sketch probe path:
// uint64 key hash -> uint64 payload, power-of-two capacity, linear
// probing. Replaces std::unordered_map in the prepared-sketch join hot
// loop, where the node-per-entry layout of unordered_map costs one cache
// miss per probe on the bucket array and another chasing the node pointer.
// Here a probe is one multiply, one shift, and a short scan of a
// contiguous slot array — usually a single cache line.
//
// Every uint64 is a legal key (0 and ~0 included), so emptiness is
// tracked in a separate byte array rather than a sentinel key.

#ifndef JOINMI_SKETCH_FLAT_PROBE_TABLE_H_
#define JOINMI_SKETCH_FLAT_PROBE_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace joinmi {

/// \brief Mixes a key hash into a bucket index for a table of 2^(64-shift)
/// buckets. Fibonacci hashing: the multiplier spreads consecutive and
/// low-entropy keys across the high bits, which the shift then selects.
inline size_t FlatProbeBucket(uint64_t key, unsigned shift) {
  return static_cast<size_t>((key * UINT64_C(0x9E3779B97F4A7C15)) >> shift);
}

/// \brief Insert-then-probe hash table for uint64 keys. Not thread-safe
/// for writes; concurrent Find calls are safe once building is done.
class FlatProbeTable {
 public:
  FlatProbeTable() = default;

  /// \brief Pre-sizes the table for `expected` keys so the build loop
  /// never rehashes.
  explicit FlatProbeTable(size_t expected) { Reserve(expected); }

  /// \brief Ensures capacity for `expected` keys without rehash.
  void Reserve(size_t expected);

  /// \brief Inserts key -> value. Returns false (table unchanged) if the
  /// key is already present — the caller's duplicate detection.
  bool Insert(uint64_t key, uint64_t value);

  /// \brief Returns a pointer to the value for `key`, or nullptr if
  /// absent. Valid until the next Insert.
  const uint64_t* Find(uint64_t key) const {
    if (size_ == 0) return nullptr;
    const size_t mask = slots_.size() - 1;
    size_t bucket = FlatProbeBucket(key, shift_);
    while (used_[bucket]) {
      if (slots_[bucket].key == key) return &slots_[bucket].value;
      bucket = (bucket + 1) & mask;
    }
    return nullptr;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// \brief Current slot count (a power of two, or 0 before first use).
  size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    uint64_t key;
    uint64_t value;
  };

  /// Max load factor 0.75: grow when size_ would exceed 3/4 of slots.
  static constexpr size_t kMinBuckets = 4;  // keeps shift_ <= 63 (no UB)

  void Rehash(size_t new_buckets);

  std::vector<Slot> slots_;
  std::vector<uint8_t> used_;  // 1 = slot occupied
  size_t size_ = 0;
  unsigned shift_ = 64;  // 64 - log2(slots_.size()); unused while empty
};

}  // namespace joinmi

#endif  // JOINMI_SKETCH_FLAT_PROBE_TABLE_H_
