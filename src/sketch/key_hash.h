// Join-key hashing for sketches (Section IV "Approach Overview"): the
// object hash h maps key values to integers; the uniform hash h_u maps
// integers to [0, 1). TUPSK additionally hashes occurrence tuples ⟨k, j⟩.

#ifndef JOINMI_SKETCH_KEY_HASH_H_
#define JOINMI_SKETCH_KEY_HASH_H_

#include <cstdint>

#include "src/table/value.h"

namespace joinmi {

/// \brief h(k): 64-bit object hash of a join-key value. Strings go through
/// MurmurHash3; numerics through a bijective mix of their bit pattern.
/// Seeded so independent sketch universes can coexist.
uint64_t HashKey(const Value& key, uint32_t seed = 0);

/// \brief h_u(h(k)): unit-interval rank of a key hash (Fibonacci hashing).
double KeyUnitHash(uint64_t key_hash);

/// \brief h_u(⟨k, j⟩): unit rank of the j-th occurrence of key k (j >= 1).
/// TUPSK's sampling frame; ⟨k, 1⟩ coincides with the candidate-side rank so
/// first occurrences stay coordinated.
double TupleUnitHash(uint64_t key_hash, uint64_t occurrence);

}  // namespace joinmi

#endif  // JOINMI_SKETCH_KEY_HASH_H_
