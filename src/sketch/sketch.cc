#include "src/sketch/sketch.h"

#include <algorithm>
#include <unordered_map>

#include "src/common/string_util.h"
#include "src/sketch/key_hash.h"

namespace joinmi {

const char* SketchMethodToString(SketchMethod method) {
  switch (method) {
    case SketchMethod::kTupsk:
      return "TUPSK";
    case SketchMethod::kLv2sk:
      return "LV2SK";
    case SketchMethod::kPrisk:
      return "PRISK";
    case SketchMethod::kIndsk:
      return "INDSK";
    case SketchMethod::kCsk:
      return "CSK";
  }
  return "unknown";
}

Result<SketchMethod> SketchMethodFromString(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "tupsk") return SketchMethod::kTupsk;
  if (lower == "lv2sk") return SketchMethod::kLv2sk;
  if (lower == "prisk") return SketchMethod::kPrisk;
  if (lower == "indsk") return SketchMethod::kIndsk;
  if (lower == "csk") return SketchMethod::kCsk;
  return Status::InvalidArgument("unknown sketch method '" + name + "'");
}

KmvHeap::KmvHeap(size_t capacity) : capacity_(capacity) {
  heap_.reserve(capacity + 1);
}

bool KmvHeap::RankLess(const SketchEntry& a, const SketchEntry& b) {
  if (a.rank != b.rank) return a.rank < b.rank;
  if (a.key_hash != b.key_hash) return a.key_hash < b.key_hash;
  return a.value.Hash() < b.value.Hash();
}

bool KmvHeap::WouldAdmit(double rank) const {
  if (capacity_ == 0) return false;
  if (heap_.size() < capacity_) return true;
  return rank < heap_.front().rank;
}

void KmvHeap::Offer(SketchEntry entry) {
  if (capacity_ == 0) return;
  if (heap_.size() < capacity_) {
    heap_.push_back(std::move(entry));
    std::push_heap(heap_.begin(), heap_.end(), RankLess);
    return;
  }
  if (!RankLess(entry, heap_.front())) return;
  std::pop_heap(heap_.begin(), heap_.end(), RankLess);
  heap_.back() = std::move(entry);
  std::push_heap(heap_.begin(), heap_.end(), RankLess);
}

std::vector<SketchEntry> KmvHeap::TakeSorted() {
  std::vector<SketchEntry> out = std::move(heap_);
  heap_.clear();
  std::sort(out.begin(), out.end(), [](const SketchEntry& a,
                                       const SketchEntry& b) {
    if (a.key_hash != b.key_hash) return a.key_hash < b.key_hash;
    return a.rank < b.rank;
  });
  return out;
}

Result<std::vector<AggregatedKey>> AggregateByKey(const Column& keys,
                                                  const Column& values,
                                                  AggKind agg,
                                                  uint32_t hash_seed) {
  if (keys.size() != values.size()) {
    return Status::InvalidArgument("key/value column length mismatch");
  }
  std::vector<AggregatedKey> result;
  std::vector<AggregatorState> states;
  std::unordered_map<uint64_t, size_t> index;  // key hash -> position
  index.reserve(keys.size());
  for (size_t row = 0; row < keys.size(); ++row) {
    if (!keys.IsValid(row) || !values.IsValid(row)) continue;
    const uint64_t h = HashKey(keys.GetValue(row), hash_seed);
    auto [it, inserted] = index.emplace(h, result.size());
    if (inserted) {
      result.push_back(AggregatedKey{h, Value::Null(), 0});
      states.emplace_back(agg);
    }
    const size_t pos = it->second;
    JOINMI_RETURN_NOT_OK(states[pos].Update(values.GetValue(row)));
    ++result[pos].frequency;
  }
  for (size_t i = 0; i < result.size(); ++i) {
    JOINMI_ASSIGN_OR_RETURN(result[i].value, states[i].Finish());
  }
  return result;
}

}  // namespace joinmi
