// Structure-of-arrays arena for candidate sketches. A SketchIndex holding
// one heap Sketch object per candidate scatters the probe working set
// across the heap: each candidate's entry vector is its own allocation,
// and its probe map is a node-per-key unordered_map. FlatSketchIndex packs
// every candidate's key hashes and values into two shared flat arrays with
// per-candidate (offset, len) extents, plus one shared open-addressing
// slot array holding every candidate's probe region — so a query strip
// walks contiguous memory and probing a candidate touches exactly its
// extent.
//
// Layout (candidate c owns extents_[c] = {offset, len, probe_*}):
//
//   key_hashes_: [ c0 keys ........ | c1 keys .... | c2 keys ...... ]
//   values_:     [ c0 values ...... | c1 values .. | c2 values .... ]
//   probe_slots_:[ c0 region ..0.s. | c1 region .. | c2 region .... ]
//                  ^offset,len        ^probe_offset, probe_mask+1 slots
//
// A probe slot stores local_index + 1 (0 = empty) — key hash 0 and ~0 are
// both legal keys, so the sentinel lives in the slot value, not the key.

#ifndef JOINMI_SKETCH_FLAT_INDEX_H_
#define JOINMI_SKETCH_FLAT_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/sketch/flat_probe_table.h"
#include "src/sketch/sketch.h"

namespace joinmi {

/// \brief Contiguous SoA storage for many candidate sketches' probe state.
class FlatSketchIndex {
 public:
  /// \brief One candidate's slice of the shared arrays.
  struct Extent {
    uint64_t offset = 0;        ///< first key/value index in the flat arrays
    uint32_t len = 0;           ///< number of entries
    uint32_t probe_shift = 64;  ///< FlatProbeBucket shift for this region
    uint64_t probe_offset = 0;  ///< first slot of the probe region
    uint32_t probe_mask = 0;    ///< region slot count - 1 (power of two - 1)
  };

  /// \brief Appends a candidate sketch's entries and builds its probe
  /// region. Returns the candidate's index. Fails on duplicate keys (the
  /// candidate-side uniqueness invariant) without mutating the arena.
  Result<size_t> AddCandidate(const Sketch& candidate);

  size_t num_candidates() const { return extents_.size(); }
  const Extent& extent(size_t candidate) const { return extents_[candidate]; }

  /// \brief This candidate's key hashes (extent(c).len of them).
  const uint64_t* keys(size_t candidate) const {
    return key_hashes_.data() + extents_[candidate].offset;
  }
  /// \brief This candidate's values, parallel to keys().
  const Value* values(size_t candidate) const {
    return values_.data() + extents_[candidate].offset;
  }

  /// \brief Looks up `key` in candidate `c`'s probe region. Returns the
  /// local entry index (< extent(c).len) or -1 if absent. Thread-safe once
  /// building is done.
  int64_t Find(size_t candidate, uint64_t key) const {
    const Extent& e = extents_[candidate];
    if (e.len == 0) return -1;
    const uint32_t* slots = probe_slots_.data() + e.probe_offset;
    const uint64_t* region_keys = key_hashes_.data() + e.offset;
    size_t bucket = FlatProbeBucket(key, e.probe_shift);
    while (uint32_t slot = slots[bucket]) {
      if (region_keys[slot - 1] == key) {
        return static_cast<int64_t>(slot) - 1;
      }
      bucket = (bucket + 1) & e.probe_mask;
    }
    return -1;
  }

  /// \brief Total entries across all candidates.
  size_t total_entries() const { return key_hashes_.size(); }
  /// \brief Total probe slots across all regions (for tests/introspection).
  size_t total_probe_slots() const { return probe_slots_.size(); }

 private:
  std::vector<uint64_t> key_hashes_;
  std::vector<Value> values_;
  std::vector<uint32_t> probe_slots_;  // local_index + 1; 0 = empty
  std::vector<Extent> extents_;
};

}  // namespace joinmi

#endif  // JOINMI_SKETCH_FLAT_INDEX_H_
