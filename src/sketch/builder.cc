#include "src/sketch/builder.h"

#include <unordered_set>

#include "src/sketch/key_hash.h"

namespace joinmi {

Result<Sketch> SketchBuilder::InitSketch(const Column& keys,
                                         const Column& values,
                                         SketchSide side) const {
  if (keys.size() != values.size()) {
    return Status::InvalidArgument("key/value column length mismatch");
  }
  if (options_.capacity == 0) {
    return Status::InvalidArgument("sketch capacity must be positive");
  }
  Sketch sketch;
  sketch.method = method();
  sketch.side = side;
  sketch.capacity = options_.capacity;
  sketch.hash_seed = options_.hash_seed;
  std::unordered_set<uint64_t> distinct;
  distinct.reserve(keys.size());
  for (size_t row = 0; row < keys.size(); ++row) {
    if (!keys.IsValid(row) || !values.IsValid(row)) continue;
    ++sketch.source_rows;
    distinct.insert(HashKey(keys.GetValue(row), options_.hash_seed));
  }
  sketch.source_distinct_keys = distinct.size();
  return sketch;
}

Result<Sketch> SketchBuilder::SketchCandidate(const Column& keys,
                                              const Column& values,
                                              AggKind agg) const {
  JOINMI_ASSIGN_OR_RETURN(Sketch sketch,
                          InitSketch(keys, values, SketchSide::kCandidate));
  JOINMI_ASSIGN_OR_RETURN(
      auto aggregated,
      AggregateByKey(keys, values, agg, options_.hash_seed));
  // Aggregation leaves unique keys, so every coordinated method reduces to
  // KMV over the method's key rank (the paper's observation that the
  // candidate-side selection probability is uniform because m_K = N after
  // aggregation).
  KmvHeap heap(options_.capacity);
  for (const AggregatedKey& entry : aggregated) {
    const double rank = CandidateRank(entry.key_hash);
    if (!heap.WouldAdmit(rank)) continue;
    heap.Offer(SketchEntry{entry.key_hash, rank, entry.value});
  }
  sketch.entries = heap.TakeSorted();
  return sketch;
}

double SketchBuilder::CandidateRank(uint64_t key_hash) const {
  return KeyUnitHash(key_hash);
}

std::unique_ptr<SketchBuilder> MakeSketchBuilder(SketchMethod method,
                                                 SketchOptions options) {
  switch (method) {
    case SketchMethod::kTupsk:
      return std::make_unique<TupskBuilder>(options);
    case SketchMethod::kLv2sk:
      return std::make_unique<Lv2skBuilder>(options);
    case SketchMethod::kPrisk:
      return std::make_unique<PriskBuilder>(options);
    case SketchMethod::kIndsk:
      return std::make_unique<IndskBuilder>(options);
    case SketchMethod::kCsk:
      return std::make_unique<CskBuilder>(options);
  }
  return nullptr;
}

}  // namespace joinmi
