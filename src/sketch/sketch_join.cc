#include "src/sketch/sketch_join.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace joinmi {

namespace {

// Shared tail of EstimateSketchMI*: size guard + estimator dispatch.
Result<SketchMIResult> EstimateOnJoin(SketchJoinResult joined,
                                      MIEstimatorKind estimator,
                                      const MIOptions& options,
                                      size_t min_join_size) {
  if (joined.join_size < min_join_size) {
    return Status::OutOfRange(
        "sketch join produced " + std::to_string(joined.join_size) +
        " samples, fewer than the required " + std::to_string(min_join_size));
  }
  SketchMIResult result;
  result.estimator = estimator;
  result.join_size = joined.join_size;
  JOINMI_ASSIGN_OR_RETURN(result.mi,
                          EstimateMI(estimator, joined.sample, options));
  return result;
}

// Preconditions shared by every join entry point: correct sides and equal
// hash seeds. Seeds must match because key hashes drawn from different
// seeds are incomparable — joining them "works" mechanically but returns a
// meaningless sample, which is exactly the failure mode a persisted index
// probed by a misconfigured query would hit silently.
Status CheckJoinable(const Sketch& train, const Sketch& candidate) {
  if (train.side != SketchSide::kTrain) {
    return Status::InvalidArgument(
        "left operand of a sketch join must be a train sketch");
  }
  if (candidate.side != SketchSide::kCandidate) {
    return Status::InvalidArgument(
        "right operand of a sketch join must be a candidate sketch");
  }
  if (train.hash_seed != candidate.hash_seed) {
    return Status::InvalidArgument(
        "sketch hash seeds differ (train " +
        std::to_string(train.hash_seed) + " vs candidate " +
        std::to_string(candidate.hash_seed) +
        "); sketches from different seeds cannot be joined");
  }
  return Status::OK();
}

// Mirrors EstimateMIAuto's type inference to report the chosen estimator.
Result<MIEstimatorKind> ChooseEstimatorForSample(const PairedSample& sample) {
  auto all_numeric = [](const std::vector<Value>& values) {
    for (const Value& v : values) {
      if (!IsNumeric(v.type())) return false;
    }
    return true;
  };
  const DataType x_type =
      all_numeric(sample.x) ? DataType::kDouble : DataType::kString;
  const DataType y_type =
      all_numeric(sample.y) ? DataType::kDouble : DataType::kString;
  return ChooseEstimator(x_type, y_type);
}

}  // namespace

Result<SketchJoinResult> JoinSketches(const Sketch& train,
                                      const Sketch& candidate) {
  JOINMI_RETURN_NOT_OK(CheckJoinable(train, candidate));
  // Candidate keys are unique post-aggregation; build the probe map on them.
  std::unordered_map<uint64_t, const Value*> aug;
  aug.reserve(candidate.entries.size());
  for (const SketchEntry& entry : candidate.entries) {
    if (!aug.emplace(entry.key_hash, &entry.value).second) {
      return Status::InvalidArgument(
          "candidate sketch has duplicate keys; was it built as a train "
          "sketch?");
    }
  }
  SketchJoinResult result;
  result.sample.x.reserve(train.entries.size());
  result.sample.y.reserve(train.entries.size());
  // A set, not an adjacency counter: this overload stays correct for
  // hand-built or deserialized train sketches that violate the sortedness
  // invariant (the prepared path validates it instead).
  std::unordered_set<uint64_t> matched;
  matched.reserve(train.entries.size());
  for (const SketchEntry& entry : train.entries) {
    const auto it = aug.find(entry.key_hash);
    if (it == aug.end()) continue;
    result.sample.x.push_back(*it->second);
    result.sample.y.push_back(entry.value);
    matched.insert(entry.key_hash);
  }
  result.join_size = result.sample.size();
  result.matched_keys = matched.size();
  return result;
}

Result<PreparedTrainSketch> PreparedTrainSketch::Create(Sketch train) {
  std::unordered_map<uint64_t, std::pair<uint32_t, uint32_t>> groups;
  groups.reserve(train.entries.size());
  for (uint32_t i = 0; i < train.entries.size();) {
    const uint64_t hash = train.entries[i].key_hash;
    uint32_t end = i + 1;
    while (end < train.entries.size() &&
           train.entries[end].key_hash == hash) {
      ++end;
    }
    if (!groups.emplace(hash, std::make_pair(i, end)).second) {
      return Status::InvalidArgument(
          "train sketch entries are not sorted by key_hash");
    }
    i = end;
  }
  return PreparedTrainSketch(std::move(train), std::move(groups));
}

Result<SketchJoinResult> PreparedTrainSketch::Join(
    const Sketch& candidate) const {
  JOINMI_RETURN_NOT_OK(CheckJoinable(train_, candidate));
  // Probe the prebuilt train index with each candidate key, then emit the
  // matches in train-entry order so the sample is byte-identical to
  // JoinSketches on the wrapped sketch.
  struct Match {
    uint32_t begin;
    uint32_t end;
    const Value* value;
  };
  std::vector<Match> matches;
  matches.reserve(std::min(candidate.entries.size(), groups_.size()));
  size_t join_size = 0;
  const SketchEntry* prev = nullptr;
  for (const SketchEntry& entry : candidate.entries) {
    // Candidate entries are sorted by key_hash (builder invariant), so
    // duplicate keys are adjacent; this keeps the duplicate rejection of
    // JoinSketches without a per-join probe set.
    if (prev != nullptr && prev->key_hash == entry.key_hash) {
      return Status::InvalidArgument(
          "candidate sketch has duplicate keys; was it built as a train "
          "sketch?");
    }
    prev = &entry;
    const auto it = groups_.find(entry.key_hash);
    if (it == groups_.end()) continue;
    matches.push_back(Match{it->second.first, it->second.second, &entry.value});
    join_size += it->second.second - it->second.first;
  }
  std::sort(matches.begin(), matches.end(),
            [](const Match& a, const Match& b) { return a.begin < b.begin; });
  for (size_t i = 1; i < matches.size(); ++i) {
    if (matches[i].begin == matches[i - 1].begin) {
      return Status::InvalidArgument(
          "candidate sketch has duplicate keys; was it built as a train "
          "sketch?");
    }
  }
  SketchJoinResult result;
  result.sample.x.reserve(join_size);
  result.sample.y.reserve(join_size);
  for (const Match& match : matches) {
    for (uint32_t i = match.begin; i < match.end; ++i) {
      result.sample.x.push_back(*match.value);
      result.sample.y.push_back(train_.entries[i].value);
    }
  }
  result.join_size = result.sample.size();
  result.matched_keys = matches.size();
  return result;
}

Result<PreparedCandidateSketch> PreparedCandidateSketch::Create(
    Sketch candidate) {
  if (candidate.side != SketchSide::kCandidate) {
    return Status::InvalidArgument(
        "PreparedCandidateSketch requires a candidate-side sketch");
  }
  std::unordered_map<uint64_t, uint32_t> probe;
  probe.reserve(candidate.entries.size());
  for (uint32_t i = 0; i < candidate.entries.size(); ++i) {
    if (!probe.emplace(candidate.entries[i].key_hash, i).second) {
      return Status::InvalidArgument(
          "candidate sketch has duplicate keys; was it built as a train "
          "sketch?");
    }
  }
  return PreparedCandidateSketch(std::move(candidate), std::move(probe));
}

Result<SketchJoinResult> PreparedCandidateSketch::Join(
    const Sketch& train) const {
  JOINMI_RETURN_NOT_OK(CheckJoinable(train, candidate_));
  // Same traversal as JoinSketches — train entries in order, probing the
  // candidate map — so the emitted sample is byte-identical; only the map
  // build is amortized away.
  SketchJoinResult result;
  result.sample.x.reserve(train.entries.size());
  result.sample.y.reserve(train.entries.size());
  std::unordered_set<uint64_t> matched;
  matched.reserve(train.entries.size());
  for (const SketchEntry& entry : train.entries) {
    const auto it = probe_.find(entry.key_hash);
    if (it == probe_.end()) continue;
    result.sample.x.push_back(candidate_.entries[it->second].value);
    result.sample.y.push_back(entry.value);
    matched.insert(entry.key_hash);
  }
  result.join_size = result.sample.size();
  result.matched_keys = matched.size();
  return result;
}

Result<SketchMIResult> EstimateSketchMI(const Sketch& train,
                                        const Sketch& candidate,
                                        MIEstimatorKind estimator,
                                        const MIOptions& options,
                                        size_t min_join_size) {
  JOINMI_ASSIGN_OR_RETURN(SketchJoinResult joined,
                          JoinSketches(train, candidate));
  return EstimateOnJoin(std::move(joined), estimator, options, min_join_size);
}

Result<SketchMIResult> EstimateSketchMIAuto(const Sketch& train,
                                            const Sketch& candidate,
                                            const MIOptions& options,
                                            size_t min_join_size) {
  JOINMI_ASSIGN_OR_RETURN(SketchJoinResult joined,
                          JoinSketches(train, candidate));
  JOINMI_ASSIGN_OR_RETURN(MIEstimatorKind kind,
                          ChooseEstimatorForSample(joined.sample));
  return EstimateOnJoin(std::move(joined), kind, options, min_join_size);
}

Result<SketchMIResult> EstimateSketchMI(const PreparedTrainSketch& train,
                                        const Sketch& candidate,
                                        MIEstimatorKind estimator,
                                        const MIOptions& options,
                                        size_t min_join_size) {
  JOINMI_ASSIGN_OR_RETURN(SketchJoinResult joined, train.Join(candidate));
  return EstimateOnJoin(std::move(joined), estimator, options, min_join_size);
}

Result<SketchMIResult> EstimateSketchMIAuto(const PreparedTrainSketch& train,
                                            const Sketch& candidate,
                                            const MIOptions& options,
                                            size_t min_join_size) {
  JOINMI_ASSIGN_OR_RETURN(SketchJoinResult joined, train.Join(candidate));
  JOINMI_ASSIGN_OR_RETURN(MIEstimatorKind kind,
                          ChooseEstimatorForSample(joined.sample));
  return EstimateOnJoin(std::move(joined), kind, options, min_join_size);
}

Result<SketchMIResult> EstimateSketchMI(
    const Sketch& train, const PreparedCandidateSketch& candidate,
    MIEstimatorKind estimator, const MIOptions& options,
    size_t min_join_size) {
  JOINMI_ASSIGN_OR_RETURN(SketchJoinResult joined, candidate.Join(train));
  return EstimateOnJoin(std::move(joined), estimator, options, min_join_size);
}

Result<SketchMIResult> EstimateSketchMIAuto(
    const Sketch& train, const PreparedCandidateSketch& candidate,
    const MIOptions& options, size_t min_join_size) {
  JOINMI_ASSIGN_OR_RETURN(SketchJoinResult joined, candidate.Join(train));
  JOINMI_ASSIGN_OR_RETURN(MIEstimatorKind kind,
                          ChooseEstimatorForSample(joined.sample));
  return EstimateOnJoin(std::move(joined), kind, options, min_join_size);
}

}  // namespace joinmi
