#include "src/sketch/sketch_join.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace joinmi {

namespace {

// Preconditions shared by every join entry point: correct sides and equal
// hash seeds. Seeds must match because key hashes drawn from different
// seeds are incomparable — joining them "works" mechanically but returns a
// meaningless sample, which is exactly the failure mode a persisted index
// probed by a misconfigured query would hit silently.
Status CheckJoinable(const Sketch& train, const Sketch& candidate) {
  if (train.side != SketchSide::kTrain) {
    return Status::InvalidArgument(
        "left operand of a sketch join must be a train sketch");
  }
  if (candidate.side != SketchSide::kCandidate) {
    return Status::InvalidArgument(
        "right operand of a sketch join must be a candidate sketch");
  }
  if (train.hash_seed != candidate.hash_seed) {
    return Status::InvalidArgument(
        "sketch hash seeds differ (train " +
        std::to_string(train.hash_seed) + " vs candidate " +
        std::to_string(candidate.hash_seed) +
        "); sketches from different seeds cannot be joined");
  }
  return Status::OK();
}

// Mirrors EstimateMIAuto's type inference to report the chosen estimator.
Result<MIEstimatorKind> ChooseEstimatorForSample(const PairedSample& sample) {
  auto all_numeric = [](const std::vector<Value>& values) {
    for (const Value& v : values) {
      if (!IsNumeric(v.type())) return false;
    }
    return true;
  };
  const DataType x_type =
      all_numeric(sample.x) ? DataType::kDouble : DataType::kString;
  const DataType y_type =
      all_numeric(sample.y) ? DataType::kDouble : DataType::kString;
  return ChooseEstimator(x_type, y_type);
}

}  // namespace

Result<SketchMIResult> ScoreSketchJoinSample(
    const PairedSample& sample, size_t join_size,
    const std::optional<MIEstimatorKind>& estimator, const MIOptions& options,
    size_t min_join_size) {
  // Guard before estimator dispatch: a too-small join is OutOfRange no
  // matter which estimator would have run, and skipping first keeps the
  // common below-cutoff case free of any scoring work.
  if (join_size < min_join_size) {
    return Status::OutOfRange(
        "sketch join produced " + std::to_string(join_size) +
        " samples, fewer than the required " + std::to_string(min_join_size));
  }
  SketchMIResult result;
  result.join_size = join_size;
  if (estimator.has_value()) {
    result.estimator = *estimator;
  } else {
    JOINMI_ASSIGN_OR_RETURN(result.estimator,
                            ChooseEstimatorForSample(sample));
  }
  JOINMI_ASSIGN_OR_RETURN(result.mi,
                          EstimateMI(result.estimator, sample, options));
  return result;
}

Result<SketchJoinResult> JoinSketches(const Sketch& train,
                                      const Sketch& candidate) {
  JOINMI_RETURN_NOT_OK(CheckJoinable(train, candidate));
  // Candidate keys are unique post-aggregation; build the probe map on them.
  std::unordered_map<uint64_t, const Value*> aug;
  aug.reserve(candidate.entries.size());
  for (const SketchEntry& entry : candidate.entries) {
    if (!aug.emplace(entry.key_hash, &entry.value).second) {
      return Status::InvalidArgument(
          "candidate sketch has duplicate keys; was it built as a train "
          "sketch?");
    }
  }
  SketchJoinResult result;
  result.sample.x.reserve(train.entries.size());
  result.sample.y.reserve(train.entries.size());
  // A set, not an adjacency counter: this overload stays correct for
  // hand-built or deserialized train sketches that violate the sortedness
  // invariant (the prepared path validates it instead).
  std::unordered_set<uint64_t> matched;
  matched.reserve(train.entries.size());
  for (const SketchEntry& entry : train.entries) {
    const auto it = aug.find(entry.key_hash);
    if (it == aug.end()) continue;
    result.sample.x.push_back(*it->second);
    result.sample.y.push_back(entry.value);
    matched.insert(entry.key_hash);
  }
  result.join_size = result.sample.size();
  result.matched_keys = matched.size();
  return result;
}

Result<PreparedTrainSketch> PreparedTrainSketch::Create(Sketch train) {
  FlatProbeTable groups(train.entries.size());
  for (uint32_t i = 0; i < train.entries.size();) {
    const uint64_t hash = train.entries[i].key_hash;
    uint32_t end = i + 1;
    while (end < train.entries.size() &&
           train.entries[end].key_hash == hash) {
      ++end;
    }
    // The [begin, end) range packs into one probe payload; a non-adjacent
    // repeat of `hash` means the entries were not sorted.
    if (!groups.Insert(hash, (uint64_t{i} << 32) | end)) {
      return Status::InvalidArgument(
          "train sketch entries are not sorted by key_hash");
    }
    i = end;
  }
  return PreparedTrainSketch(std::move(train), std::move(groups));
}

Result<SketchJoinResult> PreparedTrainSketch::Join(
    const Sketch& candidate) const {
  JOINMI_RETURN_NOT_OK(CheckJoinable(train_, candidate));
  // Probe the prebuilt train index with each candidate key, then emit the
  // matches in train-entry order so the sample is byte-identical to
  // JoinSketches on the wrapped sketch.
  struct Match {
    uint32_t begin;
    uint32_t end;
    const Value* value;
  };
  std::vector<Match> matches;
  matches.reserve(std::min(candidate.entries.size(), groups_.size()));
  size_t join_size = 0;
  const SketchEntry* prev = nullptr;
  for (const SketchEntry& entry : candidate.entries) {
    // Validate the probe contract — entries strictly ascending by
    // key_hash — as we go. An unsorted candidate would still *probe*
    // correctly here, but it violates the builder invariant every other
    // consumer relies on, so it gets a structured error rather than a
    // result that other paths would disagree with; a duplicated key would
    // silently double-count its train group.
    if (prev != nullptr && entry.key_hash <= prev->key_hash) {
      if (entry.key_hash == prev->key_hash) {
        return Status::InvalidArgument(
            "candidate sketch has duplicate keys; was it built as a train "
            "sketch?");
      }
      return Status::InvalidArgument(
          "candidate sketch entries are not sorted by key_hash; prepared "
          "joins require builder-sorted candidates");
    }
    prev = &entry;
    const uint64_t* packed = groups_.Find(entry.key_hash);
    if (packed == nullptr) continue;
    const uint32_t begin = static_cast<uint32_t>(*packed >> 32);
    const uint32_t end = static_cast<uint32_t>(*packed);
    matches.push_back(Match{begin, end, &entry.value});
    join_size += end - begin;
  }
  // Candidate keys ascend (checked above) and train entries are sorted, so
  // group begins were discovered in ascending order already — no sort, and
  // duplicates were rejected before they could collide here.
  SketchJoinResult result;
  result.sample.x.reserve(join_size);
  result.sample.y.reserve(join_size);
  for (const Match& match : matches) {
    for (uint32_t i = match.begin; i < match.end; ++i) {
      result.sample.x.push_back(*match.value);
      result.sample.y.push_back(train_.entries[i].value);
    }
  }
  result.join_size = result.sample.size();
  result.matched_keys = matches.size();
  return result;
}

Result<PreparedCandidateSketch> PreparedCandidateSketch::Create(
    Sketch candidate) {
  if (candidate.side != SketchSide::kCandidate) {
    return Status::InvalidArgument(
        "PreparedCandidateSketch requires a candidate-side sketch");
  }
  FlatProbeTable probe(candidate.entries.size());
  for (uint32_t i = 0; i < candidate.entries.size(); ++i) {
    if (!probe.Insert(candidate.entries[i].key_hash, i)) {
      return Status::InvalidArgument(
          "candidate sketch has duplicate keys; was it built as a train "
          "sketch?");
    }
  }
  return PreparedCandidateSketch(std::move(candidate), std::move(probe));
}

Result<SketchJoinResult> PreparedCandidateSketch::Join(
    const Sketch& train) const {
  JOINMI_RETURN_NOT_OK(CheckJoinable(train, candidate_));
  // Same traversal as JoinSketches — train entries in order, probing the
  // candidate map — so the emitted sample is byte-identical; only the map
  // build is amortized away.
  SketchJoinResult result;
  result.sample.x.reserve(train.entries.size());
  result.sample.y.reserve(train.entries.size());
  std::unordered_set<uint64_t> matched;
  matched.reserve(train.entries.size());
  for (const SketchEntry& entry : train.entries) {
    const uint64_t* index = probe_.Find(entry.key_hash);
    if (index == nullptr) continue;
    result.sample.x.push_back(candidate_.entries[*index].value);
    result.sample.y.push_back(entry.value);
    matched.insert(entry.key_hash);
  }
  result.join_size = result.sample.size();
  result.matched_keys = matched.size();
  return result;
}

Result<SketchMIResult> EstimateSketchMI(const Sketch& train,
                                        const Sketch& candidate,
                                        MIEstimatorKind estimator,
                                        const MIOptions& options,
                                        size_t min_join_size) {
  JOINMI_ASSIGN_OR_RETURN(SketchJoinResult joined,
                          JoinSketches(train, candidate));
  return ScoreSketchJoinSample(joined.sample, joined.join_size, estimator,
                               options, min_join_size);
}

Result<SketchMIResult> EstimateSketchMIAuto(const Sketch& train,
                                            const Sketch& candidate,
                                            const MIOptions& options,
                                            size_t min_join_size) {
  JOINMI_ASSIGN_OR_RETURN(SketchJoinResult joined,
                          JoinSketches(train, candidate));
  return ScoreSketchJoinSample(joined.sample, joined.join_size, std::nullopt,
                               options, min_join_size);
}

Result<SketchMIResult> EstimateSketchMI(const PreparedTrainSketch& train,
                                        const Sketch& candidate,
                                        MIEstimatorKind estimator,
                                        const MIOptions& options,
                                        size_t min_join_size) {
  JOINMI_ASSIGN_OR_RETURN(SketchJoinResult joined, train.Join(candidate));
  return ScoreSketchJoinSample(joined.sample, joined.join_size, estimator,
                               options, min_join_size);
}

Result<SketchMIResult> EstimateSketchMIAuto(const PreparedTrainSketch& train,
                                            const Sketch& candidate,
                                            const MIOptions& options,
                                            size_t min_join_size) {
  JOINMI_ASSIGN_OR_RETURN(SketchJoinResult joined, train.Join(candidate));
  return ScoreSketchJoinSample(joined.sample, joined.join_size, std::nullopt,
                               options, min_join_size);
}

Result<SketchMIResult> EstimateSketchMI(
    const Sketch& train, const PreparedCandidateSketch& candidate,
    MIEstimatorKind estimator, const MIOptions& options,
    size_t min_join_size) {
  JOINMI_ASSIGN_OR_RETURN(SketchJoinResult joined, candidate.Join(train));
  return ScoreSketchJoinSample(joined.sample, joined.join_size, estimator,
                               options, min_join_size);
}

Result<SketchMIResult> EstimateSketchMIAuto(
    const Sketch& train, const PreparedCandidateSketch& candidate,
    const MIOptions& options, size_t min_join_size) {
  JOINMI_ASSIGN_OR_RETURN(SketchJoinResult joined, candidate.Join(train));
  return ScoreSketchJoinSample(joined.sample, joined.join_size, std::nullopt,
                               options, min_join_size);
}

}  // namespace joinmi
