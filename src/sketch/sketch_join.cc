#include "src/sketch/sketch_join.h"

#include <unordered_map>

namespace joinmi {

Result<SketchJoinResult> JoinSketches(const Sketch& train,
                                      const Sketch& candidate) {
  if (candidate.side != SketchSide::kCandidate) {
    return Status::InvalidArgument(
        "right operand of a sketch join must be a candidate sketch");
  }
  // Candidate keys are unique post-aggregation; build the probe map on them.
  std::unordered_map<uint64_t, const Value*> aug;
  aug.reserve(candidate.entries.size());
  for (const SketchEntry& entry : candidate.entries) {
    if (!aug.emplace(entry.key_hash, &entry.value).second) {
      return Status::InvalidArgument(
          "candidate sketch has duplicate keys; was it built as a train "
          "sketch?");
    }
  }
  SketchJoinResult result;
  result.sample.x.reserve(train.entries.size());
  result.sample.y.reserve(train.entries.size());
  std::unordered_map<uint64_t, bool> matched;
  matched.reserve(train.entries.size());
  for (const SketchEntry& entry : train.entries) {
    const auto it = aug.find(entry.key_hash);
    if (it == aug.end()) continue;
    result.sample.x.push_back(*it->second);
    result.sample.y.push_back(entry.value);
    matched.emplace(entry.key_hash, true);
  }
  result.join_size = result.sample.size();
  result.matched_keys = matched.size();
  return result;
}

Result<SketchMIResult> EstimateSketchMI(const Sketch& train,
                                        const Sketch& candidate,
                                        MIEstimatorKind estimator,
                                        const MIOptions& options,
                                        size_t min_join_size) {
  JOINMI_ASSIGN_OR_RETURN(SketchJoinResult joined,
                          JoinSketches(train, candidate));
  if (joined.join_size < min_join_size) {
    return Status::OutOfRange(
        "sketch join produced " + std::to_string(joined.join_size) +
        " samples, fewer than the required " + std::to_string(min_join_size));
  }
  SketchMIResult result;
  result.estimator = estimator;
  result.join_size = joined.join_size;
  JOINMI_ASSIGN_OR_RETURN(result.mi,
                          EstimateMI(estimator, joined.sample, options));
  return result;
}

Result<SketchMIResult> EstimateSketchMIAuto(const Sketch& train,
                                            const Sketch& candidate,
                                            const MIOptions& options,
                                            size_t min_join_size) {
  JOINMI_ASSIGN_OR_RETURN(SketchJoinResult joined,
                          JoinSketches(train, candidate));
  if (joined.join_size < min_join_size) {
    return Status::OutOfRange(
        "sketch join produced " + std::to_string(joined.join_size) +
        " samples, fewer than the required " + std::to_string(min_join_size));
  }
  // Mirror EstimateMIAuto's type inference to report the chosen estimator.
  auto all_numeric = [](const std::vector<Value>& values) {
    for (const Value& v : values) {
      if (!IsNumeric(v.type())) return false;
    }
    return true;
  };
  const DataType x_type = all_numeric(joined.sample.x) ? DataType::kDouble
                                                       : DataType::kString;
  const DataType y_type = all_numeric(joined.sample.y) ? DataType::kDouble
                                                       : DataType::kString;
  JOINMI_ASSIGN_OR_RETURN(MIEstimatorKind kind,
                          ChooseEstimator(x_type, y_type));
  SketchMIResult result;
  result.estimator = kind;
  result.join_size = joined.join_size;
  JOINMI_ASSIGN_OR_RETURN(result.mi, EstimateMI(kind, joined.sample, options));
  return result;
}

}  // namespace joinmi
