// Sketch builder interface and concrete builders for the five methods
// evaluated in the paper. Every builder supports both sides of the
// join-aggregation query:
//  - SketchTrain: the left/base table (repeated join keys sampled, values
//    kept verbatim);
//  - SketchCandidate: a right/candidate table (values aggregated per key
//    with AGG, producing unique keys, then sampled).

#ifndef JOINMI_SKETCH_BUILDER_H_
#define JOINMI_SKETCH_BUILDER_H_

#include <memory>

#include "src/common/status.h"
#include "src/sketch/sketch.h"

namespace joinmi {

/// \brief Builder configuration. `capacity` is the paper's single parameter
/// n — a hard bound on sketch size for TUPSK/INDSK/CSK and on the number of
/// level-1 keys for LV2SK/PRISK (whose total size is bounded by 2n).
struct SketchOptions {
  size_t capacity = 256;
  /// Shared seed for h; sketches only join if built with equal seeds.
  uint32_t hash_seed = 0;
  /// Seed for non-coordinated randomness (LV2SK level-2 subsampling, INDSK
  /// row sampling). Tables should use distinct values for independence.
  uint64_t sampling_seed = 0x5EEDBA5EULL;
};

/// \brief Abstract sketch builder.
class SketchBuilder {
 public:
  virtual ~SketchBuilder() = default;

  virtual SketchMethod method() const = 0;
  const SketchOptions& options() const { return options_; }

  /// \brief Sketches the base table side (keys may repeat).
  virtual Result<Sketch> SketchTrain(const Column& keys,
                                     const Column& values) const = 0;

  /// \brief Sketches a candidate table side, aggregating values per key.
  /// The default implementation covers every coordinated method: aggregate,
  /// then KMV-select capacity keys by h_u(⟨k, 1⟩).
  virtual Result<Sketch> SketchCandidate(const Column& keys,
                                         const Column& values,
                                         AggKind agg) const;

 protected:
  explicit SketchBuilder(SketchOptions options) : options_(options) {}

  /// \brief Validates paired columns and counts usable rows/distinct keys.
  Result<Sketch> InitSketch(const Column& keys, const Column& values,
                            SketchSide side) const;

  /// \brief Rank used for candidate-side key selection. Must match the
  /// train side's key rank for sample coordination: h_u(h(k)) for the
  /// key-hashing methods; TUPSK overrides with h_u(⟨k, 1⟩).
  virtual double CandidateRank(uint64_t key_hash) const;

  SketchOptions options_;
};

/// \brief TUPSK (Section IV-B, proposed): ranks each row by h_u(⟨k, j⟩)
/// where j is the occurrence index of key k, then keeps the n minimum.
/// Every row has uniform inclusion probability; the recovered join sample
/// is a uniform sample of the full left join.
class TupskBuilder : public SketchBuilder {
 public:
  explicit TupskBuilder(SketchOptions options) : SketchBuilder(options) {}
  SketchMethod method() const override { return SketchMethod::kTupsk; }
  Result<Sketch> SketchTrain(const Column& keys,
                             const Column& values) const override;

 protected:
  double CandidateRank(uint64_t key_hash) const override;
};

/// \brief LV2SK (Section IV-A, baseline): level 1 selects the n keys with
/// minimum h_u(h(k)); level 2 keeps n_k = max(1, floor(n * N_k / N)) rows
/// per selected key via uniform subsampling. Size bounded by 2n.
class Lv2skBuilder : public SketchBuilder {
 public:
  explicit Lv2skBuilder(SketchOptions options) : SketchBuilder(options) {}
  SketchMethod method() const override { return SketchMethod::kLv2sk; }
  Result<Sketch> SketchTrain(const Column& keys,
                             const Column& values) const override;
};

/// \brief PRISK: LV2SK with frequency-weighted priority sampling at level 1
/// (keys ranked by h_u(h(k)) / N_k, per Duffield-Lund-Thorup priorities).
class PriskBuilder : public SketchBuilder {
 public:
  explicit PriskBuilder(SketchOptions options) : SketchBuilder(options) {}
  SketchMethod method() const override { return SketchMethod::kPrisk; }
  Result<Sketch> SketchTrain(const Column& keys,
                             const Column& values) const override;
};

/// \brief INDSK baseline: uniform reservoir sample of n rows, independent
/// across tables (no hash coordination). Candidate side aggregates first,
/// then samples keys independently.
class IndskBuilder : public SketchBuilder {
 public:
  explicit IndskBuilder(SketchOptions options) : SketchBuilder(options) {}
  SketchMethod method() const override { return SketchMethod::kIndsk; }
  Result<Sketch> SketchTrain(const Column& keys,
                             const Column& values) const override;
  Result<Sketch> SketchCandidate(const Column& keys, const Column& values,
                                 AggKind agg) const override;
};

/// \brief CSK: Correlation Sketches [27] extended to MI. KMV over distinct
/// keys; repeated keys keep the first value seen (no aggregation — the
/// paper's adaptation, Section V "Sketching Methods").
class CskBuilder : public SketchBuilder {
 public:
  explicit CskBuilder(SketchOptions options) : SketchBuilder(options) {}
  SketchMethod method() const override { return SketchMethod::kCsk; }
  Result<Sketch> SketchTrain(const Column& keys,
                             const Column& values) const override;
  Result<Sketch> SketchCandidate(const Column& keys, const Column& values,
                                 AggKind agg) const override;
};

/// \brief Factory over SketchMethod.
std::unique_ptr<SketchBuilder> MakeSketchBuilder(SketchMethod method,
                                                 SketchOptions options);

}  // namespace joinmi

#endif  // JOINMI_SKETCH_BUILDER_H_
