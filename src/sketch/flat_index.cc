#include "src/sketch/flat_index.h"

#include <limits>

namespace joinmi {

namespace {

// Region slot count for `len` keys: smallest power of two keeping load
// under 0.75, never smaller than 4 (keeps probe_shift <= 63, so the
// bucket computation's shift is always defined).
size_t ProbeRegionSlots(size_t len) {
  size_t needed = len + len / 3 + 1;
  size_t slots = 4;
  while (slots < needed) slots <<= 1;
  return slots;
}

uint32_t ShiftForSlots(size_t slots) {
  uint32_t log2 = 0;
  while ((size_t{1} << log2) < slots) ++log2;
  return 64 - log2;
}

}  // namespace

Result<size_t> FlatSketchIndex::AddCandidate(const Sketch& candidate) {
  if (candidate.side != SketchSide::kCandidate) {
    return Status::InvalidArgument(
        "FlatSketchIndex requires candidate-side sketches");
  }
  const size_t len = candidate.entries.size();
  if (len > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument(
        "candidate sketch exceeds the flat index entry limit");
  }
  Extent extent;
  extent.offset = key_hashes_.size();
  extent.len = static_cast<uint32_t>(len);
  if (len > 0) {
    const size_t slots = ProbeRegionSlots(len);
    extent.probe_offset = probe_slots_.size();
    extent.probe_mask = static_cast<uint32_t>(slots - 1);
    extent.probe_shift = ShiftForSlots(slots);
    probe_slots_.resize(probe_slots_.size() + slots, 0);
    uint32_t* region = probe_slots_.data() + extent.probe_offset;
    for (size_t i = 0; i < len; ++i) {
      const uint64_t key = candidate.entries[i].key_hash;
      size_t bucket = FlatProbeBucket(key, extent.probe_shift);
      while (region[bucket] != 0) {
        if (candidate.entries[region[bucket] - 1].key_hash == key) {
          // Roll back the region before failing so the arena never holds a
          // half-built candidate.
          probe_slots_.resize(extent.probe_offset);
          return Status::InvalidArgument(
              "candidate sketch has duplicate keys; was it built as a train "
              "sketch?");
        }
        bucket = (bucket + 1) & extent.probe_mask;
      }
      region[bucket] = static_cast<uint32_t>(i) + 1;
    }
  }
  key_hashes_.reserve(key_hashes_.size() + len);
  values_.reserve(values_.size() + len);
  for (const SketchEntry& entry : candidate.entries) {
    key_hashes_.push_back(entry.key_hash);
    values_.push_back(entry.value);
  }
  extents_.push_back(extent);
  return extents_.size() - 1;
}

}  // namespace joinmi
