// Internal: shared two-level sampling core for LV2SK and PRISK.

#ifndef JOINMI_SKETCH_TWO_LEVEL_H_
#define JOINMI_SKETCH_TWO_LEVEL_H_

#include "src/sketch/builder.h"

namespace joinmi {
namespace internal {

/// \brief Two-level train-side sampling. `priority_weighted` selects the
/// level-1 rank: h_u(h(k)) for LV2SK, h_u(h(k)) / N_k for PRISK.
Result<Sketch> BuildTwoLevelTrain(const SketchBuilder& builder,
                                  const Column& keys, const Column& values,
                                  bool priority_weighted, Sketch sketch);

}  // namespace internal
}  // namespace joinmi

#endif  // JOINMI_SKETCH_TWO_LEVEL_H_
