// Sketch container and shared sampling machinery. A sketch is a bounded set
// of ⟨h(k), value⟩ tuples selected by a method-specific sampling rule; the
// KMV ("k minimum values") heap implements the bounded-minimum-rank
// selection every coordinated method uses.

#ifndef JOINMI_SKETCH_SKETCH_H_
#define JOINMI_SKETCH_SKETCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/join/aggregators.h"
#include "src/table/column.h"

namespace joinmi {

/// \brief Sketching methods evaluated in the paper (Section V).
enum class SketchMethod : uint8_t {
  kTupsk = 0,  ///< proposed: tuple-based uniform sampling
  kLv2sk,      ///< baseline: two-level sampling
  kPrisk,      ///< two-level with priority (frequency-weighted) level 1
  kIndsk,      ///< independent uniform row sampling (no coordination)
  kCsk,        ///< Correlation Sketches extension (first value per key)
};

const char* SketchMethodToString(SketchMethod method);
Result<SketchMethod> SketchMethodFromString(const std::string& name);

/// \brief One sampled tuple: the hashed join key, its selection rank, and
/// the attribute value carried into the sketch.
struct SketchEntry {
  uint64_t key_hash = 0;  ///< h(k)
  double rank = 0.0;      ///< unit-hash rank used for selection
  Value value;            ///< x_k / y_k
};

/// \brief Which side of the join-aggregation query a sketch represents.
enum class SketchSide : uint8_t {
  kTrain = 0,  ///< left/base table: repeated keys sampled, not aggregated
  kCandidate,  ///< right table: values aggregated per key (unique keys)
};

/// \brief A built sketch plus provenance metadata.
struct Sketch {
  SketchMethod method = SketchMethod::kTupsk;
  SketchSide side = SketchSide::kTrain;
  /// Capacity parameter n (the paper's single tuning knob).
  size_t capacity = 0;
  /// Hash seed the sketch was built with. Two sketches only join if their
  /// seeds agree; JoinSketches enforces this, so a persisted sketch probed
  /// by a mismatched-seed query fails loudly instead of returning garbage.
  uint32_t hash_seed = 0;
  /// Entries sorted by (key_hash, rank) for deterministic joins.
  std::vector<SketchEntry> entries;
  /// Rows of the source relation that had non-null key and value.
  size_t source_rows = 0;
  /// Distinct non-null keys in the source relation.
  size_t source_distinct_keys = 0;

  size_t size() const { return entries.size(); }
};

/// \brief Bounded min-rank selection: retains the `capacity` entries with
/// the smallest ranks (a max-heap on rank). Ties on rank are broken by
/// key_hash then value hash, keeping selection deterministic.
class KmvHeap {
 public:
  explicit KmvHeap(size_t capacity);

  size_t capacity() const { return capacity_; }
  size_t size() const { return heap_.size(); }

  /// \brief True if an entry with this rank would be admitted right now.
  bool WouldAdmit(double rank) const;

  /// \brief Offers an entry; evicts the current max-rank entry if full.
  void Offer(SketchEntry entry);

  /// \brief Extracts all entries sorted by (key_hash, rank); heap empties.
  std::vector<SketchEntry> TakeSorted();

 private:
  static bool RankLess(const SketchEntry& a, const SketchEntry& b);

  size_t capacity_;
  std::vector<SketchEntry> heap_;  // max-heap by RankLess
};

/// \brief A per-key aggregate: key hash, original key, aggregated value,
/// and the key's frequency in the source table.
struct AggregatedKey {
  uint64_t key_hash = 0;
  Value value;
  size_t frequency = 0;
};

/// \brief Runs the candidate-side aggregation (SELECT k, AGG(v) GROUP BY k)
/// returning per-key aggregates keyed by h(k). Rows with null key or value
/// are skipped. Deterministic first-appearance order.
Result<std::vector<AggregatedKey>> AggregateByKey(const Column& keys,
                                                  const Column& values,
                                                  AggKind agg,
                                                  uint32_t hash_seed);

}  // namespace joinmi

#endif  // JOINMI_SKETCH_SKETCH_H_
