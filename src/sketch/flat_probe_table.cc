#include "src/sketch/flat_probe_table.h"

namespace joinmi {

namespace {

// Smallest power of two >= n (and >= kMinBuckets handled by callers).
size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

unsigned ShiftForBuckets(size_t buckets) {
  unsigned log2 = 0;
  while ((size_t{1} << log2) < buckets) ++log2;
  return 64 - log2;
}

}  // namespace

void FlatProbeTable::Reserve(size_t expected) {
  // Size so `expected` keys stay under the 0.75 load ceiling.
  size_t needed = expected + expected / 3 + 1;
  if (needed < kMinBuckets) needed = kMinBuckets;
  needed = NextPowerOfTwo(needed);
  if (needed > slots_.size()) Rehash(needed);
}

bool FlatProbeTable::Insert(uint64_t key, uint64_t value) {
  if (slots_.empty()) Rehash(kMinBuckets);
  const size_t mask = slots_.size() - 1;
  size_t bucket = FlatProbeBucket(key, shift_);
  while (used_[bucket]) {
    if (slots_[bucket].key == key) return false;
    bucket = (bucket + 1) & mask;
  }
  slots_[bucket] = Slot{key, value};
  used_[bucket] = 1;
  ++size_;
  if (size_ * 4 > slots_.size() * 3) Rehash(slots_.size() * 2);
  return true;
}

void FlatProbeTable::Rehash(size_t new_buckets) {
  std::vector<Slot> old_slots = std::move(slots_);
  std::vector<uint8_t> old_used = std::move(used_);
  slots_.assign(new_buckets, Slot{0, 0});
  used_.assign(new_buckets, 0);
  shift_ = ShiftForBuckets(new_buckets);
  const size_t mask = new_buckets - 1;
  for (size_t i = 0; i < old_slots.size(); ++i) {
    if (!old_used[i]) continue;
    size_t bucket = FlatProbeBucket(old_slots[i].key, shift_);
    while (used_[bucket]) bucket = (bucket + 1) & mask;
    slots_[bucket] = old_slots[i];
    used_[bucket] = 1;
  }
}

}  // namespace joinmi
