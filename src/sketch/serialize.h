// Binary (de)serialization of sketches. Sketches are built offline and
// probed online, so a discovery deployment needs to persist them; this is
// the storage format for the sketch index.
//
// Format (little-endian, version-tagged):
//   magic "JMSK" | u32 version | u8 method | u8 side | u64 capacity
//   | u64 source_rows | u64 source_distinct_keys | u64 entry_count
//   | entries: u64 key_hash, f64 rank, u8 value_tag, value payload
// Value payload: int64 (8 bytes), double (8 bytes), or u32 length + bytes
// for strings; tag 0 encodes null.

#ifndef JOINMI_SKETCH_SERIALIZE_H_
#define JOINMI_SKETCH_SERIALIZE_H_

#include <string>

#include "src/common/status.h"
#include "src/sketch/sketch.h"

namespace joinmi {

/// \brief Serializes a sketch to a binary string.
std::string SerializeSketch(const Sketch& sketch);

/// \brief Parses a serialized sketch; validates magic, version, tags, and
/// payload bounds, so truncated or corrupted inputs fail cleanly.
Result<Sketch> DeserializeSketch(const std::string& data);

/// \brief Writes a sketch to a file.
Status WriteSketchFile(const Sketch& sketch, const std::string& path);

/// \brief Reads a sketch from a file.
Result<Sketch> ReadSketchFile(const std::string& path);

}  // namespace joinmi

#endif  // JOINMI_SKETCH_SERIALIZE_H_
