// Binary (de)serialization of sketches. Sketches are built offline and
// probed online, so a discovery deployment needs to persist them; this is
// the storage format for the sketch index.
//
// Format (little-endian, version-tagged):
//   magic "JMSK" | u32 version | u8 method | u8 side | u32 hash_seed
//   | u64 capacity | u64 source_rows | u64 source_distinct_keys
//   | u64 entry_count
//   | entries: u64 key_hash, f64 rank, u8 value_tag, value payload
// Value payload: int64 (8 bytes), double (8 bytes), or u32 length + bytes
// for strings; tag 0 encodes null.
//
// Version history: v1 lacked the hash_seed field; v2 (current) records the
// seed so JoinSketches can enforce its same-seed precondition on
// deserialized sketches. v1 buffers still load, with the seed assumed to be
// the default 0 — a v1 sketch built under a custom seed is indistinguishable
// and should be re-sketched.

#ifndef JOINMI_SKETCH_SERIALIZE_H_
#define JOINMI_SKETCH_SERIALIZE_H_

#include <cstring>
#include <string>

#include "src/common/status.h"
#include "src/sketch/sketch.h"

namespace joinmi {

/// Little-endian wire primitives shared by the sketch format and the
/// composite formats built on it (e.g. the discovery sketch index).
namespace wire {

inline void AppendRaw(std::string* out, const void* data, size_t len) {
  out->append(static_cast<const char*>(data), len);
}

template <typename T>
void AppendPod(std::string* out, T value) {
  AppendRaw(out, &value, sizeof(T));
}

/// \brief u32 length + bytes.
void AppendLengthPrefixed(std::string* out, const std::string& s);

/// \brief FNV-1a 64-bit content checksum. Not cryptographic — it exists so
/// composite formats (e.g. the discovery shard manifest) can detect
/// truncated, bit-flipped, or swapped payload files before parsing them.
uint64_t Checksum64(const std::string& data);

/// \brief Writes `data` to `path`, flushing before reporting success so a
/// full disk cannot masquerade as a persisted file.
Status WriteFileBytes(const std::string& data, const std::string& path);

/// \brief Reads a whole binary file.
Result<std::string> ReadFileBytes(const std::string& path);

/// \brief Bounds-checked sequential reader over a serialized buffer.
class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  template <typename T>
  Status Read(T* out) {
    if (pos_ + sizeof(T) > data_.size()) {
      return Status::IOError("truncated buffer");
    }
    std::memcpy(out, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  Status ReadBytes(size_t len, std::string* out);

  /// \brief Reads a u32 length + bytes string.
  Status ReadLengthPrefixed(std::string* out);

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace wire

/// \brief Serializes a sketch to a binary string (current format version).
std::string SerializeSketch(const Sketch& sketch);

/// \brief Parses a serialized sketch; validates magic, version, tags, and
/// payload bounds, so truncated or corrupted inputs fail cleanly. Reads
/// both current (v2) and legacy (v1, seedless) buffers.
Result<Sketch> DeserializeSketch(const std::string& data);

/// \brief Writes a sketch to a file.
Status WriteSketchFile(const Sketch& sketch, const std::string& path);

/// \brief Reads a sketch from a file.
Result<Sketch> ReadSketchFile(const std::string& path);

}  // namespace joinmi

#endif  // JOINMI_SKETCH_SERIALIZE_H_
