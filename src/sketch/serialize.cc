#include "src/sketch/serialize.h"

#include <cstring>
#include <fstream>
#include <sstream>

namespace joinmi {

namespace {

constexpr char kMagic[4] = {'J', 'M', 'S', 'K'};
constexpr uint32_t kVersion = 1;

// Value tags in the wire format.
enum : uint8_t {
  kTagNull = 0,
  kTagInt64 = 1,
  kTagDouble = 2,
  kTagString = 3,
};

void AppendRaw(std::string* out, const void* data, size_t len) {
  out->append(static_cast<const char*>(data), len);
}

template <typename T>
void AppendPod(std::string* out, T value) {
  AppendRaw(out, &value, sizeof(T));
}

void AppendValue(std::string* out, const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      AppendPod<uint8_t>(out, kTagNull);
      break;
    case DataType::kInt64:
      AppendPod<uint8_t>(out, kTagInt64);
      AppendPod<int64_t>(out, v.int64());
      break;
    case DataType::kDouble:
      AppendPod<uint8_t>(out, kTagDouble);
      AppendPod<double>(out, v.dbl());
      break;
    case DataType::kString:
      AppendPod<uint8_t>(out, kTagString);
      AppendPod<uint32_t>(out, static_cast<uint32_t>(v.str().size()));
      AppendRaw(out, v.str().data(), v.str().size());
      break;
  }
}

/// Bounds-checked sequential reader over the serialized buffer.
class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  template <typename T>
  Status Read(T* out) {
    if (pos_ + sizeof(T) > data_.size()) {
      return Status::IOError("truncated sketch buffer");
    }
    std::memcpy(out, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  Status ReadBytes(size_t len, std::string* out) {
    if (pos_ + len > data_.size()) {
      return Status::IOError("truncated sketch string payload");
    }
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

Result<Value> ReadValue(Reader* reader) {
  uint8_t tag = 0;
  JOINMI_RETURN_NOT_OK(reader->Read(&tag));
  switch (tag) {
    case kTagNull:
      return Value::Null();
    case kTagInt64: {
      int64_t v = 0;
      JOINMI_RETURN_NOT_OK(reader->Read(&v));
      return Value(v);
    }
    case kTagDouble: {
      double v = 0.0;
      JOINMI_RETURN_NOT_OK(reader->Read(&v));
      return Value(v);
    }
    case kTagString: {
      uint32_t len = 0;
      JOINMI_RETURN_NOT_OK(reader->Read(&len));
      std::string s;
      JOINMI_RETURN_NOT_OK(reader->ReadBytes(len, &s));
      return Value(std::move(s));
    }
    default:
      return Status::IOError("unknown value tag in sketch buffer");
  }
}

}  // namespace

std::string SerializeSketch(const Sketch& sketch) {
  std::string out;
  out.reserve(32 + sketch.entries.size() * 24);
  AppendRaw(&out, kMagic, sizeof(kMagic));
  AppendPod<uint32_t>(&out, kVersion);
  AppendPod<uint8_t>(&out, static_cast<uint8_t>(sketch.method));
  AppendPod<uint8_t>(&out, static_cast<uint8_t>(sketch.side));
  AppendPod<uint64_t>(&out, sketch.capacity);
  AppendPod<uint64_t>(&out, sketch.source_rows);
  AppendPod<uint64_t>(&out, sketch.source_distinct_keys);
  AppendPod<uint64_t>(&out, sketch.entries.size());
  for (const SketchEntry& entry : sketch.entries) {
    AppendPod<uint64_t>(&out, entry.key_hash);
    AppendPod<double>(&out, entry.rank);
    AppendValue(&out, entry.value);
  }
  return out;
}

Result<Sketch> DeserializeSketch(const std::string& data) {
  Reader reader(data);
  char magic[4];
  JOINMI_RETURN_NOT_OK(reader.Read(&magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError("bad sketch magic");
  }
  uint32_t version = 0;
  JOINMI_RETURN_NOT_OK(reader.Read(&version));
  if (version != kVersion) {
    return Status::IOError("unsupported sketch version " +
                           std::to_string(version));
  }
  uint8_t method = 0, side = 0;
  JOINMI_RETURN_NOT_OK(reader.Read(&method));
  JOINMI_RETURN_NOT_OK(reader.Read(&side));
  if (method > static_cast<uint8_t>(SketchMethod::kCsk)) {
    return Status::IOError("unknown sketch method tag");
  }
  if (side > static_cast<uint8_t>(SketchSide::kCandidate)) {
    return Status::IOError("unknown sketch side tag");
  }
  Sketch sketch;
  sketch.method = static_cast<SketchMethod>(method);
  sketch.side = static_cast<SketchSide>(side);
  uint64_t capacity = 0, source_rows = 0, distinct = 0, count = 0;
  JOINMI_RETURN_NOT_OK(reader.Read(&capacity));
  JOINMI_RETURN_NOT_OK(reader.Read(&source_rows));
  JOINMI_RETURN_NOT_OK(reader.Read(&distinct));
  JOINMI_RETURN_NOT_OK(reader.Read(&count));
  sketch.capacity = capacity;
  sketch.source_rows = source_rows;
  sketch.source_distinct_keys = distinct;
  // An upper bound check so corrupted counts cannot trigger huge allocs:
  // each entry needs at least 17 bytes on the wire.
  if (count * 17 > data.size()) {
    return Status::IOError("sketch entry count exceeds buffer size");
  }
  sketch.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SketchEntry entry;
    JOINMI_RETURN_NOT_OK(reader.Read(&entry.key_hash));
    JOINMI_RETURN_NOT_OK(reader.Read(&entry.rank));
    JOINMI_ASSIGN_OR_RETURN(entry.value, ReadValue(&reader));
    sketch.entries.push_back(std::move(entry));
  }
  if (!reader.AtEnd()) {
    return Status::IOError("trailing bytes after sketch payload");
  }
  return sketch;
}

Status WriteSketchFile(const Sketch& sketch, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  const std::string data = SerializeSketch(sketch);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) return Status::IOError("failed writing '" + path + "'");
  return Status::OK();
}

Result<Sketch> ReadSketchFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeSketch(buffer.str());
}

}  // namespace joinmi
