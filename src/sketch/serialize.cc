#include "src/sketch/serialize.h"

#include <cstring>
#include <fstream>
#include <sstream>

namespace joinmi {

namespace wire {

void AppendLengthPrefixed(std::string* out, const std::string& s) {
  AppendPod<uint32_t>(out, static_cast<uint32_t>(s.size()));
  AppendRaw(out, s.data(), s.size());
}

uint64_t Checksum64(const std::string& data) {
  // FNV-1a, 64-bit offset basis / prime. The basis previously had a
  // dropped digit (1469598103934665603), silently making this a
  // non-standard hash; the known-answer tests in serialize_test.cc pin
  // the real constants now. Manifests written under the old basis fail
  // their checksum check on load — repartition to regenerate them.
  uint64_t hash = 14695981039346656037ULL;
  for (unsigned char byte : data) {
    hash ^= byte;
    hash *= 1099511628211ULL;
  }
  return hash;
}

Status Reader::ReadBytes(size_t len, std::string* out) {
  if (pos_ + len > data_.size()) {
    return Status::IOError("truncated string payload");
  }
  out->assign(data_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

Status Reader::ReadLengthPrefixed(std::string* out) {
  uint32_t len = 0;
  JOINMI_RETURN_NOT_OK(Read(&len));
  return ReadBytes(len, out);
}

Status WriteFileBytes(const std::string& data, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  // close() flushes; a flush failure (e.g. full disk) sets failbit, which
  // would otherwise be silently discarded in the destructor.
  out.close();
  if (!out) return Status::IOError("failed writing '" + path + "'");
  return Status::OK();
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("failed reading '" + path + "'");
  return buffer.str();
}

}  // namespace wire

namespace {

constexpr char kMagic[4] = {'J', 'M', 'S', 'K'};
// v1 had no hash_seed field; v2 inserts it after the side byte.
constexpr uint32_t kLegacyVersion = 1;
constexpr uint32_t kVersion = 2;

// Value tags in the wire format.
enum : uint8_t {
  kTagNull = 0,
  kTagInt64 = 1,
  kTagDouble = 2,
  kTagString = 3,
};

void AppendValue(std::string* out, const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      wire::AppendPod<uint8_t>(out, kTagNull);
      break;
    case DataType::kInt64:
      wire::AppendPod<uint8_t>(out, kTagInt64);
      wire::AppendPod<int64_t>(out, v.int64());
      break;
    case DataType::kDouble:
      wire::AppendPod<uint8_t>(out, kTagDouble);
      wire::AppendPod<double>(out, v.dbl());
      break;
    case DataType::kString:
      wire::AppendPod<uint8_t>(out, kTagString);
      wire::AppendLengthPrefixed(out, v.str());
      break;
  }
}

Result<Value> ReadValue(wire::Reader* reader) {
  uint8_t tag = 0;
  JOINMI_RETURN_NOT_OK(reader->Read(&tag));
  switch (tag) {
    case kTagNull:
      return Value::Null();
    case kTagInt64: {
      int64_t v = 0;
      JOINMI_RETURN_NOT_OK(reader->Read(&v));
      return Value(v);
    }
    case kTagDouble: {
      double v = 0.0;
      JOINMI_RETURN_NOT_OK(reader->Read(&v));
      return Value(v);
    }
    case kTagString: {
      std::string s;
      JOINMI_RETURN_NOT_OK(reader->ReadLengthPrefixed(&s));
      return Value(std::move(s));
    }
    default:
      return Status::IOError("unknown value tag in sketch buffer");
  }
}

}  // namespace

std::string SerializeSketch(const Sketch& sketch) {
  std::string out;
  out.reserve(40 + sketch.entries.size() * 24);
  wire::AppendRaw(&out, kMagic, sizeof(kMagic));
  wire::AppendPod<uint32_t>(&out, kVersion);
  wire::AppendPod<uint8_t>(&out, static_cast<uint8_t>(sketch.method));
  wire::AppendPod<uint8_t>(&out, static_cast<uint8_t>(sketch.side));
  wire::AppendPod<uint32_t>(&out, sketch.hash_seed);
  wire::AppendPod<uint64_t>(&out, sketch.capacity);
  wire::AppendPod<uint64_t>(&out, sketch.source_rows);
  wire::AppendPod<uint64_t>(&out, sketch.source_distinct_keys);
  wire::AppendPod<uint64_t>(&out, sketch.entries.size());
  for (const SketchEntry& entry : sketch.entries) {
    wire::AppendPod<uint64_t>(&out, entry.key_hash);
    wire::AppendPod<double>(&out, entry.rank);
    AppendValue(&out, entry.value);
  }
  return out;
}

Result<Sketch> DeserializeSketch(const std::string& data) {
  wire::Reader reader(data);
  char magic[4];
  JOINMI_RETURN_NOT_OK(reader.Read(&magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError("bad sketch magic");
  }
  uint32_t version = 0;
  JOINMI_RETURN_NOT_OK(reader.Read(&version));
  if (version != kVersion && version != kLegacyVersion) {
    return Status::IOError("unsupported sketch version " +
                           std::to_string(version));
  }
  uint8_t method = 0, side = 0;
  JOINMI_RETURN_NOT_OK(reader.Read(&method));
  JOINMI_RETURN_NOT_OK(reader.Read(&side));
  if (method > static_cast<uint8_t>(SketchMethod::kCsk)) {
    return Status::IOError("unknown sketch method tag");
  }
  if (side > static_cast<uint8_t>(SketchSide::kCandidate)) {
    return Status::IOError("unknown sketch side tag");
  }
  Sketch sketch;
  sketch.method = static_cast<SketchMethod>(method);
  sketch.side = static_cast<SketchSide>(side);
  if (version >= 2) {
    // v1 buffers predate seed tracking and deserialize with the default
    // seed 0. A v1 sketch actually built under a non-default seed cannot
    // be detected — re-sketch such data to regain seed enforcement.
    JOINMI_RETURN_NOT_OK(reader.Read(&sketch.hash_seed));
  }
  uint64_t capacity = 0, source_rows = 0, distinct = 0, count = 0;
  JOINMI_RETURN_NOT_OK(reader.Read(&capacity));
  JOINMI_RETURN_NOT_OK(reader.Read(&source_rows));
  JOINMI_RETURN_NOT_OK(reader.Read(&distinct));
  JOINMI_RETURN_NOT_OK(reader.Read(&count));
  sketch.capacity = capacity;
  sketch.source_rows = source_rows;
  sketch.source_distinct_keys = distinct;
  // An upper bound check so corrupted counts cannot trigger huge allocs:
  // each entry needs at least 17 bytes on the wire.
  if (count * 17 > data.size()) {
    return Status::IOError("sketch entry count exceeds buffer size");
  }
  sketch.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SketchEntry entry;
    JOINMI_RETURN_NOT_OK(reader.Read(&entry.key_hash));
    JOINMI_RETURN_NOT_OK(reader.Read(&entry.rank));
    JOINMI_ASSIGN_OR_RETURN(entry.value, ReadValue(&reader));
    sketch.entries.push_back(std::move(entry));
  }
  if (!reader.AtEnd()) {
    return Status::IOError("trailing bytes after sketch payload");
  }
  return sketch;
}

Status WriteSketchFile(const Sketch& sketch, const std::string& path) {
  return wire::WriteFileBytes(SerializeSketch(sketch), path);
}

Result<Sketch> ReadSketchFile(const std::string& path) {
  JOINMI_ASSIGN_OR_RETURN(std::string data, wire::ReadFileBytes(path));
  return DeserializeSketch(data);
}

}  // namespace joinmi
