// PRISK: two-level sampling with priority (frequency-weighted) level-1 key
// selection, following Duffield–Lund–Thorup priority sampling: key k gets
// priority rank h_u(h(k)) / N_k, so frequent keys are preferentially kept.
// Level 2 is identical to LV2SK. The paper reports results "very similar to
// LV2SK" on synthetic data (Table I), which our benches reproduce.

#include "src/sketch/builder.h"
#include "src/sketch/two_level.h"

namespace joinmi {

Result<Sketch> PriskBuilder::SketchTrain(const Column& keys,
                                         const Column& values) const {
  JOINMI_ASSIGN_OR_RETURN(Sketch sketch,
                          InitSketch(keys, values, SketchSide::kTrain));
  return internal::BuildTwoLevelTrain(*this, keys, values,
                                      /*priority_weighted=*/true,
                                      std::move(sketch));
}

}  // namespace joinmi
