#include "src/core/join_mi.h"

#include "src/join/left_join.h"
#include "src/sketch/serialize.h"

namespace joinmi {

Result<JoinMIEstimate> FullJoinMI(const Table& train, const Table& cand,
                                  const JoinMIQuerySpec& spec,
                                  const JoinMIConfig& config) {
  JOINMI_RETURN_NOT_OK(config.Validate());
  JoinAggregateOptions join_options;
  join_options.agg = config.aggregation;
  JOINMI_ASSIGN_OR_RETURN(
      JoinAggregateResult joined,
      LeftJoinAggregate(train, spec.train_key, spec.train_target, cand,
                        spec.cand_key, spec.cand_value, join_options));
  JOINMI_ASSIGN_OR_RETURN(auto feature_col, joined.table->GetColumn("X"));
  JOINMI_ASSIGN_OR_RETURN(auto target_col,
                          joined.table->GetColumn(spec.train_target));
  PairedSample sample;
  sample.x.reserve(joined.table->num_rows());
  sample.y.reserve(joined.table->num_rows());
  for (size_t row = 0; row < joined.table->num_rows(); ++row) {
    if (!feature_col->IsValid(row) || !target_col->IsValid(row)) continue;
    sample.x.push_back(feature_col->GetValue(row));
    sample.y.push_back(target_col->GetValue(row));
  }
  if (sample.size() < config.min_join_size) {
    return Status::OutOfRange("full join produced too few usable rows");
  }
  JoinMIEstimate estimate;
  estimate.sample_size = sample.size();
  estimate.sketched = false;
  if (config.estimator.has_value()) {
    estimate.estimator = *config.estimator;
    JOINMI_ASSIGN_OR_RETURN(
        estimate.mi, EstimateMI(*config.estimator, sample, config.mi_options));
  } else {
    auto all_numeric = [](const std::vector<Value>& values) {
      for (const Value& v : values) {
        if (!IsNumeric(v.type())) return false;
      }
      return true;
    };
    JOINMI_ASSIGN_OR_RETURN(
        estimate.estimator,
        ChooseEstimator(all_numeric(sample.x) ? DataType::kDouble
                                              : DataType::kString,
                        all_numeric(sample.y) ? DataType::kDouble
                                              : DataType::kString));
    JOINMI_ASSIGN_OR_RETURN(
        estimate.mi,
        EstimateMI(estimate.estimator, sample, config.mi_options));
  }
  return estimate;
}

Result<JoinMIEstimate> SketchJoinMI(const Table& train, const Table& cand,
                                    const JoinMIQuerySpec& spec,
                                    const JoinMIConfig& config) {
  JOINMI_ASSIGN_OR_RETURN(
      JoinMIQuery query,
      JoinMIQuery::Create(train, spec.train_key, spec.train_target, config));
  return query.EstimateTable(cand, spec.cand_key, spec.cand_value);
}

Result<JoinMIQuery> JoinMIQuery::Create(const Table& train,
                                        const std::string& train_key,
                                        const std::string& train_target,
                                        const JoinMIConfig& config) {
  JOINMI_RETURN_NOT_OK(config.Validate());
  auto builder =
      MakeSketchBuilder(config.sketch_method, config.sketch_options());
  JOINMI_ASSIGN_OR_RETURN(auto key_col, train.GetColumn(train_key));
  JOINMI_ASSIGN_OR_RETURN(auto target_col, train.GetColumn(train_target));
  JOINMI_ASSIGN_OR_RETURN(Sketch sketch,
                          builder->SketchTrain(*key_col, *target_col));
  JOINMI_ASSIGN_OR_RETURN(PreparedTrainSketch prepared,
                          PreparedTrainSketch::Create(std::move(sketch)));
  return JoinMIQuery(std::move(prepared), config);
}

Result<JoinMIQuery> JoinMIQuery::FromTrainSketch(Sketch train_sketch,
                                                 const JoinMIConfig& config) {
  JOINMI_RETURN_NOT_OK(config.Validate());
  if (train_sketch.side != SketchSide::kTrain) {
    return Status::InvalidArgument(
        "FromTrainSketch requires a train-side sketch");
  }
  if (train_sketch.hash_seed != config.hash_seed) {
    return Status::InvalidArgument(
        "train sketch was built with hash seed " +
        std::to_string(train_sketch.hash_seed) + " but the config uses " +
        std::to_string(config.hash_seed));
  }
  JOINMI_ASSIGN_OR_RETURN(PreparedTrainSketch prepared,
                          PreparedTrainSketch::Create(std::move(train_sketch)));
  return JoinMIQuery(std::move(prepared), config);
}

const std::string& JoinMIQuery::SerializedTrainSketch() const {
  std::call_once(serialized_->once, [this] {
    serialized_->bytes = SerializeSketch(train_sketch_.sketch());
  });
  return serialized_->bytes;
}

Result<Sketch> JoinMIQuery::SketchCandidate(
    const Table& cand, const std::string& cand_key,
    const std::string& cand_value) const {
  auto builder =
      MakeSketchBuilder(config_.sketch_method, config_.sketch_options());
  JOINMI_ASSIGN_OR_RETURN(auto key_col, cand.GetColumn(cand_key));
  JOINMI_ASSIGN_OR_RETURN(auto value_col, cand.GetColumn(cand_value));
  return builder->SketchCandidate(*key_col, *value_col, config_.aggregation);
}

Result<JoinMIEstimate> JoinMIQuery::Estimate(const Sketch& candidate) const {
  SketchMIResult sketch_result;
  if (config_.estimator.has_value()) {
    JOINMI_ASSIGN_OR_RETURN(
        sketch_result,
        EstimateSketchMI(train_sketch_, candidate, *config_.estimator,
                         config_.mi_options, config_.min_join_size));
  } else {
    JOINMI_ASSIGN_OR_RETURN(
        sketch_result,
        EstimateSketchMIAuto(train_sketch_, candidate, config_.mi_options,
                             config_.min_join_size));
  }
  JoinMIEstimate estimate;
  estimate.mi = sketch_result.mi;
  estimate.estimator = sketch_result.estimator;
  estimate.sample_size = sketch_result.join_size;
  estimate.sketched = true;
  return estimate;
}

Result<JoinMIEstimate> JoinMIQuery::Estimate(
    const PreparedCandidateSketch& candidate) const {
  SketchMIResult sketch_result;
  if (config_.estimator.has_value()) {
    JOINMI_ASSIGN_OR_RETURN(
        sketch_result,
        EstimateSketchMI(train_sketch_.sketch(), candidate,
                         *config_.estimator, config_.mi_options,
                         config_.min_join_size));
  } else {
    JOINMI_ASSIGN_OR_RETURN(
        sketch_result,
        EstimateSketchMIAuto(train_sketch_.sketch(), candidate,
                             config_.mi_options, config_.min_join_size));
  }
  JoinMIEstimate estimate;
  estimate.mi = sketch_result.mi;
  estimate.estimator = sketch_result.estimator;
  estimate.sample_size = sketch_result.join_size;
  estimate.sketched = true;
  return estimate;
}

Result<JoinMIEstimate> JoinMIQuery::EstimateTable(
    const Table& cand, const std::string& cand_key,
    const std::string& cand_value) const {
  JOINMI_ASSIGN_OR_RETURN(Sketch candidate,
                          SketchCandidate(cand, cand_key, cand_value));
  return Estimate(candidate);
}

}  // namespace joinmi
