// Library-wide configuration for MI-over-join queries: which sketch, what
// capacity, which estimator policy, and estimator knobs. One validated
// struct flows from the public API down to the sketch and estimator layers.

#ifndef JOINMI_CORE_CONFIG_H_
#define JOINMI_CORE_CONFIG_H_

#include <optional>
#include <string>

#include "src/common/status.h"
#include "src/join/aggregators.h"
#include "src/mi/estimator.h"
#include "src/sketch/builder.h"

namespace joinmi {

namespace wire {
class Reader;
}  // namespace wire

/// \brief Configuration for JoinMIQuery.
struct JoinMIConfig {
  /// Sketching method (TUPSK is the paper's recommendation).
  SketchMethod sketch_method = SketchMethod::kTupsk;
  /// Sketch capacity n — the single size parameter.
  size_t sketch_capacity = 256;
  /// Shared hash seed; all sketches that should join must agree.
  uint32_t hash_seed = 0;
  /// Seed for non-coordinated sampling randomness.
  uint64_t sampling_seed = 0x5EEDBA5EULL;
  /// Featurization function for candidate tables.
  AggKind aggregation = AggKind::kAvg;
  /// Estimator override; unset means auto-select by data types.
  std::optional<MIEstimatorKind> estimator;
  /// Estimator options (k, smoothing, perturbation).
  MIOptions mi_options;
  /// Minimum sketch-join size for a meaningful estimate (the paper uses
  /// 100 on real data).
  size_t min_join_size = 1;

  /// \brief Returns the SketchOptions slice of this config.
  SketchOptions sketch_options() const {
    return SketchOptions{sketch_capacity, hash_seed, sampling_seed};
  }

  /// \brief Validates ranges (capacity > 0, k >= 1, ...).
  Status Validate() const;

  std::string ToString() const;

  /// \brief Field-wise equality. Two configs compare equal iff sketches and
  /// estimates produced under one are interchangeable with the other's —
  /// the agreement every shard of a partitioned index must satisfy.
  bool operator==(const JoinMIConfig& other) const {
    return sketch_method == other.sketch_method &&
           sketch_capacity == other.sketch_capacity &&
           hash_seed == other.hash_seed &&
           sampling_seed == other.sampling_seed &&
           aggregation == other.aggregation &&
           estimator == other.estimator &&
           mi_options.k == other.mi_options.k &&
           mi_options.laplace_alpha == other.mi_options.laplace_alpha &&
           mi_options.perturb_sigma == other.mi_options.perturb_sigma &&
           mi_options.perturb_seed == other.mi_options.perturb_seed &&
           min_join_size == other.min_join_size;
  }
  bool operator!=(const JoinMIConfig& other) const {
    return !(*this == other);
  }
};

/// \brief Size in bytes of the config wire layout below. The layout is
/// fixed-width, so formats with fixed-size headers (e.g. the "JMPS" paged
/// shard file) can embed a config block at a known offset.
constexpr size_t kJoinMIConfigWireSize = 60;

/// \brief Appends the config in its shared binary wire layout — the one
/// layout used by the "JMIX" index format, the "JMIM" v2 shard manifest,
/// and the "JMRP" serving handshake, so a config written by any of them is
/// readable by all.
void AppendJoinMIConfig(std::string* out, const JoinMIConfig& config);

/// \brief Parses a config from the shared wire layout; validates enum tags
/// and ranges (Validate()), so corrupted buffers fail cleanly.
Result<JoinMIConfig> ReadJoinMIConfig(wire::Reader* reader);

}  // namespace joinmi

#endif  // JOINMI_CORE_CONFIG_H_
