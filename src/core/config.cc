#include "src/core/config.h"

#include "src/common/string_util.h"
#include "src/sketch/serialize.h"

namespace joinmi {

Status JoinMIConfig::Validate() const {
  if (sketch_capacity == 0) {
    return Status::InvalidArgument("sketch_capacity must be positive");
  }
  if (mi_options.k < 1) {
    return Status::InvalidArgument("estimator k must be >= 1");
  }
  if (mi_options.laplace_alpha < 0.0) {
    return Status::InvalidArgument("laplace_alpha must be >= 0");
  }
  if (mi_options.perturb_sigma < 0.0) {
    return Status::InvalidArgument("perturb_sigma must be >= 0");
  }
  return Status::OK();
}

std::string JoinMIConfig::ToString() const {
  return StrFormat(
      "JoinMIConfig{sketch=%s, n=%zu, agg=%s, estimator=%s, k=%d, "
      "min_join_size=%zu}",
      SketchMethodToString(sketch_method), sketch_capacity,
      AggKindToString(aggregation),
      estimator.has_value() ? MIEstimatorKindToString(*estimator) : "auto",
      mi_options.k, min_join_size);
}

void AppendJoinMIConfig(std::string* out, const JoinMIConfig& config) {
  wire::AppendPod<uint8_t>(out, static_cast<uint8_t>(config.sketch_method));
  wire::AppendPod<uint64_t>(out, config.sketch_capacity);
  wire::AppendPod<uint32_t>(out, config.hash_seed);
  wire::AppendPod<uint64_t>(out, config.sampling_seed);
  wire::AppendPod<uint8_t>(out, static_cast<uint8_t>(config.aggregation));
  wire::AppendPod<uint8_t>(out, config.estimator.has_value() ? 1 : 0);
  wire::AppendPod<uint8_t>(
      out, config.estimator.has_value()
               ? static_cast<uint8_t>(*config.estimator)
               : 0);
  wire::AppendPod<int32_t>(out, config.mi_options.k);
  wire::AppendPod<double>(out, config.mi_options.laplace_alpha);
  wire::AppendPod<double>(out, config.mi_options.perturb_sigma);
  wire::AppendPod<uint64_t>(out, config.mi_options.perturb_seed);
  wire::AppendPod<uint64_t>(out, config.min_join_size);
}

Result<JoinMIConfig> ReadJoinMIConfig(wire::Reader* reader) {
  JoinMIConfig config;
  uint8_t method = 0, aggregation = 0, has_estimator = 0, estimator = 0;
  uint64_t capacity = 0, min_join_size = 0;
  JOINMI_RETURN_NOT_OK(reader->Read(&method));
  JOINMI_RETURN_NOT_OK(reader->Read(&capacity));
  JOINMI_RETURN_NOT_OK(reader->Read(&config.hash_seed));
  JOINMI_RETURN_NOT_OK(reader->Read(&config.sampling_seed));
  JOINMI_RETURN_NOT_OK(reader->Read(&aggregation));
  JOINMI_RETURN_NOT_OK(reader->Read(&has_estimator));
  JOINMI_RETURN_NOT_OK(reader->Read(&estimator));
  JOINMI_RETURN_NOT_OK(reader->Read(&config.mi_options.k));
  JOINMI_RETURN_NOT_OK(reader->Read(&config.mi_options.laplace_alpha));
  JOINMI_RETURN_NOT_OK(reader->Read(&config.mi_options.perturb_sigma));
  JOINMI_RETURN_NOT_OK(reader->Read(&config.mi_options.perturb_seed));
  JOINMI_RETURN_NOT_OK(reader->Read(&min_join_size));
  if (method > static_cast<uint8_t>(SketchMethod::kCsk)) {
    return Status::IOError("unknown sketch method tag in serialized config");
  }
  if (aggregation > static_cast<uint8_t>(AggKind::kMedian)) {
    return Status::IOError("unknown aggregation tag in serialized config");
  }
  if (has_estimator > 1 ||
      estimator > static_cast<uint8_t>(MIEstimatorKind::kDCKSG)) {
    return Status::IOError("unknown estimator tag in serialized config");
  }
  config.sketch_method = static_cast<SketchMethod>(method);
  config.sketch_capacity = capacity;
  config.aggregation = static_cast<AggKind>(aggregation);
  if (has_estimator == 1) {
    config.estimator = static_cast<MIEstimatorKind>(estimator);
  }
  config.min_join_size = min_join_size;
  JOINMI_RETURN_NOT_OK(config.Validate());
  return config;
}

}  // namespace joinmi
