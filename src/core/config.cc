#include "src/core/config.h"

#include "src/common/string_util.h"

namespace joinmi {

Status JoinMIConfig::Validate() const {
  if (sketch_capacity == 0) {
    return Status::InvalidArgument("sketch_capacity must be positive");
  }
  if (mi_options.k < 1) {
    return Status::InvalidArgument("estimator k must be >= 1");
  }
  if (mi_options.laplace_alpha < 0.0) {
    return Status::InvalidArgument("laplace_alpha must be >= 0");
  }
  if (mi_options.perturb_sigma < 0.0) {
    return Status::InvalidArgument("perturb_sigma must be >= 0");
  }
  return Status::OK();
}

std::string JoinMIConfig::ToString() const {
  return StrFormat(
      "JoinMIConfig{sketch=%s, n=%zu, agg=%s, estimator=%s, k=%d, "
      "min_join_size=%zu}",
      SketchMethodToString(sketch_method), sketch_capacity,
      AggKindToString(aggregation),
      estimator.has_value() ? MIEstimatorKindToString(*estimator) : "auto",
      mi_options.k, min_join_size);
}

}  // namespace joinmi
