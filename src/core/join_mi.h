// Public high-level API: estimate the mutual information between a base
// table's target attribute and a candidate table's feature attribute as it
// would appear after a left-outer join-aggregation — either exactly (full
// materialized join) or approximately (join-free, via sketches).
//
// This is the problem statement of Section III-A, packaged the way a data
// discovery system would consume it.

#ifndef JOINMI_CORE_JOIN_MI_H_
#define JOINMI_CORE_JOIN_MI_H_

#include <memory>
#include <mutex>
#include <string>

#include "src/core/config.h"
#include "src/sketch/sketch_join.h"
#include "src/table/table.h"

namespace joinmi {

/// \brief Column bindings for one MI-over-join query.
struct JoinMIQuerySpec {
  std::string train_key;     ///< K_Y: join key in the base table
  std::string train_target;  ///< Y: target attribute in the base table
  std::string cand_key;      ///< K_X/K_Z: join key in the candidate table
  std::string cand_value;    ///< Z: attribute to featurize into X
};

/// \brief Outcome of one query evaluation.
struct JoinMIEstimate {
  double mi = 0.0;
  MIEstimatorKind estimator = MIEstimatorKind::kMLE;
  /// Samples the estimate was computed on (full-join rows or sketch-join
  /// pairs).
  size_t sample_size = 0;
  /// True if computed via sketches; false for the materialized join.
  bool sketched = false;
};

/// \brief One-shot exact evaluation: materializes the join-aggregation
/// query and runs the estimator on all joined rows.
Result<JoinMIEstimate> FullJoinMI(const Table& train, const Table& cand,
                                  const JoinMIQuerySpec& spec,
                                  const JoinMIConfig& config = {});

/// \brief One-shot sketch evaluation: builds both sketches, joins them, and
/// estimates MI on the recovered sample — never materializing the join.
Result<JoinMIEstimate> SketchJoinMI(const Table& train, const Table& cand,
                                    const JoinMIQuerySpec& spec,
                                    const JoinMIConfig& config = {});

/// \brief Reusable query object for the discovery setting: sketch the base
/// table once, then probe many candidate tables cheaply.
class JoinMIQuery {
 public:
  /// \brief Sketches the base table's (key, target) pair.
  static Result<JoinMIQuery> Create(const Table& train,
                                    const std::string& train_key,
                                    const std::string& train_target,
                                    const JoinMIConfig& config = {});

  /// \brief Reconstructs a query from an already-built train sketch — the
  /// serving path, where the sketch arrives over the wire and the base
  /// table's rows never leave the client. Rejects candidate-side sketches
  /// and sketches whose hash seed disagrees with `config`, so a server
  /// cannot silently answer from an incompatible sketch. Estimates match
  /// a Create()-built query over the same sketch exactly.
  static Result<JoinMIQuery> FromTrainSketch(Sketch train_sketch,
                                             const JoinMIConfig& config);

  /// \brief Builds a candidate sketch with this query's configuration so it
  /// can be stored in an offline index.
  Result<Sketch> SketchCandidate(const Table& cand,
                                 const std::string& cand_key,
                                 const std::string& cand_value) const;

  /// \brief Estimates MI against a pre-built candidate sketch.
  Result<JoinMIEstimate> Estimate(const Sketch& candidate) const;

  /// \brief Estimates MI against a prepared (probe-map-indexed) candidate
  /// sketch — the persisted-index hot path. Results match the Sketch
  /// overload exactly.
  Result<JoinMIEstimate> Estimate(const PreparedCandidateSketch& candidate) const;

  /// \brief Convenience: sketch + estimate in one call.
  Result<JoinMIEstimate> EstimateTable(const Table& cand,
                                       const std::string& cand_key,
                                       const std::string& cand_value) const;

  const Sketch& train_sketch() const { return train_sketch_.sketch(); }
  const JoinMIConfig& config() const { return config_; }

  /// \brief The train sketch's wire bytes (serialize.h format), built
  /// lazily on first use and cached — an N-shard RPC fan-out ships the
  /// same bytes to every shard, so serialization must not scale with N.
  /// Thread-safe; copies of the query share the cache.
  const std::string& SerializedTrainSketch() const;

 private:
  JoinMIQuery(PreparedTrainSketch train_sketch, JoinMIConfig config)
      : train_sketch_(std::move(train_sketch)), config_(std::move(config)) {}

  // Pre-indexed for repeated probing: Estimate() against many candidate
  // sketches skips the per-join probe-map build.
  PreparedTrainSketch train_sketch_;
  JoinMIConfig config_;
  // Heap-held so the query stays movable (std::once_flag is not).
  struct SerializedCache {
    std::once_flag once;
    std::string bytes;
  };
  std::shared_ptr<SerializedCache> serialized_ =
      std::make_shared<SerializedCache>();
};

}  // namespace joinmi

#endif  // JOINMI_CORE_JOIN_MI_H_
