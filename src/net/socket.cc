#include "src/net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstring>

namespace joinmi {
namespace net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

Status SetBlocking(int fd, bool blocking) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Status::IOError(Errno("fcntl(F_GETFL)"));
  const int wanted = blocking ? (flags & ~O_NONBLOCK) : (flags | O_NONBLOCK);
  if (wanted != flags && fcntl(fd, F_SETFL, wanted) < 0) {
    return Status::IOError(Errno("fcntl(F_SETFL)"));
  }
  return Status::OK();
}

Status SetOneTimeout(int fd, int option, int timeout_ms) {
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv)) < 0) {
    return Status::IOError(Errno("setsockopt(timeout)"));
  }
  return Status::OK();
}

}  // namespace

// ------------------------------------------------------------------ Socket

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Socket::SetNonBlocking(bool nonblocking) {
  if (!valid()) return Status::IOError("socket is not open");
  return SetBlocking(fd_, !nonblocking);
}

Status Socket::SetTimeouts(int recv_timeout_ms, int send_timeout_ms) {
  if (!valid()) return Status::IOError("socket is not open");
  JOINMI_RETURN_NOT_OK(SetOneTimeout(fd_, SO_RCVTIMEO, recv_timeout_ms));
  return SetOneTimeout(fd_, SO_SNDTIMEO, send_timeout_ms);
}

Status Socket::WriteAll(const void* data, size_t len, size_t* bytes_written) {
  if (bytes_written != nullptr) *bytes_written = 0;
  if (!valid()) return Status::IOError("socket is not open");
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a peer that closed mid-write must surface as EPIPE,
    // not kill the process with SIGPIPE.
    const ssize_t n = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IOError("socket write timed out");
      }
      return Status::IOError(Errno("socket write failed"));
    }
    sent += static_cast<size_t>(n);
    if (bytes_written != nullptr) *bytes_written = sent;
  }
  return Status::OK();
}

Status Socket::ReadExact(void* data, size_t len) {
  if (!valid()) return Status::IOError("socket is not open");
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n == 0) {
      return Status::IOError("connection closed by peer");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IOError("socket read timed out");
      }
      return Status::IOError(Errno("socket read failed"));
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

bool Socket::StaleForReuse() const {
  if (!valid()) return true;
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  const int ready = ::poll(&pfd, 1, 0);
  if (ready < 0) return true;
  if (ready == 0) return false;  // idle and healthy
  if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) return true;
  if ((pfd.revents & POLLIN) != 0) {
    char byte;
    const ssize_t n = ::recv(fd_, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
    if (n == 0) return true;   // orderly FIN
    if (n > 0) return true;    // unsolicited bytes: framing is unsafe
    return errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR;
  }
  return false;
}

Result<Socket> Socket::Connect(const std::string& host, uint16_t port,
                               int connect_timeout_ms) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* addrs = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &addrs);
  if (rc != 0) {
    return Status::IOError("cannot resolve '" + host +
                           "': " + gai_strerror(rc));
  }
  Status last = Status::IOError("no addresses for '" + host + "'");
  for (struct addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::IOError(Errno("socket()"));
      continue;
    }
    Socket socket(fd);
    // Non-blocking connect + poll bounds the handshake; a down server
    // fails in connect_timeout_ms instead of the kernel's minutes-long
    // default, which is what lets the router degrade quickly.
    Status st = SetBlocking(fd, false);
    if (st.ok()) {
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
        st = Status::OK();
      } else if (errno != EINPROGRESS) {
        st = Status::IOError(Errno("connect to " + host + ":" + service));
      } else {
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLOUT;
        const int ready = ::poll(&pfd, 1, connect_timeout_ms);
        if (ready == 0) {
          st = Status::IOError("connect to " + host + ":" + service +
                               " timed out");
        } else if (ready < 0) {
          st = Status::IOError(Errno("poll during connect"));
        } else {
          int err = 0;
          socklen_t err_len = sizeof(err);
          if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0) {
            st = Status::IOError(Errno("getsockopt(SO_ERROR)"));
          } else if (err != 0) {
            errno = err;
            st = Status::IOError(
                Errno("connect to " + host + ":" + service));
          }
        }
      }
    }
    if (st.ok()) st = SetBlocking(fd, true);
    if (st.ok()) {
      ::freeaddrinfo(addrs);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return socket;
    }
    last = std::move(st);
  }
  ::freeaddrinfo(addrs);
  return last;
}

// ---------------------------------------------------------------- Listener

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Listener> Listener::Bind(const std::string& host, uint16_t port,
                                int backlog) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* addrs = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &addrs);
  if (rc != 0) {
    return Status::IOError("cannot resolve '" + host +
                           "': " + gai_strerror(rc));
  }
  Status last = Status::IOError("no addresses for '" + host + "'");
  for (struct addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::IOError(Errno("socket()"));
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) < 0 ||
        ::listen(fd, backlog) < 0) {
      last = Status::IOError(Errno("bind/listen on " + host + ":" + service));
      ::close(fd);
      continue;
    }
    // Recover the actual port for ephemeral binds (port 0).
    struct sockaddr_storage bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                      &bound_len) < 0) {
      last = Status::IOError(Errno("getsockname()"));
      ::close(fd);
      continue;
    }
    Listener listener;
    listener.fd_ = fd;
    if (bound.ss_family == AF_INET) {
      listener.port_ = ntohs(
          reinterpret_cast<struct sockaddr_in*>(&bound)->sin_port);
    } else if (bound.ss_family == AF_INET6) {
      listener.port_ = ntohs(
          reinterpret_cast<struct sockaddr_in6*>(&bound)->sin6_port);
    } else {
      listener.port_ = port;
    }
    ::freeaddrinfo(addrs);
    return listener;
  }
  ::freeaddrinfo(addrs);
  return last;
}

Result<Socket> Listener::AcceptWithTimeout(int timeout_ms) {
  if (!valid()) return Status::IOError("listener is not open");
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready == 0) return Status::OutOfRange("accept timed out");
  if (ready < 0) {
    if (errno == EINTR) return Status::OutOfRange("accept interrupted");
    return Status::IOError(Errno("poll during accept"));
  }
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return Status::IOError(Errno("accept()"));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

}  // namespace net
}  // namespace joinmi
