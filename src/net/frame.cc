#include "src/net/frame.h"

#include <cstring>

#include "src/sketch/serialize.h"

namespace joinmi {
namespace net {

namespace {

struct FrameHeader {
  FrameType type;
  uint32_t payload_len;
};

// Validates everything knowable from the fixed header alone — magic,
// version, type tag, payload bound — shared by the buffer and socket
// decode paths so they cannot drift.
Result<FrameHeader> ParseHeader(const char (&raw)[kFrameHeaderSize]) {
  if (std::memcmp(raw, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return Status::IOError("bad JMRP frame magic");
  }
  uint32_t version = 0;
  std::memcpy(&version, raw + 4, sizeof(version));
  if (version != kProtocolVersion) {
    return Status::IOError("unsupported JMRP protocol version " +
                           std::to_string(version) + " (this build speaks " +
                           std::to_string(kProtocolVersion) + ")");
  }
  const uint8_t type = static_cast<uint8_t>(raw[8]);
  if (type < static_cast<uint8_t>(FrameType::kHandshakeRequest) ||
      type > static_cast<uint8_t>(FrameType::kError)) {
    return Status::IOError("unknown JMRP frame type " + std::to_string(type));
  }
  FrameHeader header;
  header.type = static_cast<FrameType>(type);
  std::memcpy(&header.payload_len, raw + 9, sizeof(header.payload_len));
  if (header.payload_len > kMaxFramePayload) {
    return Status::IOError(
        "JMRP frame payload length " + std::to_string(header.payload_len) +
        " exceeds the " + std::to_string(kMaxFramePayload) + "-byte bound");
  }
  return header;
}

}  // namespace

const char* FrameTypeToString(FrameType type) {
  switch (type) {
    case FrameType::kHandshakeRequest:
      return "handshake_request";
    case FrameType::kHandshakeResponse:
      return "handshake_response";
    case FrameType::kSearchRequest:
      return "search_request";
    case FrameType::kSearchResponse:
      return "search_response";
    case FrameType::kHealthRequest:
      return "health_request";
    case FrameType::kHealthResponse:
      return "health_response";
    case FrameType::kError:
      return "error";
  }
  return "unknown";
}

std::string EncodeFrame(FrameType type, const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  wire::AppendRaw(&out, kFrameMagic, sizeof(kFrameMagic));
  wire::AppendPod<uint32_t>(&out, kProtocolVersion);
  wire::AppendPod<uint8_t>(&out, static_cast<uint8_t>(type));
  wire::AppendPod<uint32_t>(&out, static_cast<uint32_t>(payload.size()));
  wire::AppendRaw(&out, payload.data(), payload.size());
  return out;
}

Result<Frame> DecodeFrame(const std::string& buffer) {
  if (buffer.size() < kFrameHeaderSize) {
    return Status::IOError("truncated JMRP frame header");
  }
  char raw[kFrameHeaderSize];
  std::memcpy(raw, buffer.data(), kFrameHeaderSize);
  JOINMI_ASSIGN_OR_RETURN(FrameHeader header, ParseHeader(raw));
  if (buffer.size() - kFrameHeaderSize < header.payload_len) {
    return Status::IOError("truncated JMRP frame payload");
  }
  if (buffer.size() - kFrameHeaderSize > header.payload_len) {
    return Status::IOError("trailing bytes after JMRP frame payload");
  }
  Frame frame;
  frame.type = header.type;
  frame.payload = buffer.substr(kFrameHeaderSize);
  return frame;
}

Status SendFrame(Socket* socket, FrameType type, const std::string& payload,
                 size_t* bytes_written) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(
        "refusing to send a JMRP frame with a " +
        std::to_string(payload.size()) + "-byte payload (bound " +
        std::to_string(kMaxFramePayload) + ")");
  }
  const std::string encoded = EncodeFrame(type, payload);
  return socket->WriteAll(encoded.data(), encoded.size(), bytes_written);
}

Result<Frame> RecvFrame(Socket* socket) {
  char raw[kFrameHeaderSize];
  JOINMI_RETURN_NOT_OK(socket->ReadExact(raw, sizeof(raw)));
  JOINMI_ASSIGN_OR_RETURN(FrameHeader header, ParseHeader(raw));
  Frame frame;
  frame.type = header.type;
  frame.payload.resize(header.payload_len);
  if (header.payload_len > 0) {
    JOINMI_RETURN_NOT_OK(
        socket->ReadExact(&frame.payload[0], header.payload_len));
  }
  return frame;
}

}  // namespace net
}  // namespace joinmi
