#include "src/net/frame.h"

#include <cstring>

#include "src/sketch/serialize.h"

namespace joinmi {
namespace net {

namespace {

struct FrameHeader {
  FrameType type;
  uint32_t version;
  uint32_t payload_len;
};

// Validates everything knowable from the fixed header prefix alone —
// magic, version, type tag (against that version), payload bound — shared
// by the buffer, socket, and incremental decode paths so they cannot
// drift. The v2 request id rides after this prefix and carries no
// validity constraints of its own.
Result<FrameHeader> ParseHeader(const char (&raw)[kFrameHeaderSize]) {
  if (std::memcmp(raw, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return Status::IOError("bad JMRP frame magic");
  }
  uint32_t version = 0;
  std::memcpy(&version, raw + 4, sizeof(version));
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    return Status::IOError("unsupported JMRP protocol version " +
                           std::to_string(version) + " (this build speaks " +
                           std::to_string(kMinProtocolVersion) + ".." +
                           std::to_string(kProtocolVersion) + ")");
  }
  const uint8_t type = static_cast<uint8_t>(raw[8]);
  const uint8_t max_type =
      version >= 2 ? static_cast<uint8_t>(FrameType::kReloadResponse)
                   : static_cast<uint8_t>(FrameType::kError);
  if (type < static_cast<uint8_t>(FrameType::kHandshakeRequest) ||
      type > max_type) {
    return Status::IOError("unknown JMRP frame type " + std::to_string(type) +
                           " for protocol version " + std::to_string(version));
  }
  FrameHeader header;
  header.type = static_cast<FrameType>(type);
  header.version = version;
  std::memcpy(&header.payload_len, raw + 9, sizeof(header.payload_len));
  if (header.payload_len > kMaxFramePayload) {
    return Status::IOError(
        "JMRP frame payload length " + std::to_string(header.payload_len) +
        " exceeds the " + std::to_string(kMaxFramePayload) + "-byte bound");
  }
  return header;
}

size_t HeaderSizeFor(uint32_t version) {
  return version >= 2 ? kFrameV2HeaderSize : kFrameHeaderSize;
}

}  // namespace

const char* FrameTypeToString(FrameType type) {
  switch (type) {
    case FrameType::kHandshakeRequest:
      return "handshake_request";
    case FrameType::kHandshakeResponse:
      return "handshake_response";
    case FrameType::kSearchRequest:
      return "search_request";
    case FrameType::kSearchResponse:
      return "search_response";
    case FrameType::kHealthRequest:
      return "health_request";
    case FrameType::kHealthResponse:
      return "health_response";
    case FrameType::kError:
      return "error";
    case FrameType::kSketchUploadRequest:
      return "sketch_upload_request";
    case FrameType::kSketchUploadResponse:
      return "sketch_upload_response";
    case FrameType::kBatchSearchRequest:
      return "batch_search_request";
    case FrameType::kBatchSearchResponse:
      return "batch_search_response";
    case FrameType::kStatsRequest:
      return "stats_request";
    case FrameType::kStatsResponse:
      return "stats_response";
    case FrameType::kReloadRequest:
      return "reload_request";
    case FrameType::kReloadResponse:
      return "reload_response";
  }
  return "unknown";
}

std::string EncodeFrameAs(uint32_t version, FrameType type,
                          uint64_t request_id, const std::string& payload) {
  std::string out;
  out.reserve(HeaderSizeFor(version) + payload.size());
  wire::AppendRaw(&out, kFrameMagic, sizeof(kFrameMagic));
  wire::AppendPod<uint32_t>(&out, version);
  wire::AppendPod<uint8_t>(&out, static_cast<uint8_t>(type));
  wire::AppendPod<uint32_t>(&out, static_cast<uint32_t>(payload.size()));
  if (version >= 2) wire::AppendPod<uint64_t>(&out, request_id);
  wire::AppendRaw(&out, payload.data(), payload.size());
  return out;
}

std::string EncodeFrame(FrameType type, const std::string& payload) {
  return EncodeFrameAs(1, type, 0, payload);
}

std::string EncodeFrameV2(FrameType type, uint64_t request_id,
                          const std::string& payload) {
  return EncodeFrameAs(2, type, request_id, payload);
}

Result<Frame> DecodeFrame(const std::string& buffer) {
  if (buffer.size() < kFrameHeaderSize) {
    return Status::IOError("truncated JMRP frame header");
  }
  char raw[kFrameHeaderSize];
  std::memcpy(raw, buffer.data(), kFrameHeaderSize);
  JOINMI_ASSIGN_OR_RETURN(FrameHeader header, ParseHeader(raw));
  const size_t header_size = HeaderSizeFor(header.version);
  if (buffer.size() < header_size) {
    return Status::IOError("truncated JMRP v2 frame header (request id)");
  }
  Frame frame;
  frame.type = header.type;
  frame.version = header.version;
  if (header.version >= 2) {
    std::memcpy(&frame.request_id, buffer.data() + kFrameHeaderSize,
                sizeof(frame.request_id));
  }
  if (buffer.size() - header_size < header.payload_len) {
    return Status::IOError("truncated JMRP frame payload");
  }
  if (buffer.size() - header_size > header.payload_len) {
    return Status::IOError("trailing bytes after JMRP frame payload");
  }
  frame.payload = buffer.substr(header_size);
  return frame;
}

Status SendFrame(Socket* socket, FrameType type, const std::string& payload,
                 size_t* bytes_written) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(
        "refusing to send a JMRP frame with a " +
        std::to_string(payload.size()) + "-byte payload (bound " +
        std::to_string(kMaxFramePayload) + ")");
  }
  const std::string encoded = EncodeFrame(type, payload);
  return socket->WriteAll(encoded.data(), encoded.size(), bytes_written);
}

Status SendFrameV2(Socket* socket, FrameType type, uint64_t request_id,
                   const std::string& payload, size_t* bytes_written) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(
        "refusing to send a JMRP frame with a " +
        std::to_string(payload.size()) + "-byte payload (bound " +
        std::to_string(kMaxFramePayload) + ")");
  }
  const std::string encoded = EncodeFrameV2(type, request_id, payload);
  return socket->WriteAll(encoded.data(), encoded.size(), bytes_written);
}

Result<Frame> RecvFrame(Socket* socket) {
  char raw[kFrameHeaderSize];
  JOINMI_RETURN_NOT_OK(socket->ReadExact(raw, sizeof(raw)));
  JOINMI_ASSIGN_OR_RETURN(FrameHeader header, ParseHeader(raw));
  Frame frame;
  frame.type = header.type;
  frame.version = header.version;
  if (header.version >= 2) {
    JOINMI_RETURN_NOT_OK(socket->ReadExact(
        reinterpret_cast<char*>(&frame.request_id), sizeof(frame.request_id)));
  }
  frame.payload.resize(header.payload_len);
  if (header.payload_len > 0) {
    JOINMI_RETURN_NOT_OK(
        socket->ReadExact(&frame.payload[0], header.payload_len));
  }
  return frame;
}

void FrameAssembler::Feed(const char* data, size_t len) {
  // Reclaim consumed prefix before growing; keeps the buffer bounded by
  // one partial frame plus whatever the last read returned.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ >= 4096) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, len);
}

Result<bool> FrameAssembler::Next(Frame* out) {
  if (!poisoned_.ok()) return poisoned_;
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderSize) return false;
  char raw[kFrameHeaderSize];
  std::memcpy(raw, buffer_.data() + consumed_, kFrameHeaderSize);
  auto header = ParseHeader(raw);
  if (!header.ok()) {
    poisoned_ = header.status();
    return poisoned_;
  }
  const size_t header_size = HeaderSizeFor(header->version);
  if (available < header_size + header->payload_len) return false;
  out->type = header->type;
  out->version = header->version;
  out->request_id = 0;
  if (header->version >= 2) {
    std::memcpy(&out->request_id, buffer_.data() + consumed_ + kFrameHeaderSize,
                sizeof(out->request_id));
  }
  out->payload.assign(buffer_, consumed_ + header_size, header->payload_len);
  consumed_ += header_size + header->payload_len;
  return true;
}

}  // namespace net
}  // namespace joinmi
