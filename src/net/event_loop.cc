#include "src/net/event_loop.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

namespace joinmi {
namespace net {

namespace {

constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeTag = 1;
constexpr size_t kReadChunk = 64 * 1024;

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

EventLoop::EventLoop(Listener listener, FrameHandler on_frame,
                     CloseHandler on_close, EventLoopOptions options)
    : listener_(std::move(listener)),
      on_frame_(std::move(on_frame)),
      on_close_(std::move(on_close)),
      options_(options),
      port_(listener_.port()) {
  options_.poll_interval_ms = std::max(1, options_.poll_interval_ms);
}

Result<std::unique_ptr<EventLoop>> EventLoop::Create(
    Listener listener, FrameHandler on_frame, CloseHandler on_close,
    EventLoopOptions options) {
  if (!listener.valid()) {
    return Status::InvalidArgument("event loop needs a bound listener");
  }
  if (!on_frame) {
    return Status::InvalidArgument("event loop needs a frame handler");
  }
  std::unique_ptr<EventLoop> loop(new EventLoop(
      std::move(listener), std::move(on_frame), std::move(on_close),
      options));
  JOINMI_RETURN_NOT_OK(loop->SetUp());
  return loop;
}

Status EventLoop::SetUp() {
  const int flags = ::fcntl(listener_.fd(), F_GETFL, 0);
  if (flags < 0 ||
      ::fcntl(listener_.fd(), F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(Errno("fcntl(listener, O_NONBLOCK)"));
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Status::IOError(Errno("epoll_create1"));
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) return Status::IOError(Errno("eventfd"));

  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev) < 0) {
    return Status::IOError(Errno("epoll_ctl(listener)"));
  }
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return Status::IOError(Errno("epoll_ctl(wake)"));
  }
  return Status::OK();
}

EventLoop::~EventLoop() {
  Stop(0);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Start() {
  if (started_) return Status::InvalidArgument("event loop already started");
  started_ = true;
  accepting_commands_.store(true);
  thread_ = std::thread(&EventLoop::Run, this);
  return Status::OK();
}

void EventLoop::Wake() {
  if (wake_fd_ < 0) return;
  const uint64_t one = 1;
  // A full eventfd counter still wakes the loop; the result is irrelevant.
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::Quiesce() {
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    quiesce_requested_ = true;
  }
  Wake();
}

void EventLoop::Stop(int flush_timeout_ms) {
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    stop_requested_ = true;
    flush_timeout_ms_ = std::max(flush_timeout_ms_, flush_timeout_ms);
  }
  Wake();
  std::lock_guard<std::mutex> lock(stop_mutex_);
  if (thread_.joinable()) thread_.join();
  accepting_commands_.store(false);
}

bool EventLoop::Send(ConnId conn, std::string encoded) {
  if (!accepting_commands_.load()) return false;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    if (stop_requested_) return false;
    pending_sends_.emplace_back(conn, std::move(encoded));
  }
  Wake();
  return true;
}

void EventLoop::CloseConn(ConnId conn) {
  if (!accepting_commands_.load()) return;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    if (stop_requested_) return;
    pending_closes_.push_back(conn);
  }
  Wake();
}

Status EventLoop::UpdateInterest(Conn* conn, bool want_read) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = (want_read ? EPOLLIN : 0u) | (conn->want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn->id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->socket.fd(), &ev) < 0) {
    return Status::IOError(Errno("epoll_ctl(mod)"));
  }
  return Status::OK();
}

void EventLoop::DropConn(ConnId id, bool notify) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  // close() removes the fd from the epoll set automatically.
  it->second->socket.Close();
  conns_.erase(it);
  open_conns_.fetch_sub(1);
  if (notify && on_close_) on_close_(id);
}

void EventLoop::AcceptReady() {
  while (true) {
    const int fd =
        ::accept4(listener_.fd(), nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN (drained) or a transient error; epoll re-reports
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->socket = Socket(fd);
    conn->last_active = std::chrono::steady_clock::now();
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      continue;  // conn closes on scope exit
    }
    conns_.emplace(conn->id, std::move(conn));
    open_conns_.fetch_add(1);
  }
}

void EventLoop::ReadReady(Conn* conn) {
  const ConnId id = conn->id;
  char buf[kReadChunk];
  while (true) {
    const ssize_t n = ::recv(conn->socket.fd(), buf, sizeof(buf), 0);
    if (n == 0) {
      DropConn(id, /*notify=*/true);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      DropConn(id, /*notify=*/true);
      return;
    }
    conn->last_active = std::chrono::steady_clock::now();
    conn->assembler.Feed(buf, static_cast<size_t>(n));
    while (true) {
      Frame frame;
      auto produced = conn->assembler.Next(&frame);
      if (!produced.ok()) {
        // Corrupt stream: no way to resync inside TCP, drop the peer.
        DropConn(id, /*notify=*/true);
        return;
      }
      if (!*produced) break;
      on_frame_(id, std::move(frame));
      // The handler may have torn the loop down-stream state; re-check.
      if (conns_.find(id) == conns_.end()) return;
    }
    if (static_cast<size_t>(n) < sizeof(buf)) break;  // drained
  }
}

bool EventLoop::FlushOutbox(Conn* conn) {
  const ConnId id = conn->id;
  while (conn->outbox_off < conn->outbox.size()) {
    const ssize_t n =
        ::send(conn->socket.fd(), conn->outbox.data() + conn->outbox_off,
               conn->outbox.size() - conn->outbox_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn->want_write) {
          conn->want_write = true;
          if (!UpdateInterest(conn, reads_enabled_).ok()) {
            DropConn(id, /*notify=*/true);
            return false;
          }
        }
        return true;
      }
      DropConn(id, /*notify=*/true);
      return false;
    }
    conn->outbox_off += static_cast<size_t>(n);
    conn->last_active = std::chrono::steady_clock::now();
  }
  conn->outbox.clear();
  conn->outbox_off = 0;
  if (conn->want_write) {
    conn->want_write = false;
    if (!UpdateInterest(conn, reads_enabled_).ok()) {
      DropConn(id, /*notify=*/true);
      return false;
    }
  }
  return true;
}

void EventLoop::ApplyPendingOps(bool reading_enabled) {
  std::vector<std::pair<ConnId, std::string>> sends;
  std::vector<ConnId> closes;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    sends.swap(pending_sends_);
    closes.swap(pending_closes_);
  }
  for (ConnId id : closes) DropConn(id, /*notify=*/true);
  for (auto& send : sends) {
    auto it = conns_.find(send.first);
    if (it == conns_.end()) continue;  // conn died first: drop silently
    Conn* conn = it->second.get();
    conn->outbox.append(send.second);
    FlushOutbox(conn);
  }
  (void)reading_enabled;
}

void EventLoop::ReapIdle(std::chrono::steady_clock::time_point now) {
  if (options_.idle_timeout_ms <= 0) return;
  const auto bound = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<ConnId> doomed;
  for (const auto& entry : conns_) {
    if (now - entry.second->last_active > bound) {
      doomed.push_back(entry.first);
    }
  }
  for (ConnId id : doomed) DropConn(id, /*notify=*/true);
}

void EventLoop::Run() {
  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  bool quiescing = false;
  bool stopping = false;
  std::chrono::steady_clock::time_point stop_deadline;
  last_idle_scan_ = std::chrono::steady_clock::now();

  auto disable_reads = [this] {
    if (!reads_enabled_) return;
    reads_enabled_ = false;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listener_.fd(), nullptr);
    for (auto& entry : conns_) {
      UpdateInterest(entry.second.get(), /*want_read=*/false);
    }
  };

  while (true) {
    const int n =
        ::epoll_wait(epoll_fd_, events, kMaxEvents, options_.poll_interval_ms);
    if (n < 0 && errno != EINTR) break;
    const auto now = std::chrono::steady_clock::now();
    for (int i = 0; i < std::max(n, 0); ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        if (reads_enabled_) AcceptReady();
        continue;
      }
      if (tag == kWakeTag) {
        uint64_t drained = 0;
        (void)!::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // dropped earlier in this batch
      Conn* conn = it->second.get();
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        DropConn(tag, /*notify=*/true);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        if (!FlushOutbox(conn)) continue;
      }
      if ((events[i].events & EPOLLIN) != 0 && reads_enabled_) {
        ReadReady(conn);
      }
    }

    bool want_quiesce = false;
    bool want_stop = false;
    int flush_ms = 0;
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      want_quiesce = quiesce_requested_;
      want_stop = stop_requested_;
      flush_ms = flush_timeout_ms_;
    }
    ApplyPendingOps(reads_enabled_);
    if ((want_quiesce || want_stop) && !quiescing) {
      quiescing = true;
      disable_reads();
    }
    if (want_stop && !stopping) {
      stopping = true;
      stop_deadline = now + std::chrono::milliseconds(flush_ms);
    }
    if (stopping) {
      bool pending_writes = false;
      for (const auto& entry : conns_) {
        if (entry.second->outbox_off < entry.second->outbox.size()) {
          pending_writes = true;
          break;
        }
      }
      if (!pending_writes || now >= stop_deadline) break;
      continue;
    }
    if (!quiescing &&
        now - last_idle_scan_ > std::chrono::milliseconds(1000)) {
      last_idle_scan_ = now;
      ReapIdle(now);
    }
  }

  // Final teardown: close everything without on_close callbacks — the
  // owner initiated Stop and tears its per-connection state down wholesale.
  conns_.clear();
  open_conns_.store(0);
  listener_.Close();
}

}  // namespace net
}  // namespace joinmi
