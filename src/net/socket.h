// Minimal blocking TCP primitives for the shard serving tier: an RAII
// socket with whole-buffer read/write and per-direction timeouts, a
// listener with poll-based interruptible accept, and a timeout-bounded
// connect. POSIX-only, deliberately synchronous — the serving workloads
// above this are one-request-at-a-time per connection, fanned out across a
// ThreadPool, so blocking I/O with timeouts is simpler and no slower than
// an event loop at this scale.
//
// Error model matches the rest of the library: no exceptions, every
// fallible call returns Status/Result. A peer closing mid-read surfaces as
// IOError mentioning "closed", a timeout as IOError mentioning "timed
// out" — callers that care (retry logic) match on the message, everything
// else just propagates.

#ifndef JOINMI_NET_SOCKET_H_
#define JOINMI_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace joinmi {
namespace net {

/// \brief RAII wrapper over a connected stream socket file descriptor.
/// Move-only; the destructor closes the descriptor.
class Socket {
 public:
  Socket() = default;
  /// \brief Adopts an already-open descriptor (e.g. from Listener::Accept
  /// or socketpair in tests).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// \brief Sets per-call receive/send timeouts (0 disables the bound).
  Status SetTimeouts(int recv_timeout_ms, int send_timeout_ms);

  /// \brief Toggles O_NONBLOCK — the event-loop registration path. The
  /// blocking read/write helpers above assume blocking mode; a nonblocking
  /// socket belongs to a reactor that does its own recv/send.
  Status SetNonBlocking(bool nonblocking);

  /// \brief Writes the whole buffer, retrying short writes. Never raises
  /// SIGPIPE. If `bytes_written` is non-null it receives the count actually
  /// put on the wire even on failure — retry policies need to distinguish
  /// "nothing sent" from a partial write.
  Status WriteAll(const void* data, size_t len,
                  size_t* bytes_written = nullptr);

  /// \brief Reads exactly `len` bytes, retrying short reads. A peer close
  /// before `len` bytes is an IOError mentioning "closed".
  Status ReadExact(void* data, size_t len);

  /// \brief Zero-timeout probe for whether a cached, request-idle
  /// connection is still usable. True on peer close (FIN), socket error,
  /// or any unsolicited readable bytes (with no request outstanding those
  /// can only desync the framing). TCP accepts writes on a half-closed
  /// connection, so a send-side check cannot detect this — the probe is
  /// what lets a client re-dial a restarted server transparently instead
  /// of failing one request per stale connection.
  bool StaleForReuse() const;

  /// \brief Opens a TCP connection to host:port, bounding the connect
  /// itself by `connect_timeout_ms` (the returned socket has no I/O
  /// timeouts set; call SetTimeouts). `host` is a numeric address or name.
  static Result<Socket> Connect(const std::string& host, uint16_t port,
                                int connect_timeout_ms);

 private:
  int fd_ = -1;
};

/// \brief A bound, listening TCP socket.
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  Listener(Listener&& other) noexcept
      : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  Listener& operator=(Listener&& other) noexcept;

  /// \brief Binds host:port and starts listening. Port 0 binds an
  /// ephemeral port; port() reports the actual one.
  static Result<Listener> Bind(const std::string& host, uint16_t port,
                               int backlog = 64);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  uint16_t port() const { return port_; }
  void Close();

  /// \brief Waits up to `timeout_ms` for a connection. Returns OutOfRange
  /// on timeout (the polling idiom for an interruptible accept loop: poll,
  /// check a stop flag, poll again) and IOError on real failures.
  Result<Socket> AcceptWithTimeout(int timeout_ms);

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace joinmi

#endif  // JOINMI_NET_SOCKET_H_
