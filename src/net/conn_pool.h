// ConnPool: a bounded pool of connections to one endpoint, the concurrency
// substrate of the serving router. Each pooled connection is one JMRP
// conversation; a caller leases a connection for exactly one
// request/response exchange and returns it, so M leases mean M requests
// simultaneously in flight to the same server — where a single mutexed
// socket would serialize them.
//
// The pool knows nothing about protocols: connections are created by an
// injected Dialer (the discovery layer's dialer performs the TCP connect
// *and* the JMRP handshake, so every socket the pool hands out is already
// verified against the manifest). Dialing is lazy — a pool against a down
// server constructs fine and every Acquire surfaces the dial failure —
// and happens outside the pool lock, so one slow dial never blocks other
// leases.
//
// Reuse discipline: idle connections are probed with Socket::StaleForReuse
// before being handed out, so a connection whose server restarted is
// silently re-dialed instead of failing its next request (TCP happily
// accepts writes on half-closed connections; only the read-side probe can
// tell). A lease whose request failed mid-exchange must call Discard() —
// returning a desynced connection would poison a later request — and the
// pool then re-dials on demand.
//
// Capacity semantics: at most max_connections leases exist at once;
// further Acquire calls BLOCK until a lease is returned or discarded. The
// pool never over-dials: the number of live sockets (leased + idle) never
// exceeds max_connections, which is what makes pool size a real back-
// pressure knob rather than a hint.

#ifndef JOINMI_NET_CONN_POOL_H_
#define JOINMI_NET_CONN_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/net/socket.h"

namespace joinmi {
namespace net {

struct ConnPoolOptions {
  /// Bound on simultaneously leased connections (and on sockets the pool
  /// ever holds). Values below 1 are treated as 1.
  size_t max_connections = 4;
};

/// \brief Bounded lease/return pool of connections to one endpoint.
/// Thread-safe; leases must not outlive the pool.
class ConnPool {
 public:
  /// \brief Creates one ready-to-use connection. Runs outside the pool
  /// lock; a Status error is surfaced verbatim from Acquire.
  using Dialer = std::function<Result<Socket>()>;

  ConnPool(Dialer dialer, ConnPoolOptions options);
  /// The destructor closes the pool first (see Close), so a blocked
  /// acquirer is woken with an error instead of waiting on freed memory.
  ~ConnPool();

  ConnPool(const ConnPool&) = delete;
  ConnPool& operator=(const ConnPool&) = delete;

  /// \brief One leased connection, RAII-returned to the pool. The
  /// destructor returns the socket for reuse unless Discard() was called
  /// (or the socket was invalidated), in which case only the capacity slot
  /// is released.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), socket_(std::move(other.socket_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        socket_ = std::move(other.socket_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    ~Lease() { Release(); }

    bool valid() const { return pool_ != nullptr; }
    Socket& socket() { return socket_; }

    /// \brief Marks the connection unusable (request failed mid-exchange,
    /// framing possibly desynced). The socket is closed now; the capacity
    /// slot frees when the lease dies.
    void Discard() { socket_.Close(); }

   private:
    friend class ConnPool;
    Lease(ConnPool* pool, Socket socket)
        : pool_(pool), socket_(std::move(socket)) {}
    void Release();

    ConnPool* pool_ = nullptr;
    Socket socket_;
  };

  /// \brief Leases a connection: reuses a fresh idle one, re-dials a stale
  /// one, dials lazily when none is cached. Blocks while max_connections
  /// leases are outstanding. On dial failure the slot is released and the
  /// dialer's error returned — nothing was sent, so callers may treat the
  /// failure as retry-safe.
  Result<Lease> Acquire();

  /// \brief Poisons the pool: every thread blocked in Acquire wakes with a
  /// deterministic IOError, future Acquires fail the same way, idle
  /// connections are dropped, and returned sockets are closed instead of
  /// cached. Outstanding leases stay usable (their slot release is still
  /// accounted); Close only stops new work. Idempotent and thread-safe —
  /// the shutdown path owners call before destruction so no acquirer can
  /// hang on a pool that is going away.
  void Close();

  bool closed() const;

  size_t max_connections() const { return options_.max_connections; }

  // ------------------------------------------------------ Instrumentation
  /// \brief Leases outstanding right now.
  size_t in_flight() const;
  /// \brief High-water mark of simultaneously outstanding leases — the
  /// proof a router actually multiplexed (>= 2 means two requests were in
  /// flight to this endpoint at the same instant).
  size_t max_in_flight() const;
  /// \brief Successful dials since construction (reuse keeps this flat).
  uint64_t total_dials() const;
  /// \brief Idle connections cached for reuse.
  size_t idle_connections() const;

 private:
  void Return(Socket socket);

  Dialer dialer_;
  ConnPoolOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable slot_available_;
  std::vector<Socket> idle_;
  bool closed_ = false;
  size_t in_flight_ = 0;
  size_t max_in_flight_ = 0;
  uint64_t total_dials_ = 0;
};

}  // namespace net
}  // namespace joinmi

#endif  // JOINMI_NET_CONN_POOL_H_
