// JMRP ("JoinMI RPC") framing: every message on a shard-serving connection
// is one length-prefixed, version-tagged frame.
//
//   v1: magic "JMRP" | u32 version=1 | u8 frame_type | u32 payload_len
//       | payload_len bytes of payload
//   v2: magic "JMRP" | u32 version=2 | u8 frame_type | u32 payload_len
//       | u64 request_id | payload_len bytes of payload
//
// little-endian, built on the same wire:: primitives as the sketch and
// index formats. The frame layer knows nothing about payload contents —
// typed message encode/decode lives in src/discovery/rpc_messages.h, so
// the codec below is testable without any discovery type.
//
// Versioning: the protocol version rides in every frame header (not just a
// hello) so a mismatched peer is rejected on the first frame either side
// reads, whichever direction speaks first. A v2-aware peer accepts both
// versions on the same connection — rolling upgrades interleave them — but
// v2-only frame types (sketch upload, batch search) are rejected inside a
// v1 header, so a v1 peer can never be tricked into half-speaking v2.
// Payloads are bounded by kMaxFramePayload; a length prefix past the bound
// is rejected before any allocation, so a corrupt or hostile peer cannot
// make a server reserve gigabytes.
//
// request_id: v2 responses may complete out of order (the server hands
// frames to a worker pool and replies as results land), so every v2 frame
// carries the caller-chosen id that pairs a response with its request.
// v1 frames decode with request_id 0.

#ifndef JOINMI_NET_FRAME_H_
#define JOINMI_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/net/socket.h"

namespace joinmi {
namespace net {

inline constexpr char kFrameMagic[4] = {'J', 'M', 'R', 'P'};
/// Highest protocol version this build speaks (and the one EncodeFrameV2
/// stamps). Decoding accepts [kMinProtocolVersion, kProtocolVersion].
inline constexpr uint32_t kProtocolVersion = 2;
inline constexpr uint32_t kMinProtocolVersion = 1;
/// Wire size of the fixed header prefix shared by both versions
/// (magic + version + type + length).
inline constexpr size_t kFrameHeaderSize = 4 + 4 + 1 + 4;
/// Wire size of a complete v2 header (prefix + u64 request_id).
inline constexpr size_t kFrameV2HeaderSize = kFrameHeaderSize + 8;
/// Hard payload bound: a serialized train sketch plus headroom; far above
/// any legitimate message, far below an allocation attack.
inline constexpr uint32_t kMaxFramePayload = 64u * 1024u * 1024u;

/// \brief Message kinds carried over a serving connection. Types 1–7 are
/// valid in v1 and v2 frames; types 8+ require a v2 header.
enum class FrameType : uint8_t {
  kHandshakeRequest = 1,
  kHandshakeResponse = 2,
  kSearchRequest = 3,
  kSearchResponse = 4,
  kHealthRequest = 5,
  kHealthResponse = 6,
  /// Server-side failure to even parse/dispatch a request (a well-formed
  /// response frame carries its own Status instead).
  kError = 7,
  /// v2 only: upload + cache the train sketch once per connection.
  kSketchUploadRequest = 8,
  kSketchUploadResponse = 9,
  /// v2 only: many (k, min_join_size) variants against one cached sketch.
  kBatchSearchRequest = 10,
  kBatchSearchResponse = 11,
  /// v2 only: ask the server for its metrics snapshot (empty payload ->
  /// a Status + JSON document; see rpc::StatsResponse).
  kStatsRequest = 12,
  kStatsResponse = 13,
  /// v2 only: ask the server to re-resolve its deployment reference and
  /// swap in the newest manifest generation (empty payload -> a Status +
  /// the served epoch; see rpc::ReloadResponse). In-flight queries
  /// complete against their admission-time snapshot.
  kReloadRequest = 14,
  kReloadResponse = 15,
};

const char* FrameTypeToString(FrameType type);

/// \brief One decoded frame.
struct Frame {
  FrameType type = FrameType::kError;
  /// Header version this frame was encoded with (1 or 2).
  uint32_t version = kMinProtocolVersion;
  /// Caller-chosen response-pairing id; always 0 for v1 frames.
  uint64_t request_id = 0;
  std::string payload;
};

/// \brief Encodes a complete v1 frame (header + payload). The payload
/// bound is enforced at the send/decode layer, not here, so tests can
/// craft oversized frames.
std::string EncodeFrame(FrameType type, const std::string& payload);

/// \brief Encodes a complete v2 frame carrying `request_id`.
std::string EncodeFrameV2(FrameType type, uint64_t request_id,
                          const std::string& payload);

/// \brief Encodes with the given header version: version 1 drops the
/// request id (callers must only do this for v1-legal types), version 2
/// carries it. The echo path servers use to answer in the caller's dialect.
std::string EncodeFrameAs(uint32_t version, FrameType type,
                          uint64_t request_id, const std::string& payload);

/// \brief Decodes a buffer holding exactly one frame (either version).
/// Validates magic, protocol version, frame type tag (against that
/// version), the payload bound, and that the buffer length matches the
/// declared payload length (no trailing bytes).
Result<Frame> DecodeFrame(const std::string& buffer);

/// \brief Writes one v1 frame to the socket. On failure `*bytes_written`
/// (optional) reports how many frame bytes reached the wire — zero means
/// the request never left this process, which is the only case a retrying
/// caller may treat as safe to resend unconditionally.
Status SendFrame(Socket* socket, FrameType type, const std::string& payload,
                 size_t* bytes_written = nullptr);

/// \brief Writes one v2 frame to the socket; same `*bytes_written`
/// contract as SendFrame.
Status SendFrameV2(Socket* socket, FrameType type, uint64_t request_id,
                   const std::string& payload,
                   size_t* bytes_written = nullptr);

/// \brief Reads one frame (either version) from the socket, applying the
/// same validation as DecodeFrame before the payload is read (so an
/// oversized length prefix is rejected without allocating or draining it).
Result<Frame> RecvFrame(Socket* socket);

/// \brief Incremental frame decoder for nonblocking readers: feed whatever
/// bytes the socket produced, pop complete frames as they materialize.
/// The header is validated as soon as its bytes are available, so a bad
/// magic / version / type / oversized length poisons the stream before the
/// payload arrives; after any error the assembler stays poisoned and the
/// connection must be dropped (resynchronizing inside a byte stream is not
/// possible).
class FrameAssembler {
 public:
  /// Appends raw bytes from the wire. Cheap; all parsing happens in Next().
  void Feed(const char* data, size_t len);

  /// Pops the next complete frame into `*out`. Returns true when a frame
  /// was produced, false when more bytes are needed, an error when the
  /// stream is corrupt (sticky).
  Result<bool> Next(Frame* out);

  /// Bytes buffered but not yet consumed (tests + backpressure gauges).
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
  Status poisoned_ = Status::OK();
};

}  // namespace net
}  // namespace joinmi

#endif  // JOINMI_NET_FRAME_H_
