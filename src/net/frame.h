// JMRP ("JoinMI RPC") framing: every message on a shard-serving connection
// is one length-prefixed, version-tagged frame
//
//   magic "JMRP" | u32 protocol_version | u8 frame_type | u32 payload_len
//   | payload_len bytes of payload
//
// little-endian, built on the same wire:: primitives as the sketch and
// index formats. The frame layer knows nothing about payload contents —
// typed message encode/decode lives in src/discovery/rpc_messages.h, so
// the codec below is testable without any discovery type.
//
// Versioning: the protocol version rides in every frame header (not just a
// hello) so a mismatched peer is rejected on the first frame either side
// reads, whichever direction speaks first. Payloads are bounded by
// kMaxFramePayload; a length prefix past the bound is rejected before any
// allocation, so a corrupt or hostile peer cannot make a server reserve
// gigabytes.

#ifndef JOINMI_NET_FRAME_H_
#define JOINMI_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/net/socket.h"

namespace joinmi {
namespace net {

inline constexpr char kFrameMagic[4] = {'J', 'M', 'R', 'P'};
inline constexpr uint32_t kProtocolVersion = 1;
/// Wire size of the fixed frame header (magic + version + type + length).
inline constexpr size_t kFrameHeaderSize = 4 + 4 + 1 + 4;
/// Hard payload bound: a serialized train sketch plus headroom; far above
/// any legitimate message, far below an allocation attack.
inline constexpr uint32_t kMaxFramePayload = 64u * 1024u * 1024u;

/// \brief Message kinds carried over a serving connection.
enum class FrameType : uint8_t {
  kHandshakeRequest = 1,
  kHandshakeResponse = 2,
  kSearchRequest = 3,
  kSearchResponse = 4,
  kHealthRequest = 5,
  kHealthResponse = 6,
  /// Server-side failure to even parse/dispatch a request (a well-formed
  /// response frame carries its own Status instead).
  kError = 7,
};

const char* FrameTypeToString(FrameType type);

/// \brief One decoded frame.
struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// \brief Encodes a complete frame (header + payload) at the current
/// protocol version. The payload bound is enforced at the send/decode
/// layer, not here, so tests can craft oversized frames.
std::string EncodeFrame(FrameType type, const std::string& payload);

/// \brief Decodes a buffer holding exactly one frame. Validates magic,
/// protocol version, frame type tag, the payload bound, and that the
/// buffer length matches the declared payload length (no trailing bytes).
Result<Frame> DecodeFrame(const std::string& buffer);

/// \brief Writes one frame to the socket. On failure `*bytes_written`
/// (optional) reports how many frame bytes reached the wire — zero means
/// the request never left this process, which is the only case a retrying
/// caller may treat as safe to resend unconditionally.
Status SendFrame(Socket* socket, FrameType type, const std::string& payload,
                 size_t* bytes_written = nullptr);

/// \brief Reads one frame from the socket, applying the same validation as
/// DecodeFrame before the payload is read (so an oversized length prefix
/// is rejected without allocating or draining it).
Result<Frame> RecvFrame(Socket* socket);

}  // namespace net
}  // namespace joinmi

#endif  // JOINMI_NET_FRAME_H_
