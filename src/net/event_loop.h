// EventLoop: a single-threaded epoll reactor that owns every serving
// connection's reads and writes, replacing the thread-per-connection
// accept loop. The loop thread accepts, assembles JMRP frames (both
// protocol versions) from nonblocking reads, and hands each complete
// frame to an injected callback; actual request execution belongs on a
// worker pool — the callback must not block. Responses come back through
// Send(), which is safe from any thread: bytes are queued to the
// connection's outbox, the loop is woken through an eventfd, and the loop
// thread drains the queue with nonblocking writes (arming EPOLLOUT only
// while a partial write is pending). Because the loop never waits for one
// connection's response before reading the next frame, responses complete
// out of order and callers pair them by request_id — the server side of
// JMRP v2 pipelining.
//
// Connections are named by a monotonically increasing ConnId that is
// never reused, so a worker finishing a request for a connection that
// died meanwhile sends into the void (dropped silently) instead of into a
// recycled descriptor — the classic stale-fd bug an fd-keyed map invites.
//
// Shutdown is two-phase to keep drains graceful: Quiesce() stops
// accepting and reading (no new work is created) while writes keep
// flushing, then Stop(flush_timeout_ms) bounds the final flush and joins
// the loop thread. A frame-stream error (bad magic, oversized length,
// unsupported version) closes that connection only.

#ifndef JOINMI_NET_EVENT_LOOP_H_
#define JOINMI_NET_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/net/frame.h"
#include "src/net/socket.h"

namespace joinmi {
namespace net {

struct EventLoopOptions {
  /// Connections silent (no bytes either direction) for this long are
  /// dropped; 0 disables the reaper.
  int idle_timeout_ms = 30000;
  /// epoll_wait tick — bounds how stale the idle scan and shutdown-flag
  /// checks can be.
  int poll_interval_ms = 100;
};

/// \brief Single-threaded epoll reactor serving framed JMRP connections.
class EventLoop {
 public:
  using ConnId = uint64_t;
  /// Called on the loop thread for every complete frame. Must not block;
  /// dispatch to a worker pool and reply later via Send().
  using FrameHandler = std::function<void(ConnId, Frame)>;
  /// Called on the loop thread when a connection dies for any reason
  /// (peer close, stream corruption, idle timeout, CloseConn) — the hook
  /// per-connection server state (e.g. the sketch cache) is released on.
  /// Not called for connections torn down by Stop() itself.
  using CloseHandler = std::function<void(ConnId)>;

  /// \brief Takes ownership of a bound listener and the two callbacks.
  /// The loop is created stopped; call Start().
  static Result<std::unique_ptr<EventLoop>> Create(
      Listener listener, FrameHandler on_frame, CloseHandler on_close,
      EventLoopOptions options = {});

  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// \brief Spawns the loop thread. Call once.
  Status Start();

  /// \brief Stops accepting and reading; pending writes keep flushing.
  /// Safe from any thread, idempotent.
  void Quiesce();

  /// \brief Quiesces, flushes outstanding writes for up to
  /// `flush_timeout_ms`, closes every connection, and joins the loop
  /// thread. Safe to call repeatedly and from multiple threads.
  void Stop(int flush_timeout_ms = 0);

  /// \brief Queues pre-encoded frame bytes to a connection and wakes the
  /// loop. Returns false (dropping the bytes) when the loop is shutting
  /// down; bytes queued for a connection that died meanwhile are dropped
  /// silently on the loop thread. Either way the peer simply never hears
  /// back — exactly like a send-then-crash, which the client's retry
  /// policy already covers.
  bool Send(ConnId conn, std::string encoded);

  /// \brief Asks the loop to drop a connection (e.g. on a protocol
  /// violation found by a worker). Asynchronous; on_close fires on the
  /// loop thread.
  void CloseConn(ConnId conn);

  size_t open_connections() const { return open_conns_.load(); }
  uint16_t port() const { return port_; }

 private:
  struct Conn {
    ConnId id = 0;
    Socket socket;
    FrameAssembler assembler;
    std::string outbox;
    size_t outbox_off = 0;
    bool want_write = false;
    std::chrono::steady_clock::time_point last_active;
  };

  EventLoop(Listener listener, FrameHandler on_frame, CloseHandler on_close,
            EventLoopOptions options);

  Status SetUp();
  void Run();
  void Wake();
  void AcceptReady();
  void ReadReady(Conn* conn);
  bool FlushOutbox(Conn* conn);  // false when the conn died
  Status UpdateInterest(Conn* conn, bool want_read);
  void DropConn(ConnId id, bool notify);
  void ApplyPendingOps(bool reading_enabled);
  void ReapIdle(std::chrono::steady_clock::time_point now);

  Listener listener_;
  FrameHandler on_frame_;
  CloseHandler on_close_;
  EventLoopOptions options_;
  uint16_t port_ = 0;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  bool started_ = false;

  // Loop-thread-only state.
  std::unordered_map<ConnId, std::unique_ptr<Conn>> conns_;
  ConnId next_conn_id_ = 2;  // 0 tags the listener, 1 the wake eventfd
  std::chrono::steady_clock::time_point last_idle_scan_;
  bool reads_enabled_ = true;

  // Cross-thread command queue, drained by the loop thread.
  std::mutex pending_mutex_;
  std::vector<std::pair<ConnId, std::string>> pending_sends_;
  std::vector<ConnId> pending_closes_;
  bool quiesce_requested_ = false;
  bool stop_requested_ = false;
  int flush_timeout_ms_ = 0;

  std::mutex stop_mutex_;  // serializes concurrent Stop() joins
  std::atomic<bool> accepting_commands_{false};
  std::atomic<size_t> open_conns_{0};
};

}  // namespace net
}  // namespace joinmi

#endif  // JOINMI_NET_EVENT_LOOP_H_
