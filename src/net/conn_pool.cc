#include "src/net/conn_pool.h"

#include <algorithm>

namespace joinmi {
namespace net {

ConnPool::ConnPool(Dialer dialer, ConnPoolOptions options)
    : dialer_(std::move(dialer)), options_(options) {
  options_.max_connections = std::max<size_t>(1, options_.max_connections);
}

ConnPool::~ConnPool() { Close(); }

Result<ConnPool::Lease> ConnPool::Acquire() {
  Socket socket;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    slot_available_.wait(lock, [this] {
      return closed_ || in_flight_ < options_.max_connections;
    });
    if (closed_) {
      return Status::IOError("connection pool is closed");
    }
    ++in_flight_;
    max_in_flight_ = std::max(max_in_flight_, in_flight_);
    if (!idle_.empty()) {
      socket = std::move(idle_.back());
      idle_.pop_back();
    }
  }
  // Everything that can block — the staleness probe's syscall and the dial
  // (connect timeout, application handshake) — happens with the slot
  // reserved but the lock released, so other slots stay acquirable.
  if (socket.valid() && socket.StaleForReuse()) {
    socket.Close();
  }
  if (!socket.valid()) {
    // The pool may have closed while the lock was dropped; fail before
    // dialing a connection nobody will ever reuse.
    if (closed()) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --in_flight_;
      }
      slot_available_.notify_one();
      return Status::IOError("connection pool is closed");
    }
    auto dialed = dialer_();
    if (!dialed.ok()) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --in_flight_;
      }
      slot_available_.notify_one();
      return dialed.status();
    }
    socket = std::move(*dialed);
    std::lock_guard<std::mutex> lock(mutex_);
    ++total_dials_;
  }
  return Lease(this, std::move(socket));
}

void ConnPool::Lease::Release() {
  if (pool_ == nullptr) return;
  pool_->Return(std::move(socket_));
  pool_ = nullptr;
}

void ConnPool::Return(Socket socket) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --in_flight_;
    if (socket.valid() && !closed_) {
      idle_.push_back(std::move(socket));
    }
  }
  // Closed pools drop the socket here (end of scope) instead of caching.
  slot_available_.notify_one();
}

void ConnPool::Close() {
  std::vector<Socket> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    closed_ = true;
    doomed.swap(idle_);
  }
  // Wake every blocked acquirer; each observes closed_ and returns the
  // deterministic error. Sockets close outside the lock.
  slot_available_.notify_all();
}

bool ConnPool::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

size_t ConnPool::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

size_t ConnPool::max_in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_in_flight_;
}

uint64_t ConnPool::total_dials() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_dials_;
}

size_t ConnPool::idle_connections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return idle_.size();
}

}  // namespace net
}  // namespace joinmi
