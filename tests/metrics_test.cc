// Unit tests for the serving tier's observability primitives: the metrics
// registry (counters, power-of-two latency histograms, the JSON snapshot
// schema CI parses), the admission gate (depth semantics, RAII tickets),
// and the structured kOverloaded status with its retry_after_ms hint.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/common/admission.h"
#include "src/common/metrics.h"

namespace joinmi {
namespace {

// --------------------------------------------------------------- Counters

TEST(MetricsCounterTest, AddSetValue) {
  metrics::Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Set(7);  // gauge absorption overwrites
  EXPECT_EQ(counter.value(), 7u);
}

TEST(MetricsCounterTest, ConcurrentAddsAllLand) {
  metrics::Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 1000; ++i) counter.Add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), 4000u);
}

// -------------------------------------------------------------- Histogram

TEST(MetricsHistogramTest, BucketBoundsArePowersOfTwo) {
  // Bucket i holds values <= 2^i us; the boundary value stays in its
  // bucket and boundary+1 spills into the next.
  EXPECT_EQ(metrics::Histogram::BucketFor(0), 0u);
  EXPECT_EQ(metrics::Histogram::BucketFor(1), 0u);
  EXPECT_EQ(metrics::Histogram::BucketFor(2), 1u);
  EXPECT_EQ(metrics::Histogram::BucketFor(3), 2u);
  EXPECT_EQ(metrics::Histogram::BucketFor(4), 2u);
  EXPECT_EQ(metrics::Histogram::BucketFor(1024), 10u);
  EXPECT_EQ(metrics::Histogram::BucketFor(1025), 11u);
  // Far past the last bound: clamped into the open-ended final bucket.
  EXPECT_EQ(metrics::Histogram::BucketFor(~uint64_t{0}),
            metrics::Histogram::kNumBuckets - 1);
  EXPECT_EQ(metrics::Histogram::BucketUpperMicros(10), 1024u);
}

TEST(MetricsHistogramTest, ObserveAccumulatesCountSumAndBuckets) {
  metrics::Histogram histogram;
  histogram.Observe(1);     // bucket 0
  histogram.Observe(1000);  // bucket 10
  histogram.Observe(1000);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.sum_micros(), 2001u);
  EXPECT_EQ(histogram.bucket(0), 1u);
  EXPECT_EQ(histogram.bucket(10), 2u);
}

TEST(MetricsHistogramTest, QuantileUpperIsBucketResolution) {
  metrics::Histogram histogram;
  EXPECT_EQ(histogram.QuantileUpperMicros(0.5), 0u);  // empty -> 0
  for (int i = 0; i < 99; ++i) histogram.Observe(100);  // bucket 7 (<=128)
  histogram.Observe(100000);                            // bucket 17
  EXPECT_EQ(histogram.QuantileUpperMicros(0.5), 128u);
  // p99 over 100 observations still lands in the fast bucket; p100
  // catches the straggler.
  EXPECT_EQ(histogram.QuantileUpperMicros(0.99), 128u);
  EXPECT_EQ(histogram.QuantileUpperMicros(1.0),
            metrics::Histogram::BucketUpperMicros(17));
}

// --------------------------------------------------------------- Registry

TEST(MetricsRegistryTest, StablePointersAndIdempotentLookup) {
  metrics::Registry registry;
  metrics::Counter* a = registry.GetCounter("x");
  metrics::Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(registry.CounterValue("x"), 3u);
  EXPECT_EQ(registry.CounterValue("never_registered"), 0u);
  EXPECT_EQ(registry.GetHistogram("h"), registry.GetHistogram("h"));
}

TEST(MetricsRegistryTest, CounterValuesSortedByName) {
  metrics::Registry registry;
  registry.GetCounter("b.two")->Add(2);
  registry.GetCounter("a.one")->Add(1);
  const auto values = registry.CounterValues();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0].first, "a.one");
  EXPECT_EQ(values[0].second, 1u);
  EXPECT_EQ(values[1].first, "b.two");
  EXPECT_EQ(values[1].second, 2u);
}

TEST(MetricsRegistryTest, SnapshotJsonSchema) {
  metrics::Registry registry;
  registry.GetCounter("requests")->Add(5);
  registry.GetHistogram("latency_us")->Observe(100);
  const std::string json = registry.SnapshotJson();
  // The flat schema CI's python parser consumes: counters as plain
  // integers, histograms with count/sum/quantiles/sparse buckets.
  EXPECT_NE(json.find("\"counters\":{\"requests\":5}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"histograms\":{\"latency_us\":{"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sum_us\":100"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50_us\":128"), std::string::npos) << json;
  EXPECT_NE(json.find("\"buckets\":[[128,1]]"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, EmptySnapshotIsStillValidJson) {
  metrics::Registry registry;
  EXPECT_EQ(registry.SnapshotJson(),
            "{\"counters\":{},\"histograms\":{}}");
}

TEST(MetricsScopedTimerTest, ObservesOnDestructionAndNullIsNoOp) {
  metrics::Histogram histogram;
  { metrics::ScopedTimer timer(&histogram); }
  EXPECT_EQ(histogram.count(), 1u);
  { metrics::ScopedTimer timer(nullptr); }  // must not crash
}

// -------------------------------------------------- Overloaded status hint

TEST(OverloadedStatusTest, HintRoundTrips) {
  const Status status = MakeOverloadedStatus(8, 4, 75);
  EXPECT_TRUE(status.IsOverloaded());
  EXPECT_EQ(RetryAfterHintMs(status), 75);
}

TEST(OverloadedStatusTest, ForeignStatusesCarryNoHint) {
  EXPECT_EQ(RetryAfterHintMs(Status::OK()), -1);
  EXPECT_EQ(RetryAfterHintMs(Status::IOError("retry_after_ms=10")), -1);
}

// ---------------------------------------------------------- AdmissionGate

TEST(AdmissionGateTest, UnboundedGateAlwaysAdmits) {
  AdmissionGate gate(0);
  std::vector<AdmissionGate::Ticket> tickets;
  for (int i = 0; i < 100; ++i) {
    auto ticket = gate.TryEnter();
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(std::move(*ticket));
  }
  EXPECT_EQ(gate.pending(), 100u);
  EXPECT_EQ(gate.admitted(), 100u);
  EXPECT_EQ(gate.rejected(), 0u);
}

TEST(AdmissionGateTest, LimitPlusOneIsRejectedWithTheHint) {
  AdmissionGate gate(2, 33);
  auto first = gate.TryEnter();
  auto second = gate.TryEnter();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  auto third = gate.TryEnter();
  ASSERT_FALSE(third.ok());
  EXPECT_TRUE(third.status().IsOverloaded()) << third.status();
  EXPECT_EQ(RetryAfterHintMs(third.status()), 33);
  EXPECT_EQ(gate.pending(), 2u);
  EXPECT_EQ(gate.admitted(), 2u);
  EXPECT_EQ(gate.rejected(), 1u);
}

TEST(AdmissionGateTest, TicketReleaseReopensTheSlot) {
  AdmissionGate gate(1);
  {
    auto ticket = gate.TryEnter();
    ASSERT_TRUE(ticket.ok());
    EXPECT_FALSE(gate.TryEnter().ok());
  }  // RAII release
  EXPECT_EQ(gate.pending(), 0u);
  auto reopened = gate.TryEnter();
  EXPECT_TRUE(reopened.ok());
}

TEST(AdmissionGateTest, MovedTicketReleasesExactlyOnce) {
  AdmissionGate gate(1);
  auto ticket = gate.TryEnter();
  ASSERT_TRUE(ticket.ok());
  AdmissionGate::Ticket moved = std::move(*ticket);
  ticket->Release();  // moved-from: must be a no-op
  EXPECT_EQ(gate.pending(), 1u);
  moved.Release();
  EXPECT_EQ(gate.pending(), 0u);
  moved.Release();  // double release: also a no-op
  EXPECT_EQ(gate.pending(), 0u);
}

TEST(AdmissionGateTest, ConcurrentEntriesNeverExceedTheLimit) {
  AdmissionGate gate(4);
  std::atomic<size_t> peak{0};
  std::atomic<size_t> live{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        auto ticket = gate.TryEnter();
        if (!ticket.ok()) continue;
        const size_t now = live.fetch_add(1) + 1;
        size_t seen = peak.load();
        while (seen < now && !peak.compare_exchange_weak(seen, now)) {
        }
        live.fetch_sub(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(peak.load(), 4u);
  EXPECT_EQ(gate.pending(), 0u);
  EXPECT_EQ(gate.admitted() + gate.rejected(), 1600u);
}

}  // namespace
}  // namespace joinmi
