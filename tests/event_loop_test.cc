// EventLoop tests over real loopback TCP: echo serving, out-of-order
// completion matched by request_id (the v2 pipelining substrate),
// per-connection isolation of frame-stream corruption, idle reaping, and
// prompt/idempotent shutdown. Handlers run on the loop thread here (the
// real server dispatches to a pool; the loop does not care).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/event_loop.h"
#include "src/net/frame.h"
#include "src/net/socket.h"

namespace joinmi {
namespace net {
namespace {

struct LoopFixture {
  std::unique_ptr<EventLoop> loop;
  std::mutex mutex;
  std::vector<EventLoop::ConnId> closed;

  /// Starts a loop that answers every frame through `reply` (echoing when
  /// `reply` is empty) and records on_close calls.
  void Start(std::function<std::string(const Frame&)> reply = nullptr,
             EventLoopOptions options = {}) {
    auto listener = Listener::Bind("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok()) << listener.status();
    auto created = EventLoop::Create(
        std::move(*listener),
        [this, reply](EventLoop::ConnId conn, Frame frame) {
          const std::string encoded =
              reply != nullptr
                  ? reply(frame)
                  : EncodeFrameAs(frame.version, frame.type,
                                  frame.request_id, frame.payload);
          loop->Send(conn, encoded);
        },
        [this](EventLoop::ConnId conn) {
          std::lock_guard<std::mutex> lock(mutex);
          closed.push_back(conn);
        },
        options);
    ASSERT_TRUE(created.ok()) << created.status();
    loop = std::move(*created);
    ASSERT_TRUE(loop->Start().ok());
  }

  Result<Socket> Dial() {
    return Socket::Connect("127.0.0.1", loop->port(), 2000);
  }

  size_t closed_count() {
    std::lock_guard<std::mutex> lock(mutex);
    return closed.size();
  }
};

TEST(EventLoopTest, EchoesFramesOnManyConnections) {
  LoopFixture fixture;
  fixture.Start();
  for (int c = 0; c < 3; ++c) {
    auto socket = fixture.Dial();
    ASSERT_TRUE(socket.ok()) << socket.status();
    ASSERT_TRUE(socket->SetTimeouts(2000, 2000).ok());
    for (int q = 0; q < 4; ++q) {
      const std::string payload =
          "conn " + std::to_string(c) + " frame " + std::to_string(q);
      ASSERT_TRUE(
          SendFrame(&*socket, FrameType::kSearchRequest, payload).ok());
      auto echoed = RecvFrame(&*socket);
      ASSERT_TRUE(echoed.ok()) << echoed.status();
      EXPECT_EQ(echoed->type, FrameType::kSearchRequest);
      EXPECT_EQ(echoed->payload, payload);
    }
  }
  fixture.loop->Stop(1000);
}

TEST(EventLoopTest, ResponsesCompleteOutOfOrderMatchedByRequestId) {
  // Two requests are pipelined before any response is read; each answer is
  // paired to its request solely by the request_id echoed in the v2 header,
  // regardless of the order the responses arrive in.
  LoopFixture fixture;
  fixture.Start([&](const Frame& frame) -> std::string {
    return EncodeFrameV2(FrameType::kSearchResponse, frame.request_id,
                         "answer " + std::to_string(frame.request_id));
  });

  auto socket = fixture.Dial();
  ASSERT_TRUE(socket.ok()) << socket.status();
  ASSERT_TRUE(socket->SetTimeouts(2000, 2000).ok());
  // Pipeline both requests before reading anything.
  ASSERT_TRUE(
      SendFrameV2(&*socket, FrameType::kSearchRequest, 1, "one").ok());
  ASSERT_TRUE(
      SendFrameV2(&*socket, FrameType::kSearchRequest, 2, "two").ok());
  std::map<uint64_t, std::string> answers;
  for (int i = 0; i < 2; ++i) {
    auto frame = RecvFrame(&*socket);
    ASSERT_TRUE(frame.ok()) << frame.status();
    answers[frame->request_id] = frame->payload;
  }
  EXPECT_EQ(answers[1], "answer 1");
  EXPECT_EQ(answers[2], "answer 2");
  fixture.loop->Stop(1000);
}

TEST(EventLoopTest, CorruptStreamDropsThatConnectionOnly) {
  LoopFixture fixture;
  fixture.Start();
  auto good = fixture.Dial();
  auto bad = fixture.Dial();
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(bad.ok());
  ASSERT_TRUE(good->SetTimeouts(2000, 2000).ok());
  ASSERT_TRUE(bad->SetTimeouts(2000, 2000).ok());

  const std::string garbage = "XXXXYYYYZZZZWWWW not a frame";
  ASSERT_TRUE(bad->WriteAll(garbage.data(), garbage.size()).ok());
  // The corrupt connection dies (read returns peer-close soon)...
  char byte = 0;
  EXPECT_FALSE(bad->ReadExact(&byte, 1).ok());
  // ...while the good one keeps serving.
  ASSERT_TRUE(SendFrame(&*good, FrameType::kHealthRequest, "ok?").ok());
  auto echoed = RecvFrame(&*good);
  ASSERT_TRUE(echoed.ok()) << echoed.status();
  EXPECT_EQ(echoed->payload, "ok?");
  // on_close fired exactly once, for the corrupt connection.
  for (int i = 0; i < 100 && fixture.closed_count() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(fixture.closed_count(), 1u);
  EXPECT_EQ(fixture.loop->open_connections(), 1u);
  fixture.loop->Stop(1000);
}

TEST(EventLoopTest, IdleConnectionsAreReaped) {
  LoopFixture fixture;
  EventLoopOptions options;
  options.idle_timeout_ms = 100;
  options.poll_interval_ms = 20;
  fixture.Start(nullptr, options);
  auto socket = fixture.Dial();
  ASSERT_TRUE(socket.ok());
  ASSERT_TRUE(socket->SetTimeouts(3000, 3000).ok());
  // Wait out the idle timeout plus the 1s reaper scan period.
  char byte = 0;
  EXPECT_FALSE(socket->ReadExact(&byte, 1).ok());  // server closed us
  for (int i = 0; i < 200 && fixture.closed_count() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(fixture.closed_count(), 1u);
  EXPECT_EQ(fixture.loop->open_connections(), 0u);
  fixture.loop->Stop(1000);
}

TEST(EventLoopTest, StopIsIdempotentAndConcurrentlySafe) {
  LoopFixture fixture;
  fixture.Start();
  auto socket = fixture.Dial();
  ASSERT_TRUE(socket.ok());
  std::vector<std::thread> stoppers;
  for (int t = 0; t < 4; ++t) {
    stoppers.emplace_back([&] { fixture.loop->Stop(500); });
  }
  for (std::thread& thread : stoppers) thread.join();
  fixture.loop->Stop(500);  // and again, after it already stopped
  EXPECT_EQ(fixture.loop->open_connections(), 0u);
  // Sends after Stop are refused, not crashed.
  EXPECT_FALSE(fixture.loop->Send(2, "bytes"));
}

TEST(EventLoopTest, QuiesceStopsNewFramesButFlushesPendingWrites) {
  LoopFixture fixture;
  fixture.Start();
  auto socket = fixture.Dial();
  ASSERT_TRUE(socket.ok());
  ASSERT_TRUE(socket->SetTimeouts(2000, 2000).ok());
  ASSERT_TRUE(SendFrame(&*socket, FrameType::kHealthRequest, "pre").ok());
  auto echoed = RecvFrame(&*socket);
  ASSERT_TRUE(echoed.ok()) << echoed.status();
  fixture.loop->Quiesce();
  // Give the loop one wakeup to disable reads before the next frame lands.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // A frame sent after quiesce gets no answer. (The write itself succeeds —
  // the kernel buffers it — but the loop never reads it.)
  ASSERT_TRUE(SendFrame(&*socket, FrameType::kHealthRequest, "post").ok());
  ASSERT_TRUE(socket->SetTimeouts(300, 300).ok());
  EXPECT_FALSE(RecvFrame(&*socket).ok());
  fixture.loop->Stop(500);
}

}  // namespace
}  // namespace net
}  // namespace joinmi
