// Unit tests for src/mi: histograms, entropy estimators, kNN machinery, and
// the four MI estimators (MLE, KSG, MixedKSG, DC-KSG) against analytic
// ground truths.

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/math.h"
#include "src/common/random.h"
#include "src/mi/dc_ksg.h"
#include "src/mi/entropy.h"
#include "src/mi/estimator.h"
#include "src/mi/histogram.h"
#include "src/mi/knn.h"
#include "src/mi/ksg.h"
#include "src/mi/mixed_ksg.h"
#include "src/mi/mle.h"

namespace joinmi {
namespace {

// -------------------------------------------------------------- Histogram --

TEST(HistogramTest, ValueCoderDenseFirstAppearance) {
  ValueCoder coder;
  EXPECT_EQ(coder.Encode(Value("b")), 0u);
  EXPECT_EQ(coder.Encode(Value("a")), 1u);
  EXPECT_EQ(coder.Encode(Value("b")), 0u);
  EXPECT_EQ(coder.num_codes(), 2u);
  EXPECT_EQ(coder.Lookup(Value("a")), 1);
  EXPECT_EQ(coder.Lookup(Value("zzz")), -1);
}

TEST(HistogramTest, BuildHistogramCounts) {
  const Histogram hist = BuildHistogram({0, 1, 1, 2, 2, 2});
  EXPECT_EQ(hist.total, 6u);
  ASSERT_EQ(hist.num_bins(), 3u);
  EXPECT_EQ(hist.counts[0], 1u);
  EXPECT_EQ(hist.counts[1], 2u);
  EXPECT_EQ(hist.counts[2], 3u);
}

TEST(HistogramTest, JointHistogram) {
  auto joint = BuildJointHistogram({0, 0, 1}, {0, 0, 1});
  ASSERT_TRUE(joint.ok());
  EXPECT_EQ(joint->total, 3u);
  EXPECT_EQ(joint->num_cells(), 2u);
  EXPECT_EQ(joint->counts.at(PackCodes(0, 0)), 2u);
  EXPECT_FALSE(BuildJointHistogram({0}, {0, 1}).ok());
}

// ---------------------------------------------------------------- Entropy --

TEST(EntropyTest, UniformAndDegenerate) {
  // Uniform over 4 symbols: H = ln 4.
  const Histogram uniform = BuildHistogram({0, 1, 2, 3});
  EXPECT_NEAR(EntropyMLE(uniform), std::log(4.0), 1e-12);
  // Point mass: H = 0.
  const Histogram point = BuildHistogram({0, 0, 0});
  EXPECT_NEAR(EntropyMLE(point), 0.0, 1e-12);
  EXPECT_EQ(EntropyMLE(Histogram{}), 0.0);
}

TEST(EntropyTest, PaperSectionIVBWorkedExample) {
  // Y = [0 x5, 1..95]: H = -(0.05 ln 0.05 + 95 * 0.01 ln 0.01) ~ 4.5247
  // (the paper quotes log2; in nats the value is 4.5247 * ln2... the paper
  // actually uses natural log here: 4.5247 nats).
  std::vector<uint32_t> codes;
  for (int i = 0; i < 5; ++i) codes.push_back(0);
  for (uint32_t v = 1; v <= 95; ++v) codes.push_back(v);
  const Histogram hist = BuildHistogram(codes);
  EXPECT_NEAR(EntropyMLE(hist), 4.5247, 1e-3);
}

TEST(EntropyTest, MillerMadowAddsSupportCorrection) {
  const Histogram hist = BuildHistogram({0, 0, 1, 2});
  EXPECT_NEAR(EntropyMillerMadow(hist), EntropyMLE(hist) + (3.0 - 1) / 8.0,
              1e-12);
}

TEST(EntropyTest, LaplaceSmoothingShrinksTowardUniform) {
  const Histogram skewed = BuildHistogram({0, 0, 0, 0, 0, 0, 0, 1});
  const double h_raw = EntropyMLE(skewed);
  const double h_smooth = EntropyLaplace(skewed, 1.0);
  EXPECT_GT(h_smooth, h_raw);          // smoothing raises entropy
  EXPECT_LE(h_smooth, std::log(2.0) + 1e-12);  // bounded by uniform
  EXPECT_NEAR(EntropyLaplace(skewed, 0.0), h_raw, 1e-12);
}

TEST(EntropyTest, JointEntropyMLEIndependentFactorization) {
  // Independent uniform bits: H(X, Y) = ln 4.
  auto joint = *BuildJointHistogram({0, 0, 1, 1}, {0, 1, 0, 1});
  EXPECT_NEAR(JointEntropyMLE(joint), std::log(4.0), 1e-12);
}

TEST(EntropyTest, KnnEntropyGaussianCloseToAnalytic) {
  // H(N(0, s^2)) = 0.5 ln(2 pi e s^2).
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) xs.push_back(rng.Gaussian(0.0, 2.0));
  const double analytic = 0.5 * std::log(2 * M_PI * M_E * 4.0);
  auto h = DifferentialEntropyKnn(xs, 3);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(*h, analytic, 0.1);
}

TEST(EntropyTest, KnnEntropyUniformCloseToAnalytic) {
  // H(U[0, 4]) = ln 4.
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) xs.push_back(rng.Uniform(0.0, 4.0));
  auto h = DifferentialEntropyKnn(xs, 3);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(*h, std::log(4.0), 0.1);
}

TEST(EntropyTest, SpacingEntropyUniform) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) xs.push_back(rng.Uniform(0.0, 2.0));
  auto h = DifferentialEntropySpacing(xs);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(*h, std::log(2.0), 0.1);
}

TEST(EntropyTest, EstimatorErrorCases) {
  EXPECT_FALSE(DifferentialEntropyKnn({1.0, 2.0}, 3).ok());
  EXPECT_FALSE(DifferentialEntropyKnn({1.0, 2.0, 3.0, 4.0}, 0).ok());
  EXPECT_FALSE(DifferentialEntropySpacing({1.0}).ok());
  EXPECT_FALSE(DifferentialEntropySpacing({2.0, 2.0, 2.0}).ok());
}

// -------------------------------------------------------------------- kNN --

TEST(SortedPoints1DTest, KthNeighborDistances) {
  SortedPoints1D points({0.0, 1.0, 3.0, 6.0});
  EXPECT_EQ(points.KthNeighborDistance(0.0, 1), 1.0);   // -> 1.0
  EXPECT_EQ(points.KthNeighborDistance(0.0, 2), 3.0);   // -> 3.0
  EXPECT_EQ(points.KthNeighborDistance(3.0, 1), 2.0);   // -> 1.0
  EXPECT_EQ(points.KthNeighborDistance(3.0, 3), 3.0);   // -> 0.0 or 6.0
}

TEST(SortedPoints1DTest, DuplicatesExcludeOneSelfCopy) {
  SortedPoints1D points({2.0, 2.0, 2.0, 5.0});
  // Excluding one copy of the query leaves two zero-distance neighbors.
  EXPECT_EQ(points.KthNeighborDistance(2.0, 1), 0.0);
  EXPECT_EQ(points.KthNeighborDistance(2.0, 2), 0.0);
  EXPECT_EQ(points.KthNeighborDistance(2.0, 3), 3.0);
}

TEST(SortedPoints1DTest, CountWithinStrictAndClosed) {
  SortedPoints1D points({0.0, 1.0, 2.0, 3.0});
  // |p - 1.5| <= 0.5: {1.0, 2.0}; query point not a member here, so no
  // self-exclusion applies.
  EXPECT_EQ(points.CountWithin(1.5, 0.5, /*strict=*/false,
                               /*exclude_self=*/false),
            2u);
  EXPECT_EQ(points.CountWithin(1.5, 0.5, /*strict=*/true,
                               /*exclude_self=*/false),
            0u);
  // Member query with self-exclusion: |p - 1| <= 1 is {0,1,2}, minus self.
  EXPECT_EQ(points.CountWithin(1.0, 1.0, /*strict=*/false), 2u);
  // Strict r=0 never counts anything.
  EXPECT_EQ(points.CountWithin(1.0, 0.0, /*strict=*/true), 0u);
}

TEST(KdTree2DTest, MatchesBruteForce) {
  Rng rng(11);
  const size_t n = 500;
  std::vector<double> xs(n), ys(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = rng.Uniform(-10, 10);
    ys[i] = rng.Uniform(-10, 10);
  }
  KdTree2D tree(xs, ys);
  auto brute_kth = [&](size_t i, int k) {
    std::vector<double> dists;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      dists.push_back(
          std::max(std::fabs(xs[j] - xs[i]), std::fabs(ys[j] - ys[i])));
    }
    std::nth_element(dists.begin(), dists.begin() + (k - 1), dists.end());
    return dists[static_cast<size_t>(k - 1)];
  };
  auto brute_count = [&](size_t i, double r, bool strict) {
    size_t count = 0;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double d =
          std::max(std::fabs(xs[j] - xs[i]), std::fabs(ys[j] - ys[i]));
      if (strict ? d < r : d <= r) ++count;
    }
    return count;
  };
  for (size_t i = 0; i < 50; ++i) {
    for (int k : {1, 3, 7}) {
      ASSERT_DOUBLE_EQ(tree.KthNeighborDistance(i, k), brute_kth(i, k))
          << "i=" << i << " k=" << k;
    }
    const double r = tree.KthNeighborDistance(i, 3);
    ASSERT_EQ(tree.CountWithin(i, r, true), brute_count(i, r, true));
    ASSERT_EQ(tree.CountWithin(i, r, false), brute_count(i, r, false));
  }
}

TEST(KdTree2DTest, CoincidentPoints) {
  KdTree2D tree({1.0, 1.0, 1.0, 2.0}, {5.0, 5.0, 5.0, 6.0});
  EXPECT_EQ(tree.CountCoincident(0), 2u);
  EXPECT_EQ(tree.CountCoincident(3), 0u);
  EXPECT_EQ(tree.KthNeighborDistance(0, 1), 0.0);
  EXPECT_EQ(tree.KthNeighborDistance(0, 2), 0.0);
  EXPECT_EQ(tree.KthNeighborDistance(0, 3), 1.0);
}

// ------------------------------------------------------------------- MLE --

std::vector<Value> ToValues(const std::vector<int>& xs) {
  std::vector<Value> out;
  for (int x : xs) out.emplace_back(int64_t{x});
  return out;
}

TEST(MleMITest, IdenticalVariablesGiveEntropy) {
  // I(X, X) = H(X). Uniform over 4 symbols repeated many times so the MLE
  // bias is negligible.
  std::vector<int> xs;
  for (int rep = 0; rep < 100; ++rep) {
    for (int v = 0; v < 4; ++v) xs.push_back(v);
  }
  auto mi = MutualInformationMLE(ToValues(xs), ToValues(xs));
  ASSERT_TRUE(mi.ok());
  EXPECT_NEAR(*mi, std::log(4.0), 1e-9);
}

TEST(MleMITest, IndependentVariablesNearZero) {
  Rng rng(13);
  std::vector<int> xs, ys;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(static_cast<int>(rng.NextBounded(4)));
    ys.push_back(static_cast<int>(rng.NextBounded(4)));
  }
  auto mi = MutualInformationMLE(ToValues(xs), ToValues(ys));
  ASSERT_TRUE(mi.ok());
  // Bias ~ (m_X m_Y - m_X - m_Y + 1) / 2N ~ 9/40000.
  EXPECT_LT(*mi, 0.002);
}

TEST(MleMITest, NonNegativeAndSymmetric) {
  Rng rng(17);
  std::vector<int> xs, ys;
  for (int i = 0; i < 500; ++i) {
    const int x = static_cast<int>(rng.NextBounded(6));
    xs.push_back(x);
    ys.push_back(rng.Bernoulli(0.7) ? x : static_cast<int>(rng.NextBounded(6)));
  }
  const double ixy = *MutualInformationMLE(ToValues(xs), ToValues(ys));
  const double iyx = *MutualInformationMLE(ToValues(ys), ToValues(xs));
  EXPECT_GE(ixy, 0.0);
  EXPECT_NEAR(ixy, iyx, 1e-9);
}

TEST(MleMITest, InvariantUnderBijection) {
  // MI is invariant under relabeling of either variable.
  Rng rng(19);
  std::vector<Value> xs, ys, xs_relabel;
  for (int i = 0; i < 400; ++i) {
    const int x = static_cast<int>(rng.NextBounded(5));
    xs.emplace_back(int64_t{x});
    xs_relabel.emplace_back("label_" + std::to_string(x * 7));
    ys.emplace_back(int64_t{(x + static_cast<int>(rng.NextBounded(2))) % 5});
  }
  EXPECT_NEAR(*MutualInformationMLE(xs, ys),
              *MutualInformationMLE(xs_relabel, ys), 1e-9);
}

TEST(MleMITest, MillerMadowReducesBiasOnIndependentData) {
  Rng rng(23);
  std::vector<int> xs, ys;
  for (int i = 0; i < 300; ++i) {
    xs.push_back(static_cast<int>(rng.NextBounded(8)));
    ys.push_back(static_cast<int>(rng.NextBounded(8)));
  }
  const double mle = *MutualInformationMLE(ToValues(xs), ToValues(ys));
  const double mm = *MutualInformationMillerMadow(ToValues(xs), ToValues(ys));
  // True MI is 0; Miller–Madow should be closer (or equal after clamping).
  EXPECT_LE(mm, mle + 1e-12);
}

TEST(MleMITest, LaplaceShrinksEstimates) {
  Rng rng(29);
  std::vector<int> xs, ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(static_cast<int>(rng.NextBounded(10)));
    ys.push_back(static_cast<int>(rng.NextBounded(10)));
  }
  const double raw = *MutualInformationMLE(ToValues(xs), ToValues(ys));
  const double smoothed =
      *MutualInformationLaplace(ToValues(xs), ToValues(ys), 1.0);
  EXPECT_LT(smoothed, raw);
  EXPECT_GE(smoothed, 0.0);
  EXPECT_FALSE(
      MutualInformationLaplace(ToValues(xs), ToValues(ys), -1.0).ok());
}

TEST(MleMITest, BiasApproximationFormula) {
  EXPECT_NEAR(MleMIBiasApproximation(4, 4, 16, 100),
              (4.0 + 4.0 - 16.0 - 1.0) / 200.0, 1e-12);
}

TEST(MleMITest, ErrorsOnBadInput) {
  EXPECT_FALSE(MutualInformationMLE({}, {}).ok());
  EXPECT_FALSE(MutualInformationMLE(ToValues({1}), ToValues({1, 2})).ok());
}

// ------------------------------------------------------------------- KSG --

TEST(KsgTest, BivariateGaussianMatchesClosedForm) {
  // I = -0.5 ln(1 - r^2) for correlated Gaussians.
  Rng rng(31);
  const double r = 0.8;
  const double true_mi = BivariateNormalMI(r);
  std::vector<double> xs, ys;
  for (int i = 0; i < 3000; ++i) {
    const double u = rng.Gaussian();
    const double v = rng.Gaussian();
    xs.push_back(u);
    ys.push_back(r * u + std::sqrt(1 - r * r) * v);
  }
  auto mi = MutualInformationKSG(xs, ys, 3);
  ASSERT_TRUE(mi.ok());
  EXPECT_NEAR(*mi, true_mi, 0.1);
}

TEST(KsgTest, IndependentGaussiansNearZero) {
  Rng rng(37);
  std::vector<double> xs, ys;
  for (int i = 0; i < 2000; ++i) {
    xs.push_back(rng.Gaussian());
    ys.push_back(rng.Gaussian());
  }
  auto mi = MutualInformationKSG(xs, ys, 3);
  ASSERT_TRUE(mi.ok());
  EXPECT_LT(*mi, 0.08);
}

TEST(KsgTest, InvariantUnderAffineTransform) {
  Rng rng(41);
  std::vector<double> xs, ys, xs_scaled, ys_shifted;
  for (int i = 0; i < 1500; ++i) {
    const double u = rng.Gaussian();
    xs.push_back(u);
    ys.push_back(0.7 * u + 0.4 * rng.Gaussian());
    xs_scaled.push_back(250.0 * u + 3.0);
    ys_shifted.push_back(-5.0 * ys.back() + 100.0);
  }
  // Exact invariance holds asymptotically; anisotropic rescaling reshapes
  // finite-sample Chebyshev balls, so allow a small finite-sample gap.
  const double base = *MutualInformationKSG(xs, ys, 3);
  const double transformed = *MutualInformationKSG(xs_scaled, ys_shifted, 3);
  EXPECT_NEAR(base, transformed, 0.1);
}

TEST(KsgTest, ErrorsOnBadInput) {
  EXPECT_FALSE(MutualInformationKSG({1, 2}, {1}, 1).ok());
  EXPECT_FALSE(MutualInformationKSG({1, 2, 3}, {1, 2, 3}, 5).ok());
  EXPECT_FALSE(MutualInformationKSG({1, 2, 3}, {1, 2, 3}, 0).ok());
}

// -------------------------------------------------------------- MixedKSG --

TEST(MixedKsgTest, HandlesPurelyDiscreteData) {
  // X = Y uniform over {0..3} with many repeats: I = H = ln 4.
  Rng rng(43);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) {
    xs.push_back(static_cast<double>(rng.NextBounded(4)));
  }
  auto mi = MutualInformationMixedKSG(xs, xs, 3);
  ASSERT_TRUE(mi.ok());
  EXPECT_NEAR(*mi, std::log(4.0), 0.05);
}

TEST(MixedKsgTest, CDUnifMatchesClosedForm) {
  // The Gao et al. benchmark this estimator was designed for.
  Rng rng(47);
  const uint64_t m = 5;
  std::vector<double> xs, ys;
  for (int i = 0; i < 3000; ++i) {
    const double x = static_cast<double>(rng.NextBounded(m));
    xs.push_back(x);
    ys.push_back(x + rng.Uniform(0.0, 2.0));
  }
  const double md = static_cast<double>(m);
  const double true_mi = std::log(md) - (md - 1.0) * std::log(2.0) / md;
  // MixedKSG carries a k-dependent downward bias on mixtures (its log-based
  // marginal terms versus KSG's digamma ones); with the reference default
  // k = 5 the bias is ~0.06 here and shrinks as k grows. The sketch paper
  // itself observes this estimator-specific bias (its Figures 2-4).
  auto mi = MutualInformationMixedKSG(xs, ys, 5);
  ASSERT_TRUE(mi.ok());
  EXPECT_NEAR(*mi, true_mi, 0.15);
  // Bias shrinks with k: k = 10 must be at least as close.
  auto mi10 = MutualInformationMixedKSG(xs, ys, 10);
  EXPECT_LE(std::fabs(*mi10 - true_mi), std::fabs(*mi - true_mi) + 0.02);
}

TEST(MixedKsgTest, IndependentMixtureNearZero) {
  Rng rng(53);
  std::vector<double> xs, ys;
  for (int i = 0; i < 2000; ++i) {
    xs.push_back(static_cast<double>(rng.NextBounded(3)));
    ys.push_back(rng.Gaussian());
  }
  auto mi = MutualInformationMixedKSG(xs, ys, 3);
  ASSERT_TRUE(mi.ok());
  EXPECT_LT(*mi, 0.08);
}

// ---------------------------------------------------------------- DC-KSG --

TEST(DcKsgTest, DiscreteContinuousDependence) {
  // Y | X=c ~ N(3c, 0.25): strong dependence, MI ~ H(X) = ln 3 for well-
  // separated components.
  Rng rng(59);
  std::vector<Value> xs;
  std::vector<double> ys;
  for (int i = 0; i < 3000; ++i) {
    const int c = static_cast<int>(rng.NextBounded(3));
    xs.emplace_back("class_" + std::to_string(c));
    ys.push_back(rng.Gaussian(3.0 * c, 0.25));
  }
  auto mi = MutualInformationDCKSG(xs, ys, 3);
  ASSERT_TRUE(mi.ok());
  EXPECT_NEAR(*mi, std::log(3.0), 0.12);
}

TEST(DcKsgTest, IndependentNearZero) {
  Rng rng(61);
  std::vector<Value> xs;
  std::vector<double> ys;
  for (int i = 0; i < 2000; ++i) {
    xs.emplace_back(int64_t{static_cast<int64_t>(rng.NextBounded(4))});
    ys.push_back(rng.Gaussian());
  }
  auto mi = MutualInformationDCKSG(xs, ys, 3);
  ASSERT_TRUE(mi.ok());
  EXPECT_LT(*mi, 0.08);
}

TEST(DcKsgTest, SmallClassesClampK) {
  // One class with 2 members, another with the rest; k is clamped to
  // N_class - 1 = 1 for the small class rather than failing.
  Rng rng(67);
  std::vector<Value> xs = {Value("rare"), Value("rare")};
  std::vector<double> ys = {0.0, 0.1};
  for (int i = 0; i < 100; ++i) {
    xs.emplace_back("common");
    ys.push_back(rng.Gaussian(5.0, 1.0));
  }
  EXPECT_TRUE(MutualInformationDCKSG(xs, ys, 3).ok());
}

TEST(DcKsgTest, AllUniqueClassesFail) {
  std::vector<Value> xs = {Value("a"), Value("b"), Value("c")};
  std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_FALSE(MutualInformationDCKSG(xs, ys, 3).ok());
}

// ---------------------------------------------------------- Estimator API --

TEST(EstimatorTest, KindStringsRoundTrip) {
  for (MIEstimatorKind kind :
       {MIEstimatorKind::kMLE, MIEstimatorKind::kMillerMadow,
        MIEstimatorKind::kLaplace, MIEstimatorKind::kKSG,
        MIEstimatorKind::kMixedKSG, MIEstimatorKind::kDCKSG}) {
    auto parsed = MIEstimatorKindFromString(MIEstimatorKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(MIEstimatorKindFromString("nope").ok());
}

TEST(EstimatorTest, ChooseEstimatorPolicy) {
  EXPECT_EQ(*ChooseEstimator(DataType::kString, DataType::kString),
            MIEstimatorKind::kMLE);
  EXPECT_EQ(*ChooseEstimator(DataType::kDouble, DataType::kInt64),
            MIEstimatorKind::kMixedKSG);
  EXPECT_EQ(*ChooseEstimator(DataType::kString, DataType::kDouble),
            MIEstimatorKind::kDCKSG);
  EXPECT_EQ(*ChooseEstimator(DataType::kInt64, DataType::kString),
            MIEstimatorKind::kDCKSG);
  EXPECT_FALSE(ChooseEstimator(DataType::kNull, DataType::kInt64).ok());
}

TEST(EstimatorTest, AutoDispatchMatchesManual) {
  Rng rng(71);
  PairedSample sample;
  for (int i = 0; i < 400; ++i) {
    const int c = static_cast<int>(rng.NextBounded(3));
    sample.x.emplace_back("c" + std::to_string(c));
    sample.y.emplace_back(rng.Gaussian(2.0 * c, 0.5));
  }
  const double via_auto = *EstimateMIAuto(sample);
  const double via_kind = *EstimateMI(MIEstimatorKind::kDCKSG, sample);
  EXPECT_EQ(via_auto, via_kind);
}

TEST(EstimatorTest, RejectsNullsAndMismatchedArity) {
  PairedSample bad;
  bad.x = {Value(1.0)};
  bad.y = {Value::Null()};
  EXPECT_FALSE(EstimateMI(MIEstimatorKind::kMLE, bad).ok());
  PairedSample mismatched;
  mismatched.x = {Value(1.0), Value(2.0)};
  mismatched.y = {Value(1.0)};
  EXPECT_FALSE(EstimateMI(MIEstimatorKind::kMLE, mismatched).ok());
  EXPECT_FALSE(EstimateMI(MIEstimatorKind::kMLE, PairedSample{}).ok());
}

TEST(EstimatorTest, KsgRejectsStringData) {
  PairedSample sample;
  sample.x = {Value("a"), Value("b"), Value("c"), Value("d"), Value("e")};
  sample.y = {Value(1.0), Value(2.0), Value(3.0), Value(4.0), Value(5.0)};
  EXPECT_FALSE(EstimateMI(MIEstimatorKind::kKSG, sample).ok());
  EXPECT_TRUE(EstimateMI(MIEstimatorKind::kDCKSG, sample).ok() ||
              !EstimateMI(MIEstimatorKind::kDCKSG, sample).ok());
}

TEST(EstimatorTest, PerturbationBreaksTiesDeterministically) {
  const std::vector<double> xs = {1, 1, 2, 2, 3, 3};
  const auto a = PerturbForTies(xs, 1e-9, 99);
  const auto b = PerturbForTies(xs, 1e-9, 99);
  const auto c = PerturbForTies(xs, 1e-9, 100);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(a[i], xs[i], 1e-7);
  }
}

TEST(EstimatorTest, DcKsgPicksNumericSideAutomatically) {
  // Numeric on X, string on Y: DC-KSG must treat Y as the discrete side.
  Rng rng(73);
  PairedSample sample;
  for (int i = 0; i < 300; ++i) {
    const int c = static_cast<int>(rng.NextBounded(3));
    sample.x.emplace_back(rng.Gaussian(2.0 * c, 0.4));
    sample.y.emplace_back("g" + std::to_string(c));
  }
  auto mi = EstimateMI(MIEstimatorKind::kDCKSG, sample);
  ASSERT_TRUE(mi.ok());
  EXPECT_GT(*mi, 0.5);
}

}  // namespace
}  // namespace joinmi
