// Property-based tests: parameterized sweeps over estimator and sketch
// invariants that must hold for every configuration, not just hand-picked
// examples.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>
#include <tuple>

#include "src/common/random.h"
#include "src/core/join_mi.h"
#include "src/join/left_join.h"
#include "src/mi/entropy.h"
#include "src/mi/estimator.h"
#include "src/sketch/builder.h"
#include "src/sketch/sketch_join.h"
#include "src/synthetic/pipeline.h"

namespace joinmi {
namespace {

/// gtest parameter names must be alphanumeric; strip the '-' in "DC-KSG".
std::string SafeName(std::string s) {
  s.erase(std::remove_if(
              s.begin(), s.end(),
              [](char c) {
                return !std::isalnum(static_cast<unsigned char>(c));
              }),
          s.end());
  return s;
}

// ------------------------------------------------ Entropy bound sweeps ----

class EntropyBoundsTest
    : public testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(EntropyBoundsTest, MleWithinZeroAndLogSupport) {
  const auto [support, seed] = GetParam();
  Rng rng(seed);
  std::vector<uint32_t> codes;
  for (int i = 0; i < 500; ++i) {
    codes.push_back(static_cast<uint32_t>(rng.NextBounded(
        static_cast<uint64_t>(support))));
  }
  const Histogram hist = BuildHistogram(codes);
  const double h = EntropyMLE(hist);
  EXPECT_GE(h, 0.0);
  EXPECT_LE(h, std::log(static_cast<double>(support)) + 1e-12);
  // Miller-Madow and Laplace stay ordered sensibly.
  EXPECT_GE(EntropyMillerMadow(hist), h);
  EXPECT_GE(EntropyLaplace(hist, 1.0), h - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    SupportSweep, EntropyBoundsTest,
    testing::Combine(testing::Values(2, 5, 17, 64, 256),
                     testing::Values(1u, 2u, 3u)));

// -------------------------------------------- Estimator invariants --------

class MIInvariantsTest
    : public testing::TestWithParam<std::tuple<MIEstimatorKind, uint64_t>> {};

TEST_P(MIInvariantsTest, NonNegativeAndSymmetricOnNumericData) {
  const auto [kind, seed] = GetParam();
  Rng rng(seed);
  PairedSample sample;
  const bool discrete_x = kind == MIEstimatorKind::kDCKSG;
  for (int i = 0; i < 600; ++i) {
    // DC-KSG needs a genuinely discrete side; give it quantized X. The
    // other estimators get a continuous mixture.
    const double x = discrete_x
                         ? static_cast<double>(rng.NextBounded(6))
                         : rng.Gaussian();
    sample.x.emplace_back(x);
    sample.y.emplace_back(0.5 * x + rng.Gaussian() +
                          (rng.Bernoulli(0.3) ? 1.0 : 0.0));
  }
  MIOptions options;
  options.k = 3;
  auto ixy = EstimateMI(kind, sample, options);
  ASSERT_TRUE(ixy.ok()) << MIEstimatorKindToString(kind);
  EXPECT_GE(*ixy, 0.0);
  // Symmetry: plug-ins are exactly symmetric, continuous KSG variants up to
  // finite-sample effects. DC-KSG is excluded: with both sides numeric it
  // always treats X as the discrete one, so swapping hands it a continuous
  // "discrete" side — a structural asymmetry, not a numeric one.
  if (kind == MIEstimatorKind::kDCKSG) return;
  PairedSample swapped;
  swapped.x = sample.y;
  swapped.y = sample.x;
  auto iyx = EstimateMI(kind, swapped, options);
  ASSERT_TRUE(iyx.ok());
  if (kind == MIEstimatorKind::kMLE || kind == MIEstimatorKind::kMillerMadow ||
      kind == MIEstimatorKind::kLaplace) {
    EXPECT_NEAR(*ixy, *iyx, 1e-9);
  } else {
    EXPECT_NEAR(*ixy, *iyx, 0.25);
  }
}

INSTANTIATE_TEST_SUITE_P(
    EstimatorSweep, MIInvariantsTest,
    testing::Combine(testing::Values(MIEstimatorKind::kMLE,
                                     MIEstimatorKind::kMillerMadow,
                                     MIEstimatorKind::kLaplace,
                                     MIEstimatorKind::kKSG,
                                     MIEstimatorKind::kMixedKSG,
                                     MIEstimatorKind::kDCKSG),
                     testing::Values(101u, 202u, 303u)),
    [](const testing::TestParamInfo<std::tuple<MIEstimatorKind, uint64_t>>&
           info) {
      return SafeName(MIEstimatorKindToString(std::get<0>(info.param))) +
             "_s" + std::to_string(std::get<1>(info.param));
    });

// Independence: every estimator must report near-zero MI for independent
// variables, across seeds.
class IndependenceTest
    : public testing::TestWithParam<std::tuple<MIEstimatorKind, uint64_t>> {};

TEST_P(IndependenceTest, NearZeroOnIndependentData) {
  const auto [kind, seed] = GetParam();
  Rng rng(seed);
  PairedSample sample;
  for (int i = 0; i < 3000; ++i) {
    if (kind == MIEstimatorKind::kMLE ||
        kind == MIEstimatorKind::kMillerMadow ||
        kind == MIEstimatorKind::kLaplace) {
      sample.x.emplace_back(static_cast<int64_t>(rng.NextBounded(5)));
      sample.y.emplace_back(static_cast<int64_t>(rng.NextBounded(5)));
    } else if (kind == MIEstimatorKind::kDCKSG) {
      sample.x.emplace_back(static_cast<int64_t>(rng.NextBounded(5)));
      sample.y.emplace_back(rng.Gaussian());
    } else {
      sample.x.emplace_back(rng.Gaussian());
      sample.y.emplace_back(rng.Gaussian());
    }
  }
  auto mi = EstimateMI(kind, sample);
  ASSERT_TRUE(mi.ok());
  EXPECT_LT(*mi, 0.05) << MIEstimatorKindToString(kind);
}

INSTANTIATE_TEST_SUITE_P(
    EstimatorSweep, IndependenceTest,
    testing::Combine(testing::Values(MIEstimatorKind::kMLE,
                                     MIEstimatorKind::kMillerMadow,
                                     MIEstimatorKind::kLaplace,
                                     MIEstimatorKind::kKSG,
                                     MIEstimatorKind::kMixedKSG,
                                     MIEstimatorKind::kDCKSG),
                     testing::Values(11u, 12u)),
    [](const testing::TestParamInfo<std::tuple<MIEstimatorKind, uint64_t>>&
           info) {
      return SafeName(MIEstimatorKindToString(std::get<0>(info.param))) +
             "_s" + std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------ Sketch size sweep -------

class SketchSizeBoundTest
    : public testing::TestWithParam<
          std::tuple<SketchMethod, size_t, double>> {};

TEST_P(SketchSizeBoundTest, HardBoundHoldsUnderSkew) {
  const auto [method, capacity, zipf_s] = GetParam();
  Rng rng(7);
  std::vector<std::string> keys;
  std::vector<int64_t> values;
  for (int i = 0; i < 3000; ++i) {
    keys.push_back("k" + std::to_string(rng.Zipf(500, zipf_s)));
    values.push_back(static_cast<int64_t>(i));
  }
  auto train = *Table::FromColumns({{"K", Column::MakeString(keys)},
                                    {"Y", Column::MakeInt64(values)}});
  SketchOptions options;
  options.capacity = capacity;
  auto builder = MakeSketchBuilder(method, options);
  auto sketch = *builder->SketchTrain(*(*train->GetColumn("K")),
                                      *(*train->GetColumn("Y")));
  const size_t bound =
      (method == SketchMethod::kLv2sk || method == SketchMethod::kPrisk)
          ? 2 * capacity
          : capacity;
  EXPECT_LE(sketch.size(), bound);
  // Candidate sketches are always bounded by n.
  auto cand_sketch = *builder->SketchCandidate(*(*train->GetColumn("K")),
                                               *(*train->GetColumn("Y")),
                                               AggKind::kAvg);
  EXPECT_LE(cand_sketch.size(), capacity);
}

INSTANTIATE_TEST_SUITE_P(
    MethodCapacitySkew, SketchSizeBoundTest,
    testing::Combine(testing::Values(SketchMethod::kTupsk,
                                     SketchMethod::kLv2sk,
                                     SketchMethod::kPrisk,
                                     SketchMethod::kIndsk, SketchMethod::kCsk),
                     testing::Values(16u, 128u, 1024u),
                     testing::Values(0.5, 1.2)),
    [](const testing::TestParamInfo<std::tuple<SketchMethod, size_t, double>>&
           info) {
      return std::string(SketchMethodToString(std::get<0>(info.param))) +
             "_n" + std::to_string(std::get<1>(info.param)) + "_z" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 10));
    });

// ----------------------------------- Sketch join subset-of-full-join ------

class SketchJoinSubsetTest
    : public testing::TestWithParam<std::tuple<SketchMethod, uint64_t>> {};

TEST_P(SketchJoinSubsetTest, EveryJoinedPairExistsInFullJoin) {
  const auto [method, seed] = GetParam();
  Rng rng(seed);
  std::vector<std::string> keys;
  std::vector<int64_t> targets;
  for (int i = 0; i < 800; ++i) {
    const int k = static_cast<int>(rng.NextBounded(120));
    keys.push_back("k" + std::to_string(k));
    targets.push_back(static_cast<int64_t>(rng.NextBounded(30)));
  }
  std::vector<std::string> cand_keys;
  std::vector<int64_t> cand_values;
  for (int i = 0; i < 600; ++i) {
    const int k = static_cast<int>(rng.NextBounded(150));
    cand_keys.push_back("k" + std::to_string(k));
    cand_values.push_back(static_cast<int64_t>(rng.NextBounded(40)));
  }
  auto train = *Table::FromColumns({{"K", Column::MakeString(keys)},
                                    {"Y", Column::MakeInt64(targets)}});
  auto cand = *Table::FromColumns({{"K", Column::MakeString(cand_keys)},
                                   {"Z", Column::MakeInt64(cand_values)}});
  SketchOptions options;
  options.capacity = 64;
  auto builder = MakeSketchBuilder(method, options);
  auto s_train = *builder->SketchTrain(*(*train->GetColumn("K")),
                                       *(*train->GetColumn("Y")));
  auto s_cand = *builder->SketchCandidate(*(*cand->GetColumn("K")),
                                          *(*cand->GetColumn("Z")),
                                          AggKind::kAvg);
  auto joined = *JoinSketches(s_train, s_cand);

  // Ground truth: (Y target, AVG feature) pair multiset from the real join.
  auto full = *LeftJoinAggregate(*train, "K", "Y", *cand, "K", "Z",
                                 {AggKind::kAvg, true, "X"});
  std::multiset<std::pair<double, int64_t>> full_pairs;
  auto x_col = *full.table->GetColumn("X");
  auto y_col = *full.table->GetColumn("Y");
  for (size_t r = 0; r < full.table->num_rows(); ++r) {
    full_pairs.emplace(x_col->DoubleAt(r), y_col->Int64At(r));
  }
  // CSK replaces aggregation by first-value, so only the (key-match) part
  // of the property holds there; check pair membership for the others.
  if (method != SketchMethod::kCsk) {
    for (size_t i = 0; i < joined.sample.size(); ++i) {
      const auto pair = std::make_pair(*joined.sample.x[i].AsDouble(),
                                       joined.sample.y[i].int64());
      const auto it = full_pairs.find(pair);
      ASSERT_NE(it, full_pairs.end())
          << SketchMethodToString(method) << " produced a pair (" << pair.first
          << ", " << pair.second << ") absent from the full join";
      full_pairs.erase(it);  // respect multiplicity
    }
  }
  // For every method, the join size cannot exceed the train sketch size.
  EXPECT_LE(joined.join_size, s_train.size());
}

INSTANTIATE_TEST_SUITE_P(
    MethodSeed, SketchJoinSubsetTest,
    testing::Combine(testing::Values(SketchMethod::kTupsk,
                                     SketchMethod::kLv2sk,
                                     SketchMethod::kPrisk,
                                     SketchMethod::kIndsk, SketchMethod::kCsk),
                     testing::Values(1u, 2u, 3u)),
    [](const testing::TestParamInfo<std::tuple<SketchMethod, uint64_t>>&
           info) {
      return std::string(SketchMethodToString(std::get<0>(info.param))) +
             "_s" + std::to_string(std::get<1>(info.param));
    });

// ------------------------------------ TUPSK accuracy improves with n ------

TEST(ConvergenceTest, TupskErrorShrinksWithSketchSize) {
  // Paper Section IV-B "Accuracy Guarantees": approximation error decreases
  // roughly as 1/sqrt(join size). Check the monotone trend over octaves,
  // averaged across seeds.
  const std::vector<size_t> capacities = {64, 256, 1024};
  std::vector<double> mean_abs_err(capacities.size(), 0.0);
  constexpr int kSeeds = 5;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    SyntheticSpec spec;
    spec.distribution = SyntheticDistribution::kTrinomial;
    spec.m = 64;
    spec.num_rows = 20000;
    spec.key_scheme = KeyScheme::kKeyInd;
    spec.seed = static_cast<uint64_t>(seed) * 1000;
    auto dataset = *GenerateSyntheticDataset(spec);
    for (size_t ci = 0; ci < capacities.size(); ++ci) {
      SketchOptions options;
      options.capacity = capacities[ci];
      auto builder = MakeSketchBuilder(SketchMethod::kTupsk, options);
      auto train = dataset.tables.train;
      auto cand = dataset.tables.cand;
      auto s_train = *builder->SketchTrain(*(*train->GetColumn("K")),
                                           *(*train->GetColumn("Y")));
      auto s_cand = *builder->SketchCandidate(*(*cand->GetColumn("K")),
                                              *(*cand->GetColumn("Z")),
                                              AggKind::kFirst);
      auto result =
          *EstimateSketchMI(s_train, s_cand, MIEstimatorKind::kMLE, {}, 1);
      mean_abs_err[ci] += std::fabs(result.mi - dataset.true_mi) / kSeeds;
    }
  }
  // Larger sketches must be at least as accurate (with slack for noise).
  EXPECT_LT(mean_abs_err[2], mean_abs_err[0]);
  EXPECT_LT(mean_abs_err[1], mean_abs_err[0] + 0.05);
  EXPECT_LT(mean_abs_err[2], mean_abs_err[1] + 0.05);
}

// ------------------------------------------- Aggregation sensitivity ------

class AggregationSweepTest : public testing::TestWithParam<AggKind> {};

TEST_P(AggregationSweepTest, FullJoinAndSketchAgreeOnAggregatedFeatures) {
  // For every aggregation function, the sketch estimate must approximate
  // the full-join estimate computed with the same AGG.
  Rng rng(97);
  std::vector<std::string> keys, cand_keys;
  std::vector<int64_t> targets, cand_values;
  for (int i = 0; i < 4000; ++i) {
    const int k = static_cast<int>(rng.NextBounded(250));
    keys.push_back("k" + std::to_string(k));
    targets.push_back(k % 6);
  }
  for (int i = 0; i < 2000; ++i) {
    const int k = static_cast<int>(rng.NextBounded(250));
    cand_keys.push_back("k" + std::to_string(k));
    cand_values.push_back((k % 6) * 10 +
                          static_cast<int64_t>(rng.NextBounded(5)));
  }
  auto train = *Table::FromColumns({{"K", Column::MakeString(keys)},
                                    {"Y", Column::MakeInt64(targets)}});
  auto cand = *Table::FromColumns({{"K", Column::MakeString(cand_keys)},
                                   {"Z", Column::MakeInt64(cand_values)}});
  JoinMIConfig config;
  config.sketch_capacity = 1024;
  config.aggregation = GetParam();
  config.estimator = MIEstimatorKind::kMLE;
  const JoinMIQuerySpec spec{"K", "Y", "K", "Z"};
  auto full = *FullJoinMI(*train, *cand, spec, config);
  auto sketched = *SketchJoinMI(*train, *cand, spec, config);
  EXPECT_NEAR(sketched.mi, full.mi, 0.45)
      << "agg=" << AggKindToString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AggSweep, AggregationSweepTest,
                         testing::Values(AggKind::kAvg, AggKind::kSum,
                                         AggKind::kMin, AggKind::kMax,
                                         AggKind::kCount, AggKind::kMode,
                                         AggKind::kMedian, AggKind::kFirst),
                         [](const testing::TestParamInfo<AggKind>& info) {
                           return AggKindToString(info.param);
                         });

}  // namespace
}  // namespace joinmi
