// Tests for sketch binary serialization: round trips for every method and
// value type, estimation equivalence after a round trip, and corruption
// handling (truncation, bad magic/tags, trailing bytes).

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/sketch/builder.h"
#include "src/sketch/serialize.h"
#include "src/sketch/sketch_join.h"
#include "src/table/table.h"

namespace joinmi {
namespace {

Sketch MakeSampleSketch(SketchMethod method, DataType value_type) {
  Rng rng(8);
  std::vector<std::string> keys;
  std::vector<Value> values;
  for (int i = 0; i < 500; ++i) {
    keys.push_back("k" + std::to_string(rng.NextBounded(120)));
    switch (value_type) {
      case DataType::kInt64:
        values.emplace_back(static_cast<int64_t>(rng.NextBounded(40)));
        break;
      case DataType::kDouble:
        values.emplace_back(rng.Gaussian());
        break;
      default:
        values.emplace_back("v" + std::to_string(rng.NextBounded(9)));
        break;
    }
  }
  auto key_col = Column::MakeString(std::move(keys));
  auto value_col = *Column::FromValues(values);
  SketchOptions options;
  options.capacity = 64;
  auto builder = MakeSketchBuilder(method, options);
  return *builder->SketchTrain(*key_col, *value_col);
}

void ExpectSketchesEqual(const Sketch& a, const Sketch& b) {
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.side, b.side);
  EXPECT_EQ(a.capacity, b.capacity);
  EXPECT_EQ(a.hash_seed, b.hash_seed);
  EXPECT_EQ(a.source_rows, b.source_rows);
  EXPECT_EQ(a.source_distinct_keys, b.source_distinct_keys);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].key_hash, b.entries[i].key_hash);
    EXPECT_EQ(a.entries[i].rank, b.entries[i].rank);
    EXPECT_EQ(a.entries[i].value, b.entries[i].value);
  }
}

class SerializeRoundTripTest
    : public testing::TestWithParam<std::tuple<SketchMethod, DataType>> {};

TEST_P(SerializeRoundTripTest, RoundTripsExactly) {
  const auto [method, type] = GetParam();
  const Sketch original = MakeSampleSketch(method, type);
  const std::string data = SerializeSketch(original);
  auto restored = DeserializeSketch(data);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectSketchesEqual(original, *restored);
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndTypes, SerializeRoundTripTest,
    testing::Combine(testing::Values(SketchMethod::kTupsk,
                                     SketchMethod::kLv2sk,
                                     SketchMethod::kPrisk,
                                     SketchMethod::kIndsk,
                                     SketchMethod::kCsk),
                     testing::Values(DataType::kInt64, DataType::kDouble,
                                     DataType::kString)),
    [](const testing::TestParamInfo<std::tuple<SketchMethod, DataType>>&
           info) {
      return std::string(SketchMethodToString(std::get<0>(info.param))) +
             "_" + DataTypeToString(std::get<1>(info.param));
    });

// Empty and single-key sketches for every named variant: the boundary
// conditions a persisted discovery index actually hits (all-null candidate
// columns serialize empty; capacity-1 sketches hold one key).
class SerializeEdgeCaseTest : public testing::TestWithParam<SketchMethod> {};

TEST_P(SerializeEdgeCaseTest, EmptySketchRoundTrips) {
  for (SketchSide side : {SketchSide::kTrain, SketchSide::kCandidate}) {
    Sketch sketch;
    sketch.method = GetParam();
    sketch.side = side;
    sketch.capacity = 32;
    auto restored = DeserializeSketch(SerializeSketch(sketch));
    ASSERT_TRUE(restored.ok()) << restored.status();
    ExpectSketchesEqual(sketch, *restored);
    EXPECT_EQ(restored->size(), 0u);
  }
}

TEST_P(SerializeEdgeCaseTest, BuiltEmptySketchRoundTrips) {
  // An all-null column yields a sketch with zero entries through the real
  // builder path; it must survive persistence with provenance intact.
  std::vector<Value> nulls(8, Value::Null());
  auto key_col = *Column::FromValues(nulls);
  auto value_col = *Column::FromValues(nulls);
  SketchOptions options;
  options.capacity = 16;
  auto builder = MakeSketchBuilder(GetParam(), options);
  auto sketch = builder->SketchTrain(*key_col, *value_col);
  ASSERT_TRUE(sketch.ok()) << sketch.status();
  EXPECT_EQ(sketch->size(), 0u);
  auto restored = DeserializeSketch(SerializeSketch(*sketch));
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectSketchesEqual(*sketch, *restored);
}

TEST_P(SerializeEdgeCaseTest, SingleKeySketchRoundTrips) {
  auto key_col = Column::MakeString({"only-key"});
  auto value_col = Column::MakeString({"only-value"});
  SketchOptions options;
  options.capacity = 4;
  auto builder = MakeSketchBuilder(GetParam(), options);
  for (bool candidate_side : {false, true}) {
    Result<Sketch> sketch =
        candidate_side
            ? builder->SketchCandidate(*key_col, *value_col, AggKind::kFirst)
            : builder->SketchTrain(*key_col, *value_col);
    ASSERT_TRUE(sketch.ok()) << sketch.status();
    ASSERT_EQ(sketch->size(), 1u);
    auto restored = DeserializeSketch(SerializeSketch(*sketch));
    ASSERT_TRUE(restored.ok()) << restored.status();
    ExpectSketchesEqual(*sketch, *restored);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, SerializeEdgeCaseTest,
    testing::Values(SketchMethod::kCsk, SketchMethod::kIndsk,
                    SketchMethod::kLv2sk, SketchMethod::kPrisk,
                    SketchMethod::kTupsk),
    [](const testing::TestParamInfo<SketchMethod>& info) {
      return SketchMethodToString(info.param);
    });

TEST(SerializeTest, HashSeedRoundTrips) {
  // The v2 format records the builder's hash seed, so a persisted sketch
  // carries the provenance JoinSketches needs to enforce seed agreement.
  auto key_col = Column::MakeString({"a", "b", "c"});
  auto value_col = Column::MakeInt64({1, 2, 3});
  SketchOptions options;
  options.capacity = 8;
  options.hash_seed = 9;
  auto builder = MakeSketchBuilder(SketchMethod::kTupsk, options);
  auto sketch = *builder->SketchTrain(*key_col, *value_col);
  EXPECT_EQ(sketch.hash_seed, 9u);
  auto restored = DeserializeSketch(SerializeSketch(sketch));
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->hash_seed, 9u);
  ExpectSketchesEqual(sketch, *restored);
}

// Hand-encodes the legacy v1 layout (no hash_seed field) for a sketch with
// int64 values, byte for byte what the v1 writer produced.
std::string EncodeV1(const Sketch& sketch) {
  std::string out;
  auto pod = [&out](const void* p, size_t n) {
    out.append(static_cast<const char*>(p), n);
  };
  out.append("JMSK");
  const uint32_t version = 1;
  pod(&version, 4);
  const uint8_t method = static_cast<uint8_t>(sketch.method);
  const uint8_t side = static_cast<uint8_t>(sketch.side);
  pod(&method, 1);
  pod(&side, 1);
  const uint64_t capacity = sketch.capacity;
  const uint64_t rows = sketch.source_rows;
  const uint64_t distinct = sketch.source_distinct_keys;
  const uint64_t count = sketch.entries.size();
  pod(&capacity, 8);
  pod(&rows, 8);
  pod(&distinct, 8);
  pod(&count, 8);
  for (const SketchEntry& entry : sketch.entries) {
    pod(&entry.key_hash, 8);
    pod(&entry.rank, 8);
    const uint8_t tag = 1;  // int64
    pod(&tag, 1);
    const int64_t v = entry.value.int64();
    pod(&v, 8);
  }
  return out;
}

TEST(SerializeTest, ReadsLegacyV1BuffersWithDefaultSeed) {
  Sketch sketch;
  sketch.method = SketchMethod::kTupsk;
  sketch.side = SketchSide::kCandidate;
  sketch.capacity = 4;
  sketch.source_rows = 2;
  sketch.source_distinct_keys = 2;
  sketch.entries.push_back(SketchEntry{3, 0.25, Value(int64_t{10})});
  sketch.entries.push_back(SketchEntry{8, 0.5, Value(int64_t{20})});
  auto restored = DeserializeSketch(EncodeV1(sketch));
  ASSERT_TRUE(restored.ok()) << restored.status();
  // v1 predates seed tracking; the default seed 0 is assumed on load.
  EXPECT_EQ(restored->hash_seed, 0u);
  ExpectSketchesEqual(sketch, *restored);
}

TEST(SerializeTest, MismatchedSeedSketchesRefuseToJoin) {
  // The hole the format bump closes: a persisted candidate probed by a
  // query sketched under a different seed must fail, not estimate.
  auto key_col = Column::MakeString({"a", "b", "c", "d"});
  auto value_col = Column::MakeInt64({1, 2, 3, 4});
  SketchOptions options;
  options.capacity = 8;
  options.hash_seed = 1;
  auto builder = MakeSketchBuilder(SketchMethod::kTupsk, options);
  auto cand = *builder->SketchCandidate(*key_col, *value_col, AggKind::kFirst);
  auto restored_cand = *DeserializeSketch(SerializeSketch(cand));

  SketchOptions query_options = options;
  query_options.hash_seed = 2;
  auto query_builder = MakeSketchBuilder(SketchMethod::kTupsk, query_options);
  auto train = *query_builder->SketchTrain(*key_col, *value_col);
  auto joined = JoinSketches(train, restored_cand);
  ASSERT_FALSE(joined.ok());
  EXPECT_TRUE(joined.status().IsInvalidArgument());
  EXPECT_FALSE(
      EstimateSketchMI(train, restored_cand, MIEstimatorKind::kMLE).ok());
}

TEST(SerializeTest, NullValueRoundTrips) {
  Sketch sketch;
  sketch.capacity = 1;
  sketch.entries.push_back(SketchEntry{7, 0.5, Value::Null()});
  auto restored = DeserializeSketch(SerializeSketch(sketch));
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->entries[0].value.is_null());
}

TEST(SerializeTest, EstimationSurvivesRoundTrip) {
  // Serialize both sides, deserialize, and verify the MI estimate is
  // bit-identical to the in-memory path.
  Rng rng(21);
  std::vector<std::string> keys, cand_keys;
  std::vector<int64_t> targets, cand_values;
  for (int i = 0; i < 800; ++i) {
    const int k = static_cast<int>(rng.NextBounded(200));
    keys.push_back("k" + std::to_string(k));
    targets.push_back(k % 5);
  }
  for (int k = 0; k < 200; ++k) {
    cand_keys.push_back("k" + std::to_string(k));
    cand_values.push_back(k % 5);
  }
  auto train = *Table::FromColumns({{"K", Column::MakeString(keys)},
                                    {"Y", Column::MakeInt64(targets)}});
  auto cand = *Table::FromColumns({{"K", Column::MakeString(cand_keys)},
                                   {"Z", Column::MakeInt64(cand_values)}});
  SketchOptions options;
  options.capacity = 128;
  auto builder = MakeSketchBuilder(SketchMethod::kTupsk, options);
  auto s_train = *builder->SketchTrain(*(*train->GetColumn("K")),
                                       *(*train->GetColumn("Y")));
  auto s_cand = *builder->SketchCandidate(*(*cand->GetColumn("K")),
                                          *(*cand->GetColumn("Z")),
                                          AggKind::kFirst);
  auto direct = *EstimateSketchMI(s_train, s_cand, MIEstimatorKind::kMLE);
  auto restored_train = *DeserializeSketch(SerializeSketch(s_train));
  auto restored_cand = *DeserializeSketch(SerializeSketch(s_cand));
  auto roundtripped = *EstimateSketchMI(restored_train, restored_cand,
                                        MIEstimatorKind::kMLE);
  EXPECT_EQ(direct.mi, roundtripped.mi);
  EXPECT_EQ(direct.join_size, roundtripped.join_size);
}

TEST(SerializeTest, FileRoundTrip) {
  const Sketch original =
      MakeSampleSketch(SketchMethod::kTupsk, DataType::kString);
  const std::string path = testing::TempDir() + "/joinmi_sketch_test.bin";
  ASSERT_TRUE(WriteSketchFile(original, path).ok());
  auto restored = ReadSketchFile(path);
  ASSERT_TRUE(restored.ok());
  ExpectSketchesEqual(original, *restored);
  EXPECT_FALSE(ReadSketchFile("/no/such/dir/sketch.bin").ok());
}

TEST(SerializeTest, RejectsCorruptedInputs) {
  const Sketch original =
      MakeSampleSketch(SketchMethod::kTupsk, DataType::kString);
  const std::string data = SerializeSketch(original);

  // Bad magic.
  std::string bad_magic = data;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DeserializeSketch(bad_magic).ok());

  // Unsupported version.
  std::string bad_version = data;
  bad_version[4] = 99;
  EXPECT_FALSE(DeserializeSketch(bad_version).ok());

  // Truncations at every prefix length must fail, never crash.
  for (size_t len : {0u, 3u, 8u, 12u, 30u}) {
    EXPECT_FALSE(DeserializeSketch(data.substr(0, len)).ok()) << len;
  }
  EXPECT_FALSE(DeserializeSketch(data.substr(0, data.size() - 1)).ok());

  // Trailing garbage.
  EXPECT_FALSE(DeserializeSketch(data + "x").ok());

  // Corrupted entry count (enormous) must not allocate wildly.
  std::string bad_count = data;
  // entry count lives after
  // magic(4)+version(4)+method(1)+side(1)+hash_seed(4)+3*u64.
  const size_t count_offset = 4 + 4 + 1 + 1 + 4 + 24;
  for (int b = 0; b < 8; ++b) {
    bad_count[count_offset + static_cast<size_t>(b)] = '\xFF';
  }
  EXPECT_FALSE(DeserializeSketch(bad_count).ok());
}

// ------------------------------------------------------ wire::Checksum64

TEST(Checksum64Test, MatchesFnv1aReferenceVectors) {
  // Published FNV-1a 64-bit test vectors (offset basis 14695981039346656037,
  // prime 1099511628211). The empty input must return the offset basis —
  // shard manifests rely on "empty file" having a well-defined checksum.
  EXPECT_EQ(wire::Checksum64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(wire::Checksum64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(wire::Checksum64("b"), 0xaf63df4c8601f1a5ULL);
  EXPECT_EQ(wire::Checksum64("abc"), 0xe71fa2190541574bULL);
  EXPECT_EQ(wire::Checksum64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Checksum64Test, SingleByteAvalanche) {
  // Adjacent single-byte inputs must disagree in many bits — a checksum
  // that clusters on near-identical inputs would miss the very bit flips
  // the shard loader exists to catch.
  const uint64_t diff = wire::Checksum64("a") ^ wire::Checksum64("b");
  int bits = 0;
  for (uint64_t d = diff; d != 0; d >>= 1) bits += static_cast<int>(d & 1);
  EXPECT_GE(bits, 8);

  // A one-bit flip anywhere in a larger buffer changes the checksum.
  std::string buffer(256, '\0');
  for (size_t i = 0; i < buffer.size(); ++i) {
    buffer[i] = static_cast<char>(i * 7 + 1);
  }
  const uint64_t baseline = wire::Checksum64(buffer);
  for (size_t i = 0; i < buffer.size(); i += 41) {
    std::string flipped = buffer;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x10);
    EXPECT_NE(wire::Checksum64(flipped), baseline) << i;
  }
}

TEST(Checksum64Test, DependsOnByteOrder) {
  EXPECT_NE(wire::Checksum64("ab"), wire::Checksum64("ba"));
  EXPECT_NE(wire::Checksum64(std::string("\x00\x01", 2)),
            wire::Checksum64(std::string("\x01\x00", 2)));
}

}  // namespace
}  // namespace joinmi
