// Front-tier Router tests: Router::Open as the one construction path, the
// result cache (bit-identity, degraded-never-cached, LRU eviction, reload
// invalidation), the admission gate (structured kOverloaded + retry-after
// under a deliberately blocked backend), and the metrics snapshot.
//
// The backend seam under test is RouterOptions::factory_override: an
// instrumented ShardClient wraps the real local loader and can be told to
// fail, to block until released, or simply to count how many searches
// actually reached the shard — which is how these tests prove a cache hit
// never re-ran the fan-out.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/admission.h"
#include "src/common/random.h"
#include "src/discovery/router.h"
#include "src/discovery/search.h"
#include "src/discovery/sharded_index.h"
#include "src/discovery/sketch_index.h"
#include "src/table/table.h"

namespace joinmi {
namespace {

std::shared_ptr<Table> MakeTwoColumnTable(const std::string& key_name,
                                          std::vector<std::string> keys,
                                          const std::string& value_name,
                                          std::vector<int64_t> values) {
  return *Table::FromColumns(
      {{key_name, Column::MakeString(std::move(keys))},
       {value_name, Column::MakeInt64(std::move(values))}});
}

struct Universe {
  std::shared_ptr<Table> base;
  TableRepository repository;
};

// Graded relevance plus exact twins, so rankings and tie-breaks are
// non-trivial (same construction as the sharded/RPC suites).
Universe MakeUniverse() {
  Universe universe;
  Rng rng(40414);
  const size_t num_keys = 160;
  std::vector<std::string> keys;
  std::vector<int64_t> targets;
  for (size_t i = 0; i < num_keys; ++i) {
    keys.push_back("key" + std::to_string(i));
    targets.push_back(static_cast<int64_t>(i % 7));
  }
  universe.base = MakeTwoColumnTable("K", keys, "Y", targets);

  std::vector<int64_t> values;
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>(i % 7));
  }
  auto exact = MakeTwoColumnTable("K", keys, "V", values);
  universe.repository.AddTable("exact", exact).Abort();
  universe.repository.AddTable("exact_twin", exact).Abort();
  values.clear();
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>((i % 7) / 3));
  }
  universe.repository
      .AddTable("coarse", MakeTwoColumnTable("K", keys, "V", values))
      .Abort();
  values.clear();
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextBounded(7)));
  }
  universe.repository
      .AddTable("noise", MakeTwoColumnTable("K", keys, "V", values))
      .Abort();
  return universe;
}

JoinMIConfig MakeIndexConfig() {
  JoinMIConfig config;
  config.sketch_capacity = 128;
  config.min_join_size = 16;
  return config;
}

std::string ScratchDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/joinmi_router_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void ExpectBitIdentical(const TopKSearchResult& expected,
                        const TopKSearchResult& actual) {
  EXPECT_EQ(expected.num_candidates, actual.num_candidates);
  EXPECT_EQ(expected.num_evaluated, actual.num_evaluated);
  EXPECT_EQ(expected.num_skipped, actual.num_skipped);
  EXPECT_EQ(expected.num_errors, actual.num_errors);
  ASSERT_EQ(expected.hits.size(), actual.hits.size());
  for (size_t i = 0; i < expected.hits.size(); ++i) {
    EXPECT_EQ(expected.hits[i].candidate.ToString(),
              actual.hits[i].candidate.ToString()) << i;
    EXPECT_EQ(expected.hits[i].estimate.mi, actual.hits[i].estimate.mi) << i;
    EXPECT_EQ(expected.hits[i].estimate.sample_size,
              actual.hits[i].estimate.sample_size) << i;
    EXPECT_EQ(expected.hits[i].estimate.estimator,
              actual.hits[i].estimate.estimator) << i;
  }
}

// ---------------------------------------------- Instrumented shard client

// Per-shard remote control for the instrumented backend.
struct ShardControl {
  std::atomic<uint64_t> searches{0};
  std::atomic<bool> fail{false};
  std::atomic<bool> block{false};
  // Signals a blocked Search actually started (the admission test must
  // know the gate slot is held before it fires the second query).
  std::atomic<bool> entered{false};
  std::mutex mutex;
  std::condition_variable cv;
  bool released = false;

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      released = true;
    }
    cv.notify_all();
  }
};

class InstrumentedShardClient : public ShardClient {
 public:
  InstrumentedShardClient(std::unique_ptr<ShardClient> inner,
                          std::shared_ptr<ShardControl> control)
      : inner_(std::move(inner)), control_(std::move(control)) {}

  const JoinMIConfig& config() const override { return inner_->config(); }
  size_t num_candidates() const override { return inner_->num_candidates(); }

  Result<ShardSearchResult> Search(const JoinMIQuery& query, size_t k,
                                   size_t num_threads) const override {
    control_->searches.fetch_add(1);
    if (control_->block.load()) {
      control_->entered.store(true);
      std::unique_lock<std::mutex> lock(control_->mutex);
      control_->cv.wait(lock, [this] { return control_->released; });
    }
    if (control_->fail.load()) {
      return Status::IOError("instrumented shard outage");
    }
    return inner_->Search(query, k, num_threads);
  }

 private:
  std::unique_ptr<ShardClient> inner_;
  std::shared_ptr<ShardControl> control_;
};

// Wraps the real local loader; `controls` receives one ShardControl per
// shard, in shard order.
ShardClientFactory InstrumentedFactory(
    std::vector<std::shared_ptr<ShardControl>>* controls) {
  auto local = ShardedSketchIndex::LocalFileFactory();
  return [local, controls](const ShardManifest& manifest, size_t shard,
                           const std::string& manifest_dir)
             -> Result<std::unique_ptr<ShardClient>> {
    auto inner = local(manifest, shard, manifest_dir);
    if (!inner.ok()) return inner.status();
    auto control = std::make_shared<ShardControl>();
    controls->push_back(control);
    return std::unique_ptr<ShardClient>(
        new InstrumentedShardClient(std::move(*inner), control));
  };
}

uint64_t TotalSearches(
    const std::vector<std::shared_ptr<ShardControl>>& controls) {
  uint64_t total = 0;
  for (const auto& control : controls) total += control->searches.load();
  return total;
}

// A test fixture owning one index, its shard layouts, and the scratch dir.
class RouterTest : public testing::Test {
 protected:
  void SetUp() override {
    universe_ = MakeUniverse();
    index_ = std::make_unique<SketchIndex>(MakeIndexConfig());
    ASSERT_TRUE(index_->IndexRepository(universe_.repository).ok());
    dir_ = ScratchDir(
        testing::UnitTest::GetInstance()->current_test_info()->name());
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string BuildLayout(size_t num_shards, ShardPartitionPolicy policy,
                          const std::string& name) {
    auto manifest_path =
        BuildShards(*index_, num_shards, policy, dir_ + "/" + name);
    EXPECT_TRUE(manifest_path.ok()) << manifest_path.status();
    return manifest_path.ok() ? *manifest_path : std::string();
  }

  Result<TopKSearchResult> Unsharded(size_t k) {
    return TopKJoinMISearch(*universe_.base, {"K", "Y"}, *index_, k);
  }

  JoinMIQuery SketchBase(const JoinMIConfig& config) {
    auto query = JoinMIQuery::Create(*universe_.base, "K", "Y", config);
    query.status().Abort("sketching the base table");
    return std::move(*query);
  }

  Universe universe_;
  std::unique_ptr<SketchIndex> index_;
  std::string dir_;
};

// ------------------------------------------------------------ Open + cache

TEST_F(RouterTest, CacheHitsBitIdenticalAcrossPoliciesAndShardCounts) {
  auto reference = Unsharded(3);
  ASSERT_TRUE(reference.ok()) << reference.status();
  for (ShardPartitionPolicy policy : {ShardPartitionPolicy::kRoundRobin,
                                      ShardPartitionPolicy::kHashByDataset}) {
    for (size_t num_shards : {1u, 3u}) {
      RouterOptions options;
      options.manifest_path = BuildLayout(
          num_shards, policy,
          ShardPartitionPolicyToString(policy) + std::to_string(num_shards));
      auto router = Router::Open(options);
      ASSERT_TRUE(router.ok()) << router.status();

      auto first = (*router)->Search(*universe_.base, {"K", "Y"}, 3);
      ASSERT_TRUE(first.ok()) << first.status();
      ExpectBitIdentical(*reference, *first);
      EXPECT_EQ((*router)->cache_stats().hits, 0u);
      EXPECT_EQ((*router)->cache_stats().misses, 1u);

      auto second = (*router)->Search(*universe_.base, {"K", "Y"}, 3);
      ASSERT_TRUE(second.ok()) << second.status();
      ExpectBitIdentical(*first, *second);
      EXPECT_EQ((*router)->cache_stats().hits, 1u);
    }
  }
}

TEST_F(RouterTest, CacheHitNeverReRunsTheFanOut) {
  std::vector<std::shared_ptr<ShardControl>> controls;
  RouterOptions options;
  options.manifest_path =
      BuildLayout(3, ShardPartitionPolicy::kRoundRobin, "counted");
  options.factory_override = InstrumentedFactory(&controls);
  auto router = Router::Open(options);
  ASSERT_TRUE(router.ok()) << router.status();
  ASSERT_EQ(controls.size(), 3u);

  const JoinMIQuery query = SketchBase((*router)->search_config());
  auto first = (*router)->SearchQuery(query, 3, 1, ShardQueryMode::kStrict);
  ASSERT_TRUE(first.ok()) << first.status();
  const uint64_t after_first = TotalSearches(controls);
  EXPECT_EQ(after_first, 3u);  // one fan-out, every shard touched

  auto second = (*router)->SearchQuery(query, 3, 1, ShardQueryMode::kStrict);
  ASSERT_TRUE(second.ok()) << second.status();
  ExpectBitIdentical(*first, *second);
  EXPECT_EQ(TotalSearches(controls), after_first);  // zero backend traffic
}

TEST_F(RouterTest, DifferentKGetsItsOwnCacheEntry) {
  RouterOptions options;
  options.manifest_path =
      BuildLayout(2, ShardPartitionPolicy::kRoundRobin, "bykey");
  auto router = Router::Open(options);
  ASSERT_TRUE(router.ok()) << router.status();
  const JoinMIQuery query = SketchBase((*router)->search_config());

  ASSERT_TRUE(
      (*router)->SearchQuery(query, 2, 1, ShardQueryMode::kStrict).ok());
  ASSERT_TRUE(
      (*router)->SearchQuery(query, 4, 1, ShardQueryMode::kStrict).ok());
  const RouterCacheStats stats = (*router)->cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.hits, 0u);
  // k=2 truncation is a different answer than a truncated k=4 would be
  // cached under — each k must hit its own entry.
  auto again = (*router)->SearchQuery(query, 2, 1, ShardQueryMode::kStrict);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->hits.size(), 2u);
  EXPECT_EQ((*router)->cache_stats().hits, 1u);
}

TEST_F(RouterTest, DegradedAnswersAreNeverCached) {
  std::vector<std::shared_ptr<ShardControl>> controls;
  RouterOptions options;
  options.manifest_path =
      BuildLayout(3, ShardPartitionPolicy::kRoundRobin, "degraded");
  options.factory_override = InstrumentedFactory(&controls);
  auto router = Router::Open(options);
  ASSERT_TRUE(router.ok()) << router.status();
  ASSERT_EQ(controls.size(), 3u);
  const JoinMIQuery query = SketchBase((*router)->search_config());

  controls[1]->fail.store(true);
  auto degraded =
      (*router)->SearchQuery(query, 3, 1, ShardQueryMode::kDegraded);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  ASSERT_EQ(degraded->shard_failures.size(), 1u);
  EXPECT_EQ((*router)->cache_stats().entries, 0u);

  // The identical query again: a cached degraded answer would keep
  // serving the outage, so it must re-reach the backend instead.
  const uint64_t before = TotalSearches(controls);
  auto repeat =
      (*router)->SearchQuery(query, 3, 1, ShardQueryMode::kDegraded);
  ASSERT_TRUE(repeat.ok());
  EXPECT_GT(TotalSearches(controls), before);
  EXPECT_EQ((*router)->cache_stats().entries, 0u);

  // Shard healed: the now-complete answer caches, and the next repeat is
  // served without backend traffic.
  controls[1]->fail.store(false);
  auto healed =
      (*router)->SearchQuery(query, 3, 1, ShardQueryMode::kDegraded);
  ASSERT_TRUE(healed.ok());
  EXPECT_TRUE(healed->shard_failures.empty());
  EXPECT_EQ((*router)->cache_stats().entries, 1u);
  const uint64_t after_healed = TotalSearches(controls);
  auto hit = (*router)->SearchQuery(query, 3, 1, ShardQueryMode::kDegraded);
  ASSERT_TRUE(hit.ok());
  ExpectBitIdentical(*healed, *hit);
  EXPECT_EQ(TotalSearches(controls), after_healed);
}

TEST_F(RouterTest, FailedQueriesAreNotCachedAndStrictOutagePropagates) {
  std::vector<std::shared_ptr<ShardControl>> controls;
  RouterOptions options;
  options.manifest_path =
      BuildLayout(2, ShardPartitionPolicy::kRoundRobin, "strictfail");
  options.factory_override = InstrumentedFactory(&controls);
  auto router = Router::Open(options);
  ASSERT_TRUE(router.ok()) << router.status();
  const JoinMIQuery query = SketchBase((*router)->search_config());

  controls[0]->fail.store(true);
  auto strict = (*router)->SearchQuery(query, 3, 1, ShardQueryMode::kStrict);
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsIOError()) << strict.status();
  EXPECT_EQ((*router)->cache_stats().entries, 0u);
  EXPECT_EQ((*router)->metrics().CounterValue("router.queries.failed"), 1u);
}

TEST_F(RouterTest, LruEvictionUnderTinyEntryCap) {
  RouterOptions options;
  options.manifest_path =
      BuildLayout(2, ShardPartitionPolicy::kRoundRobin, "evict");
  options.cache_entries = 2;
  auto router = Router::Open(options);
  ASSERT_TRUE(router.ok()) << router.status();
  const JoinMIQuery query = SketchBase((*router)->search_config());

  // Three distinct keys through a 2-entry cache: k=1 is the LRU victim.
  for (size_t k : {1u, 2u, 3u}) {
    ASSERT_TRUE(
        (*router)->SearchQuery(query, k, 1, ShardQueryMode::kStrict).ok());
  }
  RouterCacheStats stats = (*router)->cache_stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);

  // k=2 and k=3 are resident; k=1 must miss (it was evicted).
  ASSERT_TRUE(
      (*router)->SearchQuery(query, 2, 1, ShardQueryMode::kStrict).ok());
  ASSERT_TRUE(
      (*router)->SearchQuery(query, 3, 1, ShardQueryMode::kStrict).ok());
  EXPECT_EQ((*router)->cache_stats().hits, 2u);
  ASSERT_TRUE(
      (*router)->SearchQuery(query, 1, 1, ShardQueryMode::kStrict).ok());
  stats = (*router)->cache_stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.evictions, 2u);  // re-inserting k=1 evicted again
}

TEST_F(RouterTest, ReloadSwapsTheManifestAndClearsTheCache) {
  RouterOptions options;
  options.manifest_path =
      BuildLayout(2, ShardPartitionPolicy::kRoundRobin, "epoch_a");
  auto router = Router::Open(options);
  ASSERT_TRUE(router.ok()) << router.status();

  auto first = (*router)->Search(*universe_.base, {"K", "Y"}, 3);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ((*router)->cache_stats().entries, 1u);
  EXPECT_EQ((*router)->num_shards(), 2u);

  // A different layout of the same index: the new epoch must start with
  // an empty cache even though the contents would agree.
  const std::string manifest_b =
      BuildLayout(3, ShardPartitionPolicy::kHashByDataset, "epoch_b");
  ASSERT_TRUE((*router)->Reload(manifest_b).ok());
  EXPECT_EQ((*router)->num_shards(), 3u);
  EXPECT_EQ((*router)->cache_stats().entries, 0u);
  EXPECT_EQ((*router)->metrics().CounterValue("router.reloads"), 1u);

  auto second = (*router)->Search(*universe_.base, {"K", "Y"}, 3);
  ASSERT_TRUE(second.ok()) << second.status();
  ExpectBitIdentical(*first, *second);  // same index, new shards — same bits
  const RouterCacheStats stats = (*router)->cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST_F(RouterTest, CacheDisabledRouterNeverCaches) {
  std::vector<std::shared_ptr<ShardControl>> controls;
  RouterOptions options;
  options.manifest_path =
      BuildLayout(2, ShardPartitionPolicy::kRoundRobin, "nocache");
  options.factory_override = InstrumentedFactory(&controls);
  options.cache_entries = 0;
  auto router = Router::Open(options);
  ASSERT_TRUE(router.ok()) << router.status();
  const JoinMIQuery query = SketchBase((*router)->search_config());

  ASSERT_TRUE(
      (*router)->SearchQuery(query, 3, 1, ShardQueryMode::kStrict).ok());
  ASSERT_TRUE(
      (*router)->SearchQuery(query, 3, 1, ShardQueryMode::kStrict).ok());
  EXPECT_EQ(TotalSearches(controls), 4u);  // 2 shards x 2 queries
  const RouterCacheStats stats = (*router)->cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

// --------------------------------------------------------------- Admission

TEST_F(RouterTest, AdmissionGateShedsWithStructuredRetryAfter) {
  std::vector<std::shared_ptr<ShardControl>> controls;
  RouterOptions options;
  options.manifest_path =
      BuildLayout(1, ShardPartitionPolicy::kRoundRobin, "gate");
  options.factory_override = InstrumentedFactory(&controls);
  options.cache_entries = 0;
  options.max_pending = 1;
  options.retry_after_hint_ms = 75;
  auto router = Router::Open(options);
  ASSERT_TRUE(router.ok()) << router.status();
  ASSERT_EQ(controls.size(), 1u);
  const JoinMIQuery query = SketchBase((*router)->search_config());

  // Occupy the single admission slot with a query blocked in its shard.
  controls[0]->block.store(true);
  std::thread holder([&] {
    auto held = (*router)->SearchQuery(query, 3, 1, ShardQueryMode::kStrict);
    EXPECT_TRUE(held.ok()) << held.status();
  });
  while (!controls[0]->entered.load()) {
    std::this_thread::yield();
  }

  // The gate is full: the second query must shed, not queue.
  auto rejected =
      (*router)->SearchQuery(query, 3, 1, ShardQueryMode::kStrict);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsOverloaded()) << rejected.status();
  EXPECT_EQ(RetryAfterHintMs(rejected.status()), 75);
  EXPECT_EQ((*router)->admission().rejected(), 1u);
  EXPECT_EQ((*router)->metrics().CounterValue("router.admission.rejected"),
            1u);

  controls[0]->block.store(false);
  controls[0]->Release();
  holder.join();

  // Slot free again: the same query admits and answers.
  auto after = (*router)->SearchQuery(query, 3, 1, ShardQueryMode::kStrict);
  EXPECT_TRUE(after.ok()) << after.status();
}

// ----------------------------------------------------------------- Metrics

TEST_F(RouterTest, StatsJsonCarriesCacheAdmissionAndLatency) {
  RouterOptions options;
  options.manifest_path =
      BuildLayout(2, ShardPartitionPolicy::kRoundRobin, "stats");
  auto router = Router::Open(options);
  ASSERT_TRUE(router.ok()) << router.status();
  ASSERT_TRUE((*router)->Search(*universe_.base, {"K", "Y"}, 3).ok());
  ASSERT_TRUE((*router)->Search(*universe_.base, {"K", "Y"}, 3).ok());

  const std::string json = (*router)->StatsJson();
  for (const char* name :
       {"\"router.cache.hits\":1", "\"router.cache.misses\":1",
        "\"router.cache.entries\":1", "\"router.queries.ok\":2",
        "\"router.admission.admitted\":2", "router.search.latency_us"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name << " in " << json;
  }
}

TEST_F(RouterTest, OpenRequiresAManifestPath) {
  auto router = Router::Open(RouterOptions{});
  ASSERT_FALSE(router.ok());
  EXPECT_TRUE(router.status().IsInvalidArgument()) << router.status();
}

TEST_F(RouterTest, SearchableSeamDrivesTheRouterLikeAnIndex) {
  RouterOptions options;
  options.manifest_path =
      BuildLayout(3, ShardPartitionPolicy::kRoundRobin, "searchable");
  auto router = Router::Open(options);
  ASSERT_TRUE(router.ok()) << router.status();
  auto reference = Unsharded(3);
  ASSERT_TRUE(reference.ok());
  // The free TopKJoinMISearch over the Searchable interface — existing
  // call sites upgrade by swapping the object, not the call.
  const Searchable& searchable = **router;
  auto via_seam =
      TopKJoinMISearch(*universe_.base, {"K", "Y"}, searchable, 3);
  ASSERT_TRUE(via_seam.ok()) << via_seam.status();
  ExpectBitIdentical(*reference, *via_seam);
}

}  // namespace
}  // namespace joinmi
