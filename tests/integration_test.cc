// Integration tests: end-to-end scenarios spanning CSV ingestion, the
// discovery index, and the paper's headline comparative claims on small
// (fast) instances — TUPSK's robustness to key-target dependence (Fig 2)
// and the coordinated-vs-independent join-size gap (Table I).

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/core/join_mi.h"
#include "src/discovery/sketch_index.h"
#include "src/synthetic/pipeline.h"
#include "src/table/csv.h"

namespace joinmi {
namespace {

TEST(IntegrationTest, CsvToDiscoveryPipeline) {
  // Taxi-demand miniature of the paper's Figure 1: base table with trips
  // per zip, candidate demographics table. The pipeline: CSV -> tables ->
  // index -> query.
  const std::string taxi_csv =
      "zip,trips\n"
      "11201,136\n11201,140\n10011,112\n10011,118\n10012,50\n"
      "10012,55\n10013,48\n10013,52\n11215,130\n11215,135\n";
  const std::string demo_csv =
      "zip,borough,population\n"
      "11201,Brooklyn,53041\n10011,Manhattan,50984\n"
      "10012,Manhattan,24090\n10013,Manhattan,27700\n"
      "11215,Brooklyn,67649\n";
  auto taxi = *ReadCsvString(taxi_csv);
  auto demo = *ReadCsvString(demo_csv);
  // zip columns must be inferred int64 on both sides (joinable).
  EXPECT_EQ((*taxi->GetColumn("zip"))->type(), DataType::kInt64);

  JoinMIConfig config;
  config.sketch_capacity = 64;
  config.aggregation = AggKind::kFirst;
  config.estimator = MIEstimatorKind::kMLE;
  const JoinMIQuerySpec pop_spec{"zip", "trips", "zip", "population"};
  auto pop = *SketchJoinMI(*taxi, *demo, pop_spec, config);
  // population determines trips almost exactly here: high MI.
  EXPECT_GT(pop.mi, 1.0);
  EXPECT_EQ(pop.sample_size, 10u);

  const JoinMIQuerySpec borough_spec{"zip", "trips", "zip", "borough"};
  auto borough = *SketchJoinMI(*taxi, *demo, borough_spec, config);
  // borough has 2 values: MI bounded by ln 2 but positive.
  EXPECT_GT(borough.mi, 0.2);
  EXPECT_LE(borough.mi, std::log(2.0) + 0.3);
  // The finer-grained feature carries more information.
  EXPECT_GT(pop.mi, borough.mi);
}

TEST(IntegrationTest, TupskMoreRobustToKeyDependenceThanLv2sk) {
  // Figure 2's comparative claim, miniaturized: under KeyDep (join key
  // equals the feature), LV2SK's MI estimates carry more error than
  // TUPSK's. Averaged over several generated datasets.
  double tupsk_err = 0.0, lv2sk_err = 0.0;
  int trials = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SyntheticSpec spec;
    spec.distribution = SyntheticDistribution::kTrinomial;
    spec.m = 256;
    spec.num_rows = 10000;
    spec.key_scheme = KeyScheme::kKeyDep;
    spec.seed = seed * 7;
    spec.min_mi = 0.5;
    spec.max_mi = 3.0;
    auto dataset = *GenerateSyntheticDataset(spec);
    JoinMIConfig config;
    config.sketch_capacity = 256;
    config.aggregation = AggKind::kFirst;
    config.estimator = MIEstimatorKind::kMLE;
    const JoinMIQuerySpec query{"K", "Y", "K", "Z"};
    config.sketch_method = SketchMethod::kTupsk;
    auto tupsk =
        SketchJoinMI(*dataset.tables.train, *dataset.tables.cand, query,
                     config);
    config.sketch_method = SketchMethod::kLv2sk;
    auto lv2sk =
        SketchJoinMI(*dataset.tables.train, *dataset.tables.cand, query,
                     config);
    if (!tupsk.ok() || !lv2sk.ok()) continue;
    tupsk_err += std::fabs(tupsk->mi - dataset.true_mi);
    lv2sk_err += std::fabs(lv2sk->mi - dataset.true_mi);
    ++trials;
  }
  ASSERT_GE(trials, 6);
  EXPECT_LT(tupsk_err, lv2sk_err)
      << "TUPSK mean abs error " << tupsk_err / trials
      << " vs LV2SK " << lv2sk_err / trials;
}

TEST(IntegrationTest, CoordinationBeatsIndependenceOnJoinSize) {
  // Table I's structural claim: coordinated sketches recover a much larger
  // join sample than independent sampling at equal capacity.
  SyntheticSpec spec;
  spec.distribution = SyntheticDistribution::kTrinomial;
  spec.m = 64;
  spec.num_rows = 10000;
  spec.key_scheme = KeyScheme::kKeyInd;
  spec.seed = 77;
  auto dataset = *GenerateSyntheticDataset(spec);
  auto join_size_for = [&](SketchMethod method) {
    SketchOptions options;
    options.capacity = 256;
    options.sampling_seed = method == SketchMethod::kIndsk ? 1111 : 99;
    auto builder = MakeSketchBuilder(method, options);
    auto train = dataset.tables.train;
    auto cand = dataset.tables.cand;
    auto s_train = *builder->SketchTrain(*(*train->GetColumn("K")),
                                         *(*train->GetColumn("Y")));
    SketchOptions cand_options = options;
    cand_options.sampling_seed = 2222;  // independent stream for INDSK
    auto cand_builder = MakeSketchBuilder(method, cand_options);
    auto s_cand = *cand_builder->SketchCandidate(*(*cand->GetColumn("K")),
                                                 *(*cand->GetColumn("Z")),
                                                 AggKind::kFirst);
    return JoinSketches(s_train, s_cand)->join_size;
  };
  const size_t tupsk = join_size_for(SketchMethod::kTupsk);
  const size_t indsk = join_size_for(SketchMethod::kIndsk);
  EXPECT_EQ(tupsk, 256u);  // fully coordinated on unique keys
  EXPECT_LT(indsk, 60u);   // ~ n^2 / distinct_keys = 256^2/10000 ~ 7
}

TEST(IntegrationTest, DiscoveryRankingMatchesFullJoinRanking) {
  // Build a small repository of candidates with varying dependence and
  // check that sketch-based ranking correlates with full-join ranking
  // (the Table II protocol, miniaturized).
  Rng rng(555);
  std::vector<std::string> keys;
  std::vector<std::string> targets;
  for (int i = 0; i < 3000; ++i) {
    const int k = static_cast<int>(rng.NextBounded(500));
    keys.push_back("k" + std::to_string(k));
    targets.push_back("t" + std::to_string(k % 6));
  }
  auto train = *Table::FromColumns({{"K", Column::MakeString(keys)},
                                    {"Y", Column::MakeString(targets)}});
  // Candidates: value = key bucket with per-candidate noise level.
  JoinMIConfig config;
  config.sketch_capacity = 512;
  config.aggregation = AggKind::kMode;
  config.estimator = MIEstimatorKind::kMLE;
  config.min_join_size = 30;
  std::vector<double> full_mis, sketch_mis;
  for (int c = 0; c < 10; ++c) {
    const double noise = static_cast<double>(c) / 10.0;
    std::vector<std::string> cand_keys;
    std::vector<std::string> cand_values;
    for (int k = 0; k < 500; ++k) {
      cand_keys.push_back("k" + std::to_string(k));
      const int bucket = rng.Bernoulli(noise)
                             ? static_cast<int>(rng.NextBounded(6))
                             : k % 6;
      cand_values.push_back("v" + std::to_string(bucket));
    }
    auto cand = *Table::FromColumns({{"K", Column::MakeString(cand_keys)},
                                     {"Z", Column::MakeString(cand_values)}});
    const JoinMIQuerySpec spec{"K", "Y", "K", "Z"};
    auto full = *FullJoinMI(*train, *cand, spec, config);
    auto sketched = *SketchJoinMI(*train, *cand, spec, config);
    full_mis.push_back(full.mi);
    sketch_mis.push_back(sketched.mi);
  }
  EXPECT_GT(*SpearmanCorrelation(full_mis, sketch_mis), 0.85);
}

TEST(IntegrationTest, HashSeedMismatchIsRejectedLoudly) {
  // Safety property: sketches record the hash seed they were built with,
  // and joining across seeds fails with InvalidArgument — key hashes from
  // different seeds are incomparable, so any "result" would be garbage
  // (the failure mode a persisted index probed by a misconfigured query
  // would otherwise hit silently).
  auto train = *Table::FromColumns(
      {{"K", Column::MakeString({"a", "b", "c"})},
       {"Y", Column::MakeInt64({1, 2, 3})}});
  SketchOptions options_a;
  options_a.capacity = 10;
  options_a.hash_seed = 1;
  SketchOptions options_b = options_a;
  options_b.hash_seed = 2;
  auto builder_a = MakeSketchBuilder(SketchMethod::kTupsk, options_a);
  auto builder_b = MakeSketchBuilder(SketchMethod::kTupsk, options_b);
  auto s_train = *builder_a->SketchTrain(*(*train->GetColumn("K")),
                                         *(*train->GetColumn("Y")));
  auto s_cand = *builder_b->SketchCandidate(*(*train->GetColumn("K")),
                                            *(*train->GetColumn("Y")),
                                            AggKind::kFirst);
  EXPECT_EQ(s_train.hash_seed, 1u);
  EXPECT_EQ(s_cand.hash_seed, 2u);
  auto joined = JoinSketches(s_train, s_cand);
  ASSERT_FALSE(joined.ok());
  EXPECT_TRUE(joined.status().IsInvalidArgument());
  // Same seeds join fine (and emptily here: disjoint key universes are not
  // the failure being guarded against).
  auto s_cand_same = *builder_a->SketchCandidate(*(*train->GetColumn("K")),
                                                 *(*train->GetColumn("Y")),
                                                 AggKind::kFirst);
  EXPECT_TRUE(JoinSketches(s_train, s_cand_same).ok());
}

}  // namespace
}  // namespace joinmi
