// Tests for the storage layer's page codec and buffer pool: page
// round-trips and corruption detection, and the pool's hard invariants —
// budget never exceeded, pinned pages never evicted, one fetch per
// residency, fetch failures leaving no residue — including under
// concurrent hammering (run under TSan to certify the locking).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/storage/buffer_pool.h"
#include "src/storage/page.h"

namespace joinmi {
namespace storage {
namespace {

// ------------------------------------------------------------------ Pages

TEST(PageTest, RoundTripsPayloads) {
  const uint32_t page_size = 128;
  for (const std::string payload :
       {std::string(), std::string("x"), std::string("hello page"),
        std::string(PagePayloadCapacity(page_size), 'z')}) {
    const std::string encoded = EncodePage(7, payload, page_size);
    EXPECT_EQ(encoded.size(), page_size);
    std::string decoded;
    ASSERT_TRUE(DecodePage(encoded, 7, page_size, &decoded).ok());
    EXPECT_EQ(decoded, payload);
  }
}

TEST(PageTest, ValidatesPageSizeBounds) {
  EXPECT_FALSE(ValidPageSize(0));
  EXPECT_FALSE(ValidPageSize(kMinPageSize - 1));
  EXPECT_FALSE(ValidPageSize(kMaxPageSize + 1));
  EXPECT_TRUE(ValidPageSize(kMinPageSize));
  EXPECT_TRUE(ValidPageSize(kDefaultPageSize));
}

TEST(PageTest, DetectsCorruptionTruncationAndMisdirection) {
  const std::string encoded = EncodePage(3, "payload bytes", 256);
  std::string decoded;

  // Any single flipped payload byte must fail the checksum.
  std::string corrupt = encoded;
  corrupt[kPageHeaderSize + 2] ^= 0x40;
  Status status = DecodePage(corrupt, 3, 256, &decoded);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("corrupt"), std::string::npos) << status;

  // A short read is a truncation, reported with both sizes.
  status = DecodePage(encoded.substr(0, 100), 3, 256, &decoded);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("100"), std::string::npos) << status;
  EXPECT_NE(status.message().find("256"), std::string::npos) << status;

  // A declared payload larger than the payload area must be rejected
  // before any read past the buffer.
  std::string oversized = encoded;
  const uint32_t bogus = 4096;
  std::memcpy(&oversized[4], &bogus, sizeof(bogus));
  status = DecodePage(oversized, 3, 256, &decoded);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("payload area"), std::string::npos)
      << status;

  // The right bytes at the wrong offset are misdirection, not corruption.
  status = DecodePage(encoded, 4, 256, &decoded);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("misdirected"), std::string::npos)
      << status;
}

// ------------------------------------------------------------ Buffer pool

// Fetcher over a synthetic "file" of distinct page payloads, counting
// fetches per id so tests can assert single-flight and retry behavior.
class CountingFetcher {
 public:
  explicit CountingFetcher(size_t num_pages) : num_pages_(num_pages) {}

  BufferPool::Fetcher AsFetcher() {
    return [this](BufferPool::PageId id, std::string* data) {
      return Fetch(id, data);
    };
  }

  Status Fetch(BufferPool::PageId id, std::string* data) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++fetches_[id];
    }
    if (fail_.load()) return Status::IOError("injected fetch failure");
    if (id >= num_pages_) return Status::IOError("page beyond file");
    *data = PayloadFor(id);
    return Status::OK();
  }

  static std::string PayloadFor(BufferPool::PageId id) {
    return "payload-" + std::to_string(id) + "-" +
           std::string(32 + id % 7, 'p');
  }

  uint64_t fetches(BufferPool::PageId id) {
    std::lock_guard<std::mutex> lock(mutex_);
    return fetches_[id];
  }

  uint64_t total_fetches() {
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t total = 0;
    for (const auto& [id, count] : fetches_) total += count;
    return total;
  }

  void set_fail(bool fail) { fail_.store(fail); }

 private:
  const size_t num_pages_;
  std::mutex mutex_;
  std::map<BufferPool::PageId, uint64_t> fetches_;
  std::atomic<bool> fail_{false};
};

TEST(BufferPoolTest, HitsMissesAndEviction) {
  CountingFetcher fetcher(10);
  BufferPool pool(2, fetcher.AsFetcher());
  EXPECT_EQ(pool.capacity(), 2u);

  {
    auto ref = pool.Pin(0);
    ASSERT_TRUE(ref.ok()) << ref.status();
    EXPECT_EQ(ref->data(), CountingFetcher::PayloadFor(0));
  }
  {
    // Re-pin is a hit: no second fetch.
    auto ref = pool.Pin(0);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(fetcher.fetches(0), 1u);
  }
  // Fill the second frame, then a third page must evict one of the two.
  ASSERT_TRUE(pool.Pin(1).ok());
  ASSERT_TRUE(pool.Pin(2).ok());
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(pool.resident(), pool.capacity());
  EXPECT_EQ(pool.pinned(), 0u);
}

TEST(BufferPoolTest, PinnedPagesAreNeverEvicted) {
  CountingFetcher fetcher(64);
  BufferPool pool(3, fetcher.AsFetcher());

  auto pinned = pool.Pin(0);
  ASSERT_TRUE(pinned.ok());
  const std::string expected = CountingFetcher::PayloadFor(0);
  // Stream far more pages than frames past the pinned one; its frame must
  // survive every sweep and its payload must never be overwritten.
  for (BufferPool::PageId id = 1; id < 40; ++id) {
    auto ref = pool.Pin(id);
    ASSERT_TRUE(ref.ok()) << ref.status();
    EXPECT_EQ(pinned->data(), expected) << "after streaming page " << id;
  }
  EXPECT_EQ(fetcher.fetches(0), 1u);
  // Released, page 0 becomes evictable; the pool keeps working.
  pinned = BufferPool::PageRef();
  for (BufferPool::PageId id = 40; id < 50; ++id) {
    ASSERT_TRUE(pool.Pin(id).ok());
  }
}

TEST(BufferPoolTest, CapacityZeroClampsToOne) {
  CountingFetcher fetcher(4);
  BufferPool pool(0, fetcher.AsFetcher());
  EXPECT_EQ(pool.capacity(), 1u);
  ASSERT_TRUE(pool.Pin(0).ok());
  ASSERT_TRUE(pool.Pin(1).ok());
  EXPECT_EQ(pool.stats().evictions, 1u);
}

TEST(BufferPoolTest, FetchFailureLeavesNoResidue) {
  CountingFetcher fetcher(4);
  BufferPool pool(2, fetcher.AsFetcher());

  fetcher.set_fail(true);
  auto failed = pool.Pin(0);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("injected"), std::string::npos);
  EXPECT_EQ(pool.resident(), 0u);
  EXPECT_EQ(pool.pinned(), 0u);

  // The failed fault left the frame free: the same id retries the fetch
  // and succeeds once the underlying storage recovers.
  fetcher.set_fail(false);
  auto retried = pool.Pin(0);
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_EQ(retried->data(), CountingFetcher::PayloadFor(0));
  EXPECT_EQ(fetcher.fetches(0), 2u);
}

TEST(BufferPoolTest, ConcurrentSamePageFetchesOnce) {
  CountingFetcher fetcher(2);
  BufferPool pool(2, fetcher.AsFetcher());

  constexpr size_t kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<size_t> ok_count{0};
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto ref = pool.Pin(1);
      if (ref.ok() && ref->data() == CountingFetcher::PayloadFor(1)) {
        ok_count.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ok_count.load(), kThreads);
  // All pins of one residency share a single fetch. (The page is never
  // evicted here — the pool has a frame to spare.)
  EXPECT_EQ(fetcher.fetches(1), 1u);
  EXPECT_EQ(pool.stats().hits, kThreads - 1);
}

TEST(BufferPoolTest, BudgetHoldsUnderConcurrentHammering) {
  constexpr size_t kCapacity = 4;
  constexpr size_t kPages = 64;
  constexpr size_t kThreads = 8;
  constexpr size_t kIterations = 300;

  CountingFetcher fetcher(kPages);
  BufferPool pool(kCapacity, fetcher.AsFetcher());

  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kIterations; ++i) {
        const BufferPool::PageId id = (t * 31 + i * 17) % kPages;
        auto ref = pool.Pin(id);
        if (!ref.ok() || ref->data() != CountingFetcher::PayloadFor(id)) {
          violated.store(true);
          return;
        }
        // Sampled while pins are live on many threads.
        if (pool.resident() > kCapacity) violated.store(true);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(violated.load());
  EXPECT_LE(pool.resident(), kCapacity);
  EXPECT_EQ(pool.pinned(), 0u);
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kIterations);
  EXPECT_GT(stats.evictions, 0u);
  // Every fetch was a miss and vice versa.
  EXPECT_EQ(fetcher.total_fetches(), stats.misses);
}

TEST(BufferPoolTest, BlocksWhenAllPinnedThenRecovers) {
  CountingFetcher fetcher(8);
  BufferPool pool(2, fetcher.AsFetcher());

  auto ref_a = pool.Pin(0);
  auto ref_b = pool.Pin(1);
  ASSERT_TRUE(ref_a.ok() && ref_b.ok());

  // With every frame pinned, a third Pin must block — not fail, not
  // evict a pinned page — until a ref drops.
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    auto ref = pool.Pin(2);
    if (ref.ok()) acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());
  ref_a = BufferPool::PageRef();  // free one frame
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

}  // namespace
}  // namespace storage
}  // namespace joinmi
