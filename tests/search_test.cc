// Tests for the parallel top-k discovery engine: ranking correctness on a
// synthetic repository, deterministic results across thread counts, the
// stable tie-break, and skip accounting for unusable candidates.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/discovery/search.h"
#include "src/table/table.h"

namespace joinmi {
namespace {

std::shared_ptr<Table> MakeTwoColumnTable(const std::string& key_name,
                                          std::vector<std::string> keys,
                                          const std::string& value_name,
                                          std::vector<int64_t> values) {
  return *Table::FromColumns(
      {{key_name, Column::MakeString(std::move(keys))},
       {value_name, Column::MakeInt64(std::move(values))}});
}

/// Fixed-seed synthetic discovery universe: a base table whose target is a
/// deterministic function of the key, plus candidates of graded relevance.
struct SyntheticUniverse {
  std::shared_ptr<Table> base;
  TableRepository repository;
};

SyntheticUniverse MakeUniverse() {
  SyntheticUniverse universe;
  Rng rng(4242);
  const size_t num_keys = 160;
  std::vector<std::string> base_keys;
  std::vector<int64_t> base_targets;
  for (size_t i = 0; i < num_keys; ++i) {
    base_keys.push_back("key" + std::to_string(i));
    base_targets.push_back(static_cast<int64_t>(i % 7));
  }
  universe.base = MakeTwoColumnTable("K", base_keys, "Y", base_targets);

  // "exact": value == target, maximal MI.
  std::vector<std::string> keys;
  std::vector<int64_t> values;
  for (size_t i = 0; i < num_keys; ++i) {
    keys.push_back("key" + std::to_string(i));
    values.push_back(static_cast<int64_t>(i % 7));
  }
  universe.repository
      .AddTable("exact", MakeTwoColumnTable("K", keys, "V", values))
      .Abort();

  // "coarse": a lossy function of the target, intermediate MI.
  values.clear();
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>((i % 7) / 3));
  }
  universe.repository
      .AddTable("coarse", MakeTwoColumnTable("K", keys, "V", values))
      .Abort();

  // "noise": independent of the target.
  values.clear();
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextBounded(7)));
  }
  universe.repository
      .AddTable("noise", MakeTwoColumnTable("K", keys, "V", values))
      .Abort();

  // "disjoint": no key overlap with the base table; its estimate fails the
  // min-join-size guard and the candidate is skipped.
  keys.clear();
  values.clear();
  for (size_t i = 0; i < num_keys; ++i) {
    keys.push_back("other" + std::to_string(i));
    values.push_back(static_cast<int64_t>(i));
  }
  universe.repository
      .AddTable("disjoint", MakeTwoColumnTable("K", keys, "V", values))
      .Abort();
  return universe;
}

SearchConfig MakeConfig(size_t num_threads) {
  SearchConfig config;
  config.num_threads = num_threads;
  config.join_config.sketch_capacity = 128;
  config.join_config.min_join_size = 16;
  return config;
}

TEST(TopKJoinMISearchTest, RanksCandidatesByRelevance) {
  SyntheticUniverse universe = MakeUniverse();
  auto result = TopKJoinMISearch(*universe.base, {"K", "Y"},
                                 universe.repository, 10, MakeConfig(1));
  ASSERT_TRUE(result.ok()) << result.status();
  // 4 tables x 1 string-key/int-value pair each.
  EXPECT_EQ(result->num_candidates, 4u);
  EXPECT_EQ(result->num_evaluated, 3u);
  EXPECT_EQ(result->num_skipped, 1u);
  EXPECT_EQ(result->num_errors, 0u);
  ASSERT_EQ(result->hits.size(), 3u);
  EXPECT_EQ(result->hits[0].candidate.table_name, "exact");
  EXPECT_EQ(result->hits[1].candidate.table_name, "coarse");
  EXPECT_EQ(result->hits[2].candidate.table_name, "noise");
  // Sorted descending.
  EXPECT_GE(result->hits[0].estimate.mi, result->hits[1].estimate.mi);
  EXPECT_GE(result->hits[1].estimate.mi, result->hits[2].estimate.mi);
  for (const SearchHit& hit : result->hits) {
    EXPECT_TRUE(hit.estimate.sketched);
    EXPECT_GE(hit.estimate.sample_size, 16u);
  }
}

TEST(TopKJoinMISearchTest, KTruncatesTheRanking) {
  SyntheticUniverse universe = MakeUniverse();
  auto result = TopKJoinMISearch(*universe.base, {"K", "Y"},
                                 universe.repository, 1, MakeConfig(1));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->hits.size(), 1u);
  EXPECT_EQ(result->hits[0].candidate.table_name, "exact");
  // Accounting still covers the whole repository.
  EXPECT_EQ(result->num_candidates, 4u);
  EXPECT_EQ(result->num_evaluated, 3u);
}

TEST(TopKJoinMISearchTest, RejectsZeroK) {
  SyntheticUniverse universe = MakeUniverse();
  auto result = TopKJoinMISearch(*universe.base, {"K", "Y"},
                                 universe.repository, 0, MakeConfig(1));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(TopKJoinMISearchTest, FailsOnMissingBaseColumns) {
  SyntheticUniverse universe = MakeUniverse();
  auto result = TopKJoinMISearch(*universe.base, {"nope", "Y"},
                                 universe.repository, 3, MakeConfig(1));
  EXPECT_FALSE(result.ok());
}

TEST(TopKJoinMISearchTest, EmptyRepositoryYieldsEmptyResult) {
  SyntheticUniverse universe = MakeUniverse();
  TableRepository empty;
  auto result =
      TopKJoinMISearch(*universe.base, {"K", "Y"}, empty, 5, MakeConfig(2));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->hits.empty());
  EXPECT_EQ(result->num_candidates, 0u);
}

// The determinism satellite: rankings must be byte-identical for any thread
// count, including hardware-default.
TEST(TopKJoinMISearchTest, ThreadCountDoesNotChangeTheRanking) {
  SyntheticUniverse universe = MakeUniverse();
  auto serial = TopKJoinMISearch(*universe.base, {"K", "Y"},
                                 universe.repository, 10, MakeConfig(1));
  ASSERT_TRUE(serial.ok()) << serial.status();
  for (size_t num_threads : {2u, 4u, 8u, 0u}) {
    auto parallel =
        TopKJoinMISearch(*universe.base, {"K", "Y"}, universe.repository, 10,
                         MakeConfig(num_threads));
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_EQ(parallel->num_candidates, serial->num_candidates);
    EXPECT_EQ(parallel->num_evaluated, serial->num_evaluated);
    EXPECT_EQ(parallel->num_skipped, serial->num_skipped);
    ASSERT_EQ(parallel->hits.size(), serial->hits.size()) << num_threads;
    for (size_t i = 0; i < serial->hits.size(); ++i) {
      EXPECT_EQ(parallel->hits[i].candidate.table_name,
                serial->hits[i].candidate.table_name);
      EXPECT_EQ(parallel->hits[i].candidate.key_column,
                serial->hits[i].candidate.key_column);
      EXPECT_EQ(parallel->hits[i].candidate.value_column,
                serial->hits[i].candidate.value_column);
      // Bit-exact, not approximately equal: the whole estimate pipeline is
      // seeded, so threads must not perturb any arithmetic.
      EXPECT_EQ(parallel->hits[i].estimate.mi, serial->hits[i].estimate.mi);
      EXPECT_EQ(parallel->hits[i].estimate.sample_size,
                serial->hits[i].estimate.sample_size);
      EXPECT_EQ(parallel->hits[i].estimate.estimator,
                serial->hits[i].estimate.estimator);
    }
  }
}

TEST(TopKJoinMISearchTest, CountsHardErrorsSeparatelyFromSkips) {
  // "disjoint" has no key overlap — an expected skip (overlap too small).
  // "textual" is all-string, so both of its extracted pairs feed a string
  // value column to the default kAvg aggregation — hard errors. Operators
  // must be able to tell these apart: skips are normal, errors mean the
  // repository (or config) is broken for those candidates.
  SyntheticUniverse universe = MakeUniverse();
  std::vector<std::string> keys;
  std::vector<std::string> words;
  for (size_t i = 0; i < 160; ++i) {
    keys.push_back("key" + std::to_string(i));
    words.push_back("w" + std::to_string(i % 3));
  }
  universe.repository
      .AddTable("textual",
                *Table::FromColumns({{"K", Column::MakeString(keys)},
                                     {"V", Column::MakeString(words)}}))
      .Abort();
  for (size_t num_threads : {1u, 4u}) {
    auto result = TopKJoinMISearch(*universe.base, {"K", "Y"},
                                   universe.repository, 10,
                                   MakeConfig(num_threads));
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->num_candidates, 6u);
    EXPECT_EQ(result->num_evaluated, 3u);
    EXPECT_EQ(result->num_skipped, 1u);
    EXPECT_EQ(result->num_errors, 2u);
  }
}

TEST(TopKJoinMISearchTest, TiesBreakByEnumerationOrder) {
  // Two byte-identical candidate tables produce exactly equal MI; the hit
  // order must follow repository enumeration (lexicographic table name).
  Rng rng(99);
  const size_t num_keys = 120;
  std::vector<std::string> keys;
  std::vector<int64_t> targets, values;
  for (size_t i = 0; i < num_keys; ++i) {
    keys.push_back("key" + std::to_string(i));
    targets.push_back(static_cast<int64_t>(i % 4));
    values.push_back(static_cast<int64_t>(i % 4));
  }
  auto base = MakeTwoColumnTable("K", keys, "Y", targets);
  TableRepository repository;
  repository.AddTable("twin_b", MakeTwoColumnTable("K", keys, "V", values))
      .Abort();
  repository.AddTable("twin_a", MakeTwoColumnTable("K", keys, "V", values))
      .Abort();
  for (size_t num_threads : {1u, 4u}) {
    auto result = TopKJoinMISearch(*base, {"K", "Y"}, repository, 2,
                                   MakeConfig(num_threads));
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_EQ(result->hits.size(), 2u);
    EXPECT_EQ(result->hits[0].estimate.mi, result->hits[1].estimate.mi);
    EXPECT_EQ(result->hits[0].candidate.table_name, "twin_a");
    EXPECT_EQ(result->hits[1].candidate.table_name, "twin_b");
  }
}

}  // namespace
}  // namespace joinmi
