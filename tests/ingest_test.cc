// Tests for the mutable index: delta segments (JMDS round trips, torn-tail
// recovery, pinned-prefix serving reads), manifest generations and the
// CURRENT pointer (atomic flips, loud failure on damage), manifest v4
// version compatibility (hand-encoded v2/v3 buffers, oldest-sufficient
// serialization, future-version rejection), and the full ingest lifecycle:
// append + publish served bit-identically to a from-scratch rebuild (whole
// and paged bases), compaction producing byte-identical base files, shard
// servers and routers picking up new epochs over reload — including over
// RPC and under concurrent query traffic (the TSan target).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/discovery/paged_shard_index.h"
#include "src/discovery/router.h"
#include "src/discovery/rpc_shard_client.h"
#include "src/discovery/search.h"
#include "src/discovery/shard_server.h"
#include "src/discovery/sharded_index.h"
#include "src/discovery/sketch_index.h"
#include "src/ingest/coordinator.h"
#include "src/ingest/delta_segment.h"
#include "src/ingest/generation.h"
#include "src/sketch/serialize.h"
#include "src/table/table.h"

namespace joinmi {
namespace {

std::shared_ptr<Table> MakeTwoColumnTable(const std::string& key_name,
                                          std::vector<std::string> keys,
                                          const std::string& value_name,
                                          std::vector<int64_t> values) {
  return *Table::FromColumns(
      {{key_name, Column::MakeString(std::move(keys))},
       {value_name, Column::MakeInt64(std::move(values))}});
}

/// Base table whose target is a function of the key, plus eight candidate
/// tables of graded relevance (twins included, so tie-breaks matter) —
/// enough candidates that a base/appended split spreads across shards.
struct Universe {
  std::shared_ptr<Table> base;
  TableRepository repository;
};

Universe MakeUniverse() {
  Universe universe;
  Rng rng(7171);
  const size_t num_keys = 160;
  std::vector<std::string> keys;
  std::vector<int64_t> targets;
  for (size_t i = 0; i < num_keys; ++i) {
    keys.push_back("key" + std::to_string(i));
    targets.push_back(static_cast<int64_t>(i % 7));
  }
  universe.base = MakeTwoColumnTable("K", keys, "Y", targets);

  auto add = [&](const std::string& name, std::vector<int64_t> values) {
    universe.repository
        .AddTable(name, MakeTwoColumnTable("K", keys, "V", std::move(values)))
        .Abort();
  };
  std::vector<int64_t> values;
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>(i % 7));
  }
  add("exact", values);
  add("exact_twin", values);
  values.clear();
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>((i % 7) / 3));
  }
  add("coarse", values);
  values.clear();
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>((i % 7) / 2));
  }
  add("coarse_twin", values);
  values.clear();
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>(i % 3));
  }
  add("mod3", values);
  values.clear();
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>(i % 2));
  }
  add("mod2", values);
  values.clear();
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextBounded(7)));
  }
  add("noise", values);
  values.clear();
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextBounded(7)));
  }
  add("noise_twin", values);
  return universe;
}

JoinMIConfig MakeIndexConfig() {
  JoinMIConfig config;
  config.sketch_capacity = 128;
  config.min_join_size = 16;
  return config;
}

std::string ScratchDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/joinmi_ingest_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void ExpectBitIdentical(const TopKSearchResult& expected,
                        const TopKSearchResult& actual) {
  EXPECT_EQ(expected.num_candidates, actual.num_candidates);
  EXPECT_EQ(expected.num_evaluated, actual.num_evaluated);
  EXPECT_EQ(expected.num_skipped, actual.num_skipped);
  EXPECT_EQ(expected.num_errors, actual.num_errors);
  ASSERT_EQ(expected.hits.size(), actual.hits.size());
  for (size_t i = 0; i < expected.hits.size(); ++i) {
    EXPECT_EQ(expected.hits[i].candidate.ToString(),
              actual.hits[i].candidate.ToString()) << i;
    EXPECT_EQ(expected.hits[i].estimate.mi, actual.hits[i].estimate.mi) << i;
    EXPECT_EQ(expected.hits[i].estimate.sample_size,
              actual.hits[i].estimate.sample_size) << i;
    EXPECT_EQ(expected.hits[i].estimate.estimator,
              actual.hits[i].estimate.estimator) << i;
  }
}

/// Non-asserting bit-identity check, for threads racing a reload where a
/// result may legitimately match either the old or the new epoch.
bool Matches(const TopKSearchResult& expected,
             const TopKSearchResult& actual) {
  if (expected.num_candidates != actual.num_candidates ||
      expected.hits.size() != actual.hits.size()) {
    return false;
  }
  for (size_t i = 0; i < expected.hits.size(); ++i) {
    if (expected.hits[i].candidate.ToString() !=
            actual.hits[i].candidate.ToString() ||
        expected.hits[i].estimate.mi != actual.hits[i].estimate.mi) {
      return false;
    }
  }
  return true;
}

void ExpectSameShardHits(const ShardSearchResult& expected,
                         const ShardSearchResult& actual) {
  EXPECT_EQ(expected.num_evaluated, actual.num_evaluated);
  EXPECT_EQ(expected.num_skipped, actual.num_skipped);
  EXPECT_EQ(expected.num_errors, actual.num_errors);
  ASSERT_EQ(expected.hits.size(), actual.hits.size());
  for (size_t i = 0; i < expected.hits.size(); ++i) {
    EXPECT_EQ(expected.hits[i].global_index, actual.hits[i].global_index)
        << i;
    EXPECT_EQ(expected.hits[i].ref.ToString(), actual.hits[i].ref.ToString())
        << i;
    EXPECT_EQ(expected.hits[i].estimate.mi, actual.hits[i].estimate.mi) << i;
  }
}

std::vector<ingest::DeltaRecord> MakeDeltaRecords(uint64_t first_global,
                                                  size_t count) {
  std::vector<ingest::DeltaRecord> records;
  for (size_t i = 0; i < count; ++i) {
    ingest::DeltaRecord record;
    record.global_index = first_global + i;
    record.payload = "payload-" + std::to_string(first_global + i) +
                     std::string(20 + i * 7, 'x');
    records.push_back(std::move(record));
  }
  return records;
}

void AppendGarbage(const std::string& path, const std::string& garbage) {
  std::ofstream file(path, std::ios::binary | std::ios::app);
  ASSERT_TRUE(file.good());
  file.write(garbage.data(),
             static_cast<std::streamsize>(garbage.size()));
  ASSERT_TRUE(file.good());
}

// ---------------------------------------------------------- delta segments

TEST(DeltaSegmentTest, RoundTripsAcrossBatchesAndPinsPrefixes) {
  const std::string dir = ScratchDir("delta_roundtrip");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/shard_00000.jmds";
  const JoinMIConfig config = MakeIndexConfig();

  auto writer = ingest::DeltaSegmentWriter::Open(path, config, /*shard=*/3);
  ASSERT_TRUE(writer.ok()) << writer.status();
  EXPECT_EQ((*writer)->committed_records(), 0u);
  ASSERT_TRUE((*writer)->Append(MakeDeltaRecords(10, 2)).ok());
  const uint64_t batch1_bytes = (*writer)->committed_bytes();
  const uint64_t batch1_checksum = (*writer)->committed_checksum();
  ASSERT_TRUE((*writer)->Append(MakeDeltaRecords(12, 3)).ok());
  EXPECT_EQ((*writer)->committed_records(), 5u);
  EXPECT_GT((*writer)->committed_bytes(), batch1_bytes);
  const uint64_t final_bytes = (*writer)->committed_bytes();
  const uint64_t final_checksum = (*writer)->committed_checksum();
  writer->reset();

  auto contents = ingest::ReadDeltaSegmentFile(path);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_EQ(contents->shard, 3u);
  EXPECT_TRUE(contents->config == config);
  EXPECT_EQ(contents->discarded_tail_bytes, 0u);
  EXPECT_EQ(contents->committed_bytes, final_bytes);
  EXPECT_EQ(contents->committed_checksum, final_checksum);
  ASSERT_EQ(contents->records.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(contents->records[i].global_index, 10u + i) << i;
  }
  EXPECT_EQ(contents->records[4].payload,
            MakeDeltaRecords(12, 3)[2].payload);

  // A manifest that pinned the first batch reads exactly the first batch,
  // even though the file has grown since — publish-then-append safety.
  auto prefix =
      ingest::ReadDeltaSegmentPrefix(path, batch1_bytes, batch1_checksum);
  ASSERT_TRUE(prefix.ok()) << prefix.status();
  EXPECT_EQ(prefix->records.size(), 2u);
  EXPECT_EQ(prefix->records[1].global_index, 11u);
  std::filesystem::remove_all(dir);
}

TEST(DeltaSegmentTest, TornTailIsDiscardedAndRecovered) {
  const std::string dir = ScratchDir("delta_torn");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/shard_00000.jmds";
  const JoinMIConfig config = MakeIndexConfig();

  {
    auto writer = ingest::DeltaSegmentWriter::Open(path, config, 0);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE((*writer)->Append(MakeDeltaRecords(0, 2)).ok());
  }
  // A crash mid-append leaves uncommitted bytes past the last commit.
  const std::string garbage = "\x01torn-record-bytes-without-a-commit";
  AppendGarbage(path, garbage);

  auto contents = ingest::ReadDeltaSegmentFile(path);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_EQ(contents->records.size(), 2u);
  EXPECT_EQ(contents->discarded_tail_bytes, garbage.size());

  // Re-opening the writer truncates the tail and appends cleanly after it.
  auto writer = ingest::DeltaSegmentWriter::Open(path, config, 0);
  ASSERT_TRUE(writer.ok()) << writer.status();
  EXPECT_EQ((*writer)->recovered_tail_bytes(), garbage.size());
  EXPECT_EQ((*writer)->committed_records(), 2u);
  ASSERT_TRUE((*writer)->Append(MakeDeltaRecords(2, 1)).ok());
  writer->reset();

  auto clean = ingest::ReadDeltaSegmentFile(path);
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_EQ(clean->records.size(), 3u);
  EXPECT_EQ(clean->discarded_tail_bytes, 0u);
  std::filesystem::remove_all(dir);
}

TEST(DeltaSegmentTest, PinnedPrefixFailsLoudlyOnDamage) {
  const std::string dir = ScratchDir("delta_damage");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/shard_00000.jmds";

  auto writer =
      ingest::DeltaSegmentWriter::Open(path, MakeIndexConfig(), 0);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE((*writer)->Append(MakeDeltaRecords(0, 3)).ok());
  const uint64_t bytes = (*writer)->committed_bytes();
  const uint64_t checksum = (*writer)->committed_checksum();
  writer->reset();

  // Wrong pin: the serving path must refuse, not shrug.
  EXPECT_FALSE(ingest::ReadDeltaSegmentPrefix(path, bytes, checksum ^ 1).ok());
  EXPECT_FALSE(ingest::ReadDeltaSegmentPrefix(path, bytes + 1, checksum).ok());

  // Damage inside the committed prefix: flip one payload byte.
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    const std::streamoff offset = static_cast<std::streamoff>(bytes) - 30;
    file.seekg(offset);
    char byte = 0;
    file.get(byte);
    file.seekp(offset);
    file.put(static_cast<char>(byte ^ 0x40));
    ASSERT_TRUE(file.good());
  }
  EXPECT_FALSE(ingest::ReadDeltaSegmentPrefix(path, bytes, checksum).ok());
  std::filesystem::remove_all(dir);
}

// ------------------------------------------- generations + CURRENT pointer

TEST(GenerationTest, CurrentPointerFlipsAtomicallyAndResolves) {
  const std::string dir = ScratchDir("generation");
  std::filesystem::create_directories(dir);

  EXPECT_EQ(ingest::GenerationManifestName(0), "manifest.jmim");
  EXPECT_EQ(ingest::GenerationManifestName(42), "manifest-g000042.jmim");

  // No CURRENT yet: a directory reference falls back to manifest.jmim.
  ASSERT_TRUE(
      ingest::WriteFileDurable(dir + "/manifest.jmim", "generation-zero")
          .ok());
  auto resolved = ingest::ResolveManifestPath(dir);
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  EXPECT_EQ(*resolved, dir + "/manifest.jmim");

  // Publish generation 1; every reference form resolves to it.
  ASSERT_TRUE(ingest::WriteFileDurable(dir + "/manifest-g000001.jmim",
                                       "generation-one")
                  .ok());
  // Leftover tmp from a torn earlier flip must not break the publish.
  ASSERT_TRUE(wire::WriteFileBytes("stale torn tmp",
                                   dir + "/CURRENT.tmp")
                  .ok());
  ASSERT_TRUE(ingest::PublishCurrent(dir, "manifest-g000001.jmim").ok());
  resolved = ingest::ResolveManifestPath(dir);
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  EXPECT_EQ(*resolved, dir + "/manifest-g000001.jmim");
  resolved = ingest::ResolveManifestPath(dir + "/CURRENT");
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  EXPECT_EQ(*resolved, dir + "/manifest-g000001.jmim");
  resolved = ingest::ResolveManifestPath(dir + "/manifest.jmim");
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  EXPECT_EQ(*resolved, dir + "/manifest.jmim");

  // Damage to the published manifest fails resolution loudly — CURRENT
  // must always name a complete, checksum-valid generation.
  AppendGarbage(dir + "/manifest-g000001.jmim", "!");
  EXPECT_FALSE(ingest::ResolveManifestPath(dir).ok());

  // CURRENT naming a missing file fails too.
  ASSERT_TRUE(ingest::WriteFileDurable(dir + "/manifest-g000002.jmim", "two")
                  .ok());
  ASSERT_TRUE(ingest::PublishCurrent(dir, "manifest-g000002.jmim").ok());
  std::filesystem::remove(dir + "/manifest-g000002.jmim");
  EXPECT_FALSE(ingest::ResolveManifestPath(dir).ok());
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------- manifest version compat

// Hand-encodes a legacy manifest buffer: two shards, four candidates,
// interleaved global indices. `version` must be 2 or 3 (v3 appends the
// per-shard format byte the way old writers did).
std::string EncodeLegacyManifest(uint32_t version) {
  std::string data;
  wire::AppendRaw(&data, "JMIM", 4);
  wire::AppendPod<uint32_t>(&data, version);
  wire::AppendPod<uint8_t>(&data, 0);  // policy: round robin
  wire::AppendPod<uint8_t>(&data, 0);  // has_config = 0
  wire::AppendPod<uint64_t>(&data, 2);  // shard_count
  wire::AppendPod<uint64_t>(&data, 4);  // total_candidates
  for (size_t shard = 0; shard < 2; ++shard) {
    wire::AppendLengthPrefixed(
        &data, "shard_0000" + std::to_string(shard) + ".jmix");
    wire::AppendPod<uint64_t>(&data, 2);  // candidate_count
    wire::AppendPod<uint64_t>(&data, 0x1111u * (shard + 1));  // checksum
    if (version >= 3) {
      wire::AppendPod<uint8_t>(&data, shard == 1 ? 1 : 0);  // format
    }
    wire::AppendPod<uint64_t>(&data, shard);      // global indices
    wire::AppendPod<uint64_t>(&data, shard + 2);
  }
  return data;
}

TEST(ManifestCompatTest, HandEncodedV2LoadsUnderTheV4Reader) {
  auto manifest = DeserializeManifest(EncodeLegacyManifest(2));
  ASSERT_TRUE(manifest.ok()) << manifest.status();
  EXPECT_EQ(manifest->epoch, 0u);  // pre-epoch manifests imply epoch 0
  EXPECT_FALSE(manifest->config.has_value());
  EXPECT_EQ(manifest->total_candidates, 4u);
  ASSERT_EQ(manifest->shards.size(), 2u);
  for (const ShardManifestEntry& entry : manifest->shards) {
    EXPECT_EQ(entry.format, ShardFileFormat::kWholeFile);
    EXPECT_FALSE(entry.has_delta());
    EXPECT_TRUE(entry.delta_path.empty());
  }
}

TEST(ManifestCompatTest, HandEncodedV3LoadsUnderTheV4Reader) {
  auto manifest = DeserializeManifest(EncodeLegacyManifest(3));
  ASSERT_TRUE(manifest.ok()) << manifest.status();
  EXPECT_EQ(manifest->epoch, 0u);
  ASSERT_EQ(manifest->shards.size(), 2u);
  EXPECT_EQ(manifest->shards[0].format, ShardFileFormat::kWholeFile);
  EXPECT_EQ(manifest->shards[1].format, ShardFileFormat::kPaged);
  EXPECT_FALSE(manifest->shards[0].has_delta());
  EXPECT_FALSE(manifest->shards[1].has_delta());
}

ShardManifest MakeCompatManifest() {
  ShardManifest manifest;
  manifest.policy = ShardPartitionPolicy::kRoundRobin;
  manifest.config = MakeIndexConfig();
  manifest.total_candidates = 4;
  for (size_t shard = 0; shard < 2; ++shard) {
    ShardManifestEntry entry;
    entry.path = "shard_0000" + std::to_string(shard) + ".jmix";
    entry.candidate_count = 2;
    entry.checksum = 0x2222u * (shard + 1);
    entry.global_indices = {shard, shard + 2};
    manifest.shards.push_back(std::move(entry));
  }
  return manifest;
}

TEST(ManifestCompatTest, DefaultEpochManifestsKeepTheOldestVersion) {
  // Epoch 0, whole-file, no deltas: serializes as v2, byte-identical to
  // what pre-ingest builds wrote — repartitioning must not gratuitously
  // break an older reader.
  const std::string v2_bytes = SerializeManifest(MakeCompatManifest());
  uint32_t version = 0;
  std::memcpy(&version, v2_bytes.data() + 4, sizeof(version));
  EXPECT_EQ(version, 2u);

  // A nonzero epoch forces v4 and round-trips byte-exactly.
  ShardManifest epoch_manifest = MakeCompatManifest();
  epoch_manifest.epoch = 7;
  const std::string v4_bytes = SerializeManifest(epoch_manifest);
  std::memcpy(&version, v4_bytes.data() + 4, sizeof(version));
  EXPECT_EQ(version, 4u);
  auto reread = DeserializeManifest(v4_bytes);
  ASSERT_TRUE(reread.ok()) << reread.status();
  EXPECT_EQ(reread->epoch, 7u);
  EXPECT_EQ(SerializeManifest(*reread), v4_bytes);

  // So does a manifest carrying delta references.
  ShardManifest delta_manifest = MakeCompatManifest();
  delta_manifest.epoch = 1;
  delta_manifest.total_candidates = 5;
  delta_manifest.shards[1].candidate_count = 3;
  delta_manifest.shards[1].global_indices = {1, 3, 4};
  delta_manifest.shards[1].delta_path = "shard_00001.jmds";
  delta_manifest.shards[1].delta_records = 1;
  delta_manifest.shards[1].delta_bytes = 321;
  delta_manifest.shards[1].delta_checksum = 0xfeed;
  const std::string delta_bytes = SerializeManifest(delta_manifest);
  auto delta_reread = DeserializeManifest(delta_bytes);
  ASSERT_TRUE(delta_reread.ok()) << delta_reread.status();
  ASSERT_TRUE(delta_reread->shards[1].has_delta());
  EXPECT_EQ(delta_reread->shards[1].delta_bytes, 321u);
  EXPECT_EQ(delta_reread->shards[1].base_candidate_count(), 2u);
  EXPECT_EQ(SerializeManifest(*delta_reread), delta_bytes);
}

TEST(ManifestCompatTest, UnknownFutureVersionFailsClearly) {
  std::string bytes = SerializeManifest(MakeCompatManifest());
  const uint32_t future = 9;
  std::memcpy(&bytes[4], &future, sizeof(future));
  auto manifest = DeserializeManifest(bytes);
  ASSERT_FALSE(manifest.ok());
  EXPECT_NE(manifest.status().message().find("v1-v4"), std::string::npos)
      << manifest.status();
}

// ------------------------------------------------------- ingest lifecycle

class IngestTest : public testing::Test {
 protected:
  void SetUp() override {
    universe_ = MakeUniverse();
    full_index_ = std::make_unique<SketchIndex>(MakeIndexConfig());
    ASSERT_TRUE(full_index_->IndexRepository(universe_.repository).ok());
    ASSERT_EQ(full_index_->size(), 8u);
    dir_ = ScratchDir(
        testing::UnitTest::GetInstance()->current_test_info()->name());
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// The first `count` candidates as their own index — the "state of the
  /// world when the base shards were built".
  SketchIndex PrefixIndex(size_t count) {
    SketchIndex index(full_index_->config());
    for (size_t i = 0; i < count; ++i) {
      const IndexedCandidate& candidate = full_index_->candidates()[i];
      index.AddSketch(candidate.ref, candidate.sketch()).Abort();
    }
    return index;
  }

  /// Candidates [from, size) in enumeration order — what gets appended.
  std::vector<CandidateRecord> TailRecords(size_t from) {
    std::vector<CandidateRecord> records;
    for (size_t i = from; i < full_index_->size(); ++i) {
      const IndexedCandidate& candidate = full_index_->candidates()[i];
      records.push_back(CandidateRecord{candidate.ref, candidate.sketch()});
    }
    return records;
  }

  std::string BuildDeployment(size_t base_count, size_t num_shards,
                              ShardPartitionPolicy policy,
                              const ShardBuildOptions& options,
                              const std::string& name) {
    const SketchIndex base = PrefixIndex(base_count);
    auto manifest_path =
        BuildShards(base, num_shards, policy, dir_ + "/" + name, options);
    EXPECT_TRUE(manifest_path.ok()) << manifest_path.status();
    return dir_ + "/" + name;
  }

  Result<TopKSearchResult> Search(const Searchable& target, size_t k,
                                  size_t num_threads) {
    return TopKJoinMISearch(*universe_.base, {"K", "Y"}, target, k,
                            num_threads);
  }

  Universe universe_;
  std::unique_ptr<SketchIndex> full_index_;
  std::string dir_;
};

TEST_F(IngestTest, AppendPublishServesBitIdenticalToFromScratchRebuild) {
  struct Layout {
    ShardPartitionPolicy policy;
    ShardBuildOptions options;
    const char* name;
  };
  ShardBuildOptions paged;
  paged.format = ShardFileFormat::kPaged;
  paged.page_size = 256;
  const std::vector<Layout> layouts = {
      {ShardPartitionPolicy::kRoundRobin, ShardBuildOptions{}, "whole"},
      {ShardPartitionPolicy::kHashByDataset, paged, "paged"},
  };
  const size_t base_count = 5;
  for (const Layout& layout : layouts) {
    SCOPED_TRACE(layout.name);
    const std::string deployment = BuildDeployment(
        base_count, 3, layout.policy, layout.options, layout.name);
    // The from-scratch rebuild of the final candidate set — the oracle
    // every post-swap ranking must match byte for byte.
    auto rebuilt_path =
        BuildShards(*full_index_, 3, layout.policy,
                    dir_ + "/" + layout.name + "_rebuilt", layout.options);
    ASSERT_TRUE(rebuilt_path.ok()) << rebuilt_path.status();
    auto rebuilt = ShardedSketchIndex::Load(*rebuilt_path);
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();

    auto coordinator = ingest::IngestCoordinator::Open(deployment);
    ASSERT_TRUE(coordinator.ok()) << coordinator.status();
    EXPECT_EQ((*coordinator)->epoch(), 0u);
    EXPECT_EQ((*coordinator)->published_candidates(), base_count);
    EXPECT_EQ((*coordinator)->pending_candidates(), 0u);
    ASSERT_TRUE((*coordinator)->Append(TailRecords(base_count)).ok());
    EXPECT_EQ((*coordinator)->pending_candidates(), 8u - base_count);

    // Durable but not visible: the deployment still serves the base set.
    auto pre_swap_path = ingest::ResolveManifestPath(deployment);
    ASSERT_TRUE(pre_swap_path.ok()) << pre_swap_path.status();
    auto pre_swap = ShardedSketchIndex::Load(*pre_swap_path);
    ASSERT_TRUE(pre_swap.ok()) << pre_swap.status();
    EXPECT_EQ(pre_swap->size(), base_count);
    const SketchIndex base = PrefixIndex(base_count);
    for (size_t k : {1u, 3u, 8u}) {
      auto expected = Search(base, k, 1);
      ASSERT_TRUE(expected.ok()) << expected.status();
      auto actual = Search(*pre_swap, k, 1);
      ASSERT_TRUE(actual.ok()) << actual.status();
      ExpectBitIdentical(*expected, *actual);
    }

    // A coordinator re-opened after a crash re-adopts the committed
    // records instead of losing or double-counting them.
    coordinator->reset();
    coordinator = ingest::IngestCoordinator::Open(deployment);
    ASSERT_TRUE(coordinator.ok()) << coordinator.status();
    EXPECT_EQ((*coordinator)->pending_candidates(), 8u - base_count);

    auto epoch = (*coordinator)->Publish();
    ASSERT_TRUE(epoch.ok()) << epoch.status();
    EXPECT_EQ(*epoch, 1u);
    EXPECT_EQ((*coordinator)->pending_candidates(), 0u);

    auto post_swap_path = ingest::ResolveManifestPath(deployment);
    ASSERT_TRUE(post_swap_path.ok()) << post_swap_path.status();
    EXPECT_NE(*post_swap_path, *pre_swap_path);
    auto post_swap = ShardedSketchIndex::Load(*post_swap_path);
    ASSERT_TRUE(post_swap.ok()) << post_swap.status();
    EXPECT_EQ(post_swap->size(), 8u);
    EXPECT_EQ(post_swap->manifest().epoch, 1u);
    for (size_t k : {1u, 3u, 8u}) {
      for (size_t threads : {1u, 2u}) {
        auto expected = Search(*full_index_, k, threads);
        ASSERT_TRUE(expected.ok()) << expected.status();
        auto overlay = Search(*post_swap, k, threads);
        ASSERT_TRUE(overlay.ok()) << overlay.status();
        ExpectBitIdentical(*expected, *overlay);
        auto from_scratch = Search(*rebuilt, k, threads);
        ASSERT_TRUE(from_scratch.ok()) << from_scratch.status();
        ExpectBitIdentical(*from_scratch, *overlay);
      }
    }

    // Garbage appended past the manifest-pinned prefix (a torn later
    // append) never disturbs serving: loads read exactly the pinned bytes.
    for (const ShardManifestEntry& entry : post_swap->manifest().shards) {
      if (entry.has_delta()) {
        AppendGarbage(deployment + "/" + entry.delta_path, "torn-tail!");
      }
    }
    auto after_tear = ShardedSketchIndex::Load(*post_swap_path);
    ASSERT_TRUE(after_tear.ok()) << after_tear.status();
    auto expected = Search(*full_index_, 3, 1);
    auto served = Search(*after_tear, 3, 1);
    ASSERT_TRUE(expected.ok() && served.ok());
    ExpectBitIdentical(*expected, *served);
  }
}

TEST_F(IngestTest, CompactionFoldsDeltasIntoByteIdenticalBases) {
  const size_t base_count = 5;
  const std::string deployment =
      BuildDeployment(base_count, 2, ShardPartitionPolicy::kRoundRobin,
                      ShardBuildOptions{}, "compact");
  auto coordinator = ingest::IngestCoordinator::Open(deployment);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status();
  ASSERT_TRUE((*coordinator)->Append(TailRecords(base_count)).ok());
  auto published = (*coordinator)->Publish();
  ASSERT_TRUE(published.ok()) << published.status();

  auto compacted_epoch = (*coordinator)->Compact();
  ASSERT_TRUE(compacted_epoch.ok()) << compacted_epoch.status();
  EXPECT_EQ(*compacted_epoch, 2u);

  auto manifest_path = ingest::ResolveManifestPath(deployment);
  ASSERT_TRUE(manifest_path.ok()) << manifest_path.status();
  auto manifest = ReadManifestFile(*manifest_path);
  ASSERT_TRUE(manifest.ok()) << manifest.status();
  EXPECT_EQ(manifest->epoch, 2u);

  // The oracle: a from-scratch build of the full candidate set. Shard
  // file names differ (compacted bases are generation-stamped) but the
  // bytes must be identical — manifest checksums prove it.
  auto rebuilt_path = BuildShards(*full_index_, 2,
                                  ShardPartitionPolicy::kRoundRobin,
                                  dir_ + "/compact_rebuilt");
  ASSERT_TRUE(rebuilt_path.ok()) << rebuilt_path.status();
  auto rebuilt_manifest = ReadManifestFile(*rebuilt_path);
  ASSERT_TRUE(rebuilt_manifest.ok()) << rebuilt_manifest.status();
  ASSERT_EQ(manifest->shards.size(), rebuilt_manifest->shards.size());
  for (size_t shard = 0; shard < manifest->shards.size(); ++shard) {
    const ShardManifestEntry& compacted = manifest->shards[shard];
    const ShardManifestEntry& scratch = rebuilt_manifest->shards[shard];
    EXPECT_FALSE(compacted.has_delta()) << shard;
    EXPECT_TRUE(compacted.delta_path.empty()) << shard;
    EXPECT_EQ(compacted.candidate_count, scratch.candidate_count) << shard;
    EXPECT_EQ(compacted.checksum, scratch.checksum) << shard;
    EXPECT_EQ(compacted.global_indices, scratch.global_indices) << shard;
    // Byte-level receipt on top of the checksum match.
    auto compacted_bytes =
        wire::ReadFileBytes(deployment + "/" + compacted.path);
    auto scratch_bytes = wire::ReadFileBytes(
        std::filesystem::path(*rebuilt_path).parent_path().string() + "/" +
        scratch.path);
    ASSERT_TRUE(compacted_bytes.ok() && scratch_bytes.ok());
    EXPECT_EQ(*compacted_bytes, *scratch_bytes) << shard;
  }

  // Rankings after compaction stay bit-identical to the rebuild.
  auto compacted_index = ShardedSketchIndex::Load(*manifest_path);
  ASSERT_TRUE(compacted_index.ok()) << compacted_index.status();
  auto expected = Search(*full_index_, 8, 1);
  auto actual = Search(*compacted_index, 8, 1);
  ASSERT_TRUE(expected.ok() && actual.ok());
  ExpectBitIdentical(*expected, *actual);

  // The pre-compaction generation still loads — old readers are never
  // invalidated by a publish.
  auto old_generation = ShardedSketchIndex::Load(
      deployment + "/" + ingest::GenerationManifestName(1));
  ASSERT_TRUE(old_generation.ok()) << old_generation.status();
  EXPECT_EQ(old_generation->manifest().epoch, 1u);
}

TEST_F(IngestTest, TornManifestSwapNeverCorruptsServing) {
  const std::string deployment =
      BuildDeployment(5, 2, ShardPartitionPolicy::kRoundRobin,
                      ShardBuildOptions{}, "torn");
  auto coordinator = ingest::IngestCoordinator::Open(deployment);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status();
  ASSERT_TRUE((*coordinator)->Append(TailRecords(5)).ok());
  auto epoch = (*coordinator)->Publish();
  ASSERT_TRUE(epoch.ok()) << epoch.status();

  // A half-written next generation that never flipped CURRENT is inert:
  // resolution still lands on the published generation.
  ASSERT_TRUE(wire::WriteFileBytes("JMIMtrunc",
                                   deployment + "/manifest-g000002.jmim")
                  .ok());
  ASSERT_TRUE(
      wire::WriteFileBytes("garbage", deployment + "/CURRENT.tmp").ok());
  auto resolved = ingest::ResolveManifestPath(deployment);
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  EXPECT_EQ(*resolved,
            deployment + "/" + ingest::GenerationManifestName(1));
  auto serving = ShardedSketchIndex::Load(*resolved);
  ASSERT_TRUE(serving.ok()) << serving.status();
  EXPECT_EQ(serving->size(), 8u);

  // Even if CURRENT itself were flipped to the truncated generation (its
  // checksum intact, so resolution succeeds), loading fails loudly with a
  // parse error instead of serving wrong data.
  ASSERT_TRUE(
      ingest::PublishCurrent(deployment, "manifest-g000002.jmim").ok());
  resolved = ingest::ResolveManifestPath(deployment);
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  EXPECT_FALSE(ShardedSketchIndex::Load(*resolved).ok());

  // Flip back: the intact generation serves again, bit-identically.
  ASSERT_TRUE(
      ingest::PublishCurrent(deployment, "manifest-g000001.jmim").ok());
  auto restored =
      ShardedSketchIndex::Load(*ingest::ResolveManifestPath(deployment));
  ASSERT_TRUE(restored.ok()) << restored.status();
  auto expected = Search(*full_index_, 3, 1);
  auto actual = Search(*restored, 3, 1);
  ASSERT_TRUE(expected.ok() && actual.ok());
  ExpectBitIdentical(*expected, *actual);
}

// ------------------------------------------------- serving-tier reloads

TEST_F(IngestTest, ShardServerReloadPicksUpNewEpochOverRpc) {
  const size_t base_count = 5;
  const std::string deployment =
      BuildDeployment(base_count, 1, ShardPartitionPolicy::kRoundRobin,
                      ShardBuildOptions{}, "server");
  auto server = ShardServer::Create(deployment, 0);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_TRUE((*server)->Start().ok());
  EXPECT_EQ((*server)->epoch(), 0u);
  EXPECT_EQ((*server)->num_candidates(), base_count);

  const JoinMIConfig config = (*server)->config();
  RpcClientOptions rpc_options;
  rpc_options.pool_size = 1;  // the handshaked connection survives reload
  auto client = RpcShardClient::Create({"127.0.0.1", (*server)->port()},
                                       config, base_count, rpc_options);
  ASSERT_TRUE(client.ok()) << client.status();

  auto query = JoinMIQuery::Create(*universe_.base, "K", "Y", config);
  ASSERT_TRUE(query.ok()) << query.status();

  // Pre-swap: the server answers from the base generation.
  auto base_local =
      ShardedSketchIndex::Load(*ingest::ResolveManifestPath(deployment));
  ASSERT_TRUE(base_local.ok()) << base_local.status();
  auto expected_old = base_local->Search(*query, 5, 1);
  ASSERT_TRUE(expected_old.ok()) << expected_old.status();
  auto remote_old = (*client)->Search(*query, 5, 1);
  ASSERT_TRUE(remote_old.ok()) << remote_old.status();
  ExpectSameShardHits(*expected_old, *remote_old);

  // Publish a new generation while the server keeps running, with a
  // search thread racing the reload — every answer must be bit-identical
  // to one of the two generations, never a blend.
  auto coordinator = ingest::IngestCoordinator::Open(deployment);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status();
  ASSERT_TRUE((*coordinator)->Append(TailRecords(base_count)).ok());
  auto epoch = (*coordinator)->Publish();
  ASSERT_TRUE(epoch.ok()) << epoch.status();
  EXPECT_EQ((*server)->epoch(), 0u);  // durable != visible until reload

  auto new_local =
      ShardedSketchIndex::Load(*ingest::ResolveManifestPath(deployment));
  ASSERT_TRUE(new_local.ok()) << new_local.status();
  auto expected_new = new_local->Search(*query, 5, 1);
  ASSERT_TRUE(expected_new.ok()) << expected_new.status();

  std::atomic<bool> mismatch{false};
  std::thread searcher([&] {
    for (int i = 0; i < 20 && !mismatch.load(); ++i) {
      auto result = (*client)->Search(*query, 5, 1);
      if (!result.ok()) {
        mismatch.store(true);
        break;
      }
      const bool old_match =
          result->hits.size() == expected_old->hits.size() &&
          result->num_candidates == expected_old->num_candidates;
      const bool new_match =
          result->hits.size() == expected_new->hits.size() &&
          result->num_candidates == expected_new->num_candidates;
      if (!old_match && !new_match) mismatch.store(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto reload = (*client)->Reload();
  searcher.join();
  EXPECT_FALSE(mismatch.load());
  ASSERT_TRUE(reload.ok()) << reload.status();
  EXPECT_EQ(reload->epoch, 1u);
  EXPECT_EQ(reload->num_candidates, 8u);
  EXPECT_EQ((*server)->epoch(), 1u);
  EXPECT_EQ((*server)->reloads_served(), 1u);
  EXPECT_EQ((*server)->num_candidates(), 8u);
  EXPECT_NE((*server)->StatsJson().find("server.epoch"), std::string::npos);

  // Post-reload answers over the existing connection are bit-identical to
  // the new generation (and thus to a from-scratch rebuild — the local
  // load above reads the same delta-overlay path the rebuild oracle
  // checks in AppendPublishServesBitIdenticalToFromScratchRebuild).
  auto remote_new = (*client)->Search(*query, 5, 1);
  ASSERT_TRUE(remote_new.ok()) << remote_new.status();
  ExpectSameShardHits(*expected_new, *remote_new);
  (*server)->Stop();
}

TEST_F(IngestTest, RouterReloadServesNewEpochAndInvalidatesCache) {
  const size_t base_count = 5;
  const std::string deployment =
      BuildDeployment(base_count, 2, ShardPartitionPolicy::kRoundRobin,
                      ShardBuildOptions{}, "router");
  RouterOptions options;
  options.manifest_path = deployment;  // directory ref: follows CURRENT
  auto router = Router::Open(options);
  ASSERT_TRUE(router.ok()) << router.status();
  EXPECT_EQ((*router)->epoch(), 0u);
  EXPECT_EQ((*router)->size(), base_count);

  const SketchIndex base = PrefixIndex(base_count);
  auto expected_old = Search(base, 3, 1);
  ASSERT_TRUE(expected_old.ok()) << expected_old.status();
  auto first = (*router)->Search(*universe_.base, {"K", "Y"}, 3);
  ASSERT_TRUE(first.ok()) << first.status();
  ExpectBitIdentical(*expected_old, *first);
  auto cached = (*router)->Search(*universe_.base, {"K", "Y"}, 3);
  ASSERT_TRUE(cached.ok()) << cached.status();
  EXPECT_EQ((*router)->cache_stats().hits, 1u);

  auto coordinator = ingest::IngestCoordinator::Open(deployment);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status();
  ASSERT_TRUE((*coordinator)->Append(TailRecords(base_count)).ok());
  ASSERT_TRUE((*coordinator)->Publish().ok());

  // Not yet reloaded: the router still serves (and caches) the old epoch.
  EXPECT_EQ((*router)->epoch(), 0u);
  ASSERT_TRUE((*router)->Reload().ok());
  EXPECT_EQ((*router)->epoch(), 1u);
  EXPECT_EQ((*router)->size(), 8u);
  EXPECT_EQ((*router)->metrics().CounterValue("router.reloads"), 1u);
  EXPECT_EQ((*router)->metrics().CounterValue("router.reload.count"), 1u);
  EXPECT_EQ((*router)->metrics().CounterValue("router.manifest.epoch"), 1u);
  EXPECT_EQ((*router)->cache_stats().entries, 0u);  // cache invalidated

  auto expected_new = Search(*full_index_, 3, 1);
  ASSERT_TRUE(expected_new.ok()) << expected_new.status();
  auto reloaded = (*router)->Search(*universe_.base, {"K", "Y"}, 3);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  ExpectBitIdentical(*expected_new, *reloaded);
  EXPECT_EQ((*router)->cache_stats().hits, 1u);  // miss, not a stale hit

  const std::string json = (*router)->StatsJson();
  EXPECT_NE(json.find("router.manifest.epoch"), std::string::npos);
  EXPECT_NE(json.find("router.reload.count"), std::string::npos);
}

TEST_F(IngestTest, RouterReloadUnderConcurrentQueriesStaysBitIdentical) {
  const size_t base_count = 5;
  const std::string deployment =
      BuildDeployment(base_count, 2, ShardPartitionPolicy::kRoundRobin,
                      ShardBuildOptions{}, "race");
  RouterOptions options;
  options.manifest_path = deployment;
  auto router = Router::Open(options);
  ASSERT_TRUE(router.ok()) << router.status();

  const SketchIndex base = PrefixIndex(base_count);
  auto expected_old = Search(base, 3, 1);
  auto expected_new = Search(*full_index_, 3, 1);
  ASSERT_TRUE(expected_old.ok() && expected_new.ok());

  // Searchers race the append/publish/reload below. Every answer — cache
  // hit or recomputation, before, during, or after the swap — must be
  // bit-identical to exactly one epoch's expected ranking.
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> searchers;
  for (int thread = 0; thread < 2; ++thread) {
    searchers.emplace_back([&] {
      for (int i = 0; i < 25 && !mismatch.load(); ++i) {
        auto result = (*router)->Search(*universe_.base, {"K", "Y"}, 3);
        if (!result.ok() || (!Matches(*expected_old, *result) &&
                             !Matches(*expected_new, *result))) {
          mismatch.store(true);
        }
      }
    });
  }
  auto coordinator = ingest::IngestCoordinator::Open(deployment);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status();
  ASSERT_TRUE((*coordinator)->Append(TailRecords(base_count)).ok());
  ASSERT_TRUE((*coordinator)->Publish().ok());
  ASSERT_TRUE((*router)->Reload().ok());
  for (std::thread& searcher : searchers) searcher.join();
  EXPECT_FALSE(mismatch.load());

  auto final_result = (*router)->Search(*universe_.base, {"K", "Y"}, 3);
  ASSERT_TRUE(final_result.ok()) << final_result.status();
  ExpectBitIdentical(*expected_new, *final_result);
  EXPECT_EQ((*router)->epoch(), 1u);
}

}  // namespace
}  // namespace joinmi
