// ConnPool unit tests over real loopback sockets: lease/return reuse,
// lazy dialing, the capacity bound (leases BLOCK instead of over-dialing),
// stale-connection replacement, and slot accounting around dial failures
// and discards. The pool is protocol-agnostic, so the "server" here is
// just a listener that accepts and parks connections.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/net/conn_pool.h"
#include "src/net/socket.h"

namespace joinmi {
namespace net {
namespace {

/// Accepts every connection on a loopback port and keeps it open (or
/// closes it on demand) — enough of a peer for pool mechanics.
class ParkingServer {
 public:
  ParkingServer() {
    auto listener = Listener::Bind("127.0.0.1", 0);
    listener.status().Abort("binding the parking server");
    listener_ = std::move(*listener);
    thread_ = std::thread([this] {
      while (!stop_.load()) {
        auto accepted = listener_.AcceptWithTimeout(50);
        if (!accepted.ok()) continue;
        std::lock_guard<std::mutex> lock(mutex_);
        connections_.push_back(std::move(*accepted));
      }
    });
  }

  ~ParkingServer() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
    listener_.Close();
  }

  uint16_t port() const { return listener_.port(); }

  size_t accepted() {
    std::lock_guard<std::mutex> lock(mutex_);
    return connections_.size();
  }

  /// Closes every accepted connection server-side (the peer sees FIN).
  void CloseAll() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Socket& socket : connections_) socket.Close();
    connections_.clear();
  }

 private:
  Listener listener_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::mutex mutex_;
  std::vector<Socket> connections_;
};

ConnPool::Dialer DialerFor(ParkingServer* server,
                           std::atomic<uint64_t>* dials = nullptr) {
  const uint16_t port = server->port();
  return [port, dials]() -> Result<Socket> {
    if (dials != nullptr) dials->fetch_add(1);
    return Socket::Connect("127.0.0.1", port, 1000);
  };
}

TEST(ConnPoolTest, DialsLazilyAndReusesReturnedConnections) {
  ParkingServer server;
  std::atomic<uint64_t> dials{0};
  ConnPoolOptions options;
  options.max_connections = 2;
  ConnPool pool(DialerFor(&server, &dials), options);
  EXPECT_EQ(dials.load(), 0u);  // construction never dials
  EXPECT_EQ(pool.idle_connections(), 0u);

  {
    auto lease = pool.Acquire();
    ASSERT_TRUE(lease.ok()) << lease.status();
    ASSERT_TRUE(lease->socket().valid());
    EXPECT_EQ(pool.in_flight(), 1u);
  }
  EXPECT_EQ(dials.load(), 1u);
  EXPECT_EQ(pool.total_dials(), 1u);
  EXPECT_EQ(pool.in_flight(), 0u);
  EXPECT_EQ(pool.idle_connections(), 1u);

  {
    auto lease = pool.Acquire();  // must reuse, not re-dial
    ASSERT_TRUE(lease.ok()) << lease.status();
  }
  EXPECT_EQ(dials.load(), 1u);
  EXPECT_EQ(pool.max_in_flight(), 1u);
}

TEST(ConnPoolTest, ExhaustedPoolBlocksLeasesInsteadOfOverdialing) {
  ParkingServer server;
  std::atomic<uint64_t> dials{0};
  ConnPoolOptions options;
  options.max_connections = 1;
  ConnPool pool(DialerFor(&server, &dials), options);

  std::atomic<int> holding{0};
  std::atomic<int> max_holding{0};
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      auto lease = pool.Acquire();
      ASSERT_TRUE(lease.ok()) << lease.status();
      const int now = holding.fetch_add(1) + 1;
      int seen = max_holding.load();
      while (now > seen && !max_holding.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      holding.fetch_sub(1);
      completed.fetch_add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(completed.load(), 4);
  EXPECT_EQ(max_holding.load(), 1);         // leases serialized...
  EXPECT_EQ(pool.max_in_flight(), 1u);      // ...per the pool's own gauge
  EXPECT_EQ(dials.load(), 1u);              // and never a second dial
  EXPECT_EQ(pool.idle_connections(), 1u);
}

TEST(ConnPoolTest, ConcurrentLeasesMultiplexUpToTheBound) {
  ParkingServer server;
  ConnPoolOptions options;
  options.max_connections = 4;
  ConnPool pool(DialerFor(&server), options);

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      auto lease = pool.Acquire();
      ASSERT_TRUE(lease.ok()) << lease.status();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    });
  }
  for (std::thread& thread : threads) thread.join();
  // All four threads held 50ms leases inside a <200ms window, so at least
  // two must have overlapped (pigeonhole even on one core).
  EXPECT_GE(pool.max_in_flight(), 2u);
  EXPECT_LE(pool.max_in_flight(), 4u);
  EXPECT_LE(pool.total_dials(), 4u);
}

TEST(ConnPoolTest, StaleIdleConnectionIsReplacedNotHandedOut) {
  ParkingServer server;
  std::atomic<uint64_t> dials{0};
  ConnPool pool(DialerFor(&server, &dials), ConnPoolOptions{});
  { auto lease = pool.Acquire(); ASSERT_TRUE(lease.ok()); }
  EXPECT_EQ(dials.load(), 1u);
  // Server restarts: the parked idle connection is now a dead peer.
  // Wait for the accept thread to have registered it first.
  for (int i = 0; i < 100 && server.accepted() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.accepted(), 1u);
  server.CloseAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // let FIN land

  auto lease = pool.Acquire();
  ASSERT_TRUE(lease.ok()) << lease.status();
  EXPECT_EQ(dials.load(), 2u);  // stale one detected and re-dialed
  EXPECT_TRUE(lease->socket().valid());
}

TEST(ConnPoolTest, DiscardDropsTheConnectionButFreesTheSlot) {
  ParkingServer server;
  std::atomic<uint64_t> dials{0};
  ConnPoolOptions options;
  options.max_connections = 1;
  ConnPool pool(DialerFor(&server, &dials), options);
  {
    auto lease = pool.Acquire();
    ASSERT_TRUE(lease.ok());
    lease->Discard();
  }
  EXPECT_EQ(pool.idle_connections(), 0u);  // nothing reusable was returned
  EXPECT_EQ(pool.in_flight(), 0u);         // but the slot is free
  auto lease = pool.Acquire();             // so this dials, not deadlocks
  ASSERT_TRUE(lease.ok());
  EXPECT_EQ(dials.load(), 2u);
}

TEST(ConnPoolTest, DialFailureReleasesTheSlot) {
  // Dial against a port nothing listens on: Acquire must fail with the
  // dialer's error and leave the pool reusable, not leak the slot.
  auto listener = Listener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  const uint16_t dead_port = listener->port();
  listener->Close();

  ConnPoolOptions options;
  options.max_connections = 1;
  ConnPool pool(
      [dead_port]() -> Result<Socket> {
        return Socket::Connect("127.0.0.1", dead_port, 200);
      },
      options);
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto lease = pool.Acquire();
    ASSERT_FALSE(lease.ok());
    EXPECT_EQ(pool.in_flight(), 0u);
  }
  EXPECT_EQ(pool.total_dials(), 0u);  // only successful dials count
}

TEST(ConnPoolTest, DialerErrorStatusPropagatesVerbatim) {
  ConnPool pool(
      []() -> Result<Socket> {
        return Status::InvalidArgument("handshake config mismatch");
      },
      ConnPoolOptions{});
  auto lease = pool.Acquire();
  ASSERT_FALSE(lease.ok());
  EXPECT_TRUE(lease.status().IsInvalidArgument());
  EXPECT_EQ(lease.status().message(), "handshake config mismatch");
}

// ------------------------------------------------------------- Close()

TEST(ConnPoolTest, CloseWakesBlockedAcquirerWithDeterministicError) {
  ParkingServer server;
  ConnPoolOptions options;
  options.max_connections = 1;
  ConnPool pool(DialerFor(&server), options);
  auto held = pool.Acquire();  // take the only slot
  ASSERT_TRUE(held.ok());

  std::atomic<bool> woke{false};
  Status blocked_status = Status::OK();
  std::thread blocked([&] {
    auto lease = pool.Acquire();  // blocks: no slot free
    blocked_status = lease.status();
    woke.store(true);
  });
  // Give the acquirer time to actually block on the slot condition.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(woke.load());

  pool.Close();
  blocked.join();
  ASSERT_FALSE(blocked_status.ok());
  EXPECT_TRUE(blocked_status.IsIOError());
  EXPECT_NE(blocked_status.message().find("closed"), std::string::npos)
      << blocked_status;
  // The outstanding lease stays usable and its release still accounts.
  EXPECT_TRUE(held->socket().valid());
  held = Status::IOError("drop");  // release the lease into a closed pool
  EXPECT_EQ(pool.in_flight(), 0u);
  EXPECT_EQ(pool.idle_connections(), 0u);  // closed pools cache nothing
}

TEST(ConnPoolTest, AcquireAfterCloseFailsWithoutDialing) {
  std::atomic<uint64_t> dials{0};
  ParkingServer server;
  ConnPool pool(DialerFor(&server, &dials), ConnPoolOptions{});
  pool.Close();
  auto lease = pool.Acquire();
  ASSERT_FALSE(lease.ok());
  EXPECT_TRUE(lease.status().IsIOError());
  EXPECT_EQ(dials.load(), 0u);
  pool.Close();  // idempotent
}

TEST(ConnPoolTest, CloseDropsIdleConnections) {
  ParkingServer server;
  ConnPool pool(DialerFor(&server), ConnPoolOptions{});
  { auto lease = pool.Acquire(); ASSERT_TRUE(lease.ok()); }
  EXPECT_EQ(pool.idle_connections(), 1u);
  pool.Close();
  EXPECT_EQ(pool.idle_connections(), 0u);
}

TEST(ConnPoolTest, DestructionWithBlockedAcquirerDoesNotHang) {
  // The satellite regression: destroying a pool while a thread is parked
  // in Acquire must wake it with an error, not leave it waiting on freed
  // memory. The destructor runs Close() first.
  ParkingServer server;
  std::atomic<bool> woke{false};
  Status blocked_status = Status::OK();
  std::thread blocked;
  {
    ConnPoolOptions options;
    options.max_connections = 1;
    auto pool = std::make_unique<ConnPool>(DialerFor(&server), options);
    auto held = pool->Acquire();
    ASSERT_TRUE(held.ok());
    blocked = std::thread([&, pool = pool.get()] {
      auto lease = pool->Acquire();
      blocked_status = lease.status();
      woke.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_FALSE(woke.load());
    // Destroy the pool while one lease is out and one acquirer blocks.
    // Close() poisons first, so the blocked thread wakes and exits before
    // the lease's own release touches the (still-alive) pool object.
    pool->Close();
    blocked.join();
  }
  ASSERT_TRUE(woke.load());
  EXPECT_TRUE(blocked_status.IsIOError());
}

}  // namespace
}  // namespace net
}  // namespace joinmi
