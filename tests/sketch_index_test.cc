// Tests for the persisted, parallel SketchIndex: query determinism across
// thread counts and duplicated candidates, the versioned on-disk format
// (byte-exact round trips, corruption handling), hash-seed enforcement, and
// rank agreement between index-backed and per-query-sketching search.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/discovery/search.h"
#include "src/discovery/sketch_index.h"
#include "src/sketch/serialize.h"
#include "src/table/table.h"

namespace joinmi {
namespace {

std::shared_ptr<Table> MakeTwoColumnTable(const std::string& key_name,
                                          std::vector<std::string> keys,
                                          const std::string& value_name,
                                          std::vector<int64_t> values) {
  return *Table::FromColumns(
      {{key_name, Column::MakeString(std::move(keys))},
       {value_name, Column::MakeInt64(std::move(values))}});
}

/// Fixed universe: a base table whose target is a function of the key, and
/// a repository of candidates with graded relevance (as in search_test).
struct Universe {
  std::shared_ptr<Table> base;
  TableRepository repository;
};

Universe MakeUniverse() {
  Universe universe;
  Rng rng(7171);
  const size_t num_keys = 160;
  std::vector<std::string> keys;
  std::vector<int64_t> targets;
  for (size_t i = 0; i < num_keys; ++i) {
    keys.push_back("key" + std::to_string(i));
    targets.push_back(static_cast<int64_t>(i % 7));
  }
  universe.base = MakeTwoColumnTable("K", keys, "Y", targets);

  std::vector<int64_t> values;
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>(i % 7));
  }
  universe.repository
      .AddTable("exact", MakeTwoColumnTable("K", keys, "V", values))
      .Abort();
  values.clear();
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>((i % 7) / 3));
  }
  universe.repository
      .AddTable("coarse", MakeTwoColumnTable("K", keys, "V", values))
      .Abort();
  values.clear();
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextBounded(7)));
  }
  universe.repository
      .AddTable("noise", MakeTwoColumnTable("K", keys, "V", values))
      .Abort();
  return universe;
}

JoinMIConfig MakeIndexConfig() {
  JoinMIConfig config;
  config.sketch_capacity = 128;
  config.min_join_size = 16;
  return config;
}

void ExpectSameHits(const std::vector<DiscoveryHit>& a,
                    const std::vector<DiscoveryHit>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ref.table_name, b[i].ref.table_name) << i;
    EXPECT_EQ(a[i].ref.key_column, b[i].ref.key_column) << i;
    EXPECT_EQ(a[i].ref.value_column, b[i].ref.value_column) << i;
    // Bit-exact: the estimate pipeline is fully seeded.
    EXPECT_EQ(a[i].mi, b[i].mi) << i;
    EXPECT_EQ(a[i].join_size, b[i].join_size) << i;
    EXPECT_EQ(a[i].estimator, b[i].estimator) << i;
  }
}

TEST(SketchIndexQueryTest, ThreadCountDoesNotChangeTheRanking) {
  Universe universe = MakeUniverse();
  const JoinMIConfig config = MakeIndexConfig();
  SketchIndex index(config);
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  ASSERT_EQ(index.size(), 3u);
  auto query = *JoinMIQuery::Create(*universe.base, "K", "Y", config);
  auto serial = *index.Query(query, 10, /*num_threads=*/1);
  ASSERT_EQ(serial.size(), 3u);
  EXPECT_EQ(serial[0].ref.table_name, "exact");
  for (size_t num_threads : {2u, 4u, 8u, 0u}) {
    auto parallel = *index.Query(query, 10, num_threads);
    ExpectSameHits(serial, parallel);
  }
}

TEST(SketchIndexQueryTest, DuplicatedCandidatesKeepInsertionOrder) {
  // The determinism satellite: exact duplicates tie on MI, join size, AND
  // ref, so only the insertion index separates them — the ranking must be
  // reproducible for any thread count regardless.
  Universe universe = MakeUniverse();
  const JoinMIConfig config = MakeIndexConfig();
  SketchIndex index(config);
  auto exact = *universe.repository.GetTable("exact");
  const ColumnPairRef ref{"exact", "K", "V"};
  for (int copy = 0; copy < 4; ++copy) {
    ASSERT_TRUE(index.AddCandidate(*exact, ref).ok());
  }
  auto query = *JoinMIQuery::Create(*universe.base, "K", "Y", config);
  auto serial = *index.Query(query, 10, 1);
  ASSERT_EQ(serial.size(), 4u);
  for (size_t i = 1; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].mi, serial[0].mi);
    EXPECT_EQ(serial[i].join_size, serial[0].join_size);
  }
  for (size_t num_threads : {2u, 4u, 0u}) {
    ExpectSameHits(serial, *index.Query(query, 10, num_threads));
  }
}

TEST(SketchIndexQueryTest, TiesBreakOnCandidateRef) {
  // Identical tables registered under different names produce exactly equal
  // (mi, join_size); the ranking must follow ref order — table name here —
  // even though the candidates were inserted in the reverse order.
  Universe universe = MakeUniverse();
  const JoinMIConfig config = MakeIndexConfig();
  auto exact = *universe.repository.GetTable("exact");
  SketchIndex index(config);
  ASSERT_TRUE(index.AddCandidate(*exact, {"twin_b", "K", "V"}).ok());
  ASSERT_TRUE(index.AddCandidate(*exact, {"twin_a", "K", "V"}).ok());
  auto query = *JoinMIQuery::Create(*universe.base, "K", "Y", config);
  for (size_t num_threads : {1u, 4u}) {
    auto hits = *index.Query(query, 2, num_threads);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0].mi, hits[1].mi);
    EXPECT_EQ(hits[0].join_size, hits[1].join_size);
    EXPECT_EQ(hits[0].ref.table_name, "twin_a");
    EXPECT_EQ(hits[1].ref.table_name, "twin_b");
  }
}

TEST(SketchIndexQueryTest, EvaluateAllSeparatesSkipsFromErrors) {
  // "disjoint" fails the min-join-size guard — an expected skip.
  Universe universe = MakeUniverse();
  std::vector<std::string> other_keys;
  std::vector<int64_t> other_values;
  for (size_t i = 0; i < 160; ++i) {
    other_keys.push_back("other" + std::to_string(i));
    other_values.push_back(static_cast<int64_t>(i));
  }
  ASSERT_TRUE(universe.repository
                  .AddTable("disjoint", MakeTwoColumnTable("K", other_keys,
                                                           "V", other_values))
                  .ok());
  const JoinMIConfig config = MakeIndexConfig();
  SketchIndex index(config);
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  ASSERT_EQ(index.size(), 4u);
  auto query = *JoinMIQuery::Create(*universe.base, "K", "Y", config);
  auto evaluation = *index.EvaluateAll(query, 1);
  EXPECT_EQ(evaluation.num_evaluated, 3u);
  EXPECT_EQ(evaluation.num_skipped, 1u);
  EXPECT_EQ(evaluation.num_errors, 0u);
  ASSERT_EQ(evaluation.estimates.size(), 4u);

  // A string-valued candidate joins fine but cannot feed a forced KSG
  // estimator — a hard error, counted apart from the overlap skips.
  JoinMIConfig ksg_config = MakeIndexConfig();
  ksg_config.estimator = MIEstimatorKind::kKSG;
  ksg_config.aggregation = AggKind::kFirst;
  std::vector<std::string> keys, svals;
  for (size_t i = 0; i < 160; ++i) {
    keys.push_back("key" + std::to_string(i));
    svals.push_back("s" + std::to_string(i % 5));
  }
  auto textual = *Table::FromColumns(
      {{"K", Column::MakeString(keys)}, {"V", Column::MakeString(svals)}});
  SketchIndex ksg_index(ksg_config);
  ASSERT_TRUE(ksg_index.AddCandidate(*textual, {"textual", "K", "V"}).ok());
  auto ksg_query = *JoinMIQuery::Create(*universe.base, "K", "Y", ksg_config);
  auto ksg_eval = *ksg_index.EvaluateAll(ksg_query, 1);
  EXPECT_EQ(ksg_eval.num_evaluated, 0u);
  EXPECT_EQ(ksg_eval.num_skipped, 0u);
  EXPECT_EQ(ksg_eval.num_errors, 1u);
}

TEST(SketchIndexSeedTest, QueryWithMismatchedSeedIsRejected) {
  Universe universe = MakeUniverse();
  const JoinMIConfig config = MakeIndexConfig();
  SketchIndex index(config);
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  JoinMIConfig other_seed = config;
  other_seed.hash_seed = 7;
  auto query = *JoinMIQuery::Create(*universe.base, "K", "Y", other_seed);
  auto hits = index.Query(query, 10, 1);
  ASSERT_FALSE(hits.ok());
  EXPECT_TRUE(hits.status().IsInvalidArgument());
}

TEST(SketchIndexSeedTest, AddSketchRejectsMismatchedSeed) {
  Universe universe = MakeUniverse();
  JoinMIConfig other_seed = MakeIndexConfig();
  other_seed.hash_seed = 7;
  auto builder = MakeSketchBuilder(other_seed.sketch_method,
                                   other_seed.sketch_options());
  auto exact = *universe.repository.GetTable("exact");
  auto sketch = *builder->SketchCandidate(*(*exact->GetColumn("K")),
                                          *(*exact->GetColumn("V")),
                                          AggKind::kAvg);
  SketchIndex index(MakeIndexConfig());  // seed 0
  auto status = index.AddSketch({"exact", "K", "V"}, std::move(sketch));
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
}

// ------------------------------------------------------------ Persistence

TEST(SketchIndexPersistenceTest, SerializeRoundTripsByteExactly) {
  Universe universe = MakeUniverse();
  JoinMIConfig config = MakeIndexConfig();
  config.hash_seed = 42;
  config.estimator = MIEstimatorKind::kMLE;
  SketchIndex index(config);
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());

  const std::string data = SerializeIndex(index);
  auto restored = DeserializeIndex(data);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->size(), index.size());
  EXPECT_EQ(restored->config().hash_seed, 42u);
  EXPECT_EQ(restored->config().min_join_size, config.min_join_size);
  ASSERT_TRUE(restored->config().estimator.has_value());
  EXPECT_EQ(*restored->config().estimator, MIEstimatorKind::kMLE);
  // Byte-exact: re-serializing the loaded index reproduces the buffer.
  EXPECT_EQ(SerializeIndex(*restored), data);
}

TEST(SketchIndexPersistenceTest, FileRoundTripPreservesQueryResults) {
  Universe universe = MakeUniverse();
  const JoinMIConfig config = MakeIndexConfig();
  SketchIndex index(config);
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  const std::string path = testing::TempDir() + "/joinmi_index_test.bin";
  ASSERT_TRUE(WriteIndexFile(index, path).ok());
  auto loaded = ReadIndexFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  // A query against the loaded index must reproduce the in-memory results
  // exactly — the whole point of persisting sketches across processes.
  auto query = *JoinMIQuery::Create(*universe.base, "K", "Y", config);
  auto before = *index.Query(query, 10, 1);
  auto after = *loaded->Query(query, 10, 1);
  ExpectSameHits(before, after);
  ASSERT_GE(before.size(), 1u);
  EXPECT_EQ(before[0].ref.table_name, "exact");

  EXPECT_FALSE(ReadIndexFile("/no/such/dir/index.bin").ok());
}

TEST(SketchIndexPersistenceTest, EmptyIndexRoundTrips) {
  JoinMIConfig config = MakeIndexConfig();
  SketchIndex index(config);
  const std::string data = SerializeIndex(index);
  auto restored = DeserializeIndex(data);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->size(), 0u);
  EXPECT_EQ(SerializeIndex(*restored), data);
}

TEST(SketchIndexPersistenceTest, RejectsCorruptedInputs) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  const std::string data = SerializeIndex(index);

  std::string bad_magic = data;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DeserializeIndex(bad_magic).ok());

  std::string bad_version = data;
  bad_version[4] = 99;
  EXPECT_FALSE(DeserializeIndex(bad_version).ok());

  // Truncations at every interesting prefix must fail cleanly.
  for (size_t len : {0u, 3u, 8u, 20u, 40u, 60u}) {
    EXPECT_FALSE(DeserializeIndex(data.substr(0, len)).ok()) << len;
  }
  EXPECT_FALSE(DeserializeIndex(data.substr(0, data.size() - 1)).ok());
  EXPECT_FALSE(DeserializeIndex(data + "x").ok());
}

TEST(SketchIndexPersistenceTest, TruncationErrorsSayWhereAndHowMuch) {
  // The error-reporting contract: a truncated or empty index must name
  // actual vs expected sizes (empty / header-only cases) or the candidate
  // the parse died inside (mid-candidate truncation) — not a bare
  // "truncated buffer".
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  ASSERT_EQ(index.size(), 3u);
  const std::string data = SerializeIndex(index);
  // magic + version + config + count — the minimum parseable index.
  const size_t header_size = 4 + 4 + kJoinMIConfigWireSize + 8;

  auto empty = DeserializeIndex("");
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.status().message().find("empty"), std::string::npos)
      << empty.status();
  EXPECT_NE(empty.status().message().find(std::to_string(header_size)),
            std::string::npos)
      << empty.status();

  auto short_file = DeserializeIndex(data.substr(0, 40));
  ASSERT_FALSE(short_file.ok());
  EXPECT_NE(short_file.status().message().find("40 bytes"),
            std::string::npos)
      << short_file.status();
  EXPECT_NE(short_file.status().message().find(std::to_string(header_size)),
            std::string::npos)
      << short_file.status();

  // Header-only: the count promises 3 candidates, zero bytes follow.
  auto header_only = DeserializeIndex(data.substr(0, header_size));
  ASSERT_FALSE(header_only.ok());
  EXPECT_NE(header_only.status().message().find(
                "promises 3 candidates but only 0 bytes"),
            std::string::npos)
      << header_only.status();

  // Mid-candidate: the file ends one byte inside the last candidate.
  auto mid = DeserializeIndex(data.substr(0, data.size() - 1));
  ASSERT_FALSE(mid.ok());
  EXPECT_NE(mid.status().message().find("candidate 2 of 3"),
            std::string::npos)
      << mid.status();
}

TEST(SketchIndexPersistenceTest, ReadIndexFileReportsPathAndFileSize) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  const std::string data = SerializeIndex(index);

  const std::string path = testing::TempDir() + "/joinmi_truncated_index.bin";
  const std::string truncated = data.substr(0, 40);
  ASSERT_TRUE(wire::WriteFileBytes(truncated, path).ok());
  auto loaded = ReadIndexFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(path), std::string::npos)
      << loaded.status();
  EXPECT_NE(loaded.status().message().find("40 bytes"), std::string::npos)
      << loaded.status();

  const std::string empty_path = testing::TempDir() + "/joinmi_empty_index.bin";
  ASSERT_TRUE(wire::WriteFileBytes("", empty_path).ok());
  auto empty = ReadIndexFile(empty_path);
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.status().message().find(empty_path), std::string::npos)
      << empty.status();
  EXPECT_NE(empty.status().message().find("empty"), std::string::npos)
      << empty.status();
}

// ------------------------------------------- Index-backed search overload

void ExpectSameSearchHits(const TopKSearchResult& a,
                          const TopKSearchResult& b) {
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].candidate.table_name,
              b.hits[i].candidate.table_name);
    EXPECT_EQ(a.hits[i].candidate.key_column, b.hits[i].candidate.key_column);
    EXPECT_EQ(a.hits[i].candidate.value_column,
              b.hits[i].candidate.value_column);
    EXPECT_EQ(a.hits[i].estimate.mi, b.hits[i].estimate.mi);
    EXPECT_EQ(a.hits[i].estimate.sample_size,
              b.hits[i].estimate.sample_size);
    EXPECT_EQ(a.hits[i].estimate.estimator, b.hits[i].estimate.estimator);
  }
}

TEST(IndexedSearchTest, MatchesPerQuerySketchingRanking) {
  // The acceptance gate: at the same config and seed, probing the persisted
  // index must return rankings identical to sketching every candidate per
  // query — including after the index survives a file round trip.
  Universe universe = MakeUniverse();
  SearchConfig search_config;
  search_config.num_threads = 1;
  search_config.join_config = MakeIndexConfig();

  auto via_repo = TopKJoinMISearch(*universe.base, {"K", "Y"},
                                   universe.repository, 10, search_config);
  ASSERT_TRUE(via_repo.ok()) << via_repo.status();
  ASSERT_EQ(via_repo->hits.size(), 3u);

  SketchIndex index(search_config.join_config);
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  for (size_t num_threads : {1u, 4u, 0u}) {
    auto via_index = TopKJoinMISearch(*universe.base, {"K", "Y"}, index, 10,
                                      num_threads);
    ASSERT_TRUE(via_index.ok()) << via_index.status();
    EXPECT_EQ(via_index->num_candidates, index.size());
    EXPECT_EQ(via_index->num_evaluated, via_repo->num_evaluated);
    ExpectSameSearchHits(*via_repo, *via_index);
  }

  const std::string path = testing::TempDir() + "/joinmi_search_index.bin";
  ASSERT_TRUE(WriteIndexFile(index, path).ok());
  auto loaded = ReadIndexFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto via_loaded =
      TopKJoinMISearch(*universe.base, {"K", "Y"}, *loaded, 10, 1);
  ASSERT_TRUE(via_loaded.ok()) << via_loaded.status();
  ExpectSameSearchHits(*via_repo, *via_loaded);
}

TEST(IndexedSearchTest, RejectsZeroK) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  auto result = TopKJoinMISearch(*universe.base, {"K", "Y"}, index, 0, 1);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

}  // namespace
}  // namespace joinmi
