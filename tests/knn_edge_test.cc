// Edge-case and stress tests for the kNN machinery (SortedPoints1D and
// KdTree2D) beyond the core correctness checks in mi_test.cc: degenerate
// geometries, duplicate-heavy data, leaf-boundary sizes, and randomized
// brute-force differential sweeps.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/common/random.h"
#include "src/mi/estimator.h"
#include "src/mi/knn.h"
#include "src/mi/ksg.h"
#include "src/mi/mixed_ksg.h"
#include "src/mi/mle.h"

namespace joinmi {
namespace {

// ------------------------------------------------------- SortedPoints1D --

TEST(SortedPoints1DEdgeTest, TwoPoints) {
  SortedPoints1D points({1.0, 4.0});
  EXPECT_EQ(points.KthNeighborDistance(1.0, 1), 3.0);
  EXPECT_EQ(points.KthNeighborDistance(4.0, 1), 3.0);
}

TEST(SortedPoints1DEdgeTest, AllIdentical) {
  SortedPoints1D points(std::vector<double>(50, 2.5));
  for (int k = 1; k < 50; ++k) {
    ASSERT_EQ(points.KthNeighborDistance(2.5, k), 0.0) << k;
  }
  // Closed count includes every copy; strict r=0 counts none.
  EXPECT_EQ(points.CountWithin(2.5, 0.0, /*strict=*/false,
                               /*exclude_self=*/false),
            50u);
  EXPECT_EQ(points.CountWithin(2.5, 0.0, /*strict=*/true,
                               /*exclude_self=*/false),
            0u);
}

TEST(SortedPoints1DEdgeTest, QueryAtExtremes) {
  SortedPoints1D points({0.0, 1.0, 2.0, 3.0, 4.0});
  // Leftmost point: all neighbors to the right.
  EXPECT_EQ(points.KthNeighborDistance(0.0, 4), 4.0);
  // Rightmost point: all neighbors to the left.
  EXPECT_EQ(points.KthNeighborDistance(4.0, 4), 4.0);
}

TEST(SortedPoints1DEdgeTest, NegativeAndMixedSigns) {
  SortedPoints1D points({-5.0, -1.0, 0.0, 3.0});
  EXPECT_EQ(points.KthNeighborDistance(-1.0, 1), 1.0);   // -> 0.0
  EXPECT_EQ(points.KthNeighborDistance(-1.0, 2), 4.0);   // -> -5.0 or 3.0
  EXPECT_EQ(points.CountWithin(0.0, 4.0, /*strict=*/false), 2u);
}

TEST(SortedPoints1DEdgeTest, BruteForceDifferentialSweep) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    // Mixed continuous + heavily tied data.
    std::vector<double> data;
    const size_t n = 20 + rng.NextBounded(200);
    for (size_t i = 0; i < n; ++i) {
      data.push_back(rng.Bernoulli(0.4)
                         ? static_cast<double>(rng.NextBounded(5))
                         : rng.Uniform(-3.0, 8.0));
    }
    SortedPoints1D points(data);
    for (int probe = 0; probe < 10; ++probe) {
      const double x = data[rng.NextBounded(data.size())];
      const int k = 1 + static_cast<int>(rng.NextBounded(
                            std::min<size_t>(8, data.size() - 1)));
      // Brute force: sorted |d| excluding one copy of x.
      std::vector<double> dists;
      bool excluded_self = false;
      for (double p : data) {
        if (!excluded_self && p == x) {
          excluded_self = true;
          continue;
        }
        dists.push_back(std::fabs(p - x));
      }
      std::sort(dists.begin(), dists.end());
      ASSERT_DOUBLE_EQ(points.KthNeighborDistance(x, k),
                       dists[static_cast<size_t>(k - 1)])
          << "trial " << trial << " k " << k;
      // Range counts, both strictness modes, self included.
      const double r = dists[static_cast<size_t>(k - 1)];
      size_t closed = 0, open = 0;
      for (double p : data) {
        const double d = std::fabs(p - x);
        if (d <= r) ++closed;
        if (d < r) ++open;
      }
      ASSERT_EQ(points.CountWithin(x, r, /*strict=*/false,
                                   /*exclude_self=*/false),
                closed);
      ASSERT_EQ(points.CountWithin(x, r, /*strict=*/true,
                                   /*exclude_self=*/false),
                open);
    }
  }
}

// ------------------------------------------------------------- KdTree2D --

TEST(KdTree2DEdgeTest, SizesAroundLeafBoundary) {
  // The tree switches from a single leaf to internal nodes at 16 points;
  // exercise sizes around that boundary against brute force.
  Rng rng(7);
  for (size_t n : {2u, 15u, 16u, 17u, 33u, 64u}) {
    std::vector<double> xs(n), ys(n);
    for (size_t i = 0; i < n; ++i) {
      xs[i] = rng.Uniform(-1, 1);
      ys[i] = rng.Uniform(-1, 1);
    }
    KdTree2D tree(xs, ys);
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        best = std::min(best, std::max(std::fabs(xs[j] - xs[i]),
                                       std::fabs(ys[j] - ys[i])));
      }
      ASSERT_DOUBLE_EQ(tree.KthNeighborDistance(i, 1), best)
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(KdTree2DEdgeTest, CollinearPoints) {
  // All points on a line stress one split axis.
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(0.0);
  }
  KdTree2D tree(xs, ys);
  EXPECT_EQ(tree.KthNeighborDistance(50, 1), 1.0);
  EXPECT_EQ(tree.KthNeighborDistance(50, 4), 2.0);
  EXPECT_EQ(tree.KthNeighborDistance(0, 3), 3.0);
  EXPECT_EQ(tree.CountWithin(50, 2.0, /*strict=*/false), 4u);
}

TEST(KdTree2DEdgeTest, ManyCoincidentClusters) {
  // 10 clusters of 30 identical points each.
  std::vector<double> xs, ys;
  for (int c = 0; c < 10; ++c) {
    for (int i = 0; i < 30; ++i) {
      xs.push_back(static_cast<double>(c) * 5.0);
      ys.push_back(static_cast<double>(c) * -3.0);
    }
  }
  KdTree2D tree(xs, ys);
  for (size_t i : {0u, 31u, 299u}) {
    EXPECT_EQ(tree.CountCoincident(i), 29u) << i;
    EXPECT_EQ(tree.KthNeighborDistance(i, 29), 0.0);
    EXPECT_EQ(tree.KthNeighborDistance(i, 30), 5.0);
  }
}

TEST(KdTree2DEdgeTest, RandomizedDifferentialWithTies) {
  Rng rng(31);
  const size_t n = 400;
  std::vector<double> xs(n), ys(n);
  for (size_t i = 0; i < n; ++i) {
    // Quantized coordinates: heavy Chebyshev ties.
    xs[i] = static_cast<double>(rng.NextBounded(12));
    ys[i] = static_cast<double>(rng.NextBounded(12));
  }
  KdTree2D tree(xs, ys);
  for (size_t probe = 0; probe < 60; ++probe) {
    const size_t i = rng.NextBounded(n);
    const int k = 1 + static_cast<int>(rng.NextBounded(10));
    std::vector<double> dists;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      dists.push_back(
          std::max(std::fabs(xs[j] - xs[i]), std::fabs(ys[j] - ys[i])));
    }
    std::sort(dists.begin(), dists.end());
    const double expected = dists[static_cast<size_t>(k - 1)];
    ASSERT_DOUBLE_EQ(tree.KthNeighborDistance(i, k), expected);
    size_t open = 0, closed = 0;
    for (double d : dists) {
      if (d < expected) ++open;
      if (d <= expected) ++closed;
    }
    ASSERT_EQ(tree.CountWithin(i, expected, /*strict=*/true), open);
    ASSERT_EQ(tree.CountWithin(i, expected, /*strict=*/false), closed);
  }
}

// -------------------------------------------- KSG / MixedKSG with ties --
//
// Ties are the classic KSG failure mode: duplicate points give a zero
// k-th-neighbor distance, which breaks the continuous-marginal assumption
// KSG is derived under. MixedKSG handles them by switching to coincident
// counts; KSG must at least stay finite and well-defined so the estimator
// facade can run on join-derived (heavily repeated) features.

TEST(MixedKsgTiesTest, FullyDiscreteDependenceMatchesPlugIn) {
  // 40 copies each of (0,0), (1,1), (2,2): every point is duplicated, every
  // neighbor distance is tied at 0. MixedKSG degenerates to the plug-in
  // estimator, so the estimate must be ~log 3 like MLE's.
  std::vector<double> xs, ys;
  std::vector<Value> vx, vy;
  for (int v = 0; v < 3; ++v) {
    for (int copy = 0; copy < 40; ++copy) {
      xs.push_back(static_cast<double>(v));
      ys.push_back(static_cast<double>(v));
      vx.emplace_back(static_cast<int64_t>(v));
      vy.emplace_back(static_cast<int64_t>(v));
    }
  }
  auto mixed = MutualInformationMixedKSG(xs, ys, 3);
  ASSERT_TRUE(mixed.ok()) << mixed.status();
  auto mle = MutualInformationMLE(vx, vy);
  ASSERT_TRUE(mle.ok());
  EXPECT_NEAR(*mixed, *mle, 0.05);
  EXPECT_NEAR(*mixed, std::log(3.0), 0.05);
}

TEST(MixedKsgTiesTest, FullyDiscreteIndependenceIsNearZero) {
  // x and y cycle with coprime periods, so they are independent and every
  // (x, y) cell is hit equally often — all duplicates, zero MI.
  std::vector<double> xs, ys;
  for (int i = 0; i < 300; ++i) {
    xs.push_back(static_cast<double>(i % 2));
    ys.push_back(static_cast<double>(i % 3));
  }
  auto mixed = MutualInformationMixedKSG(xs, ys, 3);
  ASSERT_TRUE(mixed.ok()) << mixed.status();
  EXPECT_NEAR(*mixed, 0.0, 0.05);
}

TEST(MixedKsgTiesTest, ConstantVariableGivesZeroMI) {
  Rng rng(17);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(1.5);  // degenerate: a single duplicated value
    ys.push_back(rng.Gaussian());
  }
  auto mixed = MutualInformationMixedKSG(xs, ys, 3);
  ASSERT_TRUE(mixed.ok()) << mixed.status();
  EXPECT_NEAR(*mixed, 0.0, 1e-9);
}

TEST(MixedKsgTiesTest, MixtureOfContinuousAndDuplicatedPoints) {
  // Half the mass sits on exact duplicates of (0, 0), half is continuous
  // and dependent (y == x): a discrete-continuous mixture in both
  // coordinates. The estimate must be finite, non-negative (up to
  // estimator noise), and detect strong dependence.
  Rng rng(29);
  std::vector<double> xs, ys;
  for (int i = 0; i < 150; ++i) {
    xs.push_back(0.0);
    ys.push_back(0.0);
  }
  for (int i = 0; i < 150; ++i) {
    const double u = rng.Uniform(1.0, 2.0);
    xs.push_back(u);
    ys.push_back(u);
  }
  auto mixed = MutualInformationMixedKSG(xs, ys, 3);
  ASSERT_TRUE(mixed.ok()) << mixed.status();
  EXPECT_TRUE(std::isfinite(*mixed));
  EXPECT_GT(*mixed, 0.3);
}

TEST(KsgTiesTest, DuplicatePointsCollapseWithoutPerturbation) {
  // Quantized data tie every k-th-neighbor distance at 0, so the marginal
  // counts vanish and KSG collapses to the data-independent constant
  // psi(k) + psi(N): dependent and independent inputs become
  // indistinguishable. This is the classic KSG tie failure the paper works
  // around; the perturbation device (Section V-A) must restore the
  // dependent > independent ordering.
  Rng rng(55);
  std::vector<double> xs_dep, ys_dep, xs_ind, ys_ind;
  for (int i = 0; i < 400; ++i) {
    const double q = static_cast<double>(rng.NextBounded(6));
    xs_dep.push_back(q);
    ys_dep.push_back(q);
    xs_ind.push_back(static_cast<double>(rng.NextBounded(6)));
    ys_ind.push_back(static_cast<double>(rng.NextBounded(6)));
  }
  auto dep = MutualInformationKSG(xs_dep, ys_dep, 3);
  auto ind = MutualInformationKSG(xs_ind, ys_ind, 3);
  ASSERT_TRUE(dep.ok()) << dep.status();
  ASSERT_TRUE(ind.ok()) << ind.status();
  EXPECT_TRUE(std::isfinite(*dep));
  EXPECT_TRUE(std::isfinite(*ind));
  // Both saturate to the same degenerate value — the failure mode itself.
  EXPECT_EQ(*dep, *ind);

  // With tie-breaking noise the ordering comes back.
  const double sigma = 1e-6;
  auto dep_p = MutualInformationKSG(PerturbForTies(xs_dep, sigma, 1),
                                    PerturbForTies(ys_dep, sigma, 2), 3);
  auto ind_p = MutualInformationKSG(PerturbForTies(xs_ind, sigma, 1),
                                    PerturbForTies(ys_ind, sigma, 2), 3);
  ASSERT_TRUE(dep_p.ok()) << dep_p.status();
  ASSERT_TRUE(ind_p.ok()) << ind_p.status();
  EXPECT_GT(*dep_p, *ind_p);
  // MixedKSG needs no perturbation to separate the two on the same data.
  auto dep_m = MutualInformationMixedKSG(xs_dep, ys_dep, 3);
  auto ind_m = MutualInformationMixedKSG(xs_ind, ys_ind, 3);
  ASSERT_TRUE(dep_m.ok());
  ASSERT_TRUE(ind_m.ok());
  EXPECT_GT(*dep_m, *ind_m);
}

TEST(KsgTiesTest, TiedDistancesOnAUniformGrid) {
  // Evenly spaced 1-D marginals: every neighbor distance is tied at a
  // multiple of the grid step in both coordinates. No crash, finite value.
  std::vector<double> xs, ys;
  for (int i = 0; i < 120; ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(static_cast<double>(120 - i));
  }
  auto ksg = MutualInformationKSG(xs, ys, 4);
  ASSERT_TRUE(ksg.ok()) << ksg.status();
  EXPECT_TRUE(std::isfinite(*ksg));
  // Perfect monotone dependence: the estimate should be strongly positive.
  EXPECT_GT(*ksg, 1.0);
}

TEST(KsgTiesTest, AllPointsIdenticalIsHandled) {
  // The most degenerate input: one duplicated point. Both estimators must
  // either return a finite value or fail cleanly with a Status — never
  // crash or return NaN.
  std::vector<double> xs(50, 3.25), ys(50, -1.0);
  auto ksg = MutualInformationKSG(xs, ys, 3);
  if (ksg.ok()) {
    EXPECT_TRUE(std::isfinite(*ksg));
  }
  auto mixed = MutualInformationMixedKSG(xs, ys, 3);
  ASSERT_TRUE(mixed.ok()) << mixed.status();
  EXPECT_TRUE(std::isfinite(*mixed));
  EXPECT_NEAR(*mixed, 0.0, 1e-9);
}

}  // namespace
}  // namespace joinmi
